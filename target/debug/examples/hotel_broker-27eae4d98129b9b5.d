/root/repo/target/debug/examples/hotel_broker-27eae4d98129b9b5.d: examples/hotel_broker.rs

/root/repo/target/debug/examples/libhotel_broker-27eae4d98129b9b5.rmeta: examples/hotel_broker.rs

examples/hotel_broker.rs:
