/root/repo/target/debug/examples/churn_simulation-1b6a21f6392da33e.d: examples/churn_simulation.rs

/root/repo/target/debug/examples/libchurn_simulation-1b6a21f6392da33e.rmeta: examples/churn_simulation.rs

examples/churn_simulation.rs:
