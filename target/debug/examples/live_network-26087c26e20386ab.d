/root/repo/target/debug/examples/live_network-26087c26e20386ab.d: examples/live_network.rs

/root/repo/target/debug/examples/liblive_network-26087c26e20386ab.rmeta: examples/live_network.rs

examples/live_network.rs:
