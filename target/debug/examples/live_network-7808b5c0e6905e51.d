/root/repo/target/debug/examples/live_network-7808b5c0e6905e51.d: examples/live_network.rs

/root/repo/target/debug/examples/liblive_network-7808b5c0e6905e51.rmeta: examples/live_network.rs

examples/live_network.rs:
