/root/repo/target/debug/examples/concurrent_load-db82c196ef5a16eb.d: examples/concurrent_load.rs

/root/repo/target/debug/examples/libconcurrent_load-db82c196ef5a16eb.rmeta: examples/concurrent_load.rs

examples/concurrent_load.rs:
