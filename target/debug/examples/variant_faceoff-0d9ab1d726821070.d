/root/repo/target/debug/examples/variant_faceoff-0d9ab1d726821070.d: examples/variant_faceoff.rs

/root/repo/target/debug/examples/libvariant_faceoff-0d9ab1d726821070.rmeta: examples/variant_faceoff.rs

examples/variant_faceoff.rs:
