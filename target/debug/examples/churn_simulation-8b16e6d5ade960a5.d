/root/repo/target/debug/examples/churn_simulation-8b16e6d5ade960a5.d: examples/churn_simulation.rs

/root/repo/target/debug/examples/libchurn_simulation-8b16e6d5ade960a5.rmeta: examples/churn_simulation.rs

examples/churn_simulation.rs:
