/root/repo/target/debug/examples/subspace_explorer-7b50314fb4a10248.d: examples/subspace_explorer.rs

/root/repo/target/debug/examples/libsubspace_explorer-7b50314fb4a10248.rmeta: examples/subspace_explorer.rs

examples/subspace_explorer.rs:
