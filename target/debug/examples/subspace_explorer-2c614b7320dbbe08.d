/root/repo/target/debug/examples/subspace_explorer-2c614b7320dbbe08.d: examples/subspace_explorer.rs

/root/repo/target/debug/examples/libsubspace_explorer-2c614b7320dbbe08.rmeta: examples/subspace_explorer.rs

examples/subspace_explorer.rs:
