/root/repo/target/debug/examples/trace_query-05fec8f020786de5.d: examples/trace_query.rs

/root/repo/target/debug/examples/libtrace_query-05fec8f020786de5.rmeta: examples/trace_query.rs

examples/trace_query.rs:
