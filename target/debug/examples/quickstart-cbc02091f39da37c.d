/root/repo/target/debug/examples/quickstart-cbc02091f39da37c.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-cbc02091f39da37c.rmeta: examples/quickstart.rs

examples/quickstart.rs:
