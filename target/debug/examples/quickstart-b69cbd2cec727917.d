/root/repo/target/debug/examples/quickstart-b69cbd2cec727917.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-b69cbd2cec727917.rmeta: examples/quickstart.rs

examples/quickstart.rs:
