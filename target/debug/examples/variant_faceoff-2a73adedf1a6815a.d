/root/repo/target/debug/examples/variant_faceoff-2a73adedf1a6815a.d: examples/variant_faceoff.rs

/root/repo/target/debug/examples/libvariant_faceoff-2a73adedf1a6815a.rmeta: examples/variant_faceoff.rs

examples/variant_faceoff.rs:
