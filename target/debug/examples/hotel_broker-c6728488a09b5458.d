/root/repo/target/debug/examples/hotel_broker-c6728488a09b5458.d: examples/hotel_broker.rs

/root/repo/target/debug/examples/libhotel_broker-c6728488a09b5458.rmeta: examples/hotel_broker.rs

examples/hotel_broker.rs:
