/root/repo/target/debug/examples/trace_query-d933025fc6003c24.d: examples/trace_query.rs

/root/repo/target/debug/examples/libtrace_query-d933025fc6003c24.rmeta: examples/trace_query.rs

examples/trace_query.rs:
