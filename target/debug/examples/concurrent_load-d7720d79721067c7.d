/root/repo/target/debug/examples/concurrent_load-d7720d79721067c7.d: examples/concurrent_load.rs

/root/repo/target/debug/examples/libconcurrent_load-d7720d79721067c7.rmeta: examples/concurrent_load.rs

examples/concurrent_load.rs:
