/root/repo/target/debug/deps/rand-02899f9cf3cc4712.d: .devstubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-02899f9cf3cc4712.rmeta: .devstubs/rand/src/lib.rs

.devstubs/rand/src/lib.rs:
