/root/repo/target/debug/deps/parking_lot-b7bc9f4d068d9d7e.d: .devstubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-b7bc9f4d068d9d7e.rmeta: .devstubs/parking_lot/src/lib.rs

.devstubs/parking_lot/src/lib.rs:
