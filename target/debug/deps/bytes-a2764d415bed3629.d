/root/repo/target/debug/deps/bytes-a2764d415bed3629.d: .devstubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-a2764d415bed3629.rmeta: .devstubs/bytes/src/lib.rs

.devstubs/bytes/src/lib.rs:
