/root/repo/target/debug/deps/skypeer_rtree-bfc5d6deed13c32d.d: crates/rtree/src/lib.rs crates/rtree/src/rect.rs crates/rtree/src/tree.rs crates/rtree/src/tests.rs

/root/repo/target/debug/deps/libskypeer_rtree-bfc5d6deed13c32d.rmeta: crates/rtree/src/lib.rs crates/rtree/src/rect.rs crates/rtree/src/tree.rs crates/rtree/src/tests.rs

crates/rtree/src/lib.rs:
crates/rtree/src/rect.rs:
crates/rtree/src/tree.rs:
crates/rtree/src/tests.rs:
