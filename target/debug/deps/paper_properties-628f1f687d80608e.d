/root/repo/target/debug/deps/paper_properties-628f1f687d80608e.d: tests/paper_properties.rs

/root/repo/target/debug/deps/libpaper_properties-628f1f687d80608e.rmeta: tests/paper_properties.rs

tests/paper_properties.rs:
