/root/repo/target/debug/deps/end_to_end-5b60372134153361.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-5b60372134153361.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
