/root/repo/target/debug/deps/fault_tolerance-87cc514ab823f2bb.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/libfault_tolerance-87cc514ab823f2bb.rmeta: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
