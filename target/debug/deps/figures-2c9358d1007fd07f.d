/root/repo/target/debug/deps/figures-2c9358d1007fd07f.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/libfigures-2c9358d1007fd07f.rmeta: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
