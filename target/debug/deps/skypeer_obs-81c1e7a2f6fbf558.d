/root/repo/target/debug/deps/skypeer_obs-81c1e7a2f6fbf558.d: crates/obs/src/lib.rs crates/obs/src/critical.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/metrics.rs crates/obs/src/tracer.rs crates/obs/src/json.rs

/root/repo/target/debug/deps/libskypeer_obs-81c1e7a2f6fbf558.rlib: crates/obs/src/lib.rs crates/obs/src/critical.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/metrics.rs crates/obs/src/tracer.rs crates/obs/src/json.rs

/root/repo/target/debug/deps/libskypeer_obs-81c1e7a2f6fbf558.rmeta: crates/obs/src/lib.rs crates/obs/src/critical.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/metrics.rs crates/obs/src/tracer.rs crates/obs/src/json.rs

crates/obs/src/lib.rs:
crates/obs/src/critical.rs:
crates/obs/src/event.rs:
crates/obs/src/export.rs:
crates/obs/src/metrics.rs:
crates/obs/src/tracer.rs:
crates/obs/src/json.rs:
