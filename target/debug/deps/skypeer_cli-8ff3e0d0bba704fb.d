/root/repo/target/debug/deps/skypeer_cli-8ff3e0d0bba704fb.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libskypeer_cli-8ff3e0d0bba704fb.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
