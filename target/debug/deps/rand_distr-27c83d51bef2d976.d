/root/repo/target/debug/deps/rand_distr-27c83d51bef2d976.d: .devstubs/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-27c83d51bef2d976.rmeta: .devstubs/rand_distr/src/lib.rs

.devstubs/rand_distr/src/lib.rs:
