/root/repo/target/debug/deps/skypeer_data-2185f8189cf8c625.d: crates/data/src/lib.rs crates/data/src/csv.rs crates/data/src/generate.rs crates/data/src/partition.rs crates/data/src/stats.rs crates/data/src/workload.rs

/root/repo/target/debug/deps/libskypeer_data-2185f8189cf8c625.rmeta: crates/data/src/lib.rs crates/data/src/csv.rs crates/data/src/generate.rs crates/data/src/partition.rs crates/data/src/stats.rs crates/data/src/workload.rs

crates/data/src/lib.rs:
crates/data/src/csv.rs:
crates/data/src/generate.rs:
crates/data/src/partition.rs:
crates/data/src/stats.rs:
crates/data/src/workload.rs:
