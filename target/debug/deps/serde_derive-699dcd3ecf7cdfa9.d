/root/repo/target/debug/deps/serde_derive-699dcd3ecf7cdfa9.d: .devstubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-699dcd3ecf7cdfa9.rmeta: .devstubs/serde_derive/src/lib.rs

.devstubs/serde_derive/src/lib.rs:
