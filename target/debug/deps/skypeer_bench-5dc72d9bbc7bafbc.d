/root/repo/target/debug/deps/skypeer_bench-5dc72d9bbc7bafbc.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/plot.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libskypeer_bench-5dc72d9bbc7bafbc.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/plot.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/plot.rs:
crates/bench/src/table.rs:
