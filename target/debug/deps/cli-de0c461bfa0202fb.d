/root/repo/target/debug/deps/cli-de0c461bfa0202fb.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/libcli-de0c461bfa0202fb.rmeta: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_skypeer-cli=placeholder:skypeer-cli
