/root/repo/target/debug/deps/parking_lot-7d9c4ab44ca69470.d: .devstubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-7d9c4ab44ca69470.rmeta: .devstubs/parking_lot/src/lib.rs

.devstubs/parking_lot/src/lib.rs:
