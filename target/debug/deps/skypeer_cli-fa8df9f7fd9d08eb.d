/root/repo/target/debug/deps/skypeer_cli-fa8df9f7fd9d08eb.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libskypeer_cli-fa8df9f7fd9d08eb.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
