/root/repo/target/debug/deps/skypeer_netsim-ca6763ebca314200.d: crates/netsim/src/lib.rs crates/netsim/src/cost.rs crates/netsim/src/des.rs crates/netsim/src/live.rs crates/netsim/src/topology.rs

/root/repo/target/debug/deps/libskypeer_netsim-ca6763ebca314200.rmeta: crates/netsim/src/lib.rs crates/netsim/src/cost.rs crates/netsim/src/des.rs crates/netsim/src/live.rs crates/netsim/src/topology.rs

crates/netsim/src/lib.rs:
crates/netsim/src/cost.rs:
crates/netsim/src/des.rs:
crates/netsim/src/live.rs:
crates/netsim/src/topology.rs:
