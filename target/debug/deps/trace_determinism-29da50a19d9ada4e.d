/root/repo/target/debug/deps/trace_determinism-29da50a19d9ada4e.d: tests/trace_determinism.rs

/root/repo/target/debug/deps/libtrace_determinism-29da50a19d9ada4e.rmeta: tests/trace_determinism.rs

tests/trace_determinism.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
