/root/repo/target/debug/deps/skypeer_obs-ae8abcc83e80d590.d: crates/obs/src/lib.rs crates/obs/src/critical.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/metrics.rs crates/obs/src/tracer.rs crates/obs/src/json.rs

/root/repo/target/debug/deps/libskypeer_obs-ae8abcc83e80d590.rmeta: crates/obs/src/lib.rs crates/obs/src/critical.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/metrics.rs crates/obs/src/tracer.rs crates/obs/src/json.rs

crates/obs/src/lib.rs:
crates/obs/src/critical.rs:
crates/obs/src/event.rs:
crates/obs/src/export.rs:
crates/obs/src/metrics.rs:
crates/obs/src/tracer.rs:
crates/obs/src/json.rs:
