/root/repo/target/debug/deps/churn_and_failures-936ae6deef8f048f.d: tests/churn_and_failures.rs

/root/repo/target/debug/deps/libchurn_and_failures-936ae6deef8f048f.rmeta: tests/churn_and_failures.rs

tests/churn_and_failures.rs:
