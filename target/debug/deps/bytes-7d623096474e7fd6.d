/root/repo/target/debug/deps/bytes-7d623096474e7fd6.d: .devstubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-7d623096474e7fd6.rmeta: .devstubs/bytes/src/lib.rs

.devstubs/bytes/src/lib.rs:
