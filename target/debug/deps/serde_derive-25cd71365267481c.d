/root/repo/target/debug/deps/serde_derive-25cd71365267481c.d: .devstubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-25cd71365267481c.rmeta: .devstubs/serde_derive/src/lib.rs

.devstubs/serde_derive/src/lib.rs:
