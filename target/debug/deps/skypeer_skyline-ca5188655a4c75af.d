/root/repo/target/debug/deps/skypeer_skyline-ca5188655a4c75af.d: crates/skyline/src/lib.rs crates/skyline/src/bbs.rs crates/skyline/src/bnl.rs crates/skyline/src/brute.rs crates/skyline/src/constrained.rs crates/skyline/src/dnc.rs crates/skyline/src/dominance.rs crates/skyline/src/estimate.rs crates/skyline/src/extended.rs crates/skyline/src/mapping.rs crates/skyline/src/merge.rs crates/skyline/src/point.rs crates/skyline/src/progressive.rs crates/skyline/src/sfs.rs crates/skyline/src/skyband.rs crates/skyline/src/skycube.rs crates/skyline/src/sorted.rs crates/skyline/src/subspace.rs crates/skyline/src/proptests.rs

/root/repo/target/debug/deps/libskypeer_skyline-ca5188655a4c75af.rmeta: crates/skyline/src/lib.rs crates/skyline/src/bbs.rs crates/skyline/src/bnl.rs crates/skyline/src/brute.rs crates/skyline/src/constrained.rs crates/skyline/src/dnc.rs crates/skyline/src/dominance.rs crates/skyline/src/estimate.rs crates/skyline/src/extended.rs crates/skyline/src/mapping.rs crates/skyline/src/merge.rs crates/skyline/src/point.rs crates/skyline/src/progressive.rs crates/skyline/src/sfs.rs crates/skyline/src/skyband.rs crates/skyline/src/skycube.rs crates/skyline/src/sorted.rs crates/skyline/src/subspace.rs crates/skyline/src/proptests.rs

crates/skyline/src/lib.rs:
crates/skyline/src/bbs.rs:
crates/skyline/src/bnl.rs:
crates/skyline/src/brute.rs:
crates/skyline/src/constrained.rs:
crates/skyline/src/dnc.rs:
crates/skyline/src/dominance.rs:
crates/skyline/src/estimate.rs:
crates/skyline/src/extended.rs:
crates/skyline/src/mapping.rs:
crates/skyline/src/merge.rs:
crates/skyline/src/point.rs:
crates/skyline/src/progressive.rs:
crates/skyline/src/sfs.rs:
crates/skyline/src/skyband.rs:
crates/skyline/src/skycube.rs:
crates/skyline/src/sorted.rs:
crates/skyline/src/subspace.rs:
crates/skyline/src/proptests.rs:
