/root/repo/target/debug/deps/skypeer-353ba45666f8052b.d: src/lib.rs

/root/repo/target/debug/deps/libskypeer-353ba45666f8052b.rmeta: src/lib.rs

src/lib.rs:
