/root/repo/target/debug/deps/crossbeam-12f64e4d5535306a.d: .devstubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-12f64e4d5535306a.rmeta: .devstubs/crossbeam/src/lib.rs

.devstubs/crossbeam/src/lib.rs:
