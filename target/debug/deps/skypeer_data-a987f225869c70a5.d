/root/repo/target/debug/deps/skypeer_data-a987f225869c70a5.d: crates/data/src/lib.rs crates/data/src/csv.rs crates/data/src/generate.rs crates/data/src/partition.rs crates/data/src/stats.rs crates/data/src/workload.rs

/root/repo/target/debug/deps/libskypeer_data-a987f225869c70a5.rmeta: crates/data/src/lib.rs crates/data/src/csv.rs crates/data/src/generate.rs crates/data/src/partition.rs crates/data/src/stats.rs crates/data/src/workload.rs

crates/data/src/lib.rs:
crates/data/src/csv.rs:
crates/data/src/generate.rs:
crates/data/src/partition.rs:
crates/data/src/stats.rs:
crates/data/src/workload.rs:
