/root/repo/target/debug/deps/skypeer_cli-436f350354f0cf12.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libskypeer_cli-436f350354f0cf12.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
