/root/repo/target/debug/deps/skypeer_netsim-4218bebfadb50bd4.d: crates/netsim/src/lib.rs crates/netsim/src/cost.rs crates/netsim/src/des.rs crates/netsim/src/live.rs crates/netsim/src/topology.rs crates/netsim/src/proptests.rs

/root/repo/target/debug/deps/libskypeer_netsim-4218bebfadb50bd4.rmeta: crates/netsim/src/lib.rs crates/netsim/src/cost.rs crates/netsim/src/des.rs crates/netsim/src/live.rs crates/netsim/src/topology.rs crates/netsim/src/proptests.rs

crates/netsim/src/lib.rs:
crates/netsim/src/cost.rs:
crates/netsim/src/des.rs:
crates/netsim/src/live.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/proptests.rs:
