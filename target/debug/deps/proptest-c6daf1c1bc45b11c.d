/root/repo/target/debug/deps/proptest-c6daf1c1bc45b11c.d: .devstubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-c6daf1c1bc45b11c.rmeta: .devstubs/proptest/src/lib.rs

.devstubs/proptest/src/lib.rs:
