/root/repo/target/debug/deps/skypeer_obs-4f1c60894564ca34.d: crates/obs/src/lib.rs crates/obs/src/critical.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/metrics.rs crates/obs/src/tracer.rs crates/obs/src/json.rs

/root/repo/target/debug/deps/skypeer_obs-4f1c60894564ca34: crates/obs/src/lib.rs crates/obs/src/critical.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/metrics.rs crates/obs/src/tracer.rs crates/obs/src/json.rs

crates/obs/src/lib.rs:
crates/obs/src/critical.rs:
crates/obs/src/event.rs:
crates/obs/src/export.rs:
crates/obs/src/metrics.rs:
crates/obs/src/tracer.rs:
crates/obs/src/json.rs:
