/root/repo/target/debug/deps/serde_json-fb84951fd1467cd8.d: .devstubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-fb84951fd1467cd8.rmeta: .devstubs/serde_json/src/lib.rs

.devstubs/serde_json/src/lib.rs:
