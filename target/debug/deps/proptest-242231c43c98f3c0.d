/root/repo/target/debug/deps/proptest-242231c43c98f3c0.d: .devstubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-242231c43c98f3c0.rmeta: .devstubs/proptest/src/lib.rs

.devstubs/proptest/src/lib.rs:
