/root/repo/target/debug/deps/skypeer-f480602d509cc882.d: src/lib.rs

/root/repo/target/debug/deps/libskypeer-f480602d509cc882.rmeta: src/lib.rs

src/lib.rs:
