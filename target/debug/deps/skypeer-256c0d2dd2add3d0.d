/root/repo/target/debug/deps/skypeer-256c0d2dd2add3d0.d: src/lib.rs

/root/repo/target/debug/deps/libskypeer-256c0d2dd2add3d0.rmeta: src/lib.rs

src/lib.rs:
