/root/repo/target/debug/deps/skypeer_bench-52e5341784259379.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/plot.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libskypeer_bench-52e5341784259379.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/plot.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/plot.rs:
crates/bench/src/table.rs:
