/root/repo/target/debug/deps/skypeer_bench-a699c7a7849168ab.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/plot.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libskypeer_bench-a699c7a7849168ab.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/plot.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/plot.rs:
crates/bench/src/table.rs:
