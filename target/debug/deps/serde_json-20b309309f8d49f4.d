/root/repo/target/debug/deps/serde_json-20b309309f8d49f4.d: .devstubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-20b309309f8d49f4.rmeta: .devstubs/serde_json/src/lib.rs

.devstubs/serde_json/src/lib.rs:
