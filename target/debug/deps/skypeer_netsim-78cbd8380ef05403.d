/root/repo/target/debug/deps/skypeer_netsim-78cbd8380ef05403.d: crates/netsim/src/lib.rs crates/netsim/src/cost.rs crates/netsim/src/des.rs crates/netsim/src/live.rs crates/netsim/src/topology.rs

/root/repo/target/debug/deps/libskypeer_netsim-78cbd8380ef05403.rmeta: crates/netsim/src/lib.rs crates/netsim/src/cost.rs crates/netsim/src/des.rs crates/netsim/src/live.rs crates/netsim/src/topology.rs

crates/netsim/src/lib.rs:
crates/netsim/src/cost.rs:
crates/netsim/src/des.rs:
crates/netsim/src/live.rs:
crates/netsim/src/topology.rs:
