/root/repo/target/debug/deps/cli-b9c4e30928392caf.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/libcli-b9c4e30928392caf.rmeta: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_skypeer-cli=placeholder:skypeer-cli
