/root/repo/target/debug/deps/figure_shapes-da0a8c55f7746e92.d: tests/figure_shapes.rs

/root/repo/target/debug/deps/libfigure_shapes-da0a8c55f7746e92.rmeta: tests/figure_shapes.rs

tests/figure_shapes.rs:
