/root/repo/target/debug/deps/rand_distr-9d9b034638d0bde5.d: .devstubs/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-9d9b034638d0bde5.rmeta: .devstubs/rand_distr/src/lib.rs

.devstubs/rand_distr/src/lib.rs:
