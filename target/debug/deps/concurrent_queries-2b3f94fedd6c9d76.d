/root/repo/target/debug/deps/concurrent_queries-2b3f94fedd6c9d76.d: tests/concurrent_queries.rs

/root/repo/target/debug/deps/libconcurrent_queries-2b3f94fedd6c9d76.rmeta: tests/concurrent_queries.rs

tests/concurrent_queries.rs:
