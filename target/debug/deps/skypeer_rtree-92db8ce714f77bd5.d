/root/repo/target/debug/deps/skypeer_rtree-92db8ce714f77bd5.d: crates/rtree/src/lib.rs crates/rtree/src/rect.rs crates/rtree/src/tree.rs

/root/repo/target/debug/deps/libskypeer_rtree-92db8ce714f77bd5.rmeta: crates/rtree/src/lib.rs crates/rtree/src/rect.rs crates/rtree/src/tree.rs

crates/rtree/src/lib.rs:
crates/rtree/src/rect.rs:
crates/rtree/src/tree.rs:
