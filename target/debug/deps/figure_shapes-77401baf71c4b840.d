/root/repo/target/debug/deps/figure_shapes-77401baf71c4b840.d: tests/figure_shapes.rs

/root/repo/target/debug/deps/libfigure_shapes-77401baf71c4b840.rmeta: tests/figure_shapes.rs

tests/figure_shapes.rs:
