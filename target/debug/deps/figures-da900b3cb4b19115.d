/root/repo/target/debug/deps/figures-da900b3cb4b19115.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/libfigures-da900b3cb4b19115.rmeta: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
