/root/repo/target/debug/deps/system_stress-601a1761885b033c.d: tests/system_stress.rs

/root/repo/target/debug/deps/libsystem_stress-601a1761885b033c.rmeta: tests/system_stress.rs

tests/system_stress.rs:
