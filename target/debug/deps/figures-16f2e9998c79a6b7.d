/root/repo/target/debug/deps/figures-16f2e9998c79a6b7.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/libfigures-16f2e9998c79a6b7.rmeta: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
