/root/repo/target/debug/deps/fault_tolerance-1d1218dce6a9cb16.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/libfault_tolerance-1d1218dce6a9cb16.rmeta: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
