/root/repo/target/debug/deps/serde-a513a3baf01dfa72.d: .devstubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-a513a3baf01dfa72.rmeta: .devstubs/serde/src/lib.rs

.devstubs/serde/src/lib.rs:
