/root/repo/target/debug/deps/figures-478b3a5433db0979.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/libfigures-478b3a5433db0979.rmeta: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
