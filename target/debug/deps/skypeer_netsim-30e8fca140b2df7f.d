/root/repo/target/debug/deps/skypeer_netsim-30e8fca140b2df7f.d: crates/netsim/src/lib.rs crates/netsim/src/cost.rs crates/netsim/src/des.rs crates/netsim/src/live.rs crates/netsim/src/topology.rs crates/netsim/src/proptests.rs

/root/repo/target/debug/deps/libskypeer_netsim-30e8fca140b2df7f.rmeta: crates/netsim/src/lib.rs crates/netsim/src/cost.rs crates/netsim/src/des.rs crates/netsim/src/live.rs crates/netsim/src/topology.rs crates/netsim/src/proptests.rs

crates/netsim/src/lib.rs:
crates/netsim/src/cost.rs:
crates/netsim/src/des.rs:
crates/netsim/src/live.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/proptests.rs:
