/root/repo/target/debug/deps/skypeer-ede11289cb08f2ff.d: src/lib.rs

/root/repo/target/debug/deps/libskypeer-ede11289cb08f2ff.rmeta: src/lib.rs

src/lib.rs:
