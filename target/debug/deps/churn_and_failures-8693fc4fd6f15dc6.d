/root/repo/target/debug/deps/churn_and_failures-8693fc4fd6f15dc6.d: tests/churn_and_failures.rs

/root/repo/target/debug/deps/libchurn_and_failures-8693fc4fd6f15dc6.rmeta: tests/churn_and_failures.rs

tests/churn_and_failures.rs:
