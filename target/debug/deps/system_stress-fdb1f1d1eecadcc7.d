/root/repo/target/debug/deps/system_stress-fdb1f1d1eecadcc7.d: tests/system_stress.rs

/root/repo/target/debug/deps/libsystem_stress-fdb1f1d1eecadcc7.rmeta: tests/system_stress.rs

tests/system_stress.rs:
