/root/repo/target/debug/deps/serde-bd1c3b8ee42e020a.d: .devstubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-bd1c3b8ee42e020a.rmeta: .devstubs/serde/src/lib.rs

.devstubs/serde/src/lib.rs:
