/root/repo/target/debug/deps/criterion-b4cbbf2017f31d9b.d: .devstubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-b4cbbf2017f31d9b.rmeta: .devstubs/criterion/src/lib.rs

.devstubs/criterion/src/lib.rs:
