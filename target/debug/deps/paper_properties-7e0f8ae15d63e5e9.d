/root/repo/target/debug/deps/paper_properties-7e0f8ae15d63e5e9.d: tests/paper_properties.rs

/root/repo/target/debug/deps/libpaper_properties-7e0f8ae15d63e5e9.rmeta: tests/paper_properties.rs

tests/paper_properties.rs:
