/root/repo/target/debug/deps/crossbeam-8d2b7230b1bcacfe.d: .devstubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-8d2b7230b1bcacfe.rmeta: .devstubs/crossbeam/src/lib.rs

.devstubs/crossbeam/src/lib.rs:
