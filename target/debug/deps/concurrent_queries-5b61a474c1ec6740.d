/root/repo/target/debug/deps/concurrent_queries-5b61a474c1ec6740.d: tests/concurrent_queries.rs

/root/repo/target/debug/deps/libconcurrent_queries-5b61a474c1ec6740.rmeta: tests/concurrent_queries.rs

tests/concurrent_queries.rs:
