/root/repo/target/debug/deps/skypeer_core-99ca6cc70137447f.d: crates/core/src/lib.rs crates/core/src/churn.rs crates/core/src/engine.rs crates/core/src/live.rs crates/core/src/msg.rs crates/core/src/node.rs crates/core/src/planner.rs crates/core/src/preprocess.rs crates/core/src/variants.rs crates/core/src/verify.rs

/root/repo/target/debug/deps/libskypeer_core-99ca6cc70137447f.rmeta: crates/core/src/lib.rs crates/core/src/churn.rs crates/core/src/engine.rs crates/core/src/live.rs crates/core/src/msg.rs crates/core/src/node.rs crates/core/src/planner.rs crates/core/src/preprocess.rs crates/core/src/variants.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/churn.rs:
crates/core/src/engine.rs:
crates/core/src/live.rs:
crates/core/src/msg.rs:
crates/core/src/node.rs:
crates/core/src/planner.rs:
crates/core/src/preprocess.rs:
crates/core/src/variants.rs:
crates/core/src/verify.rs:
