/root/repo/target/debug/deps/skypeer_cli-8abbf02bc39e7b43.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libskypeer_cli-8abbf02bc39e7b43.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
