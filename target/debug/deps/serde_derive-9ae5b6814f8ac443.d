/root/repo/target/debug/deps/serde_derive-9ae5b6814f8ac443.d: .devstubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-9ae5b6814f8ac443.so: .devstubs/serde_derive/src/lib.rs

.devstubs/serde_derive/src/lib.rs:
