/root/repo/target/debug/deps/end_to_end-60e9175caff8ef13.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-60e9175caff8ef13.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
