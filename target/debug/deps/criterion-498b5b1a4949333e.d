/root/repo/target/debug/deps/criterion-498b5b1a4949333e.d: .devstubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-498b5b1a4949333e.rmeta: .devstubs/criterion/src/lib.rs

.devstubs/criterion/src/lib.rs:
