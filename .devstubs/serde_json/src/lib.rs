//! Offline stub of `serde_json`: an owned `Value` tree, the `json!`
//! macro (values must be Rust expressions or nested `json!` calls), a
//! serializer with `serde_json`-compatible formatting (objects sorted by
//! key, as with the real crate's default `BTreeMap` backend), and a
//! recursive-descent parser for `from_str`.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number: integers are kept exact, everything else is `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Anything with a fractional part or exponent.
    Float(f64),
}

impl Number {
    /// Lossy conversion to `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }
}

/// An owned JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (see [`Number`]).
    Number(Number),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// Key–value map, sorted by key.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }
    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v),
            _ => None,
        }
    }
    /// The string slice if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
    /// The map if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v as i64))
                }
            }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value { Value::from(*v) }
        }
    )*};
}
value_from_int!(i8, i16, i32, i64, isize);

macro_rules! value_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::PosInt(v as u64)) }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value { Value::from(*v) }
        }
    )*};
}
value_from_uint!(u8, u16, u32, u64, usize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}
impl From<&f64> for Value {
    fn from(v: &f64) -> Value {
        Value::from(*v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::Float(f64::from(v)))
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}
impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}
impl<T> From<Vec<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Value::from).collect())
    }
}
impl<T> From<&Vec<T>> for Value
where
    T: Clone,
    Value: From<T>,
{
    fn from(v: &Vec<T>) -> Value {
        Value::Array(v.iter().cloned().map(Value::from).collect())
    }
}
impl<T> From<&[T]> for Value
where
    T: Clone,
    Value: From<T>,
{
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Value::from).collect())
    }
}

/// Conversion used by `json!` values: implemented on references so the
/// macro never moves out of borrowed fields (expressions like
/// `fig.title` with `fig: &FigureData` work as they do with the real
/// crate's serializer-based macro).
pub trait ToJson {
    /// Build an owned [`Value`] from a borrowed value.
    fn to_json(&self) -> Value;
}

/// Entry point the `json!` macro expands to.
pub fn to_value<T: ToJson + ?Sized>(v: &T) -> Value {
    v.to_json()
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}
impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}
macro_rules! to_json_via_from {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value { Value::from(*self) }
        }
    )*};
}
to_json_via_from!(bool, f32, f64, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}
impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

/// Build a [`Value`] literally: JSON object/array literals, `null`, and
/// Rust expressions as leaf values (evaluated by reference).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __m = std::collections::BTreeMap::<String, $crate::Value>::new();
        $crate::__json_object!(__m $($body)*);
        $crate::Value::Object(__m)
    }};
    ([ $($body:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut __a = Vec::<$crate::Value>::new();
        $crate::__json_array!(__a $($body)*);
        $crate::Value::Array(__a)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Object-body muncher for [`json!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_object {
    ($m:ident) => {};
    ($m:ident $key:literal : null $(, $($rest:tt)*)?) => {
        $m.insert($key.to_string(), $crate::Value::Null);
        $( $crate::__json_object!($m $($rest)*); )?
    };
    ($m:ident $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $m.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $( $crate::__json_object!($m $($rest)*); )?
    };
    ($m:ident $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $m.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $( $crate::__json_object!($m $($rest)*); )?
    };
    ($m:ident $key:literal : $value:expr $(, $($rest:tt)*)?) => {
        $m.insert($key.to_string(), $crate::to_value(&$value));
        $( $crate::__json_object!($m $($rest)*); )?
    };
}

/// Array-body muncher for [`json!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_array {
    ($a:ident) => {};
    ($a:ident null $(, $($rest:tt)*)?) => {
        $a.push($crate::Value::Null);
        $( $crate::__json_array!($a $($rest)*); )?
    };
    ($a:ident { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $a.push($crate::json!({ $($inner)* }));
        $( $crate::__json_array!($a $($rest)*); )?
    };
    ($a:ident [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $a.push($crate::json!([ $($inner)* ]));
        $( $crate::__json_array!($a $($rest)*); )?
    };
    ($a:ident $value:expr $(, $($rest:tt)*)?) => {
        $a.push($crate::to_value(&$value));
        $( $crate::__json_array!($a $($rest)*); )?
    };
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) => {
            if v.is_finite() {
                // {:?} gives the shortest representation that round-trips,
                // with a trailing ".0" on integral floats — same shape as
                // the real serde_json.
                let s = format!("{v:?}");
                out.push_str(&s);
            } else {
                // Real serde_json rejects non-finite numbers; emit null.
                out.push_str("null");
            }
        }
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    const STEP: &str = "  ";
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

/// Serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}
impl std::error::Error for Error {}

/// Compact one-line JSON.
pub fn to_string(v: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&mut out, v);
    Ok(out)
}

/// Two-space-indented JSON, same layout as the real `serde_json`.
pub fn to_string_pretty(v: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, v, 0);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, Error> {
        Err(Error { msg: format!("{msg} at byte {}", self.pos) })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            self.err(&format!("expected '{kw}'"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                    .map_err(|_| Error {
                                        msg: "bad \\u escape".to_string(),
                                    })?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error { msg: "bad \\u escape".to_string() })?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: copy the full sequence.
                    let start = self.pos - 1;
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    if start + width > self.bytes.len() {
                        return self.err("truncated UTF-8");
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + width])
                        .map_err(|_| Error { msg: "invalid UTF-8".to_string() })?;
                    out.push_str(s);
                    self.pos = start + width;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error { msg: "invalid number".to_string() })?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(v)));
            }
        }
        match text.parse::<f64>() {
            Ok(v) => Ok(Value::Number(Number::Float(v))),
            Err(_) => self.err("invalid number"),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.parse_value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parse a JSON document into a [`Value`].
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_and_roundtrip() {
        let doc = json!({
            "name": "fig3a",
            "values": vec![1.5f64, 2.0, 3.25],
            "count": 3u64,
            "nested": json!({"ok": true}),
        });
        let pretty = to_string_pretty(&doc).unwrap();
        let back = from_str(&pretty).unwrap();
        assert_eq!(doc, back);
        assert_eq!(back.get("count").and_then(Value::as_u64), Some(3));
        assert_eq!(back.get("name").and_then(Value::as_str), Some("fig3a"));
        assert_eq!(
            back.get("nested").and_then(|n| n.get("ok")),
            Some(&Value::Bool(true))
        );
    }

    #[test]
    fn numbers_keep_integers_exact() {
        let v = from_str("[18446744073709551615, -3, 1.5, 2e3]").unwrap();
        let a = v.as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(u64::MAX));
        assert_eq!(a[1], Value::Number(Number::NegInt(-3)));
        assert_eq!(a[2].as_f64(), Some(1.5));
        assert_eq!(a[3].as_f64(), Some(2000.0));
    }

    #[test]
    fn strings_escape_and_parse() {
        let v = Value::String("a\"b\\c\nd\u{1}é".to_string());
        let s = to_string(&v).unwrap();
        assert_eq!(from_str(&s).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{oops}").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
    }
}
