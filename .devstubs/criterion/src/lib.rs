//! Offline stub for the `criterion` benchmark harness (see
//! `.devstubs/README.md`). Implements exactly the surface this workspace
//! uses: `Criterion::default().sample_size(n)`, `benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId::new`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!`
//! macros (both forms). Measurement is a simple mean over `sample_size`
//! timed iterations after one warm-up — no statistics, no reports, just
//! a line per benchmark on stdout so `cargo bench` stays usable offline.

use std::fmt::Display;
use std::time::Instant;

/// Top-level harness state: only the sample size is configurable.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark averages over.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _parent: self, name: name.into(), sample_size }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, |b| f(b));
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark identified by `id` within this group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(&label, self.sample_size, |b| f(b));
        self
    }

    /// Runs a parameterised benchmark; the input is passed by reference.
    pub fn bench_with_input<I: IntoBenchmarkId, P: ?Sized, F: FnMut(&mut Bencher, &P)>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// A `function-name/parameter` benchmark identifier.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId { label: format!("{name}/{param}") }
    }
}

/// Conversion into a [`BenchmarkId`], so bare strings work as ids.
pub trait IntoBenchmarkId {
    /// Converts `self` into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Passed to the benchmark closure; `iter` times the workload.
pub struct Bencher {
    total_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Runs `f` once untimed (warm-up), then `iters` more times timed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.total_ns = start.elapsed().as_nanos();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { total_ns: 0, iters: sample_size as u64 };
    f(&mut b);
    let mean = if b.iters == 0 { 0 } else { b.total_ns / u128::from(b.iters) };
    println!("bench {label}: mean {mean} ns ({} iters)", b.iters);
}

/// Declares a group runner function, in either the list or the
/// `name =` / `config =` / `targets =` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
