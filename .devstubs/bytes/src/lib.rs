//! Offline stub of the `bytes` crate: just enough of `Buf`, `BufMut`,
//! and `BytesMut` for big-endian wire encoding of flat messages.

/// Read side of a byte cursor. All multi-byte reads are big-endian,
/// matching the real crate's `get_*` defaults.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Read one byte. Panics if empty.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
    /// Read a big-endian u32. Panics on underflow.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }
    /// Read a big-endian u64. Panics on underflow.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }
    /// Read a big-endian f64. Panics on underflow.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write side: append-only big-endian encoding.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian f64.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// Growable byte buffer, a thin wrapper over `Vec<u8>`.
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }
    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { inner: Vec::with_capacity(cap) }
    }
    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }
    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
    /// Copy out as a plain vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(u64::MAX - 3);
        b.put_f64(-1.5);
        let v = b.to_vec();
        let mut r: &[u8] = &v;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), u64::MAX - 3);
        assert_eq!(r.get_f64(), -1.5);
        assert_eq!(r.remaining(), 0);
    }
}
