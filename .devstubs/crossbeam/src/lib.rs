//! Offline stub of `crossbeam`: an unbounded MPMC channel built on
//! `Mutex` + `Condvar`. `Sender` and `Receiver` are `Clone + Send + Sync`
//! like the real thing; disconnect semantics match (send fails once all
//! receivers are gone, recv fails once the queue is empty and all
//! senders are gone).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// The message could not be sent because all receivers disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// All senders disconnected and the queue is drained.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Outcome of a `recv_timeout` that did not yield a message.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// The deadline passed with the queue still empty.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only if every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().expect("channel poisoned");
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            st.queue.push_back(msg);
            drop(st);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().expect("channel poisoned").senders += 1;
            Sender { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().expect("channel poisoned");
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.ready.wait(st).expect("channel poisoned");
            }
        }

        /// Block up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.state.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _res) = self
                    .chan
                    .ready
                    .wait_timeout(st, deadline - now)
                    .expect("channel poisoned");
                st = g;
            }
        }

        /// Non-blocking pop, used by drain loops in tests.
        pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
            let mut st = self.chan.state.lock().expect("channel poisoned");
            if let Some(msg) = st.queue.pop_front() {
                Ok(msg)
            } else if st.senders == 0 {
                Err(RecvTimeoutError::Disconnected)
            } else {
                Err(RecvTimeoutError::Timeout)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().expect("channel poisoned").receivers += 1;
            Receiver { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.state.lock().expect("channel poisoned").receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let t = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.recv().unwrap());
            }
            t.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn timeout_and_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_to_dropped_receiver_fails() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }
    }
}
