//! Offline stub of `rand_distr`: the `Distribution` trait and a
//! Box–Muller `Normal`.

use rand::{Rng, RngCore};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore>(&self, rng: &mut R) -> T;
}

/// Errors constructing a distribution (non-finite or negative scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("invalid distribution parameter")
    }
}
impl std::error::Error for Error {}

/// Normal (Gaussian) distribution, sampled via Box–Muller.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// `N(mean, std_dev²)`; `std_dev` must be finite and non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !std_dev.is_finite() || std_dev < 0.0 || !mean.is_finite() {
            return Err(Error);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
        // Box–Muller; reject u1 == 0 so the log is finite.
        let mut u1: f64 = rng.gen();
        while u1 <= f64::MIN_POSITIVE {
            u1 = rng.gen();
        }
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = Normal::new(2.0, 0.5).expect("valid");
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / samples.len() as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }
}
