//! Offline stub of `parking_lot`: `Mutex`/`RwLock` wrappers over `std`
//! that expose the poison-free `lock()`/`read()`/`write()` API.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Poison-free mutex with the `parking_lot` calling convention.
#[derive(Default, Debug)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }
    /// Acquire the lock, panicking on poison (parking_lot cannot poison).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned")
    }
    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned")
    }
}

/// Poison-free reader-writer lock with the `parking_lot` convention.
#[derive(Default, Debug)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
    /// Shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().expect("rwlock poisoned")
    }
    /// Exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().expect("rwlock poisoned")
    }
}
