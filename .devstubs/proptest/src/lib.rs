//! Offline stub of `proptest`: a miniature property-testing runner.
//!
//! Differences from the real crate, by design:
//! - generation is plain uniform sampling (no bias toward edge cases),
//! - failures are **not shrunk** — the panic message carries the case
//!   number, and runs are deterministic per (test name, case), so a
//!   failure reproduces exactly,
//! - only the combinators this workspace uses exist.

/// Deterministic RNG used by the runner (SplitMix64).
pub mod test_runner {
    /// Per-case RNG: seeded from the test's module path and case index.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derive the RNG for one test case.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform `usize` in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }
    }
}

/// Strategies: how to generate values.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keep only values satisfying `pred` (rejection sampling, with
        /// a retry cap to guarantee termination).
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, whence, pred }
        }
    }

    /// Boxed, object-safe strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Box a strategy (used by `prop_oneof!`).
    pub fn boxed<S>(s: S) -> BoxedStrategy<S::Value>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Uniform choice among boxed alternatives.
    pub struct OneOf<V> {
        alternatives: Vec<BoxedStrategy<V>>,
    }

    /// Build a [`OneOf`]; panics on an empty list.
    pub fn one_of<V>(alternatives: Vec<BoxedStrategy<V>>) -> OneOf<V> {
        assert!(!alternatives.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { alternatives }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.alternatives.len());
            self.alternatives[i].generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter({}) rejected 1000 consecutive samples", self.whence);
        }
    }

    /// Always yields a clone of the given value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = ((hi as u128) - (lo as u128) + 1) as u64;
                    if span == 0 {
                        // Full-width range.
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// `any::<T>()` support: the full uniform domain of `T`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Uniform values over all of `T` (for the types the repo fuzzes).
    pub fn any<T>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! any_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::bool::ANY`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::{Range, RangeInclusive};

        /// Inclusive-lo/exclusive-hi size bounds for generated vectors.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }
        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec size range");
                SizeRange { lo: r.start, hi: r.end }
            }
        }
        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                SizeRange { lo: *r.start(), hi: *r.end() + 1 }
            }
        }

        /// Strategy for `Vec<S::Value>` with length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.size.hi - self.size.lo;
                let len = self.size.lo + if span > 1 { rng.below(span) } else { 0 };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Fair coin strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct BoolAny;

        /// `prop::bool::ANY`.
        pub const ANY: BoolAny = BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Assert inside a property; panics (no shrinking) with the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![ $({
            // Callers often parenthesize range arms (`(0.0..1.0)`); keep
            // rustc from flagging those as unnecessary parens.
            #[allow(unused_parens)]
            let __arm = $arm;
            $crate::strategy::boxed(__arm)
        }),+ ])
    };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { [$crate::ProptestConfig::default()] $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    u64::from(__case),
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let __run = || $body;
                __run();
            }
        }
        $crate::__proptest_items! { [$cfg] $($rest)* }
    };
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens(max: u32) -> impl Strategy<Value = u32> {
        (0..max / 2).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..=4, f in -1.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((-1.5..2.5).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in prop::collection::vec((0usize..5, prop::bool::ANY), 2..9),
            w in prop::collection::vec(any::<u8>(), 3),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert_eq!(w.len(), 3);
            for (n, _b) in v {
                prop_assert!(n < 5);
            }
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![(0.0f64..1.0), Just(f64::INFINITY)]) {
            prop_assert!(x.is_infinite() || (0.0..1.0).contains(&x));
        }

        #[test]
        fn mapped_strategy(e in evens(100)) {
            prop_assert_eq!(e % 2, 0);
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::prop::collection::vec(0u64..1000, 0..20);
        let a: Vec<Vec<u64>> = (0..10)
            .map(|c| strat.generate(&mut TestRng::for_case("t", c)))
            .collect();
        let b: Vec<Vec<u64>> = (0..10)
            .map(|c| strat.generate(&mut TestRng::for_case("t", c)))
            .collect();
        assert_eq!(a, b);
    }
}
