//! Offline stub of `serde`: marker traits plus re-exported no-op
//! derives, so `#[derive(Serialize, Deserialize)]` compiles unchanged.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
