//! Offline stub of `serde_derive`. The derives are accepted and expand
//! to nothing: no code in this workspace serializes the derived types
//! through serde's data model (JSON goes through the `serde_json` stub's
//! `Value` or `skypeer-obs`'s deterministic writer).

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
