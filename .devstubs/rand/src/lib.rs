//! Offline stub of the `rand` crate. `StdRng` is xoshiro256++ seeded via
//! SplitMix64 — deterministic for a fixed seed (but *not* bit-compatible
//! with the real `rand`; any goldens derived from generated data belong
//! to this stub's stream).

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sample a value of `Self` from uniform bits ("Standard" distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// A range that can be sampled uniformly. Implemented for `Range` and
/// `RangeInclusive` over the integer types and `Range<f64>`.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span as u64) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing random-value API, auto-implemented for every
/// `RngCore`.
pub trait Rng: RngCore {
    /// Uniform value of type `T` (e.g. `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Deterministically derive a generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The stub's standard RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(1..=4usize);
            assert!((1..=4).contains(&j));
            let x = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should not shuffle to identity");
    }
}
