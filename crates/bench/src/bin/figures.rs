//! Regenerates the data series of every figure in the SKYPEER paper.
//!
//! ```text
//! figures [--scale tiny|reduced|paper] [--queries N] [--seed S]
//!         [--json PATH] [fig3a fig3b ...]
//! ```
//!
//! With no figure ids, every figure is regenerated in paper order.
//! `--scale reduced` (the default) divides peer counts by 10 and runs 20
//! queries per configuration, preserving curve shapes while finishing in
//! minutes; `--scale paper` reproduces the full Section 6 setup (tens of
//! millions of points — expect a long run and tens of GB of RAM headroom).

use skypeer_bench::experiments::{all_figures, Scale};
use skypeer_bench::table;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::reduced();
    let mut wanted: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut plot = false;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_else(|| usage("missing value for --scale"));
                scale = match v.as_str() {
                    "tiny" => Scale::tiny(),
                    "reduced" => Scale::reduced(),
                    "paper" => Scale::paper(),
                    other => usage(&format!("unknown scale '{other}'")),
                };
            }
            "--queries" => {
                let v = it.next().unwrap_or_else(|| usage("missing value for --queries"));
                scale.queries = v.parse().unwrap_or_else(|_| usage("bad --queries value"));
            }
            "--seed" => {
                let v = it.next().unwrap_or_else(|| usage("missing value for --seed"));
                scale.seed = v.parse().unwrap_or_else(|_| usage("bad --seed value"));
            }
            "--json" => {
                json_path = Some(it.next().unwrap_or_else(|| usage("missing value for --json")));
            }
            "--plot" => plot = true,
            "--help" | "-h" => usage(""),
            other if other.starts_with('-') => usage(&format!("unknown flag '{other}'")),
            fig => wanted.push(fig.to_string()),
        }
    }

    let registry = all_figures();
    let selected: Vec<_> = if wanted.is_empty() {
        registry
    } else {
        let known: Vec<&str> = registry.iter().map(|(id, _)| *id).collect();
        for w in &wanted {
            if !known.contains(&w.as_str()) {
                usage(&format!("unknown figure '{w}' (known: {})", known.join(", ")));
            }
        }
        registry.into_iter().filter(|(id, _)| wanted.iter().any(|w| w == id)).collect()
    };

    eprintln!(
        "# SKYPEER figure regeneration: peer_divisor={} queries={} seed={}",
        scale.peer_divisor, scale.queries, scale.seed
    );
    let mut json_figs = Vec::new();
    for (id, runner) in selected {
        eprintln!("# running {id} ...");
        let started = std::time::Instant::now();
        let fig = runner(scale);
        println!("{}", table::render(&fig));
        if plot {
            println!("{}", skypeer_bench::plot::render(&fig, 12));
        }
        eprintln!("# {id} done in {:.1?}", started.elapsed());
        if json_path.is_some() {
            json_figs.push(fig_to_json(&fig));
        }
    }
    if let Some(path) = json_path {
        let doc = serde_json::json!({
            "scale": { "peer_divisor": scale.peer_divisor, "queries": scale.queries, "seed": scale.seed },
            "figures": json_figs,
        });
        let mut f = std::fs::File::create(&path).expect("create json output");
        writeln!(f, "{}", serde_json::to_string_pretty(&doc).expect("serialize"))
            .expect("write json output");
        eprintln!("# wrote {path}");
    }
}

fn fig_to_json(fig: &skypeer_bench::FigureData) -> serde_json::Value {
    serde_json::json!({
        "id": fig.id,
        "title": fig.title,
        "x_label": fig.x_label,
        "y_label": fig.y_label,
        "series": fig.series,
        "rows": fig.rows.iter().map(|(x, vals)| serde_json::json!({"x": x, "values": vals})).collect::<Vec<_>>(),
        "metrics": fig.metrics.iter().map(|(name, v)| serde_json::json!({"name": name, "value": v})).collect::<Vec<_>>(),
    })
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: figures [--scale tiny|reduced|paper] [--queries N] [--seed S] [--json PATH] [--plot] [fig-ids...]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
