//! `bench-regress` — run the pinned perf-regression subset, or compare
//! two `BENCH_regress.json` files.
//!
//! ```text
//! bench-regress                      # run, write BENCH_regress.json at the repo root
//! bench-regress --out FILE           # run, write FILE instead
//! bench-regress --compare BASE CUR   # exit 1 if a deterministic metric grew >15%
//! bench-regress --compare BASE CUR --threshold 0.20
//! bench-regress --compare BASE CUR --report-only   # never exit nonzero
//! bench-regress --compare BASE CUR --attribution-out FILE   # where the root-cause
//!                                                           # report lands on failure
//! ```
//!
//! The gate is hard by default: `sim_time_ns`, `total_bytes`,
//! `dominance_tests`, and `peak_queue_depth` are byte-deterministic for a
//! given toolchain, so growth beyond the threshold fails the exit code.
//! `wall_time_ms` is host-dependent and always advisory — printed, never
//! fatal.
//!
//! Run mode also writes a `*_digests.json` sibling next to the report
//! (per-figure trace digests). When a compare fails and digest siblings
//! exist for both paths, the gate emits an attribution report naming the
//! phase/node/link behind each regressed metric — the CI artifact to read
//! first when the gate goes red.

use skypeer_bench::regress::{
    compare, digests_from_json, digests_to_json, BenchReport, FigureDigest, HostFingerprint,
};
use skypeer_netsim::obs::diff::AttributionReport;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: bench-regress [--out FILE] | --compare BASELINE CURRENT [--threshold F] [--report-only] [--attribution-out FILE]");
        return Ok(ExitCode::SUCCESS);
    }
    if let Some(pos) = args.iter().position(|a| a == "--compare") {
        let baseline_path =
            args.get(pos + 1).ok_or("--compare needs BASELINE and CURRENT paths")?;
        let current_path = args.get(pos + 2).ok_or("--compare needs a CURRENT path")?;
        let threshold = match args.iter().position(|a| a == "--threshold") {
            Some(t) => args
                .get(t + 1)
                .ok_or("--threshold needs a value")?
                .parse::<f64>()
                .map_err(|e| format!("bad --threshold: {e}"))?,
            None => 0.15,
        };
        let report_only = args.iter().any(|a| a == "--report-only");
        let attribution_out = match args.iter().position(|a| a == "--attribution-out") {
            Some(p) => args.get(p + 1).ok_or("--attribution-out needs a path")?.clone(),
            None => "BENCH_attribution.txt".to_string(),
        };
        let baseline = load(baseline_path)?;
        let current = load(current_path)?;
        let cmp = compare(&baseline, &current, threshold);
        print!("{}", cmp.render(threshold));
        if cmp.regressions.is_empty() && cmp.improvements.is_empty() {
            println!("all {} shared entries within threshold", shared(&baseline, &current));
        }
        if cmp.is_regression() {
            attribute_regressions(baseline_path, current_path, &cmp, &attribution_out);
        }
        return Ok(if cmp.is_regression() && !report_only {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        });
    }

    // Run mode.
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(p) => args.get(p + 1).ok_or("--out needs a path")?.clone(),
        None => default_output_path(),
    };
    eprintln!(
        "running pinned regression subset (deterministic DES, 3 figures x 5 variants + cache)..."
    );
    let (entries, digests) = skypeer_bench::regress::run_pinned_full();
    let report = BenchReport {
        commit: current_commit(),
        date: utc_date(),
        host: Some(HostFingerprint::current()),
        entries,
    };
    std::fs::write(&out_path, report.to_json())
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    let digest_path = digests_path(&out_path);
    std::fs::write(&digest_path, digests_to_json(&report.commit, &digests))
        .map_err(|e| format!("cannot write {digest_path}: {e}"))?;
    println!("wrote {} entries to {out_path} (commit {})", report.entries.len(), report.commit);
    println!("wrote {} trace digests to {digest_path}", digests.len());
    // Profiled second pass: per-(figure, variant) CPU-share blocks as an
    // advisory sibling artifact. Separate from the gated run above so
    // profiling overhead can never leak into the gated metrics, and a
    // sibling file so BENCH_regress.json's byte format is untouched.
    let profile_path = cpu_profile_path(&out_path);
    let profile = skypeer_bench::regress::run_pinned_cpu_profile();
    std::fs::write(&profile_path, &profile)
        .map_err(|e| format!("cannot write {profile_path}: {e}"))?;
    println!("wrote per-phase CPU-share profile to {profile_path} (advisory)");
    // Third pass: per-figure anomaly check. Like the CPU profile this is
    // a sibling artifact so the gated report's bytes stay untouched; a
    // nonzero count is a heads-up, never a failure.
    let incidents_file = incidents_path(&out_path);
    let incidents = skypeer_bench::regress::run_pinned_incidents();
    std::fs::write(&incidents_file, &incidents)
        .map_err(|e| format!("cannot write {incidents_file}: {e}"))?;
    let flagged: usize = incidents.lines().filter(|l| l.starts_with("  ")).count();
    println!("wrote per-figure incident report to {incidents_file} ({flagged} flagged, advisory)");
    // Fourth pass: per-figure correctness audit (every query
    // shadow-verified against the raw-data oracle). Also a sibling
    // artifact: advisory here, but a nonzero violation count means a
    // pinned figure returned a wrong answer — read it first.
    let audit_file = audit_path(&out_path);
    let audit = skypeer_bench::regress::run_pinned_audit();
    std::fs::write(&audit_file, &audit).map_err(|e| format!("cannot write {audit_file}: {e}"))?;
    let violations: usize = audit
        .lines()
        .filter(|l| l.starts_with("figure "))
        .filter_map(|l| l.split_once(": ")?.1.split(' ').next()?.parse::<usize>().ok())
        .sum();
    println!("wrote per-figure audit report to {audit_file} ({violations} violation(s), advisory)");
    Ok(ExitCode::SUCCESS)
}

/// The digest sibling of a report path: `X.json` -> `X_digests.json`.
fn digests_path(report_path: &str) -> String {
    match report_path.strip_suffix(".json") {
        Some(stem) => format!("{stem}_digests.json"),
        None => format!("{report_path}_digests.json"),
    }
}

/// The CPU-profile sibling of a report path: `X.json` -> `X_cpu_profile.txt`.
fn cpu_profile_path(report_path: &str) -> String {
    match report_path.strip_suffix(".json") {
        Some(stem) => format!("{stem}_cpu_profile.txt"),
        None => format!("{report_path}_cpu_profile.txt"),
    }
}

/// The incident sibling of a report path: `X.json` -> `X_incidents.txt`.
fn incidents_path(report_path: &str) -> String {
    match report_path.strip_suffix(".json") {
        Some(stem) => format!("{stem}_incidents.txt"),
        None => format!("{report_path}_incidents.txt"),
    }
}

/// The audit sibling of a report path: `X.json` -> `X_audit.txt`.
fn audit_path(report_path: &str) -> String {
    match report_path.strip_suffix(".json") {
        Some(stem) => format!("{stem}_audit.txt"),
        None => format!("{report_path}_audit.txt"),
    }
}

fn load_digests(report_path: &str) -> Result<Vec<FigureDigest>, String> {
    let path = digests_path(report_path);
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    digests_from_json(&text).map_err(|e| format!("{path}: {e}"))
}

/// On gate failure, decompose each regressed figure/variant's deltas down
/// to phase/node/link using the digest sibling files. Best-effort: a
/// missing or stale digest file prints a note instead of masking the
/// (already-failing) gate with a second error.
fn attribute_regressions(
    baseline_path: &str,
    current_path: &str,
    cmp: &skypeer_bench::regress::Comparison,
    out_path: &str,
) {
    let (base_digests, cur_digests) =
        match (load_digests(baseline_path), load_digests(current_path)) {
            (Ok(b), Ok(c)) => (b, c),
            (b, c) => {
                for err in [b.err(), c.err()].into_iter().flatten() {
                    eprintln!("note: no attribution report: {err}");
                }
                return;
            }
        };
    // Regressed keys are `figure/variant/metric`; attribute each
    // figure/variant pair once.
    let mut pairs: Vec<(String, String)> = cmp
        .regressions
        .iter()
        .filter_map(|d| {
            let mut it = d.key.split('/');
            Some((it.next()?.to_string(), it.next()?.to_string()))
        })
        .collect();
    pairs.sort();
    pairs.dedup();
    let mut out = String::new();
    for (figure, variant) in &pairs {
        let find = |ds: &[FigureDigest]| {
            ds.iter()
                .find(|d| &d.figure == figure && &d.variant == variant)
                .map(|d| d.digest.clone())
        };
        match (find(&base_digests), find(&cur_digests)) {
            (Some(b), Some(c)) => {
                out.push_str(&format!("== {figure}/{variant} ==\n"));
                out.push_str(&AttributionReport::attribute(&b, &c).render());
                out.push('\n');
            }
            _ => out.push_str(&format!("== {figure}/{variant} ==\n  (no digest on one side)\n\n")),
        }
    }
    match std::fs::write(out_path, &out) {
        Ok(()) => {
            println!("attribution report for {} regressed figure(s): {out_path}", pairs.len())
        }
        Err(e) => eprintln!("note: cannot write attribution report {out_path}: {e}"),
    }
}

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    BenchReport::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn shared(a: &BenchReport, b: &BenchReport) -> usize {
    let keys: std::collections::BTreeSet<_> =
        a.entries.iter().map(|e| (&e.figure, &e.variant, &e.metric)).collect();
    b.entries.iter().filter(|e| keys.contains(&(&e.figure, &e.variant, &e.metric))).count()
}

/// `<repo root>/BENCH_regress.json`, resolved relative to this crate.
fn default_output_path() -> String {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    root.join("BENCH_regress.json").to_string_lossy().into_owned()
}

fn current_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// UTC date as `YYYY-MM-DD` from the system clock (civil-from-days, no
/// date-crate dependency).
fn utc_date() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    // Howard Hinnant's civil_from_days algorithm.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}
