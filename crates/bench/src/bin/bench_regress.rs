//! `bench-regress` — run the pinned perf-regression subset, or compare
//! two `BENCH_regress.json` files.
//!
//! ```text
//! bench-regress                      # run, write BENCH_regress.json at the repo root
//! bench-regress --out FILE           # run, write FILE instead
//! bench-regress --compare BASE CUR   # exit 1 if a deterministic metric grew >15%
//! bench-regress --compare BASE CUR --threshold 0.20
//! bench-regress --compare BASE CUR --report-only   # never exit nonzero
//! ```
//!
//! The gate is hard by default: `sim_time_ns`, `total_bytes`,
//! `dominance_tests`, and `peak_queue_depth` are byte-deterministic for a
//! given toolchain, so growth beyond the threshold fails the exit code.
//! `wall_time_ms` is host-dependent and always advisory — printed, never
//! fatal.

use skypeer_bench::regress::{compare, BenchReport};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: bench-regress [--out FILE] | --compare BASELINE CURRENT [--threshold F] [--report-only]");
        return Ok(ExitCode::SUCCESS);
    }
    if let Some(pos) = args.iter().position(|a| a == "--compare") {
        let baseline_path =
            args.get(pos + 1).ok_or("--compare needs BASELINE and CURRENT paths")?;
        let current_path = args.get(pos + 2).ok_or("--compare needs a CURRENT path")?;
        let threshold = match args.iter().position(|a| a == "--threshold") {
            Some(t) => args
                .get(t + 1)
                .ok_or("--threshold needs a value")?
                .parse::<f64>()
                .map_err(|e| format!("bad --threshold: {e}"))?,
            None => 0.15,
        };
        let report_only = args.iter().any(|a| a == "--report-only");
        let baseline = load(baseline_path)?;
        let current = load(current_path)?;
        let cmp = compare(&baseline, &current, threshold);
        print!("{}", cmp.render(threshold));
        if cmp.regressions.is_empty() && cmp.improvements.is_empty() {
            println!("all {} shared entries within threshold", shared(&baseline, &current));
        }
        return Ok(if cmp.is_regression() && !report_only {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        });
    }

    // Run mode.
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(p) => args.get(p + 1).ok_or("--out needs a path")?.clone(),
        None => default_output_path(),
    };
    eprintln!(
        "running pinned regression subset (deterministic DES, 3 figures x 5 variants + cache)..."
    );
    let entries = skypeer_bench::regress::run_pinned();
    let report = BenchReport { commit: current_commit(), date: utc_date(), entries };
    std::fs::write(&out_path, report.to_json())
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!("wrote {} entries to {out_path} (commit {})", report.entries.len(), report.commit);
    Ok(ExitCode::SUCCESS)
}

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    BenchReport::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn shared(a: &BenchReport, b: &BenchReport) -> usize {
    let keys: std::collections::BTreeSet<_> =
        a.entries.iter().map(|e| (&e.figure, &e.variant, &e.metric)).collect();
    b.entries.iter().filter(|e| keys.contains(&(&e.figure, &e.variant, &e.metric))).count()
}

/// `<repo root>/BENCH_regress.json`, resolved relative to this crate.
fn default_output_path() -> String {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    root.join("BENCH_regress.json").to_string_lossy().into_owned()
}

fn current_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// UTC date as `YYYY-MM-DD` from the system clock (civil-from-days, no
/// date-crate dependency).
fn utc_date() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    // Howard Hinnant's civil_from_days algorithm.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}
