//! `soak` — run a seeded query workload through the deterministic DES and
//! report tail-latency percentiles, SLO verdicts, and the worst-query
//! digest.
//!
//! ```text
//! soak                                  # default: 100 queries x 5 variants
//! soak --queries 500 --seed 11          # bigger seeded run
//! soak --variants ftpm,naive            # restrict variants
//! soak --k 3 | --k-min 2 --k-max 5 --k-theta 1.1
//! soak --initiator-theta 1.0            # hot-initiator skew
//! soak --slo-p99-ms 900 --gate          # exit 1 if any variant misses
//! soak --out SOAK_summary.json --jsonl rows.jsonl --prom soak.prom
//! ```
//!
//! The summary JSON is byte-deterministic for a given flag set (no wall
//! clocks, commits, or dates), so CI can archive and diff it.

use skypeer_bench::soak::{run_soak, SoakAudit, SoakPerturb, SoakSpec, TelemetrySpec};
use skypeer_core::{EngineConfig, SkypeerEngine, Variant};
use skypeer_data::{DatasetKind, DatasetSpec, InitiatorMix, KMix, MixedWorkloadSpec};
use skypeer_netsim::cost::CostModel;
use skypeer_netsim::des::LinkModel;
use skypeer_netsim::obs::SloSpec;
use skypeer_netsim::topology::TopologySpec;
use skypeer_skyline::DominanceIndex;
use std::io::Write;
use std::process::ExitCode;

const USAGE: &str = "usage: soak [--peers N] [--superpeers N] [--dim D] [--points P] \
[--queries Q] [--seed S] [--variants LIST|all] [--backend skypeer|sampling] \
[--k K | --k-min A --k-max B [--k-theta T]] \
[--initiator-theta T] [--top-k K] [--slo-p50-ms F] [--slo-p99-ms F] [--slo-p999-ms F] \
[--slo-pNN-ms F (any percentile, e.g. --slo-p95-ms)] \
[--slo-max-ms F] [--slo-p99-bytes N] [--cache] [--cache-bytes N] [--min-hit-rate F] \
[--out FILE] [--jsonl FILE] [--prom FILE] [--profile-out FILE] [--gate] [--quiet] \
[--telemetry] [--history-out FILE] [--fail-on-incident] \
[--perturb-link FROM:TO:LATENCY_NS[:NS_PER_BYTE]] [--perturb-after N] \
[--audit-sample R] [--audit-seed S] [--fail-on-violation] [--inject-drop-ext]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn flag(args: &[String], name: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == name) {
        Some(p) => {
            Ok(Some(args.get(p + 1).ok_or_else(|| format!("{name} needs a value"))?.clone()))
        }
        None => Ok(None),
    }
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flag(args, name)? {
        Some(v) => v.parse::<T>().map_err(|e| format!("bad {name}: {e}")),
        None => Ok(default),
    }
}

fn ms_to_ns(args: &[String], name: &str) -> Result<Option<u64>, String> {
    Ok(match flag(args, name)? {
        Some(v) => {
            let ms = v.parse::<f64>().map_err(|e| format!("bad {name}: {e}"))?;
            Some((ms * 1e6) as u64)
        }
        None => None,
    })
}

fn parse_variants(spec: &str) -> Result<Vec<Variant>, String> {
    if spec == "all" {
        return Ok(Variant::ALL.to_vec());
    }
    spec.split(',')
        .map(|v| match v.trim().to_ascii_lowercase().as_str() {
            "ftfm" => Ok(Variant::Ftfm),
            "ftpm" => Ok(Variant::Ftpm),
            "rtfm" => Ok(Variant::Rtfm),
            "rtpm" => Ok(Variant::Rtpm),
            "naive" => Ok(Variant::Naive),
            other => Err(format!("unknown variant '{other}'")),
        })
        .collect()
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    }

    let n_peers: usize = parse(args, "--peers", 80)?;
    let n_superpeers: usize = parse(args, "--superpeers", 8)?;
    let dim: usize = parse(args, "--dim", 6)?;
    let points: usize = parse(args, "--points", 60)?;
    let queries: usize = parse(args, "--queries", 100)?;
    let seed: u64 = parse(args, "--seed", 42)?;
    let tail_k: usize = parse(args, "--top-k", 8)?;
    let variants = parse_variants(&flag(args, "--variants")?.unwrap_or_else(|| "all".into()))?;

    let k_mix = match (flag(args, "--k-min")?, flag(args, "--k-max")?) {
        (Some(a), Some(b)) => KMix::Zipf {
            k_min: a.parse().map_err(|e| format!("bad --k-min: {e}"))?,
            k_max: b.parse().map_err(|e| format!("bad --k-max: {e}"))?,
            exponent: parse(args, "--k-theta", 1.0f64)?,
        },
        (None, None) => KMix::Fixed(parse(args, "--k", 3usize)?),
        _ => return Err("--k-min and --k-max must be given together".into()),
    };
    let initiator_mix = match flag(args, "--initiator-theta")? {
        Some(t) => InitiatorMix::Zipf {
            exponent: t.parse().map_err(|e| format!("bad --initiator-theta: {e}"))?,
        },
        None => InitiatorMix::Uniform,
    };

    // Any `--slo-p<digits>-ms` percentile is accepted; 50/99/999 map to
    // the pinned SloSpec fields, the rest become arbitrary-quantile
    // budgets checked via HdrHistogram::value_at_quantile.
    let mut latency_quantiles: Vec<(String, u64)> = Vec::new();
    for a in args {
        let Some(digits) = a.strip_prefix("--slo-p").and_then(|s| s.strip_suffix("-ms")) else {
            continue;
        };
        if matches!(digits, "50" | "99" | "999")
            || digits.is_empty()
            || !digits.bytes().all(|b| b.is_ascii_digit())
        {
            continue;
        }
        if skypeer_netsim::obs::quantile_from_digits(digits).is_none() {
            return Err(format!("bad {a}: '{digits}' is not a percentile in (0, 100)"));
        }
        if let Some(ns) = ms_to_ns(args, a)? {
            latency_quantiles.push((digits.to_string(), ns));
        }
    }
    let slo = SloSpec {
        p50_latency_ns: ms_to_ns(args, "--slo-p50-ms")?,
        p99_latency_ns: ms_to_ns(args, "--slo-p99-ms")?,
        p999_latency_ns: ms_to_ns(args, "--slo-p999-ms")?,
        max_latency_ns: ms_to_ns(args, "--slo-max-ms")?,
        p99_bytes: match flag(args, "--slo-p99-bytes")? {
            Some(v) => Some(v.parse().map_err(|e| format!("bad --slo-p99-bytes: {e}"))?),
            None => None,
        },
        latency_quantiles,
    };
    let gate = args.iter().any(|a| a == "--gate");

    let cache_bytes: Option<u64> = match flag(args, "--cache-bytes")? {
        Some(v) => Some(v.parse().map_err(|e| format!("bad --cache-bytes: {e}"))?),
        None if args.iter().any(|a| a == "--cache") => Some(4 << 20),
        None => None,
    };
    let backend = match flag(args, "--backend")? {
        Some(name) => skypeer_core::parse_backend(&name)?,
        None => skypeer_core::BackendKind::default(),
    };
    if backend != skypeer_core::BackendKind::default() && cache_bytes.is_some() {
        return Err("--backend sampling and --cache are incompatible".into());
    }
    let min_hit_rate: Option<f64> = match flag(args, "--min-hit-rate")? {
        Some(v) => {
            if cache_bytes.is_none() {
                return Err("--min-hit-rate requires --cache".into());
            }
            Some(v.parse().map_err(|e| format!("bad --min-hit-rate: {e}"))?)
        }
        None => None,
    };

    let mut topology = TopologySpec::paper_default(n_superpeers, seed ^ 0xD1CE);
    topology.avg_degree = topology.avg_degree.min(n_superpeers.saturating_sub(1) as f64);
    let engine = SkypeerEngine::build(EngineConfig {
        n_peers,
        n_superpeers,
        dataset: DatasetSpec { dim, points_per_peer: points, kind: DatasetKind::Uniform, seed },
        topology,
        index: DominanceIndex::RTree,
        cost: CostModel::default(),
        link: LinkModel::paper_4kbps(),
        routing: skypeer_core::engine::RoutingMode::Flood,
    });
    let quiet = args.iter().any(|a| a == "--quiet");
    let history_out = flag(args, "--history-out")?;
    let fail_on_incident = args.iter().any(|a| a == "--fail-on-incident");
    let perturb = match flag(args, "--perturb-link")? {
        Some(s) => {
            if cache_bytes.is_some() {
                return Err("--perturb-link and --cache are incompatible".into());
            }
            Some(SoakPerturb {
                after: parse(args, "--perturb-after", 0usize)?,
                overrides: vec![skypeer_netsim::des::parse_perturb_spec(
                    &s,
                    LinkModel::paper_4kbps(),
                )?],
            })
        }
        None => {
            if flag(args, "--perturb-after")?.is_some() {
                return Err("--perturb-after requires --perturb-link".into());
            }
            None
        }
    };
    // Any flag that needs telemetry turns it on.
    let telemetry = (args.iter().any(|a| a == "--telemetry")
        || history_out.is_some()
        || fail_on_incident
        || perturb.is_some())
    .then(TelemetrySpec::default);
    let fail_on_violation = args.iter().any(|a| a == "--fail-on-violation");
    let inject_drop_ext = args.iter().any(|a| a == "--inject-drop-ext");
    let audit = match flag(args, "--audit-sample")? {
        Some(r) => {
            let sample_rate: f64 = r.parse().map_err(|e| format!("bad --audit-sample: {e}"))?;
            if !(0.0..=1.0).contains(&sample_rate) {
                return Err(format!("bad --audit-sample: {sample_rate} not in [0, 1]"));
            }
            Some(SoakAudit {
                sample_rate,
                seed: parse(args, "--audit-seed", SoakAudit::default().seed)?,
                inject_drop_ext,
            })
        }
        None => {
            for (on, name) in [
                (fail_on_violation, "--fail-on-violation"),
                (inject_drop_ext, "--inject-drop-ext"),
                (flag(args, "--audit-seed")?.is_some(), "--audit-seed"),
            ] {
                if on {
                    return Err(format!("{name} requires --audit-sample"));
                }
            }
            None
        }
    };

    let spec = SoakSpec {
        variants,
        workload: MixedWorkloadSpec { dim, queries, n_superpeers, seed, k_mix, initiator_mix },
        slo,
        tail_k,
        hdr_precision: parse(args, "--precision", 7u32)?,
        cache_bytes,
        telemetry,
        perturb,
        audit,
        backend,
    };

    if !quiet {
        eprintln!(
            "soaking {} queries x {} variants over {} peers / {} super-peers (seed {seed})...",
            queries,
            spec.variants.len(),
            n_peers,
            n_superpeers
        );
    }

    let mut jsonl = match flag(args, "--jsonl")? {
        Some(path) => Some(std::io::BufWriter::new(
            std::fs::File::create(&path).map_err(|e| format!("cannot create {path}: {e}"))?,
        )),
        None => None,
    };
    let profile_out = flag(args, "--profile-out")?;
    if profile_out.is_some() {
        skypeer_netsim::obs::prof::start(skypeer_netsim::obs::ClockMode::Monotonic);
    }
    let outcome = run_soak(&engine, &spec, |row| {
        if let Some(w) = &mut jsonl {
            let _ = writeln!(w, "{}", row.to_json());
        }
    });
    let profile = profile_out.is_some().then(skypeer_netsim::obs::prof::stop);
    if let Some(mut w) = jsonl {
        w.flush().map_err(|e| format!("flushing jsonl: {e}"))?;
    }
    if let (Some(path), Some(p)) = (&profile_out, &profile) {
        std::fs::write(path, p.folded()).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprint!("{}", p.render_table());
        println!("wrote folded CPU profile to {path}");
    }

    print!("{}", outcome.render_table());
    print!("{}", outcome.worst_digest());
    if !spec.slo.is_empty() {
        print!("{}", outcome.render_slo());
    }
    if spec.telemetry.is_some() {
        println!("incidents: {}", outcome.incident_count());
        for v in &outcome.variants {
            if let Some(tel) = &v.telemetry {
                for inc in tel.incidents() {
                    println!("  {} {}", v.variant.mnemonic(), inc.render());
                }
            }
        }
    }
    if let Some(report) = outcome.audit_report() {
        print!("{report}");
    }
    if let Some(path) = &history_out {
        let history = outcome.history_text().expect("telemetry implied by --history-out");
        std::fs::write(path, history).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote telemetry history to {path}");
    }

    if let Some(path) = flag(args, "--out")? {
        std::fs::write(&path, outcome.summary_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote summary to {path}");
    }
    if let Some(path) = flag(args, "--prom")? {
        // The workload exposition, plus skypeer_prof_* families when a
        // profile was collected this run.
        let mut text = outcome.prometheus();
        if let Some(p) = &profile {
            text.push_str(&p.prometheus());
        }
        std::fs::write(&path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote Prometheus exposition to {path}");
    }

    if gate && !outcome.pass() {
        eprintln!("SLO gate FAILED");
        return Ok(ExitCode::FAILURE);
    }
    if fail_on_incident && outcome.incident_count() > 0 {
        eprintln!("incident gate FAILED: {} incident(s) flagged", outcome.incident_count());
        return Ok(ExitCode::FAILURE);
    }
    if fail_on_violation && outcome.violation_count() > 0 {
        eprintln!("audit gate FAILED: {} violation(s) detected", outcome.violation_count());
        return Ok(ExitCode::FAILURE);
    }
    if let Some(floor) = min_hit_rate {
        for v in &outcome.variants {
            let rate = v.cache.as_ref().map(|st| st.hit_rate()).unwrap_or(0.0);
            if rate < floor {
                eprintln!(
                    "cache hit-rate gate FAILED: {} hit rate {:.3} < {:.3}",
                    v.variant.mnemonic(),
                    rate,
                    floor
                );
                return Ok(ExitCode::FAILURE);
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}
