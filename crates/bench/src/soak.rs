//! Workload soak runner: many queries, every one traced, tail-latency
//! percentiles and SLO verdicts out.
//!
//! [`run_soak`] drives a seeded [`MixedWorkloadSpec`] through the
//! deterministic DES for each requested variant using the engine's
//! single-simulation observed path
//! ([`SkypeerEngine::run_query_observed`]): one simulation per query, a
//! [`MemTracer`] on each, per-query rows streamed to the caller (JSONL),
//! and per-variant aggregation into
//!
//! * HDR latency and bytes histograms
//!   ([`HdrHistogram`]) — p50/p90/p99/p999 within the documented
//!   bucket-error bound;
//! * a [`FlightRecorder`] that keeps the full trace of only the top-K
//!   slowest queries, so a 10k-query soak stays memory-bounded while
//!   every p99 offender remains explainable via `skypeer-cli explain`;
//! * an [`SloSpec`] verdict per variant for CI gating.
//!
//! Everything in [`SoakOutcome::summary_json`] derives from sim-time and
//! counters — no wall clocks, commits, or dates — so the summary is
//! byte-deterministic for a seeded config and golden-testable.

use skypeer_cache::CacheStats;
use skypeer_core::cached::CachedEngine;
use skypeer_core::{backend_for, BackendKind};
use skypeer_core::{AnswerFault, AuditSpec, AuditStats, AuditViolation, Auditor};
use skypeer_core::{SkypeerEngine, Variant};
use skypeer_data::{InitiatorMix, KMix, MixedWorkloadSpec, Query};
use skypeer_netsim::des::LinkModel;
use skypeer_netsim::obs::expose::hdr_prometheus;
use skypeer_netsim::obs::tsdb::history_line;
use skypeer_netsim::obs::{
    json, AnomalyDetector, DetectorConfig, FlightRecorder, HdrHistogram, Incident, MemTracer,
    MetricsRegistry, SloReport, SloSpec, TraceEvent, Tracer, Tsdb,
};
use std::sync::Arc;

/// Telemetry knobs for a soak run: retain per-query series in a
/// [`Tsdb`] and run anomaly detection over them.
#[derive(Clone, Copy, Debug)]
pub struct TelemetrySpec {
    /// Per-series ring capacity (buckets) for the retained history.
    pub series_cap: usize,
    /// Anomaly detector tuning.
    pub detector: DetectorConfig,
}

impl Default for TelemetrySpec {
    fn default() -> Self {
        TelemetrySpec {
            series_cap: skypeer_netsim::obs::tsdb::DEFAULT_SERIES_CAP,
            detector: DetectorConfig::default(),
        }
    }
}

/// Mid-run link perturbation: queries with index `>= after` run with
/// the link overrides applied, so anomaly onset can be validated
/// against a known injection point.
#[derive(Clone, Debug)]
pub struct SoakPerturb {
    /// First query index (0-based) executed under the overrides.
    pub after: usize,
    /// `(from, to, model)` directed-link overrides.
    pub overrides: Vec<(usize, usize, LinkModel)>,
}

/// Online-audit knobs for a soak run: sample queries at a fixed rate,
/// shadow-recompute them against the raw-data oracle, and cross-check
/// cache-fronted answers against direct distributed answers.
#[derive(Clone, Copy, Debug)]
pub struct SoakAudit {
    /// Fraction of queries sampled for shadow verification, in `[0, 1]`.
    pub sample_rate: f64,
    /// Sampling-hash seed (same seed + workload ⇒ same sampled set).
    pub seed: u64,
    /// Fault-injection drill: silently drop one ext-skyline entry from
    /// every in-flight answer (picked from the first sampled query's
    /// true skyline, preferring a point homed away from that query's
    /// initiator so it must cross the wire). The drill is invisible to
    /// every performance metric; a healthy audit must catch and name it.
    pub inject_drop_ext: bool,
}

impl Default for SoakAudit {
    fn default() -> Self {
        let AuditSpec { sample_rate, seed } = AuditSpec::default();
        SoakAudit { sample_rate, seed, inject_drop_ext: false }
    }
}

/// What a soak run executes and how it judges the result.
#[derive(Clone, Debug)]
pub struct SoakSpec {
    /// Variants to run the workload under, in execution order.
    pub variants: Vec<Variant>,
    /// The seeded query workload (shared by every variant).
    pub workload: MixedWorkloadSpec,
    /// Budgets evaluated per variant at the end of the run.
    /// `max_latency_ns` doubles as the per-query over-SLO flag.
    pub slo: SloSpec,
    /// Flight-recorder capacity: full traces retained per variant.
    pub tail_k: usize,
    /// HDR histogram precision (sub-bucket bits).
    pub hdr_precision: u32,
    /// When set, every variant runs through a fresh
    /// [`CachedEngine`] with this byte budget: misses execute the
    /// Extended-flavour backbone query and admit its result, hits are
    /// served locally. `None` (the default paths) leaves the summary
    /// byte-identical to a cacheless build.
    pub cache_bytes: Option<u64>,
    /// When set, per-query series (latency, bytes, messages, dominance
    /// tests, queue depth, cache hits) feed a per-variant [`Tsdb`] and
    /// [`AnomalyDetector`]; incidents join the summary and exposition.
    /// `None` leaves every output byte-identical to a telemetry-less
    /// build.
    pub telemetry: Option<TelemetrySpec>,
    /// When set, inject a link perturbation mid-run. Incompatible with
    /// [`SoakSpec::cache_bytes`] (the cache-fronted path has no
    /// perturbed execution route).
    pub perturb: Option<SoakPerturb>,
    /// When set, an online [`Auditor`] samples queries, shadow-verifies
    /// them against the raw-data oracle, and (on cache-fronted runs)
    /// cross-checks answers against direct distributed runs. `None`
    /// leaves every output byte-identical to an audit-less build.
    pub audit: Option<SoakAudit>,
    /// Distributed-skyline backend every query executes under. The
    /// default ([`BackendKind::Skypeer`]) leaves every output
    /// byte-identical to a backend-less build; the sampling backend
    /// ignores the [`Variant`] column (its protocol has no
    /// threshold/merge axes) and is incompatible with
    /// [`SoakSpec::cache_bytes`].
    pub backend: BackendKind,
}

impl SoakSpec {
    /// A spec over all five variants with default precision and a top-8
    /// tail, no SLO.
    pub fn all_variants(workload: MixedWorkloadSpec) -> Self {
        SoakSpec {
            variants: Variant::ALL.to_vec(),
            workload,
            slo: SloSpec::default(),
            tail_k: 8,
            hdr_precision: HdrHistogram::DEFAULT_PRECISION,
            cache_bytes: None,
            telemetry: None,
            perturb: None,
            audit: None,
            backend: BackendKind::default(),
        }
    }
}

/// One query's measurements, streamed to the caller as it completes.
#[derive(Clone, Debug)]
pub struct QueryRow {
    /// Variant mnemonic the query ran under.
    pub variant: &'static str,
    /// Query index within the workload (0-based).
    pub query: usize,
    /// Requested dimensions.
    pub dims: Vec<usize>,
    /// Initiating super-peer.
    pub initiator: usize,
    /// Simulated response time, ns.
    pub latency_ns: u64,
    /// Bytes transferred.
    pub volume_bytes: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Dominance tests across all super-peers (from the trace).
    pub dominance_tests: u64,
    /// Result-set size.
    pub result_points: usize,
    /// Whether the query broke the per-query latency ceiling.
    pub over_slo: bool,
    /// Whether the flight recorder kept this query's full trace (at the
    /// time it was observed — later, slower queries may evict it).
    pub retained: bool,
    /// `Some(true)` when the subspace cache answered this query without a
    /// backbone execution; `None` when the run is cache-less (the field is
    /// then omitted from the JSONL line, keeping cache-off output
    /// byte-identical to earlier releases).
    pub served_from_cache: Option<bool>,
    /// `Some(true)` when the auditor sampled this query for shadow
    /// verification; `None` on audit-less runs (field omitted from the
    /// JSONL line, keeping audit-off output byte-identical).
    pub audited: Option<bool>,
}

impl QueryRow {
    /// One deterministic JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut obj = json::Obj::new()
            .str("variant", self.variant)
            .u64("query", self.query as u64)
            .raw("dims", &json::arr(self.dims.iter().map(|d| d.to_string())))
            .u64("initiator", self.initiator as u64)
            .u64("latency_ns", self.latency_ns)
            .u64("volume_bytes", self.volume_bytes)
            .u64("messages", self.messages)
            .u64("dominance_tests", self.dominance_tests)
            .u64("result_points", self.result_points as u64)
            .bool("over_slo", self.over_slo)
            .bool("retained", self.retained);
        if let Some(hit) = self.served_from_cache {
            obj = obj.bool("cache_hit", hit);
        }
        if let Some(sampled) = self.audited {
            obj = obj.bool("audited", sampled);
        }
        obj.build()
    }
}

/// Per-variant aggregation of a soak run.
pub struct VariantSoak {
    /// The variant.
    pub variant: Variant,
    /// HDR histogram of simulated per-query latencies, ns.
    pub latency_ns: HdrHistogram,
    /// HDR histogram of per-query transferred bytes.
    pub bytes: HdrHistogram,
    /// Sum of simulated response times, ns.
    pub sim_time_total_ns: u64,
    /// Total bytes transferred.
    pub bytes_total: u64,
    /// Total messages delivered.
    pub messages_total: u64,
    /// Total dominance tests.
    pub dominance_tests_total: u64,
    /// The tail-trace recorder (worst queries first).
    pub recorder: FlightRecorder,
    /// The variant's SLO verdict.
    pub slo: SloReport,
    /// Cache counters, when the run was cache-fronted
    /// ([`SoakSpec::cache_bytes`]).
    pub cache: Option<CacheStats>,
    /// Retained telemetry, when the run recorded it
    /// ([`SoakSpec::telemetry`]).
    pub telemetry: Option<VariantTelemetry>,
    /// Audit outcome, when the run was audited ([`SoakSpec::audit`]).
    pub audit: Option<VariantAudit>,
}

/// Per-variant outcome of the online audit.
pub struct VariantAudit {
    /// Aggregate audit counters.
    pub stats: AuditStats,
    /// Violations in detection order, each carrying the lineage of every
    /// disputed point.
    pub violations: Vec<AuditViolation>,
    /// The point id silently dropped in flight when the
    /// [`SoakAudit::inject_drop_ext`] drill was armed (and a victim
    /// could be chosen).
    pub injected_drop: Option<u64>,
}

/// Per-variant retained telemetry from a soak run.
pub struct VariantTelemetry {
    /// Downsampled per-query series (tick = query index).
    pub tsdb: Tsdb,
    /// The detector that watched the series as they streamed.
    pub detector: AnomalyDetector,
    /// Raw history JSONL lines (series prefixed `<variant>/…` so one
    /// file can hold every variant), replayable via `top --replay`.
    pub history: Vec<String>,
}

impl VariantTelemetry {
    /// Incidents the detector flagged, in onset order.
    pub fn incidents(&self) -> &[Incident] {
        self.detector.incidents()
    }
}

/// Everything a soak run produced.
pub struct SoakOutcome {
    /// The spec the run executed.
    pub spec: SoakSpec,
    /// The generated workload, in query order.
    pub queries: Vec<Query>,
    /// Per-variant aggregates, in `spec.variants` order.
    pub variants: Vec<VariantSoak>,
}

/// Runs the workload under every requested variant. `on_row` observes
/// each query's [`QueryRow`] as it completes (stream it to JSONL, a
/// dashboard, or ignore it).
pub fn run_soak(
    engine: &SkypeerEngine,
    spec: &SoakSpec,
    mut on_row: impl FnMut(&QueryRow),
) -> SoakOutcome {
    assert!(!spec.variants.is_empty(), "need at least one variant");
    assert_eq!(
        spec.workload.n_superpeers,
        engine.config().n_superpeers,
        "workload initiators must match the engine's super-peer count"
    );
    assert!(
        spec.workload.dim <= engine.config().dataset.dim,
        "workload dimensionality exceeds the dataset's"
    );
    assert!(
        spec.perturb.is_none() || spec.cache_bytes.is_none(),
        "--perturb-link and --cache are incompatible: the cache-fronted \
         path has no perturbed execution route"
    );
    assert!(
        spec.backend == BackendKind::default() || spec.cache_bytes.is_none(),
        "--backend sampling and --cache are incompatible: the cache-fronted \
         path is wired to the SKYPEER ext-skyline backbone"
    );
    let queries = spec.workload.generate();
    let mut variants = Vec::with_capacity(spec.variants.len());
    for &variant in &spec.variants {
        let mut vs = VariantSoak {
            variant,
            latency_ns: HdrHistogram::new(spec.hdr_precision),
            bytes: HdrHistogram::new(spec.hdr_precision),
            sim_time_total_ns: 0,
            bytes_total: 0,
            messages_total: 0,
            dominance_tests_total: 0,
            recorder: FlightRecorder::new(spec.tail_k),
            slo: SloReport { label: String::new(), checks: Vec::new() },
            cache: None,
            telemetry: spec.telemetry.map(|t| VariantTelemetry {
                tsdb: Tsdb::new(t.series_cap),
                detector: AnomalyDetector::new(t.detector),
                history: Vec::new(),
            }),
            audit: None,
        };
        // A fresh auditor per variant: counters and violations stay
        // per-variant comparable, like the cache below.
        let mut auditor = spec
            .audit
            .map(|a| Auditor::new(engine, AuditSpec { sample_rate: a.sample_rate, seed: a.seed }));
        // The fault-injection drill: silently drop one true-skyline point
        // of the first sampled query from every in-flight answer,
        // preferring a point homed away from that query's initiator so
        // the corruption must cross the wire.
        let injected_drop = match (&spec.audit, auditor.as_ref()) {
            (Some(a), Some(aud)) if a.inject_drop_ext => queries
                .iter()
                .enumerate()
                .find(|(i, _)| aud.should_sample(*i))
                .and_then(|(_, q)| {
                    let truth = aud.shadow_skyline(*q);
                    truth
                        .iter()
                        .copied()
                        .find(|&id| {
                            let home =
                                aud.resolver().lineage(id, q.subspace).origin.map(|o| o.super_peer);
                            home != Some(q.initiator)
                        })
                        .or_else(|| truth.first().copied())
                }),
            _ => None,
        };
        if let Some(id) = injected_drop {
            engine.set_fault(Some(AnswerFault { drop_id: id }));
        }
        // A fresh cache per variant, so per-variant numbers stay
        // independent and comparable.
        let mut cached = spec.cache_bytes.map(|b| CachedEngine::new(engine, b));
        for (i, &q) in queries.iter().enumerate() {
            let tracer = Arc::new(MemTracer::new());
            let perturbed = spec.perturb.as_ref().filter(|p| i >= p.after);
            let (out, refine_tests, served_from_cache) = match cached.as_mut() {
                Some(c) => {
                    let co = c.run_query_traced(
                        q,
                        variant,
                        Some(Arc::clone(&tracer) as Arc<dyn Tracer>),
                    );
                    let hit = co.served_from_cache();
                    (co.outcome, co.refine_tests, Some(hit))
                }
                None => {
                    let tr = Some(Arc::clone(&tracer) as Arc<dyn Tracer>);
                    let overrides: &[_] = perturbed.map_or(&[], |p| &p.overrides);
                    let out =
                        backend_for(spec.backend).run_observed(engine, q, variant, tr, overrides);
                    (out, 0, None)
                }
            };
            // The audit: shadow-verify sampled answers against the
            // raw-data oracle; on cache-fronted runs, additionally
            // cross-check the answer against a direct distributed run.
            let mut audited = auditor.as_ref().map(|_| false);
            let mut query_violations = 0u64;
            if let Some(aud) = auditor.as_mut() {
                if aud.should_sample(i) {
                    audited = Some(true);
                    let before = aud.stats.violations;
                    aud.check_answer(i, q, &out.result_ids);
                    if cached.is_some() {
                        let direct = engine.run_query_observed(q, variant, None);
                        aud.crosscheck_cache(i, q, &out.result_ids, &direct.result_ids);
                    }
                    query_violations = aud.stats.violations - before;
                }
            }
            let events = tracer.take();
            // Queue depth has to come off the events before the
            // recorder consumes them; only pay for it when telemetry
            // is on.
            let queue_depth = vs
                .telemetry
                .as_ref()
                .map(|_| MetricsRegistry::from_events(&events).max_queue_depth());
            let dominance_tests: u64 = refine_tests
                + events
                    .iter()
                    .map(|e| match e {
                        TraceEvent::Service { dominance_tests, .. } => *dominance_tests,
                        _ => 0,
                    })
                    .sum::<u64>();
            let latency_ns = out.total_time_ns;
            let over_slo = spec.slo.max_latency_ns.is_some_and(|b| latency_ns > b);
            let retained = vs.recorder.observe(
                format!("{}/q{i}", variant.mnemonic()),
                latency_ns,
                over_slo,
                events,
            );
            vs.latency_ns.record(latency_ns);
            vs.bytes.record(out.volume_bytes);
            vs.sim_time_total_ns += latency_ns;
            vs.bytes_total += out.volume_bytes;
            vs.messages_total += out.messages;
            vs.dominance_tests_total += dominance_tests;
            if let Some(tel) = vs.telemetry.as_mut() {
                let tick = i as u64;
                let mut samples = vec![
                    ("latency_ns", latency_ns as f64),
                    ("volume_bytes", out.volume_bytes as f64),
                    ("messages", out.messages as f64),
                    ("dominance_tests", dominance_tests as f64),
                    ("queue_depth", queue_depth.unwrap_or(0) as f64),
                ];
                if let Some(hit) = served_from_cache {
                    samples.push(("cache_hit", if hit { 1.0 } else { 0.0 }));
                }
                if audited.is_some() {
                    // Zero on every healthy query: any step change is an
                    // anomaly-detector onset at the corruption point.
                    samples.push(("audit_violations", query_violations as f64));
                }
                let mnemonic = variant.mnemonic();
                for (series, value) in samples {
                    tel.tsdb.record(series, tick, value);
                    tel.detector.observe(series, tick, value);
                    tel.history.push(history_line(tick, &format!("{mnemonic}/{series}"), value));
                }
            }
            on_row(&QueryRow {
                variant: variant.mnemonic(),
                query: i,
                dims: q.subspace.dims().collect(),
                initiator: q.initiator,
                latency_ns,
                volume_bytes: out.volume_bytes,
                messages: out.messages,
                dominance_tests,
                result_points: out.result_ids.len(),
                over_slo,
                retained,
                served_from_cache,
                audited,
            });
        }
        if injected_drop.is_some() {
            engine.set_fault(None);
        }
        vs.slo = spec.slo.evaluate(variant.mnemonic(), &vs.latency_ns, &vs.bytes);
        vs.cache = cached.as_ref().map(|c| c.stats());
        vs.audit = auditor.map(|a| VariantAudit {
            stats: a.stats,
            violations: a.violations,
            injected_drop,
        });
        variants.push(vs);
    }
    SoakOutcome { spec: spec.clone(), queries, variants }
}

fn describe_k_mix(m: KMix) -> String {
    match m {
        KMix::Fixed(k) => format!("fixed({k})"),
        KMix::Zipf { k_min, k_max, exponent } => {
            format!("zipf({k_min}..{k_max},theta={exponent:?})")
        }
    }
}

fn describe_initiator_mix(m: InitiatorMix) -> String {
    match m {
        InitiatorMix::Uniform => "uniform".to_string(),
        InitiatorMix::Zipf { exponent } => format!("zipf(theta={exponent:?})"),
    }
}

fn percentile_obj(h: &HdrHistogram) -> String {
    json::Obj::new()
        .u64("p50", h.p50().unwrap_or(0))
        .u64("p90", h.p90().unwrap_or(0))
        .u64("p99", h.p99().unwrap_or(0))
        .u64("p999", h.p999().unwrap_or(0))
        .u64("min", h.min().unwrap_or(0))
        .u64("max", h.max().unwrap_or(0))
        .f64("mean", h.mean())
        .build()
}

impl SoakOutcome {
    /// `true` iff every variant's SLO verdict passed.
    pub fn pass(&self) -> bool {
        self.variants.iter().all(|v| v.slo.pass())
    }

    /// The deterministic `SoakSummary` JSON: workload echo, per-variant
    /// percentiles, totals, SLO verdicts, and the retained-tail digest.
    /// Contains nothing host- or time-dependent, so two runs of the same
    /// seeded spec are byte-identical (golden-pinned in the CLI tests).
    pub fn summary_json(&self) -> String {
        let w = &self.spec.workload;
        let mut wobj = json::Obj::new()
            .u64("dim", w.dim as u64)
            .u64("queries", w.queries as u64)
            .u64("n_superpeers", w.n_superpeers as u64)
            .u64("seed", w.seed)
            .str("k_mix", &describe_k_mix(w.k_mix))
            .str("initiator_mix", &describe_initiator_mix(w.initiator_mix));
        // Present only off the default backend, so skypeer-backend
        // summaries stay byte-identical to earlier goldens.
        if self.spec.backend != BackendKind::default() {
            wobj = wobj.str("backend", self.spec.backend.name());
        }
        let workload = wobj.build();
        let variants = json::arr(self.variants.iter().map(|v| {
            let worst = json::arr(v.recorder.retained().iter().map(|r| {
                let q = self.queries[r.seq as usize];
                json::Obj::new()
                    .u64("query", r.seq)
                    .u64("latency_ns", r.latency_ns)
                    .raw("dims", &json::arr(q.subspace.dims().map(|d| d.to_string())))
                    .u64("initiator", q.initiator as u64)
                    .bool("over_slo", r.over_slo)
                    .build()
            }));
            let mut obj = json::Obj::new()
                .str("variant", v.variant.mnemonic())
                .u64("queries", v.latency_ns.count())
                .raw("latency_ns", &percentile_obj(&v.latency_ns))
                .raw("volume_bytes", &percentile_obj(&v.bytes))
                .raw(
                    "totals",
                    &json::Obj::new()
                        .u64("sim_time_ns", v.sim_time_total_ns)
                        .u64("bytes", v.bytes_total)
                        .u64("messages", v.messages_total)
                        .u64("dominance_tests", v.dominance_tests_total)
                        .build(),
                );
            // Present only on cache-fronted runs, so cache-off summaries
            // stay byte-identical to older goldens.
            if let Some(st) = &v.cache {
                obj = obj.raw(
                    "cache",
                    &json::Obj::new()
                        .f64("hit_rate", st.hit_rate())
                        .u64("lookups", st.lookups)
                        .u64("exact_hits", st.exact_hits)
                        .u64("subsumption_hits", st.subsumption_hits)
                        .u64("misses", st.misses)
                        .u64("stale_rejects", st.stale_rejects)
                        .u64("coalesced", st.coalesced)
                        .u64("admissions", st.admissions)
                        .u64("evictions", st.evictions)
                        .u64("bytes_saved", st.bytes_saved)
                        .build(),
                );
            }
            // Present only on telemetry runs, same reasoning as `cache`.
            if let Some(tel) = &v.telemetry {
                obj = obj.raw("incidents", &tel.detector.incidents_json());
            }
            // Present only on audited runs, same reasoning as `cache`.
            if let Some(aud) = &v.audit {
                let mut a = json::Obj::new()
                    .u64("sampled", aud.stats.sampled)
                    .u64("crosschecks", aud.stats.crosschecks)
                    .u64("violations", aud.stats.violations)
                    .u64("missing_points", aud.stats.missing_points)
                    .u64("spurious_points", aud.stats.spurious_points);
                if let Some(id) = aud.injected_drop {
                    a = a.u64("injected_drop", id);
                }
                obj = obj.raw(
                    "audit",
                    &a.raw("records", &json::arr(aud.violations.iter().map(|x| x.to_json())))
                        .build(),
                );
            }
            obj.raw("slo", &v.slo.to_json()).raw("worst", &worst).build()
        }));
        json::Obj::new()
            .raw("workload", &workload)
            .u64("tail_k", self.spec.tail_k as u64)
            .u64("hdr_precision", u64::from(self.spec.hdr_precision))
            .bool("pass", self.pass())
            .raw("variants", &variants)
            .build()
    }

    /// Prometheus exposition of the per-variant latency and bytes
    /// histograms (one family each, labelled by variant).
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        for (name, help, pick) in [
            (
                "skypeer_soak_latency_ns",
                "Simulated per-query response time, ns.",
                (|v: &VariantSoak| &v.latency_ns) as fn(&VariantSoak) -> &HdrHistogram,
            ),
            ("skypeer_soak_volume_bytes", "Per-query transferred bytes.", |v| &v.bytes),
        ] {
            for (i, v) in self.variants.iter().enumerate() {
                let text =
                    hdr_prometheus(name, help, &[("variant", v.variant.mnemonic())], pick(v));
                if i == 0 {
                    out.push_str(&text);
                } else {
                    // HELP/TYPE belong to the family, not the series: emit
                    // them once and append the other variants' series.
                    for line in text.lines().filter(|l| !l.starts_with('#')) {
                        out.push_str(line);
                        out.push('\n');
                    }
                }
            }
        }
        // Cache counters, one family per counter, labelled by variant —
        // present only on cache-fronted runs.
        let with_cache: Vec<(&'static str, CacheStats)> = self
            .variants
            .iter()
            .filter_map(|v| v.cache.map(|st| (v.variant.mnemonic(), st)))
            .collect();
        if let Some((_, first)) = with_cache.first() {
            for (ci, (name, _)) in first.counter_pairs().iter().enumerate() {
                out.push_str(&format!(
                    "# HELP skypeer_{name}_total Subspace result cache counter.\n\
                     # TYPE skypeer_{name}_total counter\n"
                ));
                for (mnemonic, st) in &with_cache {
                    out.push_str(&format!(
                        "skypeer_{name}_total{{variant=\"{mnemonic}\"}} {}\n",
                        st.counter_pairs()[ci].1
                    ));
                }
            }
        }
        // Audit counters, one family per counter, labelled by variant —
        // present only on audited runs.
        if self.variants.iter().any(|v| v.audit.is_some()) {
            type AuditCounter = (&'static str, &'static str, fn(&AuditStats) -> u64);
            let pick: [AuditCounter; 5] = [
                ("sampled", "Queries shadow-verified against the raw-data oracle.", |s| s.sampled),
                ("crosschecks", "Cache-fronted answers cross-checked against direct runs.", |s| {
                    s.crosschecks
                }),
                ("violations", "Correctness violations detected by the audit.", |s| s.violations),
                ("points_missing", "True-skyline points absent from audited answers.", |s| {
                    s.missing_points
                }),
                ("points_spurious", "Answered points absent from the true skyline.", |s| {
                    s.spurious_points
                }),
            ];
            for (name, help, get) in pick {
                out.push_str(&format!(
                    "# HELP skypeer_audit_{name}_total {help}\n\
                     # TYPE skypeer_audit_{name}_total counter\n"
                ));
                for v in &self.variants {
                    if let Some(aud) = &v.audit {
                        out.push_str(&format!(
                            "skypeer_audit_{name}_total{{variant=\"{}\"}} {}\n",
                            v.variant.mnemonic(),
                            get(&aud.stats)
                        ));
                    }
                }
            }
        }
        // Incident counts, present only on telemetry runs.
        if self.variants.iter().any(|v| v.telemetry.is_some()) {
            out.push_str(
                "# HELP skypeer_soak_incidents_total Anomaly incidents flagged during the soak.\n\
                 # TYPE skypeer_soak_incidents_total counter\n",
            );
            for v in &self.variants {
                if let Some(tel) = &v.telemetry {
                    out.push_str(&format!(
                        "skypeer_soak_incidents_total{{variant=\"{}\"}} {}\n",
                        v.variant.mnemonic(),
                        tel.incidents().len()
                    ));
                }
            }
        }
        out
    }

    /// Total incidents across all variants (0 on telemetry-less runs).
    pub fn incident_count(&self) -> usize {
        self.variants.iter().filter_map(|v| v.telemetry.as_ref()).map(|t| t.incidents().len()).sum()
    }

    /// Total audit violations across all variants (0 on audit-less runs).
    pub fn violation_count(&self) -> usize {
        self.variants.iter().filter_map(|v| v.audit.as_ref()).map(|a| a.violations.len()).sum()
    }

    /// Deterministic audit digest: one summary line per audited variant
    /// plus one line per violation (naming each disputed point, its
    /// origin peer, and the queried subspace). `None` on audit-less runs.
    pub fn audit_report(&self) -> Option<String> {
        let audited: Vec<(&VariantSoak, &VariantAudit)> =
            self.variants.iter().filter_map(|v| v.audit.as_ref().map(|a| (v, a))).collect();
        if audited.is_empty() {
            return None;
        }
        let mut out = String::new();
        for (v, aud) in audited {
            out.push_str(&format!(
                "audit {}: sampled {}, crosschecks {}, violations {}{}\n",
                v.variant.mnemonic(),
                aud.stats.sampled,
                aud.stats.crosschecks,
                aud.stats.violations,
                match aud.injected_drop {
                    Some(id) => format!(" (drill: dropped #{id} in flight)"),
                    None => String::new(),
                }
            ));
            for violation in &aud.violations {
                out.push_str("  ");
                out.push_str(&violation.render());
                out.push('\n');
            }
        }
        Some(out)
    }

    /// The run's full telemetry history as JSONL text (all variants,
    /// series prefixed `<variant>/…`), or `None` on telemetry-less
    /// runs. Replayable via `skypeer-cli top --replay`.
    pub fn history_text(&self) -> Option<String> {
        let tels: Vec<&VariantTelemetry> =
            self.variants.iter().filter_map(|v| v.telemetry.as_ref()).collect();
        if tels.is_empty() {
            return None;
        }
        let mut out = String::new();
        for tel in tels {
            for line in &tel.history {
                out.push_str(line);
                out.push('\n');
            }
        }
        Some(out)
    }

    /// The percentile table as fixed-width text (latencies in simulated
    /// milliseconds).
    pub fn render_table(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        let cache_on = self.variants.iter().any(|v| v.cache.is_some());
        let mut out = String::new();
        out.push_str(&format!(
            "{:<8} {:>7} {:>12} {:>12} {:>12} {:>12} {:>12} {:>10}",
            "variant", "queries", "p50 ms", "p90 ms", "p99 ms", "p999 ms", "max ms", "slo"
        ));
        if cache_on {
            out.push_str(&format!(" {:>7}", "hit%"));
        }
        out.push('\n');
        for v in &self.variants {
            let h = &v.latency_ns;
            out.push_str(&format!(
                "{:<8} {:>7} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>10}",
                v.variant.mnemonic(),
                h.count(),
                ms(h.p50().unwrap_or(0)),
                ms(h.p90().unwrap_or(0)),
                ms(h.p99().unwrap_or(0)),
                ms(h.p999().unwrap_or(0)),
                ms(h.max().unwrap_or(0)),
                if v.slo.checks.is_empty() {
                    "-"
                } else if v.slo.pass() {
                    "pass"
                } else {
                    "FAIL"
                },
            ));
            if cache_on {
                match &v.cache {
                    Some(st) => out.push_str(&format!(" {:>6.1}%", st.hit_rate() * 100.0)),
                    None => out.push_str(&format!(" {:>7}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// One line per variant describing its worst retained query, with a
    /// replay command through the existing explain path.
    pub fn worst_digest(&self) -> String {
        let mut out = String::new();
        for v in &self.variants {
            if let Some(worst) = v.recorder.worst() {
                let q = self.queries[worst.seq as usize];
                let dims: Vec<String> = q.subspace.dims().map(|d| d.to_string()).collect();
                out.push_str(&format!(
                    "worst {}: q{} at {:.3} ms (dims {}, initiator {}{}) — replay: \
                     skypeer-cli explain --dims {} --initiator {} --variant {}\n",
                    v.variant.mnemonic(),
                    worst.seq,
                    worst.latency_ns as f64 / 1e6,
                    dims.join(","),
                    q.initiator,
                    if worst.over_slo { ", OVER SLO" } else { "" },
                    dims.join(","),
                    q.initiator,
                    v.variant.mnemonic().to_lowercase(),
                ));
            }
        }
        out
    }

    /// Concatenated SLO verdict rendering for all variants.
    pub fn render_slo(&self) -> String {
        self.variants.iter().map(|v| v.slo.render()).collect()
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use skypeer_core::EngineConfig;
    use skypeer_data::{DatasetKind, DatasetSpec, WorkloadSpec};
    use skypeer_netsim::cost::CostModel;
    use skypeer_netsim::des::LinkModel;
    use skypeer_netsim::topology::TopologySpec;
    use skypeer_skyline::DominanceIndex;

    fn engine() -> SkypeerEngine {
        let n_superpeers = 6;
        SkypeerEngine::build(EngineConfig {
            n_peers: 12,
            n_superpeers,
            dataset: DatasetSpec {
                dim: 4,
                points_per_peer: 30,
                kind: DatasetKind::Uniform,
                seed: 5,
            },
            topology: TopologySpec::paper_default(n_superpeers, 5),
            index: DominanceIndex::Linear,
            cost: CostModel::default(),
            link: LinkModel::paper_4kbps(),
            routing: skypeer_core::engine::RoutingMode::Flood,
        })
    }

    fn small_spec(n_superpeers: usize) -> SoakSpec {
        SoakSpec {
            variants: vec![Variant::Ftpm, Variant::Naive],
            workload: MixedWorkloadSpec::uniform(WorkloadSpec {
                dim: 4,
                k: 2,
                queries: 12,
                n_superpeers,
                seed: 9,
            }),
            slo: SloSpec::default(),
            tail_k: 3,
            hdr_precision: 7,
            cache_bytes: None,
            telemetry: None,
            perturb: None,
            audit: None,
            backend: BackendKind::default(),
        }
    }

    #[test]
    fn soak_streams_one_row_per_query_per_variant() {
        let engine = engine();
        let spec = small_spec(engine.config().n_superpeers);
        let mut rows = Vec::new();
        let out = run_soak(&engine, &spec, |r| rows.push(r.to_json()));
        assert_eq!(rows.len(), 12 * 2);
        assert_eq!(out.variants.len(), 2);
        for v in &out.variants {
            assert_eq!(v.latency_ns.count(), 12);
            assert_eq!(v.recorder.observed(), 12);
            assert_eq!(v.recorder.retained().len(), 3);
            assert!(v.bytes_total > 0 || v.variant == Variant::Naive);
        }
        assert!(rows[0].starts_with("{\"variant\":\"FTPM\",\"query\":0,"));
    }

    #[test]
    fn recorder_keeps_exactly_the_top_k_latencies() {
        let engine = engine();
        let spec = small_spec(engine.config().n_superpeers);
        let mut latencies: Vec<u64> = Vec::new();
        let out = run_soak(&engine, &spec, |r| {
            if r.variant == "FTPM" {
                latencies.push(r.latency_ns);
            }
        });
        latencies.sort_unstable_by(|a, b| b.cmp(a));
        let retained: Vec<u64> =
            out.variants[0].recorder.retained().iter().map(|r| r.latency_ns).collect();
        assert_eq!(retained, latencies[..3].to_vec(), "top-K by latency, worst first");
    }

    #[test]
    fn summary_json_is_deterministic_and_slo_gates() {
        let engine = engine();
        let mut spec = small_spec(engine.config().n_superpeers);
        let a = run_soak(&engine, &spec, |_| {}).summary_json();
        let b = run_soak(&engine, &spec, |_| {}).summary_json();
        assert_eq!(a, b, "summary must be byte-deterministic");
        assert!(a.contains("\"pass\":true"));
        // An impossible latency budget fails the gate.
        spec.slo.p50_latency_ns = Some(1);
        let gated = run_soak(&engine, &spec, |_| {});
        assert!(!gated.pass());
        assert!(gated.summary_json().contains("\"pass\":false"));
        assert!(gated.render_slo().contains("[FAIL]"));
    }

    #[test]
    fn prometheus_exposition_has_one_family_per_metric() {
        let engine = engine();
        let spec = small_spec(engine.config().n_superpeers);
        let out = run_soak(&engine, &spec, |_| {});
        let text = out.prometheus();
        assert_eq!(text.matches("# TYPE skypeer_soak_latency_ns histogram").count(), 1);
        assert_eq!(text.matches("# TYPE skypeer_soak_volume_bytes histogram").count(), 1);
        assert!(text.contains("skypeer_soak_latency_ns_bucket{variant=\"FTPM\",le=\""));
        assert!(text.contains("skypeer_soak_latency_ns_count{variant=\"naive\"} 12"));
    }

    #[test]
    fn cached_soak_is_exact_cheaper_and_reports_hit_rate() {
        let engine = engine();
        let mut spec = small_spec(engine.config().n_superpeers);
        let mut off_points = Vec::new();
        let off = run_soak(&engine, &spec, |r| off_points.push(r.result_points));
        assert!(!off.summary_json().contains("\"cache\""), "cache-off summary is unchanged");

        spec.cache_bytes = Some(4 << 20);
        let mut on_points = Vec::new();
        let on = run_soak(&engine, &spec, |r| on_points.push(r.result_points));
        assert_eq!(on_points, off_points, "cache must not change any query's answer");
        for (c, u) in on.variants.iter().zip(&off.variants) {
            assert!(
                c.bytes_total < u.bytes_total,
                "{}: cached {} bytes must beat uncached {}",
                c.variant.mnemonic(),
                c.bytes_total,
                u.bytes_total
            );
            let st = c.cache.expect("cache stats present");
            assert!(st.hits() > 0, "the 12-query uniform mix repeats subspaces");
            assert_eq!(st.lookups, 12);
        }
        let summary = on.summary_json();
        assert!(summary.contains("\"cache\":{\"hit_rate\":"));
        assert!(on.render_table().contains("hit%"));
        let prom = on.prometheus();
        assert_eq!(prom.matches("# TYPE skypeer_cache_lookups_total counter").count(), 1);
        assert!(prom.contains("skypeer_cache_lookups_total{variant=\"FTPM\"} 12"));
        // Determinism holds with the cache on, too.
        assert_eq!(summary, run_soak(&engine, &spec, |_| {}).summary_json());
    }

    #[test]
    fn telemetry_records_series_and_baseline_is_quiet() {
        let engine = engine();
        let mut spec = small_spec(engine.config().n_superpeers);
        spec.workload.queries = 60;
        let base = run_soak(&engine, &spec, |_| {}).summary_json();
        assert!(!base.contains("incidents"), "telemetry-off summary is unchanged");

        spec.telemetry = Some(TelemetrySpec::default());
        let out = run_soak(&engine, &spec, |_| {});
        // Same seeded workload, no perturbation: the false-positive
        // guard — zero incidents.
        assert_eq!(out.incident_count(), 0, "{}", out.summary_json());
        let tel = out.variants[0].telemetry.as_ref().expect("telemetry on");
        for series in ["latency_ns", "volume_bytes", "messages", "dominance_tests", "queue_depth"] {
            let ts = tel.tsdb.get(series).unwrap_or_else(|| panic!("series {series}"));
            assert_eq!(ts.count(), 60);
        }
        let summary = out.summary_json();
        assert!(summary.contains("\"incidents\":[]"));
        assert!(out.prometheus().contains("skypeer_soak_incidents_total{variant=\"FTPM\"} 0"));
        // History round-trips through the parser and is deterministic.
        let history = out.history_text().expect("history present");
        let samples = skypeer_netsim::obs::parse_history(&history).expect("parses");
        assert_eq!(samples.len(), 60 * 5 * 2, "5 series per query per variant");
        assert!(samples.iter().any(|s| s.series == "FTPM/latency_ns"));
        let again = run_soak(&engine, &spec, |_| {});
        assert_eq!(history, again.history_text().unwrap());
        assert_eq!(summary, again.summary_json());
        assert_eq!(
            tel.tsdb.to_json(),
            again.variants[0].telemetry.as_ref().unwrap().tsdb.to_json()
        );
    }

    #[test]
    fn perturbed_soak_fires_incident_at_or_after_injection() {
        let engine = engine();
        let mut spec = small_spec(engine.config().n_superpeers);
        spec.variants = vec![Variant::Ftpm];
        spec.workload.queries = 60;
        spec.telemetry = Some(TelemetrySpec::default());
        // Inflate every backbone link out of SP0 by 5 simulated seconds
        // from query 40 onward.
        let slow = LinkModel { latency_ns: 5_000_000_000, ..LinkModel::paper_4kbps() };
        spec.perturb = Some(SoakPerturb {
            after: 40,
            overrides: (1..engine.config().n_superpeers).map(|to| (0, to, slow)).collect(),
        });
        let out = run_soak(&engine, &spec, |_| {});
        let incidents = out.variants[0].telemetry.as_ref().unwrap().incidents();
        assert!(!incidents.is_empty(), "latency inflation must flag");
        let named: Vec<&str> = incidents.iter().map(|i| i.series.as_str()).collect();
        assert!(
            named.iter().any(|s| s.contains("latency") || s.contains("queue")),
            "incident names a latency/queue series: {named:?}"
        );
        for inc in incidents {
            assert!(inc.onset_tick >= 40, "onset {} precedes the injection", inc.onset_tick);
        }
        let summary = out.summary_json();
        assert!(summary.contains("\"incidents\":[{\"series\":"));
        assert_eq!(summary, run_soak(&engine, &spec, |_| {}).summary_json());
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn perturb_and_cache_are_rejected() {
        let engine = engine();
        let mut spec = small_spec(engine.config().n_superpeers);
        spec.cache_bytes = Some(1 << 20);
        spec.perturb = Some(SoakPerturb { after: 0, overrides: vec![] });
        run_soak(&engine, &spec, |_| {});
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn sampling_backend_and_cache_are_rejected() {
        let engine = engine();
        let mut spec = small_spec(engine.config().n_superpeers);
        spec.cache_bytes = Some(1 << 20);
        spec.backend = BackendKind::Sampling;
        run_soak(&engine, &spec, |_| {});
    }

    #[test]
    fn sampling_soak_matches_skypeer_answers_and_tags_summary() {
        let engine = engine();
        let mut spec = small_spec(engine.config().n_superpeers);
        spec.variants = vec![Variant::Ftpm];
        let mut sky_points = Vec::new();
        let sky = run_soak(&engine, &spec, |r| sky_points.push(r.result_points));
        assert!(
            !sky.summary_json().contains("\"backend\""),
            "default-backend summary is unchanged"
        );

        spec.backend = BackendKind::Sampling;
        let mut smp_points = Vec::new();
        let smp = run_soak(&engine, &spec, |r| smp_points.push(r.result_points));
        assert_eq!(smp_points, sky_points, "backends must agree on every answer");
        let summary = smp.summary_json();
        assert!(summary.contains("\"backend\":\"sampling\""), "{summary}");
        assert_eq!(summary, run_soak(&engine, &spec, |_| {}).summary_json(), "deterministic");
    }

    #[test]
    fn audited_soak_is_clean_uncached_and_cached() {
        let engine = engine();
        let mut spec = small_spec(engine.config().n_superpeers);
        let base_summary = run_soak(&engine, &spec, |_| {}).summary_json();
        let mut base_rows = Vec::new();
        run_soak(&engine, &spec, |r| base_rows.push(r.to_json()));
        assert!(!base_summary.contains("\"audit\""), "audit-off summary is unchanged");
        assert!(!base_rows.iter().any(|r| r.contains("audited")), "audit-off rows unchanged");

        // Uncached: every audited answer matches the raw-data oracle.
        spec.audit = Some(SoakAudit { sample_rate: 1.0, ..SoakAudit::default() });
        let mut rows = Vec::new();
        let out = run_soak(&engine, &spec, |r| rows.push(r.to_json()));
        assert_eq!(out.violation_count(), 0, "{}", out.audit_report().unwrap());
        for v in &out.variants {
            let aud = v.audit.as_ref().expect("audit on");
            assert_eq!(aud.stats.sampled, 12);
            assert_eq!(aud.stats.crosschecks, 0, "no cache, no cross-checks");
            assert_eq!(aud.injected_drop, None);
        }
        assert!(rows.iter().all(|r| r.contains("\"audited\":true")));
        let summary = out.summary_json();
        assert!(summary.contains("\"audit\":{\"sampled\":12,\"crosschecks\":0,\"violations\":0"));
        let prom = out.prometheus();
        assert!(prom.contains("skypeer_audit_sampled_total{variant=\"FTPM\"} 12"), "{prom}");
        assert!(prom.contains("skypeer_audit_violations_total{variant=\"naive\"} 0"), "{prom}");
        assert_eq!(summary, run_soak(&engine, &spec, |_| {}).summary_json(), "deterministic");
        let report = out.audit_report().unwrap();
        assert!(report.contains("audit FTPM: sampled 12, crosschecks 0, violations 0"), "{report}");

        // Cached: shadow checks still pass and every sampled answer also
        // cross-checks against a direct distributed run.
        spec.cache_bytes = Some(4 << 20);
        let cached = run_soak(&engine, &spec, |_| {});
        assert_eq!(cached.violation_count(), 0, "{}", cached.audit_report().unwrap());
        for v in &cached.variants {
            let aud = v.audit.as_ref().unwrap();
            assert_eq!(aud.stats.sampled, 12);
            assert_eq!(aud.stats.crosschecks, 12, "every sampled cached answer cross-checks");
        }
    }

    #[test]
    fn partial_sampling_audits_the_deterministic_subset() {
        let engine = engine();
        let mut spec = small_spec(engine.config().n_superpeers);
        spec.variants = vec![Variant::Ftpm];
        spec.audit = Some(SoakAudit { sample_rate: 0.5, seed: 9, inject_drop_ext: false });
        let mut flags = Vec::new();
        let out =
            run_soak(&engine, &spec, |r| flags.push(r.to_json().contains("\"audited\":true")));
        let aud = out.variants[0].audit.as_ref().unwrap();
        let n = flags.iter().filter(|&&f| f).count();
        assert_eq!(aud.stats.sampled, n as u64);
        assert!(n > 0 && n < 12, "rate 0.5 samples a strict subset: {n}");
        let mut again = Vec::new();
        run_soak(&engine, &spec, |r| again.push(r.to_json().contains("\"audited\":true")));
        assert_eq!(flags, again, "sampling is deterministic");
    }

    #[test]
    fn injected_ext_drop_is_caught_and_named() {
        let engine = engine();
        let mut spec = small_spec(engine.config().n_superpeers);
        spec.variants = vec![Variant::Ftpm];
        spec.telemetry = Some(TelemetrySpec::default());
        spec.audit = Some(SoakAudit { sample_rate: 1.0, seed: 3, inject_drop_ext: true });
        let out = run_soak(&engine, &spec, |_| {});
        let aud = out.variants[0].audit.as_ref().unwrap();
        let victim = aud.injected_drop.expect("drill armed");
        assert!(aud.stats.violations > 0, "the audit must catch the drill");
        // The violation names the dropped point with its lineage: origin
        // peer, super-peer, and the queried subspace.
        let hit = aud
            .violations
            .iter()
            .find(|v| v.missing.iter().any(|l| l.id == victim))
            .expect("a violation names the victim");
        let named = hit.missing.iter().find(|l| l.id == victim).unwrap();
        assert!(named.origin.is_some(), "lineage carries the origin peer");
        assert_eq!(named.query_dims, hit.dims);
        let report = out.audit_report().unwrap();
        assert!(report.contains(&format!("drill: dropped #{victim}")), "{report}");
        assert!(report.contains(&format!("#{victim} (peer ")), "{report}");
        // The audit_violations telemetry series recorded the stream.
        let tel = out.variants[0].telemetry.as_ref().unwrap();
        let ts = tel.tsdb.get("audit_violations").expect("audit series present");
        assert_eq!(ts.count(), 12);
        // Summary carries the records; the whole run stays deterministic.
        let summary = out.summary_json();
        assert!(summary.contains(&format!("\"injected_drop\":{victim}")), "{summary}");
        assert!(summary.contains("\"records\":[{\"query\":"), "{summary}");
        assert_eq!(summary, run_soak(&engine, &spec, |_| {}).summary_json());
        // The fault is cleared afterwards: a fresh audited run is clean.
        spec.audit = Some(SoakAudit { sample_rate: 1.0, seed: 3, inject_drop_ext: false });
        assert_eq!(run_soak(&engine, &spec, |_| {}).violation_count(), 0);
    }

    #[test]
    fn table_and_digest_render() {
        let engine = engine();
        let spec = small_spec(engine.config().n_superpeers);
        let out = run_soak(&engine, &spec, |_| {});
        let table = out.render_table();
        assert!(table.contains("p999 ms"));
        assert!(table.lines().count() >= 3);
        let digest = out.worst_digest();
        assert!(digest.contains("worst FTPM: q"));
        assert!(digest.contains("skypeer-cli explain --dims"));
    }
}
