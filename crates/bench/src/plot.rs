//! Terminal line charts for figure data.
//!
//! Renders a [`FigureData`] as a compact ASCII chart: one glyph per
//! series, a bracketed y-range, x positions taken from the row order.
//! Deliberately simple — the JSON output exists for real plotting; this is
//! for eyeballing curve shapes right in the terminal (`figures --plot`).

use crate::experiments::FigureData;

/// Glyphs assigned to series, in order.
const GLYPHS: [char; 8] = ['o', 'x', '+', '*', '#', '@', '%', '&'];

/// Renders the figure as an ASCII chart of `height` rows. Values are
/// mapped linearly between the data's min and max; collisions between
/// series at one cell keep the earlier series' glyph.
pub fn render(fig: &FigureData, height: usize) -> String {
    let height = height.max(4);
    let n_cols = fig.rows.len();
    if n_cols == 0 || fig.series.is_empty() {
        return format!("## {} — (no data)\n", fig.id);
    }
    let all: Vec<f64> = fig.rows.iter().flat_map(|(_, vals)| vals.iter().copied()).collect();
    let lo = all.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = all.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = if hi > lo { hi - lo } else { 1.0 };

    // Each data column gets a fixed cell width for readability.
    let col_width = 6usize;
    let mut grid = vec![vec![' '; n_cols * col_width]; height];
    for (col, (_, vals)) in fig.rows.iter().enumerate() {
        for (s, &v) in vals.iter().enumerate() {
            let norm = (v - lo) / span;
            let row = ((1.0 - norm) * (height - 1) as f64).round() as usize;
            let x = col * col_width + col_width / 2;
            let cell = &mut grid[row][x];
            if *cell == ' ' {
                *cell = GLYPHS[s % GLYPHS.len()];
            }
        }
    }

    let mut out = String::new();
    out.push_str(&format!("## {} — {} [{}]\n", fig.id, fig.title, fig.y_label));
    out.push_str(&format!("   max {hi:.3}\n"));
    for row in grid {
        out.push_str("   |");
        out.push_str(&row.into_iter().collect::<String>());
        out.push('\n');
    }
    out.push_str("   +");
    out.push_str(&"-".repeat(n_cols * col_width));
    out.push_str(&format!("\n   min {lo:.3}; x = {}: ", fig.x_label));
    out.push_str(&fig.rows.iter().map(|(x, _)| format!("{x}")).collect::<Vec<_>>().join(", "));
    out.push('\n');
    for (i, name) in fig.series.iter().enumerate() {
        out.push_str(&format!("   {} {}\n", GLYPHS[i % GLYPHS.len()], name));
    }
    out
}

#[cfg(test)]
mod unit {
    use super::*;

    fn fig() -> FigureData {
        FigureData {
            id: "demo",
            title: "demo figure".into(),
            x_label: "d",
            y_label: "ms",
            series: vec!["up".into(), "down".into()],
            rows: vec![(1.0, vec![0.0, 10.0]), (2.0, vec![5.0, 5.0]), (3.0, vec![10.0, 0.0])],
            metrics: vec![],
        }
    }

    #[test]
    fn renders_all_series_glyphs() {
        let s = render(&fig(), 8);
        assert!(s.contains('o') && s.contains('x'), "{s}");
        assert!(s.contains("max 10.000"));
        assert!(s.contains("min 0.000"));
        assert!(s.contains("o up"));
        assert!(s.contains("x down"));
    }

    #[test]
    fn crossing_series_occupy_extremes() {
        let s = render(&fig(), 9);
        let lines: Vec<&str> = s.lines().collect();
        // First grid line (top = max) must contain a glyph, as must the
        // bottom grid line.
        let top = lines[2];
        let bottom = lines[2 + 8];
        assert!(top.contains('o') || top.contains('x'), "top row empty: {s}");
        assert!(bottom.contains('o') || bottom.contains('x'), "bottom row empty: {s}");
    }

    #[test]
    fn empty_figure_is_graceful() {
        let empty = FigureData {
            id: "none",
            title: "empty".into(),
            x_label: "x",
            y_label: "y",
            series: vec![],
            rows: vec![],
            metrics: vec![],
        };
        assert!(render(&empty, 8).contains("no data"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let flat = FigureData {
            id: "flat",
            title: "flat".into(),
            x_label: "x",
            y_label: "y",
            series: vec!["c".into()],
            rows: vec![(1.0, vec![3.0]), (2.0, vec![3.0])],
            metrics: vec![],
        };
        let s = render(&flat, 6);
        assert!(s.contains('o'));
    }
}
