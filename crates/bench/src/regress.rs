//! Perf-regression harness: pinned DES runs, `BENCH_regress.json`, and a
//! two-file comparator.
//!
//! [`run_pinned`] executes a small pinned subset of the paper's figure
//! configurations — one engine per figure, one traced query per variant,
//! plus a cache-fronted `FTPM+cache` cold+warm pair and a
//! constant-round `sampling`-backend row per figure — entirely on the
//! deterministic DES, and records five metrics per `(figure, variant)`:
//!
//! * `wall_time_ms` — real time the run took (the only nondeterministic
//!   metric; everything else is byte-stable for a given toolchain);
//! * `sim_time_ns` — simulated response time under the paper's 4 KB/s
//!   links;
//! * `total_bytes` — volume transferred;
//! * `dominance_tests` — total dominance tests across all super-peers;
//! * `peak_queue_depth` — worst per-node inbox backlog observed.
//!
//! The `bench-regress` binary writes these as `BENCH_regress.json` at the
//! repository root with schema `{commit, date, entries: [{figure,
//! variant, metric, value}]}`, and [`compare`] diffs two such files: a
//! deterministic entry (`sim_time_ns`, `total_bytes`, `dominance_tests`,
//! `peak_queue_depth`) whose value grew by more than the threshold (15%
//! by default) is a regression and fails the gate (for every metric,
//! higher is worse). `wall_time_ms` movement is *advisory* — reported,
//! never fatal — because wall time depends on the host, not the change
//! under test. Entries present in only one file are likewise reported
//! but never fatal.

use skypeer_core::cached::CachedEngine;
use skypeer_core::{EngineConfig, SkypeerEngine, Variant};
use skypeer_data::{DatasetKind, DatasetSpec, Query};
use skypeer_netsim::cost::CostModel;
use skypeer_netsim::des::LinkModel;
use skypeer_netsim::obs::diff::{LinkAgg, NodeAgg, PhaseAgg, TraceDigest};
use skypeer_netsim::obs::{json, MemTracer, MetricsRegistry, Tracer};
use skypeer_netsim::topology::TopologySpec;
use skypeer_skyline::{DominanceIndex, Subspace};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// One measured value of one pinned run.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchEntry {
    /// Pinned figure id, e.g. `"fig3b_d8"`.
    pub figure: String,
    /// Variant mnemonic (`FTFM` … `naive`).
    pub variant: String,
    /// Metric name (see module docs).
    pub metric: String,
    /// Measured value.
    pub value: f64,
}

/// The machine a report was produced on. Purely descriptive: the
/// comparator never looks at it, but it makes advisory `wall_time_ms`
/// drift interpretable ("the baseline ran on a different CPU").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostFingerprint {
    /// CPU model string (from `/proc/cpuinfo`), or `"unknown"`.
    pub cpu_model: String,
    /// Logical core count visible to the process.
    pub core_count: u64,
    /// `rustc --version` output, or `"unknown"`.
    pub rustc: String,
}

impl HostFingerprint {
    /// Probes the current machine. Never fails — unknown facts come back
    /// as `"unknown"` / `0` so report writing cannot break on exotic
    /// hosts.
    pub fn current() -> Self {
        let cpu_model = std::fs::read_to_string("/proc/cpuinfo")
            .ok()
            .and_then(|text| {
                text.lines().find_map(|l| {
                    l.strip_prefix("model name")
                        .and_then(|rest| rest.split_once(':'))
                        .map(|(_, v)| v.trim().to_string())
                })
            })
            .unwrap_or_else(|| "unknown".to_string());
        let core_count = std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(0);
        let rustc = std::process::Command::new("rustc")
            .arg("--version")
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
            .unwrap_or_else(|| "unknown".to_string());
        HostFingerprint { cpu_model, core_count, rustc }
    }
}

/// A `BENCH_regress.json` document.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// `git rev-parse HEAD` at run time, or `"unknown"`.
    pub commit: String,
    /// UTC date of the run, `YYYY-MM-DD`.
    pub date: String,
    /// Machine the run happened on, when recorded. Optional so older
    /// baselines (and hand-written fixtures) still parse; ignored by
    /// [`compare`].
    pub host: Option<HostFingerprint>,
    /// All measurements, in pinned-run order.
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// Serializes in the `BENCH_regress.json` schema (pretty, stable key
    /// order).
    pub fn to_json(&self) -> String {
        let entries = json::arr(self.entries.iter().map(|e| {
            json::Obj::new()
                .str("figure", &e.figure)
                .str("variant", &e.variant)
                .str("metric", &e.metric)
                .f64("value", e.value)
                .build()
        }));
        let mut doc = json::Obj::new().str("commit", &self.commit).str("date", &self.date);
        if let Some(h) = &self.host {
            let host = json::Obj::new()
                .str("cpu_model", &h.cpu_model)
                .u64("core_count", h.core_count)
                .str("rustc", &h.rustc)
                .build();
            doc = doc.raw("host", &host);
        }
        let compact = doc.raw("entries", &entries).build();
        // Re-indent through the parser so humans can diff the file.
        match serde_json::from_str(&compact) {
            Ok(v) => serde_json::to_string_pretty(&v).unwrap_or(compact),
            Err(_) => compact,
        }
    }

    /// Parses a `BENCH_regress.json` document. The `host` fingerprint is
    /// optional (older baselines predate it).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e:?}"))?;
        let obj = v.as_object().ok_or("top level must be an object")?;
        let commit =
            obj.get("commit").and_then(|c| c.as_str()).ok_or("missing 'commit'")?.to_string();
        let date = obj.get("date").and_then(|d| d.as_str()).ok_or("missing 'date'")?.to_string();
        let host = obj.get("host").map(|h| {
            let s = |k: &str| h.get(k).and_then(|v| v.as_str()).unwrap_or("unknown").to_string();
            HostFingerprint {
                cpu_model: s("cpu_model"),
                core_count: h.get("core_count").and_then(|v| v.as_u64()).unwrap_or(0),
                rustc: s("rustc"),
            }
        });
        let raw = obj.get("entries").and_then(|e| e.as_array()).ok_or("missing 'entries' array")?;
        let mut entries = Vec::with_capacity(raw.len());
        for (i, e) in raw.iter().enumerate() {
            let o = e.as_object().ok_or_else(|| format!("entries[{i}] must be an object"))?;
            let field = |k: &str| -> Result<String, String> {
                o.get(k)
                    .and_then(|s| s.as_str())
                    .map(str::to_string)
                    .ok_or_else(|| format!("entries[{i}] missing '{k}'"))
            };
            entries.push(BenchEntry {
                figure: field("figure")?,
                variant: field("variant")?,
                metric: field("metric")?,
                value: o
                    .get("value")
                    .and_then(|n| n.as_f64())
                    .ok_or_else(|| format!("entries[{i}] missing numeric 'value'"))?,
            });
        }
        Ok(BenchReport { commit, date, host, entries })
    }
}

/// The pinned trace digest of one `(figure, variant)` run — the
/// root-cause companion to the scalar [`BenchEntry`] metrics. Digest
/// files live *alongside* `BENCH_regress.json` (they never change its
/// byte format) and are what the failure path attributes deltas with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FigureDigest {
    /// Pinned figure id, e.g. `"fig3b_d8"`.
    pub figure: String,
    /// Variant mnemonic (`FTFM` … `naive`, `FTPM+cache`).
    pub variant: String,
    /// The run's trace digest.
    pub digest: TraceDigest,
}

/// Serializes pinned digests as a pretty, stable-key-order JSON document
/// (`{commit, digests: [{figure, variant, digest}, …]}`).
pub fn digests_to_json(commit: &str, digests: &[FigureDigest]) -> String {
    let rows = json::arr(digests.iter().map(|d| {
        json::Obj::new()
            .str("figure", &d.figure)
            .str("variant", &d.variant)
            .raw("digest", &d.digest.to_json())
            .build()
    }));
    let compact = json::Obj::new().str("commit", commit).raw("digests", &rows).build();
    match serde_json::from_str(&compact) {
        Ok(v) => serde_json::to_string_pretty(&v).unwrap_or(compact),
        Err(_) => compact,
    }
}

fn digest_from_value(v: &serde_json::Value) -> Result<TraceDigest, String> {
    let u = |o: &serde_json::Value, k: &str| -> Result<u64, String> {
        o.get(k).and_then(|x| x.as_u64()).ok_or_else(|| format!("digest missing u64 '{k}'"))
    };
    let rows = |k: &str| -> Result<Vec<serde_json::Value>, String> {
        Ok(v.get(k)
            .and_then(|x| x.as_array())
            .ok_or_else(|| format!("digest missing array '{k}'"))?
            .clone())
    };
    let mut phases = Vec::new();
    for p in rows("phases")? {
        phases.push(PhaseAgg {
            phase: p
                .get("phase")
                .and_then(|x| x.as_str())
                .ok_or("phase row missing 'phase'")?
                .to_string(),
            spans: u(&p, "spans")?,
            service_ns: u(&p, "service_ns")?,
            dominance_tests: u(&p, "dominance_tests")?,
        });
    }
    let mut nodes = Vec::new();
    for n in rows("nodes")? {
        nodes.push(NodeAgg {
            node: u(&n, "node")? as usize,
            spans: u(&n, "spans")?,
            service_ns: u(&n, "service_ns")?,
            dominance_tests: u(&n, "dominance_tests")?,
            bytes_out: u(&n, "bytes_out")?,
            peak_queue_depth: u(&n, "peak_queue_depth")?,
        });
    }
    let mut links = Vec::new();
    for l in rows("links")? {
        links.push(LinkAgg {
            from: u(&l, "from")? as usize,
            to: u(&l, "to")? as usize,
            messages: u(&l, "messages")?,
            bytes: u(&l, "bytes")?,
            transfer_ns: u(&l, "transfer_ns")?,
        });
    }
    Ok(TraceDigest {
        sim_time_ns: u(v, "sim_time_ns")?,
        total_bytes: u(v, "total_bytes")?,
        dominance_tests: u(v, "dominance_tests")?,
        peak_queue_depth: u(v, "peak_queue_depth")?,
        phases,
        nodes,
        links,
    })
}

/// Parses a [`digests_to_json`] document back into its digests.
pub fn digests_from_json(text: &str) -> Result<Vec<FigureDigest>, String> {
    let v = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e:?}"))?;
    let rows =
        v.get("digests").and_then(|d| d.as_array()).ok_or("digest file missing 'digests' array")?;
    let mut out = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let s = |k: &str| -> Result<String, String> {
            row.get(k)
                .and_then(|x| x.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("digests[{i}] missing '{k}'"))
        };
        out.push(FigureDigest {
            figure: s("figure")?,
            variant: s("variant")?,
            digest: digest_from_value(
                row.get("digest").ok_or_else(|| format!("digests[{i}] missing 'digest'"))?,
            )
            .map_err(|e| format!("digests[{i}]: {e}"))?,
        });
    }
    Ok(out)
}

/// A pinned figure configuration: a small deterministic stand-in for one
/// paper figure, sized to run in well under a second per variant. Public
/// so the CLI's `profile --figure` and the overhead-accounting smoke run
/// the exact workloads the regression gate pins.
pub struct PinnedFigure {
    /// Stable report name (`fig3b_d8`, `fig3d_k2`, `fig4c_deg6`).
    pub figure: &'static str,
    /// Engine configuration of the shrunk figure.
    pub config: EngineConfig,
    /// The one pinned query the figure runs.
    pub query: Query,
}

/// The pinned figure set the regression harness measures.
pub fn pinned_figures() -> Vec<PinnedFigure> {
    let mk = |n_peers: usize, n_superpeers: usize, dim, points, degree: f64, seed: u64| {
        let mut topology = TopologySpec::paper_default(n_superpeers, seed ^ 0xD1CE);
        topology.avg_degree = degree.min(n_superpeers.saturating_sub(1) as f64);
        EngineConfig {
            n_peers,
            n_superpeers,
            dataset: DatasetSpec { dim, points_per_peer: points, kind: DatasetKind::Uniform, seed },
            topology,
            index: DominanceIndex::RTree,
            cost: CostModel::default(),
            link: LinkModel::paper_4kbps(),
            routing: skypeer_core::engine::RoutingMode::Flood,
        }
    };
    vec![
        // Figure 3(b): response time at the paper's default d=8 — shrunk.
        PinnedFigure {
            figure: "fig3b_d8",
            config: mk(80, 8, 8, 60, 4.0, 42),
            query: Query { subspace: Subspace::from_dims(&[0, 3, 6]), initiator: 0 },
        },
        // Figure 3(d): transferred volume, low-dimensional subspace.
        PinnedFigure {
            figure: "fig3d_k2",
            config: mk(80, 8, 6, 60, 4.0, 43),
            query: Query { subspace: Subspace::from_dims(&[1, 4]), initiator: 2 },
        },
        // Figure 4(c): degree sweep point DEG_sp=6 — denser backbone.
        PinnedFigure {
            figure: "fig4c_deg6",
            config: mk(60, 10, 6, 40, 6.0, 44),
            query: Query { subspace: Subspace::from_dims(&[0, 2, 4]), initiator: 5 },
        },
    ]
}

/// Looks one pinned figure up by name.
pub fn pinned_figure(name: &str) -> Option<PinnedFigure> {
    pinned_figures().into_iter().find(|p| p.figure == name)
}

/// The pinned figure names, in report order.
pub fn pinned_figure_names() -> Vec<&'static str> {
    pinned_figures().iter().map(|p| p.figure).collect()
}

/// Runs the pinned subset and returns one entry per
/// `(figure, variant, metric)`.
pub fn run_pinned() -> Vec<BenchEntry> {
    run_pinned_full().0
}

/// [`run_pinned`] plus the per-`(figure, variant)` [`FigureDigest`]s
/// built from the very same traced runs — so the scalar gate and the
/// root-cause digests can never disagree about what was measured.
pub fn run_pinned_full() -> (Vec<BenchEntry>, Vec<FigureDigest>) {
    let mut entries = Vec::new();
    let mut digests = Vec::new();
    for p in pinned_figures() {
        let engine = SkypeerEngine::build(p.config);
        for variant in Variant::ALL {
            let tracer = Arc::new(MemTracer::new());
            let started = Instant::now();
            let out =
                engine.run_query_traced(p.query, variant, Arc::clone(&tracer) as Arc<dyn Tracer>);
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            let events = tracer.take();
            let m = MetricsRegistry::from_events(&events);
            digests.push(FigureDigest {
                figure: p.figure.to_string(),
                variant: variant.mnemonic().to_string(),
                digest: TraceDigest::from_events(&events),
            });
            let mut push = |metric: &str, value: f64| {
                entries.push(BenchEntry {
                    figure: p.figure.to_string(),
                    variant: variant.mnemonic().to_string(),
                    metric: metric.to_string(),
                    value,
                });
            };
            push("wall_time_ms", wall_ms);
            push("sim_time_ns", out.total_time_ns as f64);
            push("total_bytes", out.volume_bytes as f64);
            push("dominance_tests", m.counters.get("dominance_tests").copied().unwrap_or(0) as f64);
            push("peak_queue_depth", m.max_queue_depth() as f64);
        }

        // Cache-on entries: the same query twice through a cache-fronted
        // FTPM engine — a cold miss (Extended run + local refine) followed
        // by a warm hit. The combined totals pin both the cache's miss
        // overhead and its hit savings; growth here means subsumption
        // lookup or refinement got more expensive.
        let variant = Variant::Ftpm;
        let mut cached = CachedEngine::new(&engine, 4 << 20);
        let started = Instant::now();
        let cold_tracer = Arc::new(MemTracer::new());
        let cold = cached.run_query_traced(
            p.query,
            variant,
            Some(Arc::clone(&cold_tracer) as Arc<dyn Tracer>),
        );
        let warm_tracer = Arc::new(MemTracer::new());
        let warm = cached.run_query_traced(
            p.query,
            variant,
            Some(Arc::clone(&warm_tracer) as Arc<dyn Tracer>),
        );
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let mut events = cold_tracer.take();
        events.extend(warm_tracer.take());
        let m = MetricsRegistry::from_events(&events);
        let label = format!("{}+cache", variant.mnemonic());
        digests.push(FigureDigest {
            figure: p.figure.to_string(),
            variant: label.clone(),
            digest: TraceDigest::from_events(&events),
        });
        let mut push = |metric: &str, value: f64| {
            entries.push(BenchEntry {
                figure: p.figure.to_string(),
                variant: label.clone(),
                metric: metric.to_string(),
                value,
            });
        };
        push("wall_time_ms", wall_ms);
        push("sim_time_ns", (cold.outcome.total_time_ns + warm.outcome.total_time_ns) as f64);
        push("total_bytes", (cold.outcome.volume_bytes + warm.outcome.volume_bytes) as f64);
        push(
            "dominance_tests",
            (m.counters.get("dominance_tests").copied().unwrap_or(0)
                + cold.refine_tests
                + warm.refine_tests) as f64,
        );
        push("peak_queue_depth", m.max_queue_depth() as f64);

        // Sampling-backend entries: the same pinned query through the
        // constant-round sampling backend, so the gate pins its costs
        // head-to-head with the SKYPEER variants on identical figures.
        let tracer = Arc::new(MemTracer::new());
        let started = Instant::now();
        let out = engine.run_query_on_backend(
            skypeer_core::BackendKind::Sampling,
            p.query,
            Variant::Ftpm,
            Some(Arc::clone(&tracer) as Arc<dyn Tracer>),
        );
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let events = tracer.take();
        let m = MetricsRegistry::from_events(&events);
        digests.push(FigureDigest {
            figure: p.figure.to_string(),
            variant: "sampling".to_string(),
            digest: TraceDigest::from_events(&events),
        });
        let mut push = |metric: &str, value: f64| {
            entries.push(BenchEntry {
                figure: p.figure.to_string(),
                variant: "sampling".to_string(),
                metric: metric.to_string(),
                value,
            });
        };
        push("wall_time_ms", wall_ms);
        push("sim_time_ns", out.total_time_ns as f64);
        push("total_bytes", out.volume_bytes as f64);
        push("dominance_tests", m.counters.get("dominance_tests").copied().unwrap_or(0) as f64);
        push("peak_queue_depth", m.max_queue_depth() as f64);
    }
    (entries, digests)
}

/// Re-runs the pinned set under the calltree profiler and renders one
/// ranked CPU-share block per `(figure, variant)` plus the `FTPM+cache`
/// cold+warm pair. This is a *separate* pass so the gated metrics in
/// [`run_pinned_full`] are never measured with profiling enabled; the
/// output is wall-clock and therefore advisory, written as a sibling
/// artifact, never part of the gated report's byte format.
pub fn run_pinned_cpu_profile() -> String {
    use skypeer_netsim::obs::{prof, ClockMode};
    let mut out = String::new();
    let mut block = |figure: &str, variant: &str, profile: &skypeer_netsim::obs::Profile| {
        out.push_str(&format!("== {figure} / {variant} ==\n"));
        out.push_str(&profile.render_table());
        out.push('\n');
    };
    for p in pinned_figures() {
        let engine = SkypeerEngine::build(p.config);
        for variant in Variant::ALL {
            let (profile, _) =
                prof::profiled(ClockMode::Monotonic, || engine.run_query(p.query, variant));
            block(p.figure, variant.mnemonic(), &profile);
        }
        let (profile, _) = prof::profiled(ClockMode::Monotonic, || {
            let mut cached = CachedEngine::new(&engine, 4 << 20);
            cached.run_query(p.query, Variant::Ftpm);
            cached.run_query(p.query, Variant::Ftpm)
        });
        block(p.figure, "FTPM+cache", &profile);
    }
    out
}

/// Advisory telemetry pass: replays a short seeded FTPM query stream per
/// pinned figure with per-query telemetry and the default anomaly
/// detector, and reports the incident count. A healthy tree is
/// telemetry-quiet, so any incident here means the figure's steady-state
/// behaviour now looks anomalous to the detector defaults — worth a look,
/// but host-independent-yet-tuning-sensitive, so it is written as a
/// sibling artifact and never gates the report.
pub fn run_pinned_incidents() -> String {
    use crate::soak::{run_soak, SoakSpec, TelemetrySpec};
    use skypeer_data::{InitiatorMix, KMix, MixedWorkloadSpec};
    use skypeer_netsim::obs::SloSpec;
    const QUERIES: usize = 48;
    let mut out = String::new();
    for p in pinned_figures() {
        let engine = SkypeerEngine::build(p.config);
        let spec = SoakSpec {
            variants: vec![Variant::Ftpm],
            workload: MixedWorkloadSpec {
                dim: p.config.dataset.dim,
                queries: QUERIES,
                n_superpeers: p.config.n_superpeers,
                seed: 7,
                k_mix: KMix::Fixed(2),
                initiator_mix: InitiatorMix::Uniform,
            },
            slo: SloSpec::default(),
            tail_k: 1,
            hdr_precision: 7,
            cache_bytes: None,
            telemetry: Some(TelemetrySpec::default()),
            perturb: None,
            audit: None,
            backend: skypeer_core::BackendKind::default(),
        };
        let outcome = run_soak(&engine, &spec, |_| {});
        out.push_str(&format!(
            "figure {}: {} incident(s) over {QUERIES} FTPM queries\n",
            p.figure,
            outcome.incident_count()
        ));
        for v in &outcome.variants {
            if let Some(tel) = &v.telemetry {
                for inc in tel.incidents() {
                    out.push_str(&format!("  {}\n", inc.render()));
                }
            }
        }
    }
    out
}

/// Advisory audit pass: replays a short seeded FTPM query stream per
/// pinned figure with the online auditor sampling every query
/// (shadow-verifying each answer against the raw-data oracle) and
/// reports the per-figure verdict. A healthy tree reports zero
/// violations everywhere; any violation here means the protocol returned
/// a wrong answer on a pinned configuration. Written as a sibling
/// artifact (`*_audit.txt`), never part of the gated report's byte
/// format.
pub fn run_pinned_audit() -> String {
    use crate::soak::{run_soak, SoakAudit, SoakSpec};
    use skypeer_data::{InitiatorMix, KMix, MixedWorkloadSpec};
    use skypeer_netsim::obs::SloSpec;
    const QUERIES: usize = 24;
    let mut out = String::new();
    for p in pinned_figures() {
        let engine = SkypeerEngine::build(p.config);
        let spec = SoakSpec {
            variants: vec![Variant::Ftpm],
            workload: MixedWorkloadSpec {
                dim: p.config.dataset.dim,
                queries: QUERIES,
                n_superpeers: p.config.n_superpeers,
                seed: 7,
                k_mix: KMix::Fixed(2),
                initiator_mix: InitiatorMix::Uniform,
            },
            slo: SloSpec::default(),
            tail_k: 1,
            hdr_precision: 7,
            cache_bytes: None,
            telemetry: None,
            perturb: None,
            audit: Some(SoakAudit { sample_rate: 1.0, ..SoakAudit::default() }),
            backend: skypeer_core::BackendKind::default(),
        };
        let outcome = run_soak(&engine, &spec, |_| {});
        out.push_str(&format!(
            "figure {}: {} violation(s) over {QUERIES} audited FTPM queries\n",
            p.figure,
            outcome.violation_count()
        ));
        if let Some(report) = outcome.audit_report() {
            for line in report.lines() {
                out.push_str(&format!("  {line}\n"));
            }
        }
    }
    out
}

/// One comparator finding.
#[derive(Clone, Debug, PartialEq)]
pub struct Delta {
    /// `figure/variant/metric` key.
    pub key: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// `(current - baseline) / baseline`.
    pub ratio: f64,
}

/// Outcome of diffing two reports.
#[derive(Clone, Debug, Default)]
pub struct Comparison {
    /// Deterministic entries that grew by more than the threshold — the
    /// failures that gate CI.
    pub regressions: Vec<Delta>,
    /// Deterministic entries that shrank by more than the threshold
    /// (informational).
    pub improvements: Vec<Delta>,
    /// `wall_time_ms` entries that moved by more than the threshold in
    /// either direction. Wall time is the one nondeterministic metric
    /// (host load, CPU model), so these are reported but never fatal.
    pub advisory: Vec<Delta>,
    /// Keys only in the current report (non-fatal).
    pub new_entries: Vec<String>,
    /// Keys only in the baseline (non-fatal).
    pub removed_entries: Vec<String>,
}

impl Comparison {
    /// Whether the comparison should fail a gate. Only deterministic
    /// metrics count; advisory (`wall_time_ms`) movement never fails.
    pub fn is_regression(&self) -> bool {
        !self.regressions.is_empty()
    }

    /// Human-readable summary.
    pub fn render(&self, threshold: f64) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "regressions (> {:.0}% growth): {}\n",
            threshold * 100.0,
            self.regressions.len()
        ));
        for d in &self.regressions {
            out.push_str(&format!(
                "  REGRESSED {}  {:.3} -> {:.3}  (+{:.1}%)\n",
                d.key,
                d.baseline,
                d.current,
                d.ratio * 100.0
            ));
        }
        for d in &self.improvements {
            out.push_str(&format!(
                "  improved  {}  {:.3} -> {:.3}  ({:.1}%)\n",
                d.key,
                d.baseline,
                d.current,
                d.ratio * 100.0
            ));
        }
        for d in &self.advisory {
            out.push_str(&format!(
                "  advisory  {}  {:.3} -> {:.3}  ({:+.1}%, wall time, never fatal)\n",
                d.key,
                d.baseline,
                d.current,
                d.ratio * 100.0
            ));
        }
        for k in &self.new_entries {
            out.push_str(&format!("  new       {k} (not compared)\n"));
        }
        for k in &self.removed_entries {
            out.push_str(&format!("  removed   {k} (not compared)\n"));
        }
        out
    }
}

/// Diffs `current` against `baseline`. For every metric here, higher is
/// worse: an entry regresses when
/// `current > baseline * (1 + threshold)` (a zero baseline regresses only
/// if the current value is positive).
pub fn compare(baseline: &BenchReport, current: &BenchReport, threshold: f64) -> Comparison {
    let key = |e: &BenchEntry| format!("{}/{}/{}", e.figure, e.variant, e.metric);
    let base: BTreeMap<String, f64> = baseline.entries.iter().map(|e| (key(e), e.value)).collect();
    let cur: BTreeMap<String, f64> = current.entries.iter().map(|e| (key(e), e.value)).collect();
    let mut cmp = Comparison::default();
    for (k, &b) in &base {
        match cur.get(k) {
            None => cmp.removed_entries.push(k.clone()),
            Some(&c) => {
                let ratio = if b == 0.0 {
                    if c == 0.0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    (c - b) / b
                };
                let delta = Delta { key: k.clone(), baseline: b, current: c, ratio };
                if k.ends_with("/wall_time_ms") {
                    if ratio.abs() > threshold {
                        cmp.advisory.push(delta);
                    }
                } else if ratio > threshold {
                    cmp.regressions.push(delta);
                } else if ratio < -threshold {
                    cmp.improvements.push(delta);
                }
            }
        }
    }
    for k in cur.keys() {
        if !base.contains_key(k) {
            cmp.new_entries.push(k.clone());
        }
    }
    cmp
}

#[cfg(test)]
mod unit {
    use super::*;

    fn report(values: &[(&str, &str, &str, f64)]) -> BenchReport {
        BenchReport {
            commit: "deadbeef".to_string(),
            date: "2026-01-01".to_string(),
            host: None,
            entries: values
                .iter()
                .map(|&(f, v, m, value)| BenchEntry {
                    figure: f.to_string(),
                    variant: v.to_string(),
                    metric: m.to_string(),
                    value,
                })
                .collect(),
        }
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(&[
            ("fig3b_d8", "FTPM", "wall_time_ms", 12.5),
            ("fig3b_d8", "FTPM", "total_bytes", 4096.0),
        ]);
        let cmp = compare(&r, &r, 0.15);
        assert!(!cmp.is_regression());
        assert!(cmp.regressions.is_empty());
        assert!(cmp.improvements.is_empty());
        assert!(cmp.new_entries.is_empty());
        assert!(cmp.removed_entries.is_empty());
    }

    #[test]
    fn twenty_percent_sim_time_growth_is_a_regression() {
        let base = report(&[("fig3b_d8", "RTPM", "sim_time_ns", 10.0)]);
        let cur = report(&[("fig3b_d8", "RTPM", "sim_time_ns", 12.0)]);
        let cmp = compare(&base, &cur, 0.15);
        assert!(cmp.is_regression());
        assert_eq!(cmp.regressions.len(), 1);
        let d = &cmp.regressions[0];
        assert_eq!(d.key, "fig3b_d8/RTPM/sim_time_ns");
        assert!((d.ratio - 0.2).abs() < 1e-12);
        assert!(cmp.render(0.15).contains("REGRESSED fig3b_d8/RTPM/sim_time_ns"));
    }

    #[test]
    fn wall_time_growth_is_advisory_never_fatal() {
        let base = report(&[("fig3b_d8", "RTPM", "wall_time_ms", 10.0)]);
        let cur = report(&[("fig3b_d8", "RTPM", "wall_time_ms", 30.0)]);
        let cmp = compare(&base, &cur, 0.15);
        assert!(!cmp.is_regression(), "wall time must never gate");
        assert!(cmp.regressions.is_empty());
        assert_eq!(cmp.advisory.len(), 1);
        assert_eq!(cmp.advisory[0].key, "fig3b_d8/RTPM/wall_time_ms");
        let text = cmp.render(0.15);
        assert!(text.contains("advisory  fig3b_d8/RTPM/wall_time_ms"));
        assert!(text.contains("never fatal"));
        // Shrinking wall time is advisory too, not an "improvement".
        let cmp = compare(&cur, &base, 0.15);
        assert!(cmp.improvements.is_empty());
        assert_eq!(cmp.advisory.len(), 1);
    }

    #[test]
    fn within_threshold_and_improvements_do_not_fail() {
        let base =
            report(&[("a", "FTFM", "sim_time_ns", 100.0), ("a", "FTFM", "total_bytes", 1000.0)]);
        let cur = report(&[
            ("a", "FTFM", "sim_time_ns", 110.0), // +10% < 15%
            ("a", "FTFM", "total_bytes", 500.0), // big improvement
        ]);
        let cmp = compare(&base, &cur, 0.15);
        assert!(!cmp.is_regression());
        assert_eq!(cmp.improvements.len(), 1);
    }

    #[test]
    fn new_and_removed_entries_are_reported_but_non_fatal() {
        let base =
            report(&[("a", "FTFM", "sim_time_ns", 100.0), ("gone", "FTFM", "sim_time_ns", 5.0)]);
        let cur =
            report(&[("a", "FTFM", "sim_time_ns", 100.0), ("fresh", "naive", "total_bytes", 7.0)]);
        let cmp = compare(&base, &cur, 0.15);
        assert!(!cmp.is_regression());
        assert_eq!(cmp.new_entries, vec!["fresh/naive/total_bytes".to_string()]);
        assert_eq!(cmp.removed_entries, vec!["gone/FTFM/sim_time_ns".to_string()]);
        let text = cmp.render(0.15);
        assert!(text.contains("new       fresh/naive/total_bytes"));
        assert!(text.contains("removed   gone/FTFM/sim_time_ns"));
    }

    #[test]
    fn json_round_trips() {
        let r = report(&[
            ("fig3b_d8", "FTPM", "wall_time_ms", 12.5),
            ("fig4c_deg6", "naive", "peak_queue_depth", 3.0),
        ]);
        let text = r.to_json();
        assert!(text.contains("\"commit\""));
        assert!(text.contains("\"entries\""));
        assert!(!text.contains("\"host\""), "no fingerprint recorded, none serialized");
        let back = BenchReport::from_json(&text).expect("parses");
        assert_eq!(back, r);
    }

    #[test]
    fn host_fingerprint_round_trips_and_never_gates() {
        let mut r = report(&[("a", "FTFM", "sim_time_ns", 100.0)]);
        r.host = Some(HostFingerprint {
            cpu_model: "Engineering Sample 9000".to_string(),
            core_count: 64,
            rustc: "rustc 1.75.0".to_string(),
        });
        let text = r.to_json();
        assert!(text.contains("\"cpu_model\""));
        let back = BenchReport::from_json(&text).expect("parses");
        assert_eq!(back, r);
        // A baseline without a fingerprint compares cleanly against a
        // current report with one: the comparator ignores the host.
        let bare = report(&[("a", "FTFM", "sim_time_ns", 100.0)]);
        let cmp = compare(&bare, &r, 0.15);
        assert!(!cmp.is_regression());
        assert!(cmp.new_entries.is_empty() && cmp.removed_entries.is_empty());
    }

    #[test]
    fn probed_fingerprint_has_no_empty_fields() {
        let h = HostFingerprint::current();
        assert!(!h.cpu_model.is_empty());
        assert!(!h.rustc.is_empty());
    }

    #[test]
    fn digest_documents_round_trip() {
        // A tiny hand-built digest avoids paying for a pinned run here.
        let d = TraceDigest {
            sim_time_ns: 5800,
            total_bytes: 96,
            dominance_tests: 9,
            peak_queue_depth: 2,
            phases: vec![PhaseAgg {
                phase: "started".to_string(),
                spans: 1,
                service_ns: 1000,
                dominance_tests: 3,
            }],
            nodes: vec![NodeAgg {
                node: 0,
                spans: 2,
                service_ns: 1800,
                dominance_tests: 6,
                bytes_out: 64,
                peak_queue_depth: 2,
            }],
            links: vec![LinkAgg { from: 0, to: 1, messages: 1, bytes: 64, transfer_ns: 2000 }],
        };
        let digests = vec![
            FigureDigest {
                figure: "fig3b_d8".to_string(),
                variant: "FTFM".to_string(),
                digest: d.clone(),
            },
            FigureDigest {
                figure: "fig3b_d8".to_string(),
                variant: "FTPM+cache".to_string(),
                digest: d,
            },
        ];
        let text = digests_to_json("deadbeef", &digests);
        assert_eq!(text, digests_to_json("deadbeef", &digests), "byte-deterministic");
        let back = digests_from_json(&text).expect("parses");
        assert_eq!(back, digests);
        assert!(digests_from_json("{}").is_err());
    }

    #[test]
    fn pinned_runs_are_deterministic_where_promised() {
        // Two fresh runs must agree on every metric except wall time.
        let key = |e: &BenchEntry| format!("{}/{}/{}", e.figure, e.variant, e.metric);
        let a: BTreeMap<String, f64> =
            run_pinned().into_iter().map(|e| (key(&e), e.value)).collect();
        let b: BTreeMap<String, f64> =
            run_pinned().into_iter().map(|e| (key(&e), e.value)).collect();
        assert_eq!(a.len(), b.len());
        assert!(a.len() >= 3 * 5 * 5, "3 figures x 5 variants x 5 metrics");
        for (k, va) in &a {
            if k.ends_with("wall_time_ms") {
                continue;
            }
            assert_eq!(Some(va), b.get(k), "{k} must be deterministic");
        }
    }
}
