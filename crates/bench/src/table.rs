//! Plain-text table rendering for figure data.

use crate::experiments::FigureData;

/// Renders a figure as an aligned text table (x column + one column per
/// series), ready for a terminal or EXPERIMENTS.md.
pub fn render(fig: &FigureData) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {} — {}\n", fig.id, fig.title));
    out.push_str(&format!("   ({} vs {})\n", fig.y_label, fig.x_label));

    let mut headers: Vec<String> = vec![fig.x_label.to_string()];
    headers.extend(fig.series.iter().cloned());
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(fig.rows.len());
    for (x, vals) in &fig.rows {
        let mut row = vec![trim_float(*x)];
        row.extend(vals.iter().map(|v| trim_float(*v)));
        rows.push(row);
    }

    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(&headers));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in &rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    if !fig.metrics.is_empty() {
        let cells: Vec<String> =
            fig.metrics.iter().map(|(name, v)| format!("{name}: {}", trim_float(*v))).collect();
        out.push_str(&format!("   [{}]\n", cells.join(" | ")));
    }
    out
}

/// Compact numeric formatting: integers stay integers, everything else
/// keeps three significant decimals.
fn trim_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let fig = FigureData {
            id: "figX",
            title: "demo".into(),
            x_label: "d",
            y_label: "time (s)",
            series: vec!["a".into(), "long-series".into()],
            rows: vec![(5.0, vec![1.0, 2.5]), (10.0, vec![100.25, 0.125])],
            metrics: vec![("queries".into(), 40.0), ("avg dropped/query".into(), 0.0)],
        };
        let s = render(&fig);
        assert!(s.contains("figX"));
        assert!(s.contains("long-series"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 7, "header block + 2 data rows + metrics: {s}");
        assert!(lines[5].contains("0.125"));
        assert!(lines[6].contains("queries: 40") && lines[6].contains("avg dropped/query: 0"));
    }

    #[test]
    fn float_trimming() {
        assert_eq!(trim_float(5.0), "5");
        assert_eq!(trim_float(2.5), "2.500");
        assert_eq!(trim_float(1234.5678), "1234.6");
    }
}
