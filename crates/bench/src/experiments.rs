//! One runner per figure of the paper's evaluation.
//!
//! Defaults (Section 6): `d = 8`, `k = 3`, `DEG_sp = 4`, `N_p = 4000`,
//! 250 points/peer, uniform data, `N_sp = 5%·N_p` (1% for `N_p ≥ 20000`),
//! 100 queries, 4 KB/s links. Runners deviate only where the paper does.

use skypeer_core::{EngineConfig, QueryMetrics, SkypeerEngine, Variant};
use skypeer_data::{DatasetKind, DatasetSpec, WorkloadSpec};
use skypeer_netsim::cost::CostModel;
use skypeer_netsim::des::LinkModel;
use skypeer_netsim::topology::TopologySpec;

/// How far to shrink the paper's setup. Peer counts and query counts are
/// divided; everything else (dimensionality, points/peer, degrees) stays
/// at paper values, so curve *shapes* are preserved.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Peer counts are divided by this (super-peer counts follow the
    /// paper's percentage rule on the reduced peer count).
    pub peer_divisor: usize,
    /// Queries per configuration.
    pub queries: usize,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// Paper-faithful scale: full peer counts, 100 queries.
    pub fn paper() -> Self {
        Scale { peer_divisor: 1, queries: 100, seed: 42 }
    }

    /// Default scale for interactive runs: 1/10 of the peers, 20 queries.
    pub fn reduced() -> Self {
        Scale { peer_divisor: 10, queries: 20, seed: 42 }
    }

    /// Tiny scale for tests and criterion benches.
    pub fn tiny() -> Self {
        Scale { peer_divisor: 100, queries: 4, seed: 42 }
    }

    fn peers(&self, paper_n: usize) -> usize {
        (paper_n / self.peer_divisor).max(40)
    }
}

/// One regenerated figure: an x-sweep with one value column per series.
#[derive(Clone, Debug)]
pub struct FigureData {
    /// Paper figure id, e.g. `"fig3b"`.
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Label of the swept parameter.
    pub x_label: &'static str,
    /// Label of the measured quantity.
    pub y_label: &'static str,
    /// Series names (column headers).
    pub series: Vec<String>,
    /// `(x, values)` rows, one value per series.
    pub rows: Vec<(f64, Vec<f64>)>,
    /// Run-level observability metrics for the whole sweep (e.g. queries
    /// run, average messages/volume/drops per query), rendered as a table
    /// footer and exported to JSON. Empty for figures that run no queries.
    pub metrics: Vec<(String, f64)>,
}

/// Accumulates per-query observability metrics across every `measure`
/// call of one figure, so each regenerated figure also reports how much
/// network traffic (and how many drops) stood behind its curves.
#[derive(Clone, Debug, Default)]
struct MetricsAcc {
    queries: u64,
    sum_messages: f64,
    sum_volume_bytes: f64,
    sum_dropped: f64,
}

impl MetricsAcc {
    fn add(&mut self, m: &QueryMetrics, queries: usize) {
        let q = queries as f64;
        self.queries += queries as u64;
        self.sum_messages += m.avg_messages * q;
        self.sum_volume_bytes += m.avg_volume_bytes * q;
        self.sum_dropped += m.avg_dropped * q;
    }

    fn finish(self) -> Vec<(String, f64)> {
        let q = (self.queries as f64).max(1.0);
        vec![
            ("queries".into(), self.queries as f64),
            ("avg messages/query".into(), self.sum_messages / q),
            ("avg volume KB/query".into(), self.sum_volume_bytes / q / KB),
            ("avg dropped/query".into(), self.sum_dropped / q),
        ]
    }
}

const MS: f64 = 1e6; // ns per millisecond
const KB: f64 = 1024.0;

/// Builds the standard engine for a configuration point.
fn build_engine(
    n_peers: usize,
    dim: usize,
    points_per_peer: usize,
    kind: DatasetKind,
    deg_sp: f64,
    seed: u64,
) -> SkypeerEngine {
    let n_superpeers = EngineConfig::paper_superpeers(n_peers);
    let mut topology = TopologySpec::paper_default(n_superpeers, seed ^ 0xABCD);
    topology.avg_degree = deg_sp.min((n_superpeers.saturating_sub(1)) as f64);
    SkypeerEngine::build(EngineConfig {
        n_peers,
        n_superpeers,
        dataset: DatasetSpec { dim, points_per_peer, kind, seed },
        topology,
        index: skypeer_skyline::DominanceIndex::RTree,
        cost: CostModel::default(),
        link: LinkModel::paper_4kbps(),
        routing: skypeer_core::engine::RoutingMode::Flood,
    })
}

/// Runs `queries` random `k`-subspace queries under `variant`, averages,
/// and feeds the figure-wide metrics accumulator.
fn measure(
    engine: &SkypeerEngine,
    k: usize,
    queries: usize,
    seed: u64,
    variant: Variant,
    acc: &mut MetricsAcc,
) -> QueryMetrics {
    let spec = WorkloadSpec {
        dim: engine.config().dataset.dim,
        k,
        queries,
        n_superpeers: engine.config().n_superpeers,
        seed,
    };
    let outcomes = engine.run_workload(&spec.generate(), variant);
    let m = QueryMetrics::from_outcomes(&outcomes);
    acc.add(&m, queries);
    m
}

/// **Figure 3(a)** — pre-processing selectivities vs data dimensionality.
///
/// Series: `SEL_p` (fraction of raw points peers upload), `SEL_sp`
/// (fraction stored at super-peers after ext-merging), and their ratio.
pub fn fig3a(scale: Scale) -> FigureData {
    let n_peers = scale.peers(4000);
    let mut rows = Vec::new();
    let (mut raw, mut stored) = (0u64, 0u64);
    for dim in 5..=10 {
        let engine = build_engine(n_peers, dim, 250, DatasetKind::Uniform, 4.0, scale.seed);
        let r = engine.preprocess_report();
        raw += r.raw_points as u64;
        stored += r.stored_points as u64;
        rows.push((dim as f64, vec![100.0 * r.sel_p(), 100.0 * r.sel_sp(), 100.0 * r.sel_ratio()]));
    }
    FigureData {
        id: "fig3a",
        title: format!("Pre-processing statistics, uniform, {n_peers} peers"),
        x_label: "d",
        y_label: "% of dataset",
        series: vec!["SEL_p %".into(), "SEL_sp %".into(), "SEL_sp/SEL_p %".into()],
        rows,
        metrics: vec![
            ("raw points (all d)".into(), raw as f64),
            ("stored points (all d)".into(), stored as f64),
        ],
    }
}

/// Shared sweep for Figures 3(b) and 3(c): all five strategies over
/// `d ∈ 5..=10` at the default `k = 3`.
fn sweep_dimensionality(scale: Scale) -> (FigureData, FigureData) {
    let n_peers = scale.peers(4000);
    let mut comp_rows = Vec::new();
    let mut total_rows = Vec::new();
    let mut acc = MetricsAcc::default();
    for dim in 5..=10 {
        let engine = build_engine(n_peers, dim, 250, DatasetKind::Uniform, 4.0, scale.seed);
        let mut comp = Vec::new();
        let mut total = Vec::new();
        for variant in Variant::ALL {
            let m = measure(&engine, 3, scale.queries, scale.seed ^ dim as u64, variant, &mut acc);
            comp.push(m.avg_comp_time_ns / MS);
            total.push(m.avg_total_time_ns / MS);
        }
        comp_rows.push((dim as f64, comp));
        total_rows.push((dim as f64, total));
    }
    let series: Vec<String> = Variant::ALL.iter().map(|v| v.mnemonic().to_string()).collect();
    let metrics = acc.finish();
    (
        FigureData {
            id: "fig3b",
            title: format!("Computational time vs d, uniform, {n_peers} peers, k=3"),
            x_label: "d",
            y_label: "comp time (ms)",
            series: series.clone(),
            rows: comp_rows,
            metrics: metrics.clone(),
        },
        FigureData {
            id: "fig3c",
            title: format!("Total time (4 KB/s links) vs d, uniform, {n_peers} peers, k=3"),
            x_label: "d",
            y_label: "total time (ms)",
            series,
            rows: total_rows,
            metrics,
        },
    )
}

/// **Figure 3(b)** — computational time vs `d` for every strategy.
pub fn fig3b(scale: Scale) -> FigureData {
    sweep_dimensionality(scale).0
}

/// **Figure 3(c)** — total response time (incl. network delay) vs `d`.
pub fn fig3c(scale: Scale) -> FigureData {
    sweep_dimensionality(scale).1
}

/// **Figure 3(d)** — volume of transferred data vs `d`, FTFM vs FTPM,
/// for query dimensionalities `k ∈ {2, 3}`.
pub fn fig3d(scale: Scale) -> FigureData {
    let n_peers = scale.peers(4000);
    let mut rows = Vec::new();
    let mut acc = MetricsAcc::default();
    for dim in 5..=10 {
        let engine = build_engine(n_peers, dim, 250, DatasetKind::Uniform, 4.0, scale.seed);
        let mut vals = Vec::new();
        for k in [2usize, 3] {
            for variant in [Variant::Ftfm, Variant::Ftpm] {
                let m = measure(
                    &engine,
                    k,
                    scale.queries,
                    scale.seed ^ (dim * 10 + k) as u64,
                    variant,
                    &mut acc,
                );
                vals.push(m.avg_volume_bytes / KB);
            }
        }
        rows.push((dim as f64, vals));
    }
    FigureData {
        id: "fig3d",
        title: format!("Volume of messages vs d, uniform, {n_peers} peers"),
        x_label: "d",
        y_label: "volume (KB)",
        series: vec!["FTFM k=2".into(), "FTPM k=2".into(), "FTFM k=3".into(), "FTPM k=3".into()],
        rows,
        metrics: acc.finish(),
    }
}

/// **Figure 3(e)** — computational time vs query dimensionality `k`,
/// fixed (FTFM) vs refined (RTFM) threshold, 12000-peer network.
pub fn fig3e(scale: Scale) -> FigureData {
    let n_peers = scale.peers(12000);
    let engine = build_engine(n_peers, 8, 250, DatasetKind::Uniform, 4.0, scale.seed);
    let mut rows = Vec::new();
    let mut acc = MetricsAcc::default();
    for k in 2..=4 {
        let ft = measure(&engine, k, scale.queries, scale.seed ^ k as u64, Variant::Ftfm, &mut acc);
        let rt = measure(&engine, k, scale.queries, scale.seed ^ k as u64, Variant::Rtfm, &mut acc);
        rows.push((k as f64, vec![ft.avg_comp_time_ns / MS, rt.avg_comp_time_ns / MS]));
    }
    FigureData {
        id: "fig3e",
        title: format!("Computational time vs k: FTFM vs RTFM, uniform, {n_peers} peers"),
        x_label: "k",
        y_label: "comp time (ms)",
        series: vec!["FTFM".into(), "RTFM".into()],
        rows,
        metrics: acc.finish(),
    }
}

/// **Figure 3(f)** — SKYPEER's speed-up over naive (total response time
/// ratio) as the network grows from 4000 to 12000 peers.
pub fn fig3f(scale: Scale) -> FigureData {
    let mut rows = Vec::new();
    let mut acc = MetricsAcc::default();
    for paper_n in [4000usize, 8000, 12000] {
        let n_peers = scale.peers(paper_n);
        let engine = build_engine(n_peers, 8, 250, DatasetKind::Uniform, 4.0, scale.seed);
        let naive = measure(
            &engine,
            3,
            scale.queries,
            scale.seed ^ paper_n as u64,
            Variant::Naive,
            &mut acc,
        );
        let mut vals = Vec::new();
        for variant in Variant::SKYPEER {
            let m =
                measure(&engine, 3, scale.queries, scale.seed ^ paper_n as u64, variant, &mut acc);
            vals.push(naive.avg_total_time_ns / m.avg_total_time_ns);
        }
        rows.push((n_peers as f64, vals));
    }
    FigureData {
        id: "fig3f",
        title: "Speed-up over naive (total time) vs network size".into(),
        x_label: "N_p",
        y_label: "naive / variant",
        series: Variant::SKYPEER.iter().map(|v| v.mnemonic().to_string()).collect(),
        rows,
        metrics: acc.finish(),
    }
}

/// **Figure 4(a)** — total response time vs `k` for every strategy,
/// 12000-peer network.
pub fn fig4a(scale: Scale) -> FigureData {
    let n_peers = scale.peers(12000);
    let engine = build_engine(n_peers, 8, 250, DatasetKind::Uniform, 4.0, scale.seed);
    let mut rows = Vec::new();
    let mut acc = MetricsAcc::default();
    for k in 2..=5 {
        let mut vals = Vec::new();
        for variant in Variant::ALL {
            let m = measure(
                &engine,
                k,
                scale.queries,
                scale.seed ^ (400 + k) as u64,
                variant,
                &mut acc,
            );
            vals.push(m.avg_total_time_ns / MS);
        }
        rows.push((k as f64, vals));
    }
    FigureData {
        id: "fig4a",
        title: format!("Total time vs k, uniform, {n_peers} peers"),
        x_label: "k",
        y_label: "total time (ms)",
        series: Variant::ALL.iter().map(|v| v.mnemonic().to_string()).collect(),
        rows,
        metrics: acc.finish(),
    }
}

/// Shared sweep for Figures 4(b) and 4(c): very large networks,
/// `N_p ∈ {20000, 40000, 60000, 80000}` with `N_sp = 1% · N_p`.
fn sweep_large_networks(scale: Scale) -> (FigureData, FigureData) {
    let mut comp_rows = Vec::new();
    let mut total_rows = Vec::new();
    let mut acc = MetricsAcc::default();
    for paper_n in [20000usize, 40000, 60000, 80000] {
        let n_peers = scale.peers(paper_n);
        // Preserve the paper's 1% super-peer ratio even at reduced scale.
        let n_superpeers = ((n_peers as f64 * 0.01).round() as usize).max(5);
        let mut topology = TopologySpec::paper_default(n_superpeers, scale.seed ^ 0xABCD);
        topology.avg_degree = 4.0f64.min((n_superpeers - 1) as f64);
        let engine = SkypeerEngine::build(EngineConfig {
            n_peers,
            n_superpeers,
            dataset: DatasetSpec {
                dim: 8,
                points_per_peer: 250,
                kind: DatasetKind::Uniform,
                seed: scale.seed,
            },
            topology,
            index: skypeer_skyline::DominanceIndex::RTree,
            cost: CostModel::default(),
            link: LinkModel::paper_4kbps(),
            routing: skypeer_core::engine::RoutingMode::Flood,
        });
        let mut comp = Vec::new();
        let mut total = Vec::new();
        for variant in Variant::ALL {
            let m =
                measure(&engine, 3, scale.queries, scale.seed ^ paper_n as u64, variant, &mut acc);
            comp.push(m.avg_comp_time_ns / MS);
            total.push(m.avg_total_time_ns / MS);
        }
        comp_rows.push((n_peers as f64, comp));
        total_rows.push((n_peers as f64, total));
    }
    let series: Vec<String> = Variant::ALL.iter().map(|v| v.mnemonic().to_string()).collect();
    let metrics = acc.finish();
    (
        FigureData {
            id: "fig4b",
            title: "Computational time vs N_p (N_sp = 1%)".into(),
            x_label: "N_p",
            y_label: "comp time (ms)",
            series: series.clone(),
            rows: comp_rows,
            metrics: metrics.clone(),
        },
        FigureData {
            id: "fig4c",
            title: "Total time vs N_p (N_sp = 1%)".into(),
            x_label: "N_p",
            y_label: "total time (ms)",
            series,
            rows: total_rows,
            metrics,
        },
    )
}

/// **Figure 4(b)** — computational time for 20000–80000 peers.
pub fn fig4b(scale: Scale) -> FigureData {
    sweep_large_networks(scale).0
}

/// **Figure 4(c)** — total time for 20000–80000 peers.
pub fn fig4c(scale: Scale) -> FigureData {
    sweep_large_networks(scale).1
}

/// Shared sweep for Figures 4(d) and 4(e): super-peer connectivity degree
/// `DEG_sp ∈ 4..=7`, 4000-peer network.
fn sweep_degree(scale: Scale) -> (FigureData, FigureData) {
    let n_peers = scale.peers(4000);
    let mut comp_rows = Vec::new();
    let mut total_rows = Vec::new();
    let mut acc = MetricsAcc::default();
    for deg in 4..=7 {
        let engine = build_engine(n_peers, 8, 250, DatasetKind::Uniform, deg as f64, scale.seed);
        let mut comp = Vec::new();
        let mut total = Vec::new();
        for variant in Variant::ALL {
            let m = measure(
                &engine,
                3,
                scale.queries,
                scale.seed ^ (deg * 31) as u64,
                variant,
                &mut acc,
            );
            comp.push(m.avg_comp_time_ns / MS);
            total.push(m.avg_total_time_ns / MS);
        }
        comp_rows.push((deg as f64, comp));
        total_rows.push((deg as f64, total));
    }
    let series: Vec<String> = Variant::ALL.iter().map(|v| v.mnemonic().to_string()).collect();
    let metrics = acc.finish();
    (
        FigureData {
            id: "fig4d",
            title: format!("Computational time vs DEG_sp, {n_peers} peers"),
            x_label: "DEG_sp",
            y_label: "comp time (ms)",
            series: series.clone(),
            rows: comp_rows,
            metrics: metrics.clone(),
        },
        FigureData {
            id: "fig4e",
            title: format!("Total time vs DEG_sp, {n_peers} peers"),
            x_label: "DEG_sp",
            y_label: "total time (ms)",
            series,
            rows: total_rows,
            metrics,
        },
    )
}

/// **Figure 4(d)** — computational time vs `DEG_sp`.
pub fn fig4d(scale: Scale) -> FigureData {
    sweep_degree(scale).0
}

/// **Figure 4(e)** — total time vs `DEG_sp`.
pub fn fig4e(scale: Scale) -> FigureData {
    sweep_degree(scale).1
}

/// **Figure 4(f)** — total time vs points per peer (250–1000).
pub fn fig4f(scale: Scale) -> FigureData {
    let n_peers = scale.peers(4000);
    let mut rows = Vec::new();
    let mut acc = MetricsAcc::default();
    for ppp in [250usize, 500, 750, 1000] {
        let engine = build_engine(n_peers, 8, ppp, DatasetKind::Uniform, 4.0, scale.seed);
        let mut vals = Vec::new();
        for variant in Variant::ALL {
            let m = measure(&engine, 3, scale.queries, scale.seed ^ ppp as u64, variant, &mut acc);
            vals.push(m.avg_total_time_ns / MS);
        }
        rows.push((ppp as f64, vals));
    }
    FigureData {
        id: "fig4f",
        title: format!("Total time vs points per peer, {n_peers} peers"),
        x_label: "points/peer",
        y_label: "total time (ms)",
        series: Variant::ALL.iter().map(|v| v.mnemonic().to_string()).collect(),
        rows,
        metrics: acc.finish(),
    }
}

/// **Figure 4(g)** — clustered 3-d dataset, global skyline queries
/// (`k = d = 3`): computational and total time per strategy. The x column
/// indexes the strategy in [`Variant::ALL`] order.
pub fn fig4g(scale: Scale) -> FigureData {
    let n_peers = scale.peers(4000);
    let engine = build_engine(
        n_peers,
        3,
        250,
        DatasetKind::Clustered { centroids_per_superpeer: 2 },
        4.0,
        scale.seed,
    );
    let mut rows = Vec::new();
    let mut acc = MetricsAcc::default();
    for (i, variant) in Variant::ALL.iter().enumerate() {
        let m = measure(&engine, 3, scale.queries, scale.seed ^ 0x46, *variant, &mut acc);
        rows.push((i as f64, vec![m.avg_comp_time_ns / MS, m.avg_total_time_ns / MS]));
    }
    FigureData {
        id: "fig4g",
        title: format!(
            "Clustered 3-d data, global skyline queries, {n_peers} peers (rows: {})",
            Variant::ALL.map(|v| v.mnemonic()).join(", ")
        ),
        x_label: "variant#",
        y_label: "time (ms)",
        series: vec!["comp (ms)".into(), "total (ms)".into()],
        rows,
        metrics: acc.finish(),
    }
}

/// **Figure 4(h)** — clustered data with growing dimensionality: total
/// time of the fixed- vs refined-threshold variants.
pub fn fig4h(scale: Scale) -> FigureData {
    let n_peers = scale.peers(4000);
    let mut rows = Vec::new();
    let mut acc = MetricsAcc::default();
    for dim in 3..=6 {
        let engine = build_engine(
            n_peers,
            dim,
            250,
            DatasetKind::Clustered { centroids_per_superpeer: 2 },
            4.0,
            scale.seed,
        );
        let k = dim.min(3);
        let mut vals = Vec::new();
        for variant in [Variant::Ftfm, Variant::Ftpm, Variant::Rtfm, Variant::Rtpm] {
            let m = measure(
                &engine,
                k,
                scale.queries,
                scale.seed ^ (0x48 + dim) as u64,
                variant,
                &mut acc,
            );
            vals.push(m.avg_total_time_ns / MS);
        }
        rows.push((dim as f64, vals));
    }
    FigureData {
        id: "fig4h",
        title: format!("Clustered data: total time vs d, {n_peers} peers"),
        x_label: "d",
        y_label: "total time (ms)",
        series: vec!["FTFM".into(), "FTPM".into(), "RTFM".into(), "RTPM".into()],
        rows,
        metrics: acc.finish(),
    }
}

/// **Beyond the paper** — routing ablation: the paper's constrained
/// flooding vs precomputed spanning-tree routing (routing-index style, as
/// in the Edutella systems the paper cites). Series report messages and
/// volume for FTPM across network sizes.
pub fn extra_routing(scale: Scale) -> FigureData {
    use skypeer_core::engine::RoutingMode;
    let mut rows = Vec::new();
    let mut acc = MetricsAcc::default();
    for paper_n in [2000usize, 4000, 8000] {
        let n_peers = scale.peers(paper_n);
        let n_superpeers = EngineConfig::paper_superpeers(n_peers);
        let mut topology = TopologySpec::paper_default(n_superpeers, scale.seed ^ 0xABCD);
        topology.avg_degree = 4.0f64.min((n_superpeers.saturating_sub(1)) as f64);
        let base = EngineConfig {
            n_peers,
            n_superpeers,
            dataset: DatasetSpec {
                dim: 8,
                points_per_peer: 250,
                kind: DatasetKind::Uniform,
                seed: scale.seed,
            },
            topology,
            index: skypeer_skyline::DominanceIndex::RTree,
            cost: CostModel::default(),
            link: LinkModel::paper_4kbps(),
            routing: RoutingMode::Flood,
        };
        let flood = SkypeerEngine::build(base);
        let tree =
            SkypeerEngine::build(EngineConfig { routing: RoutingMode::SpanningTree, ..base });
        let mf =
            measure(&flood, 3, scale.queries, scale.seed ^ paper_n as u64, Variant::Ftpm, &mut acc);
        let mt =
            measure(&tree, 3, scale.queries, scale.seed ^ paper_n as u64, Variant::Ftpm, &mut acc);
        rows.push((
            n_peers as f64,
            vec![
                mf.avg_messages,
                mt.avg_messages,
                mf.avg_volume_bytes / KB,
                mt.avg_volume_bytes / KB,
            ],
        ));
    }
    FigureData {
        id: "extra_routing",
        title: "Ablation (beyond the paper): flooding vs spanning-tree routing, FTPM".into(),
        x_label: "N_p",
        y_label: "msgs / volume",
        series: vec!["flood msgs".into(), "tree msgs".into(), "flood KB".into(), "tree KB".into()],
        rows,
        metrics: acc.finish(),
    }
}

/// **Beyond the paper** — concurrent load: the makespan of a batch of
/// simultaneous FTPM queries vs running them back-to-back, as the batch
/// grows. The paper's evaluation is one-query-at-a-time; this measures a
/// loaded network.
pub fn extra_concurrency(scale: Scale) -> FigureData {
    let n_peers = scale.peers(4000);
    let engine = build_engine(n_peers, 8, 250, DatasetKind::Uniform, 4.0, scale.seed);
    let n_sp = engine.config().n_superpeers;
    let mut rows = Vec::new();
    let mut queries_run = 0u64;
    for batch_size in [1usize, 2, 4, 8] {
        let wl = WorkloadSpec {
            dim: 8,
            k: 3,
            queries: batch_size,
            n_superpeers: n_sp,
            seed: scale.seed ^ batch_size as u64,
        }
        .generate();
        let batch: Vec<(skypeer_data::Query, Variant)> =
            wl.iter().map(|q| (*q, Variant::Ftpm)).collect();
        let concurrent = engine.run_concurrent(&batch);
        let serial_sum: u64 =
            wl.iter().map(|q| engine.run_query(*q, Variant::Ftpm).total_time_ns).sum();
        queries_run += 2 * batch_size as u64;
        rows.push((
            batch_size as f64,
            vec![concurrent.makespan_ns as f64 / MS, serial_sum as f64 / MS],
        ));
    }
    FigureData {
        id: "extra_concurrency",
        title: format!(
            "Ablation (beyond the paper): concurrent batch makespan vs serial, FTPM, {n_peers} peers"
        ),
        x_label: "batch size",
        y_label: "time (ms)",
        series: vec!["concurrent makespan".into(), "serial sum".into()],
        rows,
        metrics: vec![("queries".into(), queries_run as f64)],
    }
}

/// A figure runner: scale in, regenerated figure out.
pub type FigureRunner = fn(Scale) -> FigureData;

/// Every figure runner, in paper order, for `figures --all` style loops.
pub fn all_figures() -> Vec<(&'static str, FigureRunner)> {
    vec![
        ("fig3a", fig3a as fn(Scale) -> FigureData),
        ("fig3b", fig3b),
        ("fig3c", fig3c),
        ("fig3d", fig3d),
        ("fig3e", fig3e),
        ("fig3f", fig3f),
        ("fig4a", fig4a),
        ("fig4b", fig4b),
        ("fig4c", fig4c),
        ("fig4d", fig4d),
        ("fig4e", fig4e),
        ("fig4f", fig4f),
        ("fig4g", fig4g),
        ("fig4h", fig4h),
        ("extra_routing", extra_routing),
        ("extra_concurrency", extra_concurrency),
    ]
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn scale_floors_peer_counts() {
        let s = Scale::tiny();
        assert_eq!(s.peers(4000), 40);
        assert_eq!(s.peers(80000), 800);
        assert_eq!(Scale::paper().peers(4000), 4000);
    }

    #[test]
    fn fig3a_selectivities_are_sane_and_monotone_in_d() {
        let fig = fig3a(Scale::tiny());
        assert_eq!(fig.rows.len(), 6);
        for (d, vals) in &fig.rows {
            assert!(*d >= 5.0 && *d <= 10.0);
            let (sel_p, sel_sp, ratio) = (vals[0], vals[1], vals[2]);
            assert!(sel_p > 0.0 && sel_p <= 100.0);
            assert!(sel_sp <= sel_p, "merging cannot grow the store (d={d})");
            assert!(ratio <= 100.0 + 1e-9);
        }
        // Ext-skyline fraction grows with dimensionality.
        let first = fig.rows.first().expect("rows").1[0];
        let last = fig.rows.last().expect("rows").1[0];
        assert!(last > first, "SEL_p should grow with d ({first} → {last})");
    }

    #[test]
    fn fig3f_speedups_favor_skypeer() {
        // At tiny scale the RT* variants can pay their extra round trips
        // without the threshold saving much, so allow a few percent of
        // slack; the paper-scale claim is "never substantially worse".
        let fig = fig3f(Scale::tiny());
        for (_, vals) in &fig.rows {
            for v in vals {
                assert!(*v >= 0.9, "SKYPEER should never lose big to naive, speedup {v}");
            }
        }
    }

    #[test]
    fn all_figures_registry_is_complete() {
        let ids: Vec<&str> = all_figures().iter().map(|(id, _)| *id).collect();
        assert_eq!(ids.len(), 16, "14 paper figures + 2 ablations");
        assert!(ids.contains(&"fig3a") && ids.contains(&"fig4h") && ids.contains(&"extra_routing"));
        assert!(ids.contains(&"extra_concurrency"));
    }

    #[test]
    fn concurrency_ablation_beats_serial_sum() {
        let fig = extra_concurrency(Scale::tiny());
        for (batch, vals) in &fig.rows {
            if *batch > 1.0 {
                assert!(
                    vals[0] < vals[1],
                    "batch {batch}: makespan {} should beat serial {}",
                    vals[0],
                    vals[1]
                );
            }
        }
    }

    #[test]
    fn routing_ablation_tree_never_chattier() {
        let fig = extra_routing(Scale::tiny());
        for (_, vals) in &fig.rows {
            assert!(vals[1] <= vals[0], "tree msgs {} > flood msgs {}", vals[1], vals[0]);
            assert!(vals[3] <= vals[2], "tree volume beats flooding");
        }
    }
}
