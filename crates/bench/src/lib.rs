#![warn(missing_docs)]

//! Experiment harness: runners that regenerate every figure of the
//! SKYPEER paper's evaluation (Section 6).
//!
//! Each `figN*` function builds the networks that figure sweeps over, runs
//! the query workload under the relevant variants, and returns a
//! [`FigureData`] table whose rows mirror the paper's plotted series. The
//! `figures` binary prints them; the criterion benches reuse the same
//! runners at small scale.
//!
//! Paper-scale networks (up to 80 000 peers / 20 M points) are expensive;
//! runners take a [`Scale`] that divides the peer counts and query counts
//! so the default invocation finishes in minutes while preserving the
//! *shape* of every curve. `Scale::paper()` reproduces the full setup.

pub mod diff;
pub mod experiments;
pub mod plot;
pub mod regress;
pub mod soak;
pub mod table;

pub use diff::{diff_soak_summaries, SoakSummaryDiff, StatDrift, VariantDrift};
pub use experiments::{FigureData, Scale};
pub use regress::{
    compare, digests_from_json, digests_to_json, run_pinned_full, BenchEntry, BenchReport,
    Comparison, FigureDigest, HostFingerprint,
};
pub use soak::{run_soak, QueryRow, SoakOutcome, SoakSpec, VariantSoak};
