//! Soak-summary diffing: per-variant percentile drift, cache hit-rate
//! deltas, and SLO margin movement between two `SOAK_summary.json`
//! documents (see [`crate::soak::SoakOutcome::summary_json`]).
//!
//! This is the workload-level counterpart of the per-trace attribution
//! in `skypeer_obs::diff`: where a trace diff names the phase/node/link
//! behind a single query's delta, a soak diff names the variant and
//! statistic behind a workload's drift. Output is byte-deterministic
//! (stable key order, [`json`]-formatted floats) so it can be
//! golden-pinned like every other report in the repo.

use skypeer_netsim::obs::json::{self, float, Obj};
use std::collections::BTreeSet;

/// The latency/volume percentile statistics a soak summary records, in
/// report order.
const PCT_STATS: [&str; 6] = ["p50", "p90", "p99", "p999", "min", "max"];
/// The per-variant totals a soak summary records, in report order.
const TOTAL_STATS: [&str; 4] = ["sim_time_ns", "bytes", "messages", "dominance_tests"];

/// One statistic's movement between baseline and candidate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatDrift {
    /// Statistic name (`p50` … `max`, or a totals key).
    pub stat: String,
    /// Baseline value.
    pub baseline: u64,
    /// Candidate value.
    pub candidate: u64,
}

impl StatDrift {
    /// Signed delta, candidate − baseline.
    pub fn delta(&self) -> i64 {
        self.candidate as i64 - self.baseline as i64
    }
}

/// One SLO check's margin (budget − actual; positive = headroom)
/// movement. `None` margins mean the check was absent (or had no
/// samples) on that side.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SloMarginMove {
    /// The objective, e.g. `"latency_p99_ns"`.
    pub metric: String,
    /// Baseline margin.
    pub baseline_margin: Option<i64>,
    /// Candidate margin.
    pub candidate_margin: Option<i64>,
}

/// One variant's drift between two soak summaries.
#[derive(Clone, Debug, PartialEq)]
pub struct VariantDrift {
    /// Variant mnemonic.
    pub variant: String,
    /// Latency percentile drift (`latency_ns` histogram).
    pub latency_ns: Vec<StatDrift>,
    /// Per-query volume percentile drift (`volume_bytes` histogram).
    pub volume_bytes: Vec<StatDrift>,
    /// Totals drift.
    pub totals: Vec<StatDrift>,
    /// Cache hit rates, when either side ran cache-fronted.
    pub cache_hit_rate: Option<(Option<f64>, Option<f64>)>,
    /// SLO margin movement, one row per check present on either side.
    pub slo: Vec<SloMarginMove>,
}

/// The full diff of two soak summaries.
#[derive(Clone, Debug, PartialEq)]
pub struct SoakSummaryDiff {
    /// Gate outcome on each side.
    pub baseline_pass: bool,
    /// Candidate gate outcome.
    pub candidate_pass: bool,
    /// Per-variant drift, in baseline variant order.
    pub variants: Vec<VariantDrift>,
    /// Variants only the baseline ran.
    pub only_in_baseline: Vec<String>,
    /// Variants only the candidate ran.
    pub only_in_candidate: Vec<String>,
}

type Value = serde_json::Value;

fn req<'a>(v: &'a Value, key: &str, what: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("{what} missing '{key}'"))
}

fn req_u64(v: &Value, key: &str, what: &str) -> Result<u64, String> {
    req(v, key, what)?.as_u64().ok_or_else(|| format!("{what}.{key} is not a u64"))
}

fn req_bool(v: &Value, key: &str, what: &str) -> Result<bool, String> {
    match req(v, key, what)? {
        Value::Bool(b) => Ok(*b),
        _ => Err(format!("{what}.{key} is not a bool")),
    }
}

/// One parsed variant block of a summary.
struct VariantBlock {
    variant: String,
    latency: Vec<(String, u64)>,
    volume: Vec<(String, u64)>,
    totals: Vec<(String, u64)>,
    cache_hit_rate: Option<f64>,
    /// `metric -> margin` (budget − actual; `None` actual = no samples).
    slo: Vec<(String, Option<i64>)>,
}

fn parse_variants(doc: &Value) -> Result<Vec<VariantBlock>, String> {
    let rows =
        req(doc, "variants", "summary")?.as_array().ok_or("summary.variants is not an array")?;
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let variant =
            req(row, "variant", "variant")?.as_str().ok_or("variant name not a string")?;
        let stats = |key: &str| -> Result<Vec<(String, u64)>, String> {
            let obj = req(row, key, variant)?;
            PCT_STATS.iter().map(|&s| Ok((s.to_string(), req_u64(obj, s, key)?))).collect()
        };
        let totals_obj = req(row, "totals", variant)?;
        let totals = TOTAL_STATS
            .iter()
            .map(|&s| Ok((s.to_string(), req_u64(totals_obj, s, "totals")?)))
            .collect::<Result<Vec<_>, String>>()?;
        let cache_hit_rate = match row.get("cache") {
            Some(c) => Some(
                req(c, "hit_rate", "cache")?.as_f64().ok_or("cache.hit_rate is not a number")?,
            ),
            None => None,
        };
        let mut slo = Vec::new();
        if let Some(checks) = req(row, "slo", variant)?.get("checks").and_then(|c| c.as_array()) {
            for c in checks {
                let metric =
                    req(c, "metric", "slo check")?.as_str().ok_or("slo metric not a string")?;
                let budget = req_u64(c, "budget", "slo check")? as i64;
                let margin = c.get("actual").and_then(|a| a.as_u64()).map(|a| budget - a as i64);
                slo.push((metric.to_string(), margin));
            }
        }
        out.push(VariantBlock {
            variant: variant.to_string(),
            latency: stats("latency_ns")?,
            volume: stats("volume_bytes")?,
            totals,
            cache_hit_rate,
            slo,
        });
    }
    Ok(out)
}

fn drift(base: &[(String, u64)], cand: &[(String, u64)]) -> Vec<StatDrift> {
    base.iter()
        .filter_map(|(stat, b)| {
            cand.iter().find(|(s, _)| s == stat).map(|(_, c)| StatDrift {
                stat: stat.clone(),
                baseline: *b,
                candidate: *c,
            })
        })
        .collect()
}

/// Diffs two soak-summary JSON documents. Variants are aligned by name;
/// within a variant every pinned statistic is reported (changed or not)
/// so goldens stay stable when nothing moves.
pub fn diff_soak_summaries(baseline: &str, candidate: &str) -> Result<SoakSummaryDiff, String> {
    let b: Value =
        serde_json::from_str(baseline).map_err(|e| format!("baseline: invalid JSON: {e:?}"))?;
    let c: Value =
        serde_json::from_str(candidate).map_err(|e| format!("candidate: invalid JSON: {e:?}"))?;
    let bv = parse_variants(&b).map_err(|e| format!("baseline: {e}"))?;
    let cv = parse_variants(&c).map_err(|e| format!("candidate: {e}"))?;

    let mut variants = Vec::new();
    let mut only_in_baseline = Vec::new();
    for vb in &bv {
        let Some(vc) = cv.iter().find(|v| v.variant == vb.variant) else {
            only_in_baseline.push(vb.variant.clone());
            continue;
        };
        let cache_hit_rate = if vb.cache_hit_rate.is_some() || vc.cache_hit_rate.is_some() {
            Some((vb.cache_hit_rate, vc.cache_hit_rate))
        } else {
            None
        };
        let metrics: BTreeSet<String> =
            vb.slo.iter().chain(vc.slo.iter()).map(|(m, _)| m.clone()).collect();
        let slo = metrics
            .into_iter()
            .map(|metric| SloMarginMove {
                baseline_margin: vb.slo.iter().find(|(m, _)| *m == metric).and_then(|(_, v)| *v),
                candidate_margin: vc.slo.iter().find(|(m, _)| *m == metric).and_then(|(_, v)| *v),
                metric,
            })
            .collect();
        variants.push(VariantDrift {
            variant: vb.variant.clone(),
            latency_ns: drift(&vb.latency, &vc.latency),
            volume_bytes: drift(&vb.volume, &vc.volume),
            totals: drift(&vb.totals, &vc.totals),
            cache_hit_rate,
            slo,
        });
    }
    let only_in_candidate = cv
        .iter()
        .filter(|v| !bv.iter().any(|b| b.variant == v.variant))
        .map(|v| v.variant.clone())
        .collect();

    Ok(SoakSummaryDiff {
        baseline_pass: req_bool(&b, "pass", "baseline summary")?,
        candidate_pass: req_bool(&c, "pass", "candidate summary")?,
        variants,
        only_in_baseline,
        only_in_candidate,
    })
}

fn drift_arr(rows: &[StatDrift]) -> String {
    json::arr(rows.iter().map(|d| {
        Obj::new()
            .str("stat", &d.stat)
            .u64("baseline", d.baseline)
            .u64("candidate", d.candidate)
            .raw("delta", &d.delta().to_string())
            .build()
    }))
}

fn opt_i64(v: Option<i64>) -> String {
    v.map_or("null".to_string(), |x| x.to_string())
}

impl SoakSummaryDiff {
    /// `true` when nothing moved anywhere: every statistic, hit rate,
    /// SLO margin, and gate outcome is identical.
    pub fn all_zero(&self) -> bool {
        self.baseline_pass == self.candidate_pass
            && self.only_in_baseline.is_empty()
            && self.only_in_candidate.is_empty()
            && self.variants.iter().all(|v| {
                v.latency_ns.iter().all(|d| d.delta() == 0)
                    && v.volume_bytes.iter().all(|d| d.delta() == 0)
                    && v.totals.iter().all(|d| d.delta() == 0)
                    && v.cache_hit_rate.is_none_or(|(b, c)| b == c)
                    && v.slo.iter().all(|m| m.baseline_margin == m.candidate_margin)
            })
    }

    /// Deterministic JSON rendering (via the shared [`json`] builder).
    pub fn to_json(&self) -> String {
        let variants = json::arr(self.variants.iter().map(|v| {
            let mut o = Obj::new()
                .str("variant", &v.variant)
                .raw("latency_ns", &drift_arr(&v.latency_ns))
                .raw("volume_bytes", &drift_arr(&v.volume_bytes))
                .raw("totals", &drift_arr(&v.totals));
            if let Some((b, c)) = v.cache_hit_rate {
                let fmt = |x: Option<f64>| x.map_or("null".to_string(), float);
                o = o.raw(
                    "cache_hit_rate",
                    &Obj::new().raw("baseline", &fmt(b)).raw("candidate", &fmt(c)).build(),
                );
            }
            let slo = json::arr(v.slo.iter().map(|m| {
                Obj::new()
                    .str("metric", &m.metric)
                    .raw("baseline_margin", &opt_i64(m.baseline_margin))
                    .raw("candidate_margin", &opt_i64(m.candidate_margin))
                    .build()
            }));
            o.raw("slo_margins", &slo).build()
        }));
        Obj::new()
            .bool("all_zero", self.all_zero())
            .bool("baseline_pass", self.baseline_pass)
            .bool("candidate_pass", self.candidate_pass)
            .raw("variants", &variants)
            .raw(
                "only_in_baseline",
                &json::arr(
                    self.only_in_baseline.iter().map(|s| format!("\"{}\"", json::escape(s))),
                ),
            )
            .raw(
                "only_in_candidate",
                &json::arr(
                    self.only_in_candidate.iter().map(|s| format!("\"{}\"", json::escape(s))),
                ),
            )
            .build()
    }

    /// Human-readable table, one block per variant.
    pub fn render(&self) -> String {
        let mut out = String::from("soak summary diff (candidate vs baseline)\n");
        out.push_str(&format!(
            "  gate: baseline {} -> candidate {}\n",
            if self.baseline_pass { "PASS" } else { "FAIL" },
            if self.candidate_pass { "PASS" } else { "FAIL" },
        ));
        if self.all_zero() {
            out.push_str("  summaries are identical: no drift\n");
            return out;
        }
        for v in &self.variants {
            out.push_str(&format!("  variant {}\n", v.variant));
            let mut section = |name: &str, rows: &[StatDrift]| {
                for d in rows {
                    if d.delta() != 0 {
                        out.push_str(&format!(
                            "    {name}.{:<16} {:+}  ({} -> {})\n",
                            d.stat,
                            d.delta(),
                            d.baseline,
                            d.candidate
                        ));
                    }
                }
            };
            section("latency_ns", &v.latency_ns);
            section("volume_bytes", &v.volume_bytes);
            section("totals", &v.totals);
            if let Some((b, c)) = v.cache_hit_rate {
                if b != c {
                    let fmt = |x: Option<f64>| x.map_or("n/a".to_string(), |f| format!("{f:.4}"));
                    out.push_str(&format!(
                        "    cache.hit_rate          {} -> {}\n",
                        fmt(b),
                        fmt(c)
                    ));
                }
            }
            for m in &v.slo {
                if m.baseline_margin != m.candidate_margin {
                    let fmt = |x: Option<i64>| x.map_or("n/a".to_string(), |v| format!("{v}"));
                    out.push_str(&format!(
                        "    slo_margin.{:<14} {} -> {}\n",
                        m.metric,
                        fmt(m.baseline_margin),
                        fmt(m.candidate_margin)
                    ));
                }
            }
        }
        for v in &self.only_in_baseline {
            out.push_str(&format!("  only in baseline: {v}\n"));
        }
        for v in &self.only_in_candidate {
            out.push_str(&format!("  only in candidate: {v}\n"));
        }
        out
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    fn summary(
        variant: &str,
        p99: u64,
        sim_time: u64,
        hit_rate: Option<f64>,
        pass: bool,
    ) -> String {
        let cache = hit_rate
            .map(|h| {
                format!(
                    r#","cache":{{"hit_rate":{h},"lookups":10,"exact_hits":3,"subsumption_hits":2,"misses":5,"stale_rejects":0,"coalesced":0,"admissions":5,"evictions":0,"bytes_saved":1000}}"#
                )
            })
            .unwrap_or_default();
        format!(
            r#"{{"workload":{{"dim":6,"queries":10,"n_superpeers":6,"seed":7,"k_mix":"uniform","initiator_mix":"fixed"}},"tail_k":3,"hdr_precision":7,"pass":{pass},"variants":[{{"variant":"{variant}","queries":10,"latency_ns":{{"p50":100,"p90":200,"p99":{p99},"p999":{p99},"min":50,"max":{p99},"mean":123.5}},"volume_bytes":{{"p50":10,"p90":20,"p99":30,"p999":30,"min":5,"max":30,"mean":15.0}},"totals":{{"sim_time_ns":{sim_time},"bytes":4000,"messages":60,"dominance_tests":900}}{cache},"slo":{{"label":"{variant}","pass":{pass},"checks":[{{"metric":"latency_p99_ns","budget":1000,"actual":{p99},"pass":{pass}}}]}},"worst":[]}}]}}"#
        )
    }

    #[test]
    fn identical_summaries_diff_to_all_zero() {
        let s = summary("rtpm", 300, 5000, None, true);
        let d = diff_soak_summaries(&s, &s).expect("parses");
        assert!(d.all_zero());
        assert!(d.render().contains("no drift"));
        assert!(d.to_json().starts_with("{\"all_zero\":true,"));
        assert_eq!(d.to_json(), diff_soak_summaries(&s, &s).unwrap().to_json());
    }

    #[test]
    fn drift_is_reported_per_stat_with_slo_margins() {
        let base = summary("rtpm", 300, 5000, None, true);
        let cand = summary("rtpm", 800, 9000, None, true);
        let d = diff_soak_summaries(&base, &cand).expect("parses");
        assert!(!d.all_zero());
        let v = &d.variants[0];
        let p99 = v.latency_ns.iter().find(|s| s.stat == "p99").unwrap();
        assert_eq!((p99.baseline, p99.candidate), (300, 800));
        let sim = v.totals.iter().find(|s| s.stat == "sim_time_ns").unwrap();
        assert_eq!(sim.delta(), 4000);
        // Margin: budget 1000 − actual, so 700 -> 200.
        assert_eq!(
            v.slo,
            vec![SloMarginMove {
                metric: "latency_p99_ns".to_string(),
                baseline_margin: Some(700),
                candidate_margin: Some(200),
            }]
        );
        let text = d.render();
        assert!(text.contains("latency_ns.p99"));
        assert!(text.contains("slo_margin.latency_p99_ns 700 -> 200"));
    }

    #[test]
    fn cache_hit_rate_movement_and_variant_mismatch() {
        let base = summary("ftpm", 300, 5000, Some(0.25), true);
        let cand = summary("ftpm", 300, 5000, Some(0.5), true);
        let d = diff_soak_summaries(&base, &cand).expect("parses");
        assert_eq!(d.variants[0].cache_hit_rate, Some((Some(0.25), Some(0.5))));
        assert!(!d.all_zero());
        assert!(d.render().contains("cache.hit_rate"));
        // Different variant sets are reported, not an error.
        let other = summary("naive", 300, 5000, None, true);
        let d = diff_soak_summaries(&base, &other).expect("parses");
        assert_eq!(d.only_in_baseline, vec!["ftpm".to_string()]);
        assert_eq!(d.only_in_candidate, vec!["naive".to_string()]);
        assert!(!d.all_zero());
    }

    #[test]
    fn gate_flip_alone_is_not_all_zero() {
        let base = summary("rtfm", 300, 5000, None, true);
        let cand = summary("rtfm", 300, 5000, None, false);
        let d = diff_soak_summaries(&base, &cand).expect("parses");
        assert!(!d.all_zero());
        assert!(d.render().contains("PASS") && d.render().contains("FAIL"));
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        assert!(diff_soak_summaries("nope", "{}").unwrap_err().contains("baseline"));
        assert!(diff_soak_summaries("{}", "{}").unwrap_err().contains("variants"));
    }
}
