//! R-tree microbenchmarks: the dominance-window operations Algorithm 1
//! performs per candidate, plus construction paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skypeer_rtree::RTree;
use std::hint::black_box;

fn points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect()).collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree/build");
    for n in [1_000usize, 10_000] {
        let pts = points(n, 3, 1);
        group.bench_with_input(BenchmarkId::new("insert", n), &n, |b, _| {
            b.iter(|| {
                let mut t = RTree::new(3);
                for (i, p) in pts.iter().enumerate() {
                    t.insert(p, i as u64);
                }
                black_box(t.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("bulk_load", n), &n, |b, _| {
            let refs: Vec<(&[f64], u64)> =
                pts.iter().enumerate().map(|(i, p)| (p.as_slice(), i as u64)).collect();
            b.iter(|| black_box(RTree::bulk_load(3, &refs).len()));
        });
    }
    group.finish();
}

fn bench_dominance_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree/dominance");
    for n in [1_000usize, 10_000] {
        let pts = points(n, 3, 2);
        let mut tree = RTree::new(3);
        for (i, p) in pts.iter().enumerate() {
            tree.insert(p, i as u64);
        }
        let probes = points(256, 3, 3);
        group.bench_with_input(BenchmarkId::new("is_dominated", n), &n, |b, _| {
            b.iter(|| {
                let mut hits = 0u32;
                for p in &probes {
                    hits += u32::from(tree.is_dominated(p));
                }
                black_box(hits)
            });
        });
        group.bench_with_input(BenchmarkId::new("window_collect", n), &n, |b, _| {
            b.iter(|| {
                let mut total = 0usize;
                for p in probes.iter().take(16) {
                    total += tree.window_collect(&skypeer_rtree::Rect::from_origin(p)).len();
                }
                black_box(total)
            });
        });
    }
    group.finish();
}

fn bench_knn(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree/knn");
    let pts = points(10_000, 3, 9);
    let refs: Vec<(&[f64], u64)> =
        pts.iter().enumerate().map(|(i, p)| (p.as_slice(), i as u64)).collect();
    let tree = RTree::bulk_load(3, &refs);
    let probes = points(64, 3, 10);
    for k in [1usize, 10, 100] {
        group.bench_with_input(BenchmarkId::new("k", k), &k, |b, &k| {
            b.iter(|| {
                let mut total = 0usize;
                for q in &probes {
                    total += tree.nearest(q, k).len();
                }
                black_box(total)
            });
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_build, bench_dominance_ops, bench_knn
);
criterion_main!(benches);
