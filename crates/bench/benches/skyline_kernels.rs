//! Microbenchmarks of the centralized skyline kernels: BNL, SFS, D&C, and
//! the paper's threshold-based Algorithm 1 (linear and R-tree indexed),
//! plus Algorithm 2 merging. These quantify the ablation DESIGN.md calls
//! out: what the f(p)-sorted threshold scan buys over scan-everything
//! engines, on both friendly (uniform) and adversarial (anticorrelated)
//! data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skypeer_data::{DatasetKind, DatasetSpec};
use skypeer_skyline::sorted::threshold_skyline;
use skypeer_skyline::{bnl, dnc, merge, sfs};
use skypeer_skyline::{Dominance, DominanceIndex, PointSet, SortedDataset, Subspace};
use std::hint::black_box;

fn dataset(kind: DatasetKind, n: usize, dim: usize) -> PointSet {
    let spec = DatasetSpec { dim, points_per_peer: n, kind, seed: 99 };
    spec.generate_peer(0, 0)
}

fn bench_engines(c: &mut Criterion) {
    let dim = 8;
    let u = Subspace::from_dims(&[0, 3, 6]);
    for (kind, label) in
        [(DatasetKind::Uniform, "uniform"), (DatasetKind::Anticorrelated, "anticorrelated")]
    {
        let mut group = c.benchmark_group(format!("skyline/{label}"));
        for n in [1_000usize, 10_000] {
            let set = dataset(kind, n, dim);
            let sorted = SortedDataset::from_set(&set);
            group.bench_with_input(BenchmarkId::new("bnl", n), &n, |b, _| {
                b.iter(|| black_box(bnl::skyline(&set, u, Dominance::Standard)));
            });
            group.bench_with_input(BenchmarkId::new("sfs", n), &n, |b, _| {
                b.iter(|| black_box(sfs::skyline(&set, u, Dominance::Standard)));
            });
            group.bench_with_input(BenchmarkId::new("dnc", n), &n, |b, _| {
                b.iter(|| black_box(dnc::skyline(&set, u, Dominance::Standard)));
            });
            group.bench_with_input(BenchmarkId::new("alg1-linear", n), &n, |b, _| {
                b.iter(|| {
                    black_box(threshold_skyline(
                        &sorted,
                        u,
                        Dominance::Standard,
                        f64::INFINITY,
                        DominanceIndex::Linear,
                    ))
                });
            });
            group.bench_with_input(BenchmarkId::new("alg1-rtree", n), &n, |b, _| {
                b.iter(|| {
                    black_box(threshold_skyline(
                        &sorted,
                        u,
                        Dominance::Standard,
                        f64::INFINITY,
                        DominanceIndex::RTree,
                    ))
                });
            });
        }
        group.finish();
    }
}

fn bench_ext_skyline(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext-skyline");
    for dim in [5usize, 8, 10] {
        let set = dataset(DatasetKind::Uniform, 5_000, dim);
        group.bench_with_input(BenchmarkId::new("alg1-ext", dim), &dim, |b, _| {
            b.iter(|| {
                black_box(skypeer_skyline::extended::ext_skyline(&set, DominanceIndex::RTree))
            });
        });
    }
    group.finish();
}

fn bench_bbs_and_skyband(c: &mut Criterion) {
    let set = dataset(DatasetKind::Uniform, 5_000, 8);
    let u = Subspace::from_dims(&[0, 3, 6]);
    let mut group = c.benchmark_group("extras");
    group.bench_function("bbs-5000", |b| {
        b.iter(|| black_box(skypeer_skyline::bbs::skyline_ids(&set, u, Dominance::Standard)));
    });
    for k in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("skyband-2000", k), &k, |b, &k| {
            let small = dataset(DatasetKind::Uniform, 2_000, 8);
            b.iter(|| {
                black_box(skypeer_skyline::skyband::skyband(&small, u, k, Dominance::Standard))
            });
        });
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    // Algorithm 2 over many pre-reduced lists — the super-peer merge path.
    let mut group = c.benchmark_group("merge");
    for lists in [4usize, 16, 64] {
        let u = Subspace::from_dims(&[0, 2, 4]);
        let spec =
            DatasetSpec { dim: 8, points_per_peer: 500, kind: DatasetKind::Uniform, seed: 7 };
        let parts: Vec<SortedDataset> = (0..lists)
            .map(|p| {
                let set = spec.generate_peer(p, 0);
                threshold_skyline(
                    &SortedDataset::from_set(&set),
                    u,
                    Dominance::Standard,
                    f64::INFINITY,
                    DominanceIndex::Linear,
                )
                .result
            })
            .collect();
        let refs: Vec<&SortedDataset> = parts.iter().collect();
        group.bench_with_input(BenchmarkId::new("alg2", lists), &lists, |b, _| {
            b.iter(|| {
                black_box(merge::merge_sorted(
                    &refs,
                    u,
                    Dominance::Standard,
                    f64::INFINITY,
                    DominanceIndex::Linear,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_engines, bench_ext_skyline, bench_bbs_and_skyband, bench_merge
);
criterion_main!(benches);
