//! End-to-end query benchmarks at tiny network scale: one criterion
//! target per SKYPEER variant plus the naive baseline, on the default
//! uniform workload. These are the per-query costs behind every figure;
//! the `figures` binary sweeps the actual paper parameters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skypeer_core::{EngineConfig, SkypeerEngine, Variant};
use skypeer_data::Query;
use skypeer_skyline::Subspace;
use std::hint::black_box;

fn bench_variants(c: &mut Criterion) {
    let engine = SkypeerEngine::build(EngineConfig::paper_default(400, 77));
    let query = Query { subspace: Subspace::from_dims(&[1, 4, 6]), initiator: 3 };
    let mut group = c.benchmark_group("query/400-peers");
    group.sample_size(10);
    for variant in Variant::ALL {
        group.bench_with_input(
            BenchmarkId::new("variant", variant.mnemonic()),
            &variant,
            |b, &v| {
                b.iter(|| black_box(engine.run_query(query, v).volume_bytes));
            },
        );
    }
    group.finish();
}

fn bench_network_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build");
    group.sample_size(10);
    for peers in [200usize, 400] {
        group.bench_with_input(BenchmarkId::new("peers", peers), &peers, |b, &n| {
            b.iter(|| {
                black_box(
                    SkypeerEngine::build(EngineConfig::paper_default(n, 5))
                        .preprocess_report()
                        .stored_points,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants, bench_network_build);
criterion_main!(benches);
