//! Preprocessing-phase benchmarks (the Figure 3(a) pipeline): peer
//! ext-skyline computation and super-peer ext-merging across data
//! dimensionalities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skypeer_core::preprocess::SuperPeerStore;
use skypeer_data::{DatasetKind, DatasetSpec};
use skypeer_skyline::extended::ext_skyline;
use skypeer_skyline::{DominanceIndex, PointSet};
use std::hint::black_box;

fn peer_sets(dim: usize, peers: usize, points: usize, seed: u64) -> Vec<PointSet> {
    let spec = DatasetSpec { dim, points_per_peer: points, kind: DatasetKind::Uniform, seed };
    (0..peers).map(|p| spec.generate_peer(p, 0)).collect()
}

fn bench_peer_ext_skyline(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocess/peer-ext-skyline");
    for dim in [5usize, 7, 10] {
        let set = &peer_sets(dim, 1, 250, 11)[0];
        group.bench_with_input(BenchmarkId::new("d", dim), &dim, |b, _| {
            b.iter(|| black_box(ext_skyline(set, DominanceIndex::Linear).result.len()));
        });
    }
    group.finish();
}

fn bench_superpeer_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocess/superpeer-store");
    group.sample_size(10);
    for dim in [5usize, 8] {
        let sets = peer_sets(dim, 50, 250, 13);
        group.bench_with_input(BenchmarkId::new("50-peers-d", dim), &dim, |b, _| {
            b.iter(|| {
                black_box(SuperPeerStore::preprocess(&sets, dim, DominanceIndex::RTree).store.len())
            });
        });
    }
    group.finish();
}

fn bench_peer_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocess/peer-join");
    group.sample_size(10);
    let dim = 8;
    let sets = peer_sets(dim, 50, 250, 17);
    let base = SuperPeerStore::preprocess(&sets[..49], dim, DominanceIndex::RTree);
    let newcomer = &sets[49];
    group.bench_function("incremental-join", |b| {
        b.iter(|| {
            let mut store = base.clone();
            store.join_peer(newcomer, DominanceIndex::RTree);
            black_box(store.store.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_peer_ext_skyline, bench_superpeer_merge, bench_peer_join);
criterion_main!(benches);
