//! End-to-end tests of the `skypeer-cli` binary: real process, real
//! stdout, real exit codes.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out =
        Command::new(env!("CARGO_BIN_EXE_skypeer-cli")).args(args).output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn stats_reports_selectivities() {
    let (stdout, _, ok) = run(&["stats", "--peers", "60", "--dim", "5", "--points", "40"]);
    assert!(ok);
    assert!(stdout.contains("SEL_p"));
    assert!(stdout.contains("SEL_sp"));
    assert!(stdout.contains("raw points        : 2400"));
}

#[test]
fn query_returns_exact_count_deterministically() {
    let args = ["query", "--peers", "60", "--dim", "5", "--dims", "0,3", "--variant", "rtpm"];
    let (a, _, ok_a) = run(&args);
    let (b, _, ok_b) = run(&args);
    assert!(ok_a && ok_b);
    assert_eq!(a, b, "same flags must give identical output");
    assert!(a.contains("points (exact)"));
}

#[test]
fn workload_prints_all_variants() {
    let (stdout, _, ok) =
        run(&["workload", "--peers", "60", "--dim", "5", "--k", "2", "--queries", "3"]);
    assert!(ok);
    for v in ["FTFM", "FTPM", "RTFM", "RTPM", "naive"] {
        assert!(stdout.contains(v), "missing {v} in:\n{stdout}");
    }
}

#[test]
fn topology_summarizes_graph() {
    let (stdout, _, ok) = run(&["topology", "--superpeers", "25", "--degree", "5"]);
    assert!(ok);
    assert!(stdout.contains("connected   : true"));
    assert!(stdout.contains("degree histogram"));
}

#[test]
fn estimate_prints_theory_table() {
    let (stdout, _, ok) = run(&["estimate", "--n", "1000", "--max-dim", "4"]);
    assert!(ok);
    assert!(stdout.contains("exact E(n,d)"));
    assert!(stdout.lines().count() >= 6);
}

#[test]
fn csv_query_loads_and_answers() {
    let dir = std::env::temp_dir().join(format!("skypeer-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let file = dir.join("pts.csv");
    std::fs::write(&file, "a,b\n1,9\n5,5\n9,1\n7,7\n").expect("write csv");
    let (stdout, stderr, ok) = run(&[
        "csv-query",
        "--file",
        file.to_str().expect("utf8 path"),
        "--superpeers",
        "3",
        "--peers-per-superpeer",
        "1",
        "--degree",
        "2",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("loaded 4 points"), "{stdout}");
    assert!(stdout.contains("3 points"), "the 2-d skyline has 3 points: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_flags_fail_fast() {
    let (_, stderr, ok) = run(&["query", "--peers", "60", "--oops", "1"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag --oops"));

    let (_, stderr2, ok2) = run(&["nonsense"]);
    assert!(!ok2);
    assert!(stderr2.contains("unknown command"));

    let (_, stderr3, ok3) = run(&["query", "--variant", "zzz"]);
    assert!(!ok3);
    assert!(stderr3.contains("unknown --variant"));
}

#[test]
fn faults_command_reports_degradation() {
    let (stdout, _, ok) = run(&[
        "faults",
        "--peers",
        "60",
        "--dim",
        "4",
        "--dims",
        "0,1",
        "--fail",
        "2",
        "--timeout-s",
        "200",
    ]);
    assert!(ok);
    assert!(stdout.contains("healthy"));
    assert!(stdout.contains("degraded"));
}

#[test]
fn trace_reports_metrics_and_critical_path_and_writes_exports() {
    let dir = std::env::temp_dir().join(format!("skypeer-cli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let jsonl = dir.join("q.jsonl");
    let perfetto = dir.join("q.trace.json");
    let (stdout, stderr, ok) = run(&[
        "trace",
        "--peers",
        "60",
        "--dim",
        "5",
        "--dims",
        "0,3",
        "--variant",
        "ftpm",
        "--jsonl",
        jsonl.to_str().unwrap(),
        "--perfetto",
        perfetto.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("counters:"), "{stdout}");
    assert!(stdout.contains("messages_sent"), "{stdout}");
    assert!(stdout.contains("per-node work:"), "{stdout}");
    assert!(stdout.contains("critical path"), "{stdout}");
    let log = std::fs::read_to_string(&jsonl).expect("jsonl written");
    assert!(log.lines().all(|l| l.starts_with('{') && l.ends_with('}')), "one object per line");
    let trace = std::fs::read_to_string(&perfetto).expect("perfetto written");
    assert!(trace.starts_with("{\"traceEvents\":["), "{}", &trace[..trace.len().min(80)]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn routing_flag_selects_spanning_tree() {
    let base = ["query", "--peers", "60", "--dim", "5", "--dims", "0,3"];
    let (flood, _, ok_a) = run(&[&base[..], &["--routing", "flood"]].concat());
    let (tree, _, ok_b) = run(&[&base[..], &["--routing", "tree"]].concat());
    assert!(ok_a && ok_b);
    assert_ne!(flood, tree, "routing mode should change traffic totals");
    let (_, stderr, ok_c) = run(&[&base[..], &["--routing", "carrier-pigeon"]].concat());
    assert!(!ok_c);
    assert!(stderr.contains("unknown --routing"));
}

#[test]
fn explain_renders_every_section_for_all_variants() {
    for variant in ["ftfm", "ftpm", "rtfm", "rtpm", "naive"] {
        let (stdout, stderr, ok) = run(&[
            "explain",
            "--peers",
            "60",
            "--superpeers",
            "6",
            "--dim",
            "5",
            "--points",
            "40",
            "--dims",
            "0,3",
            "--variant",
            variant,
            "--seed",
            "11",
        ]);
        assert!(ok, "{variant} stderr: {stderr}");
        for section in [
            "EXPLAIN skyline",
            "query fan-out",
            "threshold timeline",
            "per-super-peer pruning",
            "link usage vs naive",
            "critical path",
        ] {
            assert!(stdout.contains(section), "{variant}: missing '{section}' in:\n{stdout}");
        }
    }
}

#[test]
fn soak_reports_percentiles_digest_and_slo() {
    let dir = std::env::temp_dir().join(format!("skypeer-cli-soak-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let jsonl = dir.join("rows.jsonl");
    let prom = dir.join("soak.prom");
    let (stdout, stderr, ok) = run(&[
        "soak",
        "--peers",
        "60",
        "--superpeers",
        "6",
        "--dim",
        "5",
        "--points",
        "40",
        "--queries",
        "20",
        "--variants",
        "ftpm,naive",
        "--top-k",
        "4",
        "--slo-p99-ms",
        "100000",
        "--seed",
        "11",
        "--jsonl",
        jsonl.to_str().unwrap(),
        "--prom",
        prom.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("p999 ms"), "{stdout}");
    assert!(stdout.contains("FTPM"), "{stdout}");
    assert!(stdout.contains("naive"), "{stdout}");
    assert!(stdout.contains("worst FTPM: q"), "{stdout}");
    assert!(stdout.contains("skypeer-cli explain --dims"), "{stdout}");
    assert!(stdout.contains("[PASS]"), "{stdout}");
    let rows = std::fs::read_to_string(&jsonl).expect("jsonl written");
    assert_eq!(rows.lines().count(), 40, "one JSONL row per query per variant");
    assert!(rows.lines().all(|l| l.starts_with("{\"variant\":") && l.ends_with('}')));
    let exposition = std::fs::read_to_string(&prom).expect("prom written");
    assert!(exposition.contains("# TYPE skypeer_soak_latency_ns histogram"));
    assert!(exposition.contains("skypeer_soak_latency_ns_bucket{variant=\"FTPM\",le=\""));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn soak_slo_gate_fails_on_impossible_budget() {
    let (_, stderr, ok) = run(&[
        "soak",
        "--peers",
        "60",
        "--superpeers",
        "6",
        "--dim",
        "5",
        "--points",
        "40",
        "--queries",
        "5",
        "--variants",
        "ftpm",
        "--slo-p50-ms",
        "0.000001",
        "--gate",
    ]);
    assert!(!ok, "an unmeetable p50 budget must fail the gate");
    assert!(stderr.contains("SLO gate failed for FTPM"), "{stderr}");
}

/// The tentpole acceptance test: a seeded 500-query skewed workload over
/// all five variants must produce a byte-deterministic SoakSummary with
/// p50/p90/p99/p999 per variant. Self-bootstraps like the explain golden:
/// first run writes `tests/goldens/soak_summary.json`, later runs must
/// reproduce it byte for byte.
#[test]
fn soak_summary_json_is_byte_deterministic_and_matches_golden() {
    let args = [
        "soak",
        "--peers",
        "60",
        "--superpeers",
        "6",
        "--dim",
        "5",
        "--points",
        "40",
        "--queries",
        "500",
        "--seed",
        "11",
        "--workload-seed",
        "3",
        "--k-min",
        "2",
        "--k-max",
        "4",
        "--k-theta",
        "1.1",
        "--initiator-theta",
        "0.8",
        "--json",
    ];
    let (a, stderr, ok_a) = run(&args);
    let (b, _, ok_b) = run(&args);
    assert!(ok_a && ok_b, "stderr: {stderr}");
    assert_eq!(a, b, "two fresh processes must emit identical bytes");
    assert!(a.starts_with("{\"workload\":"), "{}", &a[..a.len().min(80)]);
    for variant in ["FTFM", "FTPM", "RTFM", "RTPM", "naive"] {
        assert!(a.contains(&format!("\"variant\":\"{variant}\"")), "missing {variant}");
    }
    for key in ["\"p50\":", "\"p90\":", "\"p99\":", "\"p999\":", "\"worst\":", "\"totals\":"] {
        assert!(a.contains(key), "missing {key}");
    }

    let golden =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/soak_summary.json");
    if !golden.exists() {
        std::fs::create_dir_all(golden.parent().unwrap()).expect("goldens dir");
        std::fs::write(&golden, &a).expect("bootstrap golden");
    }
    let want = std::fs::read_to_string(&golden).expect("golden readable");
    assert_eq!(
        a,
        want,
        "soak --json drifted from {}; if the change is intentional, delete the golden and rerun",
        golden.display()
    );
}

/// Extracts every occurrence of `key` followed by a number from flat
/// deterministic JSON (no nesting-aware parsing needed: the keys probed
/// here are unique within their enclosing objects).
fn json_numbers(s: &str, key: &str) -> Vec<f64> {
    let mut out = Vec::new();
    let mut rest = s;
    while let Some(p) = rest.find(key) {
        rest = &rest[p + key.len()..];
        let end = rest
            .find(|c: char| !c.is_ascii_digit() && c != '-' && c != '.' && c != 'e' && c != '+')
            .unwrap_or(rest.len());
        out.push(rest[..end].parse().expect("numeric field"));
        rest = &rest[end..];
    }
    out
}

/// The cache acceptance test: the same seeded 500-query Zipf workload,
/// run with `--cache`, must stay byte-deterministic, hit at least 30% of
/// lookups on every variant (exact + subsumption), and move strictly
/// fewer backbone bytes than the uncached golden run — while this golden
/// pins the exact output next to `soak_summary.json`.
#[test]
fn cached_soak_summary_matches_golden_and_beats_uncached() {
    let args = [
        "soak",
        "--peers",
        "60",
        "--superpeers",
        "6",
        "--dim",
        "5",
        "--points",
        "40",
        "--queries",
        "500",
        "--seed",
        "11",
        "--workload-seed",
        "3",
        "--k-min",
        "2",
        "--k-max",
        "4",
        "--k-theta",
        "1.1",
        "--initiator-theta",
        "0.8",
        "--cache",
        "--json",
    ];
    let (a, stderr, ok_a) = run(&args);
    let (b, _, ok_b) = run(&args);
    assert!(ok_a && ok_b, "stderr: {stderr}");
    assert_eq!(a, b, "cached soak must be byte-deterministic");

    let rates = json_numbers(&a, "\"hit_rate\":");
    assert_eq!(rates.len(), 5, "one cache block per variant:\n{a}");
    for r in &rates {
        assert!(*r >= 0.30, "hit rate {r} below the 30% acceptance floor");
    }

    let goldens = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens");
    let golden = goldens.join("soak_summary_cached.json");
    if !golden.exists() {
        std::fs::create_dir_all(&goldens).expect("goldens dir");
        std::fs::write(&golden, &a).expect("bootstrap golden");
    }
    let want = std::fs::read_to_string(&golden).expect("golden readable");
    assert_eq!(
        a,
        want,
        "cached soak --json drifted from {}; if the change is intentional, delete the golden and rerun",
        golden.display()
    );

    // Bootstrap the uncached golden ourselves if the sibling test has not
    // run yet, so the byte comparison below never races on test order.
    let uncached_golden = goldens.join("soak_summary.json");
    if !uncached_golden.exists() {
        let uncached_args: Vec<&str> = args.iter().copied().filter(|s| *s != "--cache").collect();
        let (u, _, ok) = run(&uncached_args);
        assert!(ok);
        std::fs::write(&uncached_golden, &u).expect("bootstrap uncached golden");
    }
    let uncached = std::fs::read_to_string(&uncached_golden).expect("uncached golden readable");
    let cached_bytes = json_numbers(&a, "\"bytes\":");
    let uncached_bytes = json_numbers(&uncached, "\"bytes\":");
    assert_eq!(cached_bytes.len(), 5, "one totals block per variant");
    assert_eq!(uncached_bytes.len(), 5);
    for (v, (c, u)) in cached_bytes.iter().zip(&uncached_bytes).enumerate() {
        assert!(c < u, "variant #{v}: cached run must move fewer bytes ({c} !< {u})");
    }
}

/// Shared flags for the diff tests' trace captures.
const DIFF_TRACE_FLAGS: [&str; 14] = [
    "trace",
    "--peers",
    "60",
    "--superpeers",
    "6",
    "--dim",
    "5",
    "--points",
    "40",
    "--dims",
    "0,3",
    "--variant",
    "ftpm",
    "--jsonl",
];

fn capture_trace(path: &std::path::Path, extra: &[&str]) {
    let mut args: Vec<&str> = DIFF_TRACE_FLAGS.to_vec();
    let p = path.to_str().unwrap();
    args.push(p);
    args.extend_from_slice(extra);
    let (_, stderr, ok) = run(&args);
    assert!(ok, "trace capture failed: {stderr}");
}

/// The all-zero acceptance criterion: two captures of the same seeded
/// query must attribute no deltas at all, in both human and JSON form —
/// and the JSON form must be byte-identical across processes.
#[test]
fn diff_of_same_seed_traces_is_all_zero() {
    let dir = std::env::temp_dir().join(format!("skypeer-cli-diff0-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let (base, cand) = (dir.join("base.jsonl"), dir.join("cand.jsonl"));
    capture_trace(&base, &[]);
    capture_trace(&cand, &[]);
    let (text, stderr, ok) = run(&["diff", base.to_str().unwrap(), cand.to_str().unwrap()]);
    assert!(ok, "stderr: {stderr}");
    assert!(text.contains("all metrics identical"), "{text}");
    let json_args = ["diff", base.to_str().unwrap(), cand.to_str().unwrap(), "--json"];
    let (a, _, ok_a) = run(&json_args);
    let (b, _, ok_b) = run(&json_args);
    assert!(ok_a && ok_b);
    assert_eq!(a, b, "diff --json must be byte-deterministic");
    assert!(a.starts_with("{\"kind\":\"trace\",\"attribution\":{\"all_zero\":true,"), "{a}");
    std::fs::remove_dir_all(&dir).ok();
}

/// The perturbation acceptance criterion: bump the latency of one link
/// the query actually uses, and the attribution must name exactly that
/// link as the top `sim_time_ns` contributor. The link is discovered from
/// the baseline capture's first send event, so the test tracks topology
/// changes instead of hard-coding an edge.
#[test]
fn diff_names_perturbed_link_as_top_contributor() {
    let dir = std::env::temp_dir().join(format!("skypeer-cli-diffp-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let (base, pert) = (dir.join("base.jsonl"), dir.join("pert.jsonl"));
    capture_trace(&base, &[]);
    let log = std::fs::read_to_string(&base).expect("baseline capture");
    let first_send = log.lines().find(|l| l.contains("\"type\":\"send\"")).expect("a send event");
    let from = json_numbers(first_send, "\"from\":")[0] as usize;
    let to = json_numbers(first_send, "\"to\":")[0] as usize;
    capture_trace(&pert, &["--perturb-link", &format!("{from}:{to}:50000000")]);

    let (json, stderr, ok) = run(&[
        "diff",
        base.to_str().unwrap(),
        pert.to_str().unwrap(),
        "--json",
        "--what-if-factor",
        "0.5",
    ]);
    assert!(ok, "stderr: {stderr}");
    let sim = json.split("\"metric\":\"sim_time_ns\"").nth(1).expect("sim_time_ns metric");
    let top_key = sim.split("\"key\":\"").nth(1).and_then(|s| s.split('"').next());
    assert_eq!(
        top_key,
        Some(format!("SP{from}->SP{to}").as_str()),
        "perturbed link must rank first for sim_time_ns:\n{json}"
    );
    assert!(json.contains("\"what_if\":["), "{json}");
    assert!(json.contains("\"predicted_saving_ns\":"), "{json}");

    // Human form names the link too, and the factor-1.0 what-if predicts
    // exactly zero saving for every intervention.
    let (text, _, ok) =
        run(&["diff", base.to_str().unwrap(), pert.to_str().unwrap(), "--what-if-factor", "1"]);
    assert!(ok);
    assert!(text.contains(&format!("SP{from}->SP{to}")), "{text}");
    let (unity, _, ok) = run(&[
        "diff",
        base.to_str().unwrap(),
        pert.to_str().unwrap(),
        "--json",
        "--what-if-factor",
        "1",
    ]);
    assert!(ok);
    let savings = json_numbers(&unity, "\"predicted_saving_ns\":");
    assert!(!savings.is_empty());
    for saving in savings {
        assert_eq!(saving, 0.0, "factor 1.0 must predict zero saving:\n{unity}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Soak-summary diffing, golden-pinned: diffing the two committed soak
/// goldens (uncached vs cached) is itself byte-deterministic and matches
/// `tests/goldens/soak_diff.json`. Self-bootstraps like the other
/// goldens.
#[test]
fn soak_diff_of_pinned_summaries_matches_golden() {
    let goldens = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens");
    let uncached = goldens.join("soak_summary.json");
    let cached = goldens.join("soak_summary_cached.json");
    assert!(
        uncached.exists() && cached.exists(),
        "soak goldens missing; run the soak golden tests first"
    );
    let args = ["diff", uncached.to_str().unwrap(), cached.to_str().unwrap(), "--json"];
    let (a, stderr, ok_a) = run(&args);
    let (b, _, ok_b) = run(&args);
    assert!(ok_a && ok_b, "stderr: {stderr}");
    assert_eq!(a, b, "soak diff --json must be byte-deterministic");
    assert!(a.starts_with("{\"kind\":\"soak\",\"diff\":{\"all_zero\":false,"), "{a}");
    for key in
        ["\"variant\":\"FTPM\"", "\"cache_hit_rate\":", "\"slo_margins\":", "\"stat\":\"p99\""]
    {
        assert!(a.contains(key), "missing {key} in:\n{a}");
    }
    // A summary diffed against itself is all-zero.
    let (same, _, ok) = run(&["diff", uncached.to_str().unwrap(), uncached.to_str().unwrap()]);
    assert!(ok);
    assert!(same.contains("no drift"), "{same}");

    let golden = goldens.join("soak_diff.json");
    if !golden.exists() {
        std::fs::write(&golden, &a).expect("bootstrap golden");
    }
    let want = std::fs::read_to_string(&golden).expect("golden readable");
    assert_eq!(
        a,
        want,
        "soak diff --json drifted from {}; if the change is intentional, delete the golden and rerun",
        golden.display()
    );
}

/// Bad diff invocations fail fast with a useful message.
#[test]
fn diff_rejects_bad_inputs() {
    let (_, stderr, ok) = run(&["diff", "/nonexistent-base"]);
    assert!(!ok);
    assert!(stderr.contains("exactly two capture paths"), "{stderr}");

    let goldens = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens");
    let summary = goldens.join("soak_summary.json");
    let dir = std::env::temp_dir().join(format!("skypeer-cli-diffbad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace = dir.join("t.jsonl");
    capture_trace(&trace, &[]);
    let (_, stderr, ok) = run(&["diff", summary.to_str().unwrap(), trace.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("must be the same kind"), "{stderr}");

    let junk = dir.join("junk.txt");
    std::fs::write(&junk, "hello\n").expect("write junk");
    let (_, stderr, ok) = run(&["diff", junk.to_str().unwrap(), junk.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("not a capture"), "{stderr}");

    let (_, stderr, ok) = run(&["trace", "--peers", "60", "--perturb-link", "0:zap:5"]);
    assert!(!ok);
    assert!(stderr.contains("perturb-link"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Golden test for the machine-readable explain output. Self-bootstraps:
/// the first run writes `tests/goldens/explain_rtpm.json`; every later
/// run must reproduce it byte for byte (the DES is deterministic and the
/// JSON builder is byte-stable).
#[test]
fn explain_json_is_byte_deterministic_and_matches_golden() {
    let args = [
        "explain",
        "--peers",
        "60",
        "--superpeers",
        "6",
        "--dim",
        "5",
        "--points",
        "40",
        "--dims",
        "0,3",
        "--variant",
        "rtpm",
        "--seed",
        "11",
        "--json",
    ];
    let (a, stderr, ok_a) = run(&args);
    let (b, _, ok_b) = run(&args);
    assert!(ok_a && ok_b, "stderr: {stderr}");
    assert_eq!(a, b, "two fresh processes must emit identical bytes");
    assert!(a.starts_with("{\"query\":"), "{}", &a[..a.len().min(80)]);
    for key in
        ["\"thresholds\":", "\"threshold_monotone\":true", "\"pruning\":", "\"critical_path\":"]
    {
        assert!(a.contains(key), "missing {key}");
    }

    let golden =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/explain_rtpm.json");
    if !golden.exists() {
        std::fs::create_dir_all(golden.parent().unwrap()).expect("goldens dir");
        std::fs::write(&golden, &a).expect("bootstrap golden");
    }
    let want = std::fs::read_to_string(&golden).expect("golden readable");
    assert_eq!(
        a,
        want,
        "explain --json drifted from {}; if the change is intentional, delete the golden and rerun",
        golden.display()
    );
}

/// Golden test for the CPU profiler's deterministic exports: under
/// `--clock logical` both the JSON calltree and the folded stacks are
/// byte-stable for a pinned figure. Self-bootstraps like the explain
/// golden.
#[test]
fn profile_logical_exports_are_byte_deterministic_and_match_goldens() {
    let json_args = ["profile", "--figure", "fig3b_d8", "--clock", "logical", "--json"];
    let (a, stderr, ok_a) = run(&json_args);
    let (b, _, ok_b) = run(&json_args);
    assert!(ok_a && ok_b, "stderr: {stderr}");
    assert_eq!(a, b, "two fresh processes must emit identical bytes");
    assert!(a.starts_with("{\"clock\":\"logical\""), "{}", &a[..a.len().min(80)]);
    for key in ["\"path\":\"des::run\"", "skyline::threshold_skyline", "wire::encode"] {
        assert!(a.contains(key), "missing {key} in:\n{a}");
    }

    let dir = std::env::temp_dir().join(format!("skypeer-prof-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let folded_path = dir.join("fig3b.folded");
    let (stdout, stderr, ok) = run(&[
        "profile",
        "--figure",
        "fig3b_d8",
        "--clock",
        "logical",
        "--folded",
        folded_path.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("calltree profile (logical clock)"), "{stdout}");
    let folded = std::fs::read_to_string(&folded_path).expect("folded written");
    std::fs::remove_dir_all(&dir).ok();
    assert!(folded.lines().all(|l| l.rsplit_once(' ').is_some()), "bad folded lines:\n{folded}");

    for (name, got) in
        [("profile_fig3b_logical.json", &a), ("profile_fig3b_logical.folded", &folded)]
    {
        let golden =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens").join(name);
        if !golden.exists() {
            std::fs::create_dir_all(golden.parent().unwrap()).expect("goldens dir");
            std::fs::write(&golden, got).expect("bootstrap golden");
        }
        let want = std::fs::read_to_string(&golden).expect("golden readable");
        assert_eq!(
            got,
            &want,
            "profile export drifted from {}; if intentional, delete the golden and rerun",
            golden.display()
        );
    }
}

/// A synthetic telemetry history with a latency spike at ticks 30..=34:
/// enough quiet baseline for the detector to warm up, then an excursion
/// two orders of magnitude above it, then recovery — so the replay golden
/// pins an opened *and* resolved incident.
fn synth_history() -> String {
    let mut s = String::new();
    for t in 0u64..40 {
        let lat: f64 = if (30..=34).contains(&t) { 9000.0 } else { 100.0 + (t % 4) as f64 };
        s.push_str(&format!("{{\"tick\":{t},\"series\":\"latency_ns\",\"value\":{lat:?}}}\n"));
        s.push_str(&format!("{{\"tick\":{t},\"series\":\"queue_depth\",\"value\":3.0}}\n"));
        let bytes = (400 + t * 2) as f64;
        s.push_str(&format!("{{\"tick\":{t},\"series\":\"SP0/bytes_out\",\"value\":{bytes:?}}}\n"));
        s.push_str(&format!("{{\"tick\":{t},\"series\":\"SP1/bytes_out\",\"value\":380.0}}\n"));
    }
    s
}

/// The replay acceptance test: `top --replay` over a recorded history is
/// byte-deterministic in both frame and `--json` form, detects the
/// embedded spike, and matches the committed goldens. The history file
/// keeps a fixed *name* (the title embeds the file name, never the
/// directory) so the render is location-independent.
#[test]
fn top_replay_render_and_tsdb_json_match_goldens() {
    let dir = std::env::temp_dir().join(format!("skypeer-cli-top-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let file = dir.join("replay.history.jsonl");
    std::fs::write(&file, synth_history()).expect("write history");

    let frame_args = ["top", "--replay", file.to_str().unwrap()];
    let (a, stderr, ok_a) = run(&frame_args);
    let (b, _, ok_b) = run(&frame_args);
    assert!(ok_a && ok_b, "stderr: {stderr}");
    assert_eq!(a, b, "replay frame must be byte-deterministic");
    assert!(a.starts_with("skypeer top — replay replay.history.jsonl"), "{a}");
    assert!(a.contains("!! INCIDENT latency_ns: onset @30"), "{a}");
    assert!(a.contains("resolved @35"), "{a}");
    assert!(a.contains("SP0"), "node table missing:\n{a}");
    assert!(!a.contains('\x1b'), "stdout frame must carry no ANSI escapes");

    let json_args = ["top", "--replay", file.to_str().unwrap(), "--json"];
    let (j, stderr, ok_j) = run(&json_args);
    let (j2, _, ok_j2) = run(&json_args);
    assert!(ok_j && ok_j2, "stderr: {stderr}");
    assert_eq!(j, j2, "replay --json must be byte-deterministic");
    assert!(j.starts_with("{\"tsdb\":{\"series\":["), "{}", &j[..j.len().min(80)]);
    assert!(j.contains("\"incidents\":[{\"series\":\"latency_ns\",\"onset_tick\":30"), "{j}");

    let goldens = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens");
    for (name, got) in [("top_replay.txt", &a), ("top_replay_tsdb.json", &j)] {
        let golden = goldens.join(name);
        if !golden.exists() {
            std::fs::create_dir_all(&goldens).expect("goldens dir");
            std::fs::write(&golden, got).expect("bootstrap golden");
        }
        let want = std::fs::read_to_string(&golden).expect("golden readable");
        assert_eq!(
            got,
            &want,
            "top --replay drifted from {}; if intentional, delete the golden and rerun",
            golden.display()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Shared network/workload flags for the incident-gate soak runs.
const INCIDENT_SOAK_FLAGS: [&str; 16] = [
    "soak",
    "--peers",
    "60",
    "--superpeers",
    "6",
    "--dim",
    "5",
    "--points",
    "40",
    "--seed",
    "11",
    "--queries",
    "60",
    "--variants",
    "ftpm",
    "--fail-on-incident",
];

/// The anomaly acceptance test, both ways: the same-seed baseline soak
/// must report zero incidents and pass the `--fail-on-incident` gate,
/// while an identical run with one link's latency inflated after query
/// 40 must flag an incident on a latency/queue series with onset at or
/// after the injection — and fail the gate. The baseline's history file
/// round-trips through `top --replay`.
#[test]
fn soak_incident_gate_is_quiet_on_baseline_and_fires_on_perturbation() {
    let dir = std::env::temp_dir().join(format!("skypeer-cli-incid-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let history = dir.join("baseline.history.jsonl");

    let mut base: Vec<&str> = INCIDENT_SOAK_FLAGS.to_vec();
    base.extend_from_slice(&["--history-out", history.to_str().unwrap()]);
    let (stdout, stderr, ok) = run(&base);
    assert!(ok, "baseline must pass the incident gate: {stderr}");
    assert!(stdout.contains("incidents: 0"), "{stdout}");
    let text = std::fs::read_to_string(&history).expect("history written");
    assert!(text.lines().count() >= 60 * 5, "one line per series per query:\n{stdout}");
    let (frame, stderr, ok) = run(&["top", "--replay", history.to_str().unwrap()]);
    assert!(ok, "replaying the soak history: {stderr}");
    assert!(frame.contains("status: OK — no incidents"), "{frame}");
    assert!(frame.contains("FTPM/latency_ns"), "{frame}");

    let mut pert: Vec<&str> = INCIDENT_SOAK_FLAGS.to_vec();
    pert.extend_from_slice(&["--perturb-link", "2:3:5000000000", "--perturb-after", "40"]);
    let (stdout, stderr, ok) = run(&pert);
    assert!(!ok, "perturbed run must fail the incident gate");
    assert!(stderr.contains("incident gate failed"), "{stderr}");
    let incident = stdout
        .lines()
        .find(|l| l.contains("latency_ns:") || l.contains("queue_depth:"))
        .unwrap_or_else(|| panic!("no latency/queue incident in:\n{stdout}"));
    let onset: u64 = incident
        .split("onset @")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable incident line: {incident}"));
    assert!(onset >= 40, "incident onset {onset} precedes the injection at query 40");
    std::fs::remove_dir_all(&dir).ok();
}

/// `--quiet` only silences the live stderr dashboard: deterministic
/// stdout stays byte-identical with and without the flag, and telemetry
/// flag combinations that make no sense fail fast.
#[test]
fn soak_quiet_keeps_stdout_identical_and_bad_telemetry_flags_fail() {
    let args = [
        "soak",
        "--peers",
        "60",
        "--superpeers",
        "6",
        "--dim",
        "5",
        "--points",
        "40",
        "--seed",
        "11",
        "--queries",
        "10",
        "--variants",
        "ftpm",
        "--json",
    ];
    let (loud, stderr, ok_a) = run(&args);
    let (quiet, _, ok_b) = run(&[&args[..], &["--quiet"]].concat());
    assert!(ok_a && ok_b, "stderr: {stderr}");
    assert_eq!(loud, quiet, "--quiet must not change stdout");

    let (_, stderr, ok) = run(&[&args[..], &["--perturb-after", "5"]].concat());
    assert!(!ok);
    assert!(stderr.contains("--perturb-after requires --perturb-link"), "{stderr}");

    let (_, stderr, ok) =
        run(&[&args[..], &["--cache", "--perturb-link", "2:3:5000000000"]].concat());
    assert!(!ok);
    assert!(stderr.contains("incompatible"), "{stderr}");

    let (_, stderr, ok) = run(&["top", "--replay", "/nonexistent-history"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

/// `--overhead` reports the instrumented/baseline ratio; advisory by
/// default (exit 0 even though some overhead always exists).
#[test]
fn profile_overhead_reports_ratio() {
    let (stdout, stderr, ok) =
        run(&["profile", "--figure", "fig3d_k2", "--overhead", "--repeat", "1"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("observability overhead: figure fig3d_k2"), "{stdout}");
    assert!(stdout.contains("ratio "), "{stdout}");
    assert!(stdout.contains("scope enters"), "{stdout}");
}

/// `--figure` resolution is shared: every subcommand that accepts it must
/// emit the exact same error text for an unknown figure (historically
/// each command re-parsed its inputs slightly differently).
#[test]
fn bad_figure_error_is_identical_across_subcommands() {
    let mut errors = Vec::new();
    for cmd in ["query", "trace", "explain", "profile"] {
        let (_, stderr, ok) = run(&[cmd, "--figure", "nope"]);
        assert!(!ok, "{cmd} must fail on an unknown figure");
        assert!(
            stderr.contains("unknown figure 'nope' (known: fig3b_d8, fig3d_k2, fig4c_deg6)"),
            "{cmd} stderr: {stderr}"
        );
        errors.push(stderr);
    }
    assert!(errors.windows(2).all(|w| w[0] == w[1]), "error text diverged: {errors:?}");
}

/// Shared network flags for the `why` / `why-not` lineage tests: a small
/// seeded net whose point roles (in-skyline, dominated, merge-pruned) are
/// pinned by the goldens below.
const LINEAGE_NET: &[&str] =
    &["--peers", "12", "--superpeers", "4", "--dim", "4", "--points", "25", "--seed", "21"];

/// `why` / `why-not` are byte-deterministic and match self-bootstrapping
/// goldens: first run writes `tests/goldens/why_97.txt` /
/// `whynot_18.json`, later runs must reproduce them byte for byte.
#[test]
fn why_and_why_not_are_byte_deterministic_and_match_goldens() {
    let goldens = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens");
    std::fs::create_dir_all(&goldens).expect("goldens dir");
    let pin = |name: &str, got: &str| {
        let golden = goldens.join(name);
        if !golden.exists() {
            std::fs::write(&golden, got).expect("bootstrap golden");
        }
        let want = std::fs::read_to_string(&golden).expect("golden readable");
        assert_eq!(
            got, want,
            "{name} drifted; if the change is intentional, delete the golden and rerun"
        );
    };

    // A survivor: origin, store membership, in-skyline verdict.
    let why_args = [&["why", "97"], LINEAGE_NET, &["--dims", "0,2"]].concat();
    let (a, stderr, ok) = run(&why_args);
    let (b, _, ok_b) = run(&why_args);
    assert!(ok && ok_b, "stderr: {stderr}");
    assert_eq!(a, b, "why must be byte-deterministic");
    assert!(a.contains("verdict   : in the subspace skyline of {0,2}"), "{a}");
    assert!(a.contains("ext-store : present in"), "{a}");
    pin("why_97.txt", &a);

    // A merge-pruned point: the JSON form names the ext-dominance witness.
    let whynot_args = [&["why-not", "18"], LINEAGE_NET, &["--dims", "0,2", "--json"]].concat();
    let (j, stderr, ok) = run(&whynot_args);
    let (j2, _, ok2) = run(&whynot_args);
    assert!(ok && ok2, "stderr: {stderr}");
    assert_eq!(j, j2, "why-not --json must be byte-deterministic");
    assert!(j.contains("\"stage\":\"pruned-at-super-peer\""), "{j}");
    assert!(j.contains("\"dominance\":\"extended\""), "{j}");
    pin("whynot_18.json", &j);

    // The two commands redirect to each other when the point landed on
    // the other side, and a query-time loser names its witness.
    let (redirect, _, ok) = run(&[&["why-not", "97"], LINEAGE_NET, &["--dims", "0,2"]].concat());
    assert!(ok);
    assert!(redirect.contains("see `why 97`"), "{redirect}");
    let (dominated, _, ok) = run(&[&["why", "17"], LINEAGE_NET, &["--dims", "0,2"]].concat());
    assert!(ok);
    assert!(dominated.contains("verdict   : dominated on {0,2}"), "{dominated}");
    assert!(dominated.contains("see `why-not 17`"), "{dominated}");

    // An id outside the dataset is explained, not an error.
    let (missing, _, ok) = run(&[&["why-not", "99999"], LINEAGE_NET].concat());
    assert!(ok);
    assert!(missing.contains("not generated"), "{missing}");
}

#[test]
fn why_rejects_bad_inputs() {
    let (_, stderr, ok) = run(&["why"]);
    assert!(!ok);
    assert!(stderr.contains("why needs exactly one point id"), "{stderr}");
    let (_, stderr, ok) = run(&[&["why", "x"], LINEAGE_NET].concat());
    assert!(!ok);
    assert!(stderr.contains("bad point id 'x'"), "{stderr}");
}

/// `--backend` parsing is shared: every subcommand that accepts it must
/// emit the exact same (pinned) error text for an unknown backend.
#[test]
fn bad_backend_error_is_identical_across_subcommands() {
    let mut errors = Vec::new();
    for cmd in ["query", "trace", "explain", "soak"] {
        let (_, stderr, ok) = run(&[
            cmd,
            "--peers",
            "12",
            "--superpeers",
            "4",
            "--dim",
            "4",
            "--points",
            "10",
            "--backend",
            "zzz",
        ]);
        assert!(!ok, "{cmd} must fail on an unknown backend");
        assert!(
            stderr.contains("unknown --backend 'zzz' (expected skypeer|sampling)"),
            "{cmd} stderr: {stderr}"
        );
        errors.push(stderr);
    }
    assert!(errors.windows(2).all(|w| w[0] == w[1]), "error text diverged: {errors:?}");
}

/// Backend-off byte-determinism plus the sampling backend's observable
/// behaviour: `--backend skypeer` changes nothing, `--backend sampling`
/// reports itself (two rounds) and returns the identical exact answer,
/// `explain` rejects it honestly, and sampling×cache fails fast on soak.
#[test]
fn backend_flag_default_is_unchanged_and_sampling_is_exact() {
    let base = ["query", "--peers", "60", "--dim", "5", "--dims", "0,3"];
    let (plain, _, ok1) = run(&base);
    let (sky, _, ok2) = run(&[&base[..], &["--backend", "skypeer"]].concat());
    assert!(ok1 && ok2);
    assert_eq!(plain, sky, "--backend skypeer must not change a byte of the default output");

    let (smp, stderr, ok3) = run(&[&base[..], &["--backend", "sampling"]].concat());
    assert!(ok3, "stderr: {stderr}");
    assert!(smp.contains("backend   : sampling (2 rounds)"), "{smp}");
    let result_line = |s: &str| {
        s.lines().find(|l| l.starts_with("result")).map(str::to_string).expect("result line")
    };
    assert_eq!(result_line(&plain), result_line(&smp), "backends must agree on the answer");

    let (tr, stderr, ok) =
        run(&["trace", "--peers", "60", "--dim", "5", "--dims", "0,3", "--backend", "sampling"]);
    assert!(ok, "stderr: {stderr}");
    assert!(tr.contains("backend   : sampling (2 rounds)"), "{tr}");
    assert!(tr.contains("critical path"), "{tr}");

    let (_, stderr, ok) = run(&["explain", "--peers", "60", "--dim", "5", "--backend", "sampling"]);
    assert!(!ok);
    assert!(stderr.contains("explain supports only the skypeer backend"), "{stderr}");

    let (_, stderr, ok) = run(&[
        "soak",
        "--peers",
        "60",
        "--superpeers",
        "6",
        "--dim",
        "5",
        "--points",
        "40",
        "--queries",
        "2",
        "--backend",
        "sampling",
        "--cache",
    ]);
    assert!(!ok);
    assert!(stderr.contains("--backend sampling and --cache are incompatible"), "{stderr}");
}

/// The head-to-head acceptance test: `compare` runs every pinned figure
/// under both backends, the report is byte-deterministic and matches the
/// committed golden, and the sampling backend wins on rounds (constant 2)
/// in every figure. Self-bootstraps like the other goldens.
#[test]
fn compare_backends_matches_golden_and_sampling_wins_on_rounds() {
    let (a, stderr, ok_a) = run(&["compare"]);
    let (b, _, ok_b) = run(&["compare"]);
    assert!(ok_a && ok_b, "stderr: {stderr}");
    assert_eq!(a, b, "compare must be byte-deterministic");
    for fig in ["fig3b_d8", "fig3d_k2", "fig4c_deg6"] {
        assert!(a.contains(&format!("== {fig}:")), "missing {fig} in:\n{a}");
    }
    assert!(a.contains("answers agree"), "{a}");
    let rounds_rows: Vec<&str> = a.lines().filter(|l| l.starts_with("rounds")).collect();
    assert_eq!(rounds_rows.len(), 3, "one rounds row per figure:\n{a}");
    for row in &rounds_rows {
        assert!(row.trim_end().ends_with("sampling"), "sampling must win on rounds: {row}");
    }

    let golden =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/compare_backends.txt");
    if !golden.exists() {
        std::fs::create_dir_all(golden.parent().unwrap()).expect("goldens dir");
        std::fs::write(&golden, &a).expect("bootstrap golden");
    }
    let want = std::fs::read_to_string(&golden).expect("golden readable");
    assert_eq!(
        a,
        want,
        "compare drifted from {}; if the change is intentional, delete the golden and rerun",
        golden.display()
    );

    // Machine form: one figure, winners named per metric.
    let (j, stderr, ok) = run(&["compare", "--figure", "fig3b_d8", "--json"]);
    assert!(ok, "stderr: {stderr}");
    assert!(j.starts_with("[{\"figure\":\"fig3b_d8\""), "{j}");
    assert!(j.contains("\"winners\":{\"rounds\":\"sampling\""), "{j}");
    assert!(j.contains("\"backend\":\"skypeer\"") && j.contains("\"backend\":\"sampling\""), "{j}");

    // Figure resolution shares the pinned error text.
    let (_, stderr, ok) = run(&["compare", "--figure", "nope"]);
    assert!(!ok);
    assert!(
        stderr.contains("unknown figure 'nope' (known: fig3b_d8, fig3d_k2, fig4c_deg6)"),
        "{stderr}"
    );
}

/// The audited soak: a clean run reports zero violations and passes the
/// gate; arming the ext-skyline drop drill is caught, named, and fails
/// `--fail-on-violation` with a nonzero exit.
#[test]
fn soak_audit_reports_clean_and_gates_on_injection() {
    let base = [
        "soak",
        "--peers",
        "60",
        "--superpeers",
        "6",
        "--dim",
        "5",
        "--points",
        "40",
        "--queries",
        "20",
        "--variants",
        "ftpm",
        "--seed",
        "11",
        "--audit-sample",
        "1",
        "--fail-on-violation",
    ];
    let (stdout, stderr, ok) = run(&base);
    assert!(ok, "a healthy engine must audit clean: {stderr}");
    assert!(stdout.contains("audit FTPM: sampled 20, crosschecks 0, violations 0"), "{stdout}");

    let (stdout, stderr, ok) = run(&[&base[..], &["--inject-drop-ext"]].concat());
    assert!(!ok, "the injected fault must fail the gate");
    assert!(stderr.contains("audit gate failed"), "{stderr}");
    assert!(stdout.contains("drill: dropped #"), "{stdout}");
    assert!(stdout.contains("shadow mismatch - missing [#"), "{stdout}");

    let (_, stderr, ok) = run(&[
        "soak",
        "--queries",
        "2",
        "--peers",
        "12",
        "--superpeers",
        "4",
        "--dim",
        "4",
        "--points",
        "10",
        "--fail-on-violation",
    ]);
    assert!(!ok);
    assert!(stderr.contains("--fail-on-violation requires --audit-sample"), "{stderr}");
}
