//! End-to-end tests of the `skypeer-cli` binary: real process, real
//! stdout, real exit codes.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out =
        Command::new(env!("CARGO_BIN_EXE_skypeer-cli")).args(args).output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn stats_reports_selectivities() {
    let (stdout, _, ok) = run(&["stats", "--peers", "60", "--dim", "5", "--points", "40"]);
    assert!(ok);
    assert!(stdout.contains("SEL_p"));
    assert!(stdout.contains("SEL_sp"));
    assert!(stdout.contains("raw points        : 2400"));
}

#[test]
fn query_returns_exact_count_deterministically() {
    let args = ["query", "--peers", "60", "--dim", "5", "--dims", "0,3", "--variant", "rtpm"];
    let (a, _, ok_a) = run(&args);
    let (b, _, ok_b) = run(&args);
    assert!(ok_a && ok_b);
    assert_eq!(a, b, "same flags must give identical output");
    assert!(a.contains("points (exact)"));
}

#[test]
fn workload_prints_all_variants() {
    let (stdout, _, ok) =
        run(&["workload", "--peers", "60", "--dim", "5", "--k", "2", "--queries", "3"]);
    assert!(ok);
    for v in ["FTFM", "FTPM", "RTFM", "RTPM", "naive"] {
        assert!(stdout.contains(v), "missing {v} in:\n{stdout}");
    }
}

#[test]
fn topology_summarizes_graph() {
    let (stdout, _, ok) = run(&["topology", "--superpeers", "25", "--degree", "5"]);
    assert!(ok);
    assert!(stdout.contains("connected   : true"));
    assert!(stdout.contains("degree histogram"));
}

#[test]
fn estimate_prints_theory_table() {
    let (stdout, _, ok) = run(&["estimate", "--n", "1000", "--max-dim", "4"]);
    assert!(ok);
    assert!(stdout.contains("exact E(n,d)"));
    assert!(stdout.lines().count() >= 6);
}

#[test]
fn csv_query_loads_and_answers() {
    let dir = std::env::temp_dir().join(format!("skypeer-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let file = dir.join("pts.csv");
    std::fs::write(&file, "a,b\n1,9\n5,5\n9,1\n7,7\n").expect("write csv");
    let (stdout, stderr, ok) = run(&[
        "csv-query",
        "--file",
        file.to_str().expect("utf8 path"),
        "--superpeers",
        "3",
        "--peers-per-superpeer",
        "1",
        "--degree",
        "2",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("loaded 4 points"), "{stdout}");
    assert!(stdout.contains("3 points"), "the 2-d skyline has 3 points: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_flags_fail_fast() {
    let (_, stderr, ok) = run(&["query", "--peers", "60", "--oops", "1"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag --oops"));

    let (_, stderr2, ok2) = run(&["nonsense"]);
    assert!(!ok2);
    assert!(stderr2.contains("unknown command"));

    let (_, stderr3, ok3) = run(&["query", "--variant", "zzz"]);
    assert!(!ok3);
    assert!(stderr3.contains("unknown --variant"));
}

#[test]
fn faults_command_reports_degradation() {
    let (stdout, _, ok) = run(&[
        "faults",
        "--peers",
        "60",
        "--dim",
        "4",
        "--dims",
        "0,1",
        "--fail",
        "2",
        "--timeout-s",
        "200",
    ]);
    assert!(ok);
    assert!(stdout.contains("healthy"));
    assert!(stdout.contains("degraded"));
}

#[test]
fn trace_reports_metrics_and_critical_path_and_writes_exports() {
    let dir = std::env::temp_dir().join(format!("skypeer-cli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let jsonl = dir.join("q.jsonl");
    let perfetto = dir.join("q.trace.json");
    let (stdout, stderr, ok) = run(&[
        "trace",
        "--peers",
        "60",
        "--dim",
        "5",
        "--dims",
        "0,3",
        "--variant",
        "ftpm",
        "--jsonl",
        jsonl.to_str().unwrap(),
        "--perfetto",
        perfetto.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("counters:"), "{stdout}");
    assert!(stdout.contains("messages_sent"), "{stdout}");
    assert!(stdout.contains("per-node work:"), "{stdout}");
    assert!(stdout.contains("critical path"), "{stdout}");
    let log = std::fs::read_to_string(&jsonl).expect("jsonl written");
    assert!(log.lines().all(|l| l.starts_with('{') && l.ends_with('}')), "one object per line");
    let trace = std::fs::read_to_string(&perfetto).expect("perfetto written");
    assert!(trace.starts_with("{\"traceEvents\":["), "{}", &trace[..trace.len().min(80)]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn routing_flag_selects_spanning_tree() {
    let base = ["query", "--peers", "60", "--dim", "5", "--dims", "0,3"];
    let (flood, _, ok_a) = run(&[&base[..], &["--routing", "flood"]].concat());
    let (tree, _, ok_b) = run(&[&base[..], &["--routing", "tree"]].concat());
    assert!(ok_a && ok_b);
    assert_ne!(flood, tree, "routing mode should change traffic totals");
    let (_, stderr, ok_c) = run(&[&base[..], &["--routing", "carrier-pigeon"]].concat());
    assert!(!ok_c);
    assert!(stderr.contains("unknown --routing"));
}

#[test]
fn explain_renders_every_section_for_all_variants() {
    for variant in ["ftfm", "ftpm", "rtfm", "rtpm", "naive"] {
        let (stdout, stderr, ok) = run(&[
            "explain",
            "--peers",
            "60",
            "--superpeers",
            "6",
            "--dim",
            "5",
            "--points",
            "40",
            "--dims",
            "0,3",
            "--variant",
            variant,
            "--seed",
            "11",
        ]);
        assert!(ok, "{variant} stderr: {stderr}");
        for section in [
            "EXPLAIN skyline",
            "query fan-out",
            "threshold timeline",
            "per-super-peer pruning",
            "link usage vs naive",
            "critical path",
        ] {
            assert!(stdout.contains(section), "{variant}: missing '{section}' in:\n{stdout}");
        }
    }
}

#[test]
fn soak_reports_percentiles_digest_and_slo() {
    let dir = std::env::temp_dir().join(format!("skypeer-cli-soak-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let jsonl = dir.join("rows.jsonl");
    let prom = dir.join("soak.prom");
    let (stdout, stderr, ok) = run(&[
        "soak",
        "--peers",
        "60",
        "--superpeers",
        "6",
        "--dim",
        "5",
        "--points",
        "40",
        "--queries",
        "20",
        "--variants",
        "ftpm,naive",
        "--top-k",
        "4",
        "--slo-p99-ms",
        "100000",
        "--seed",
        "11",
        "--jsonl",
        jsonl.to_str().unwrap(),
        "--prom",
        prom.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("p999 ms"), "{stdout}");
    assert!(stdout.contains("FTPM"), "{stdout}");
    assert!(stdout.contains("naive"), "{stdout}");
    assert!(stdout.contains("worst FTPM: q"), "{stdout}");
    assert!(stdout.contains("skypeer-cli explain --dims"), "{stdout}");
    assert!(stdout.contains("[PASS]"), "{stdout}");
    let rows = std::fs::read_to_string(&jsonl).expect("jsonl written");
    assert_eq!(rows.lines().count(), 40, "one JSONL row per query per variant");
    assert!(rows.lines().all(|l| l.starts_with("{\"variant\":") && l.ends_with('}')));
    let exposition = std::fs::read_to_string(&prom).expect("prom written");
    assert!(exposition.contains("# TYPE skypeer_soak_latency_ns histogram"));
    assert!(exposition.contains("skypeer_soak_latency_ns_bucket{variant=\"FTPM\",le=\""));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn soak_slo_gate_fails_on_impossible_budget() {
    let (_, stderr, ok) = run(&[
        "soak",
        "--peers",
        "60",
        "--superpeers",
        "6",
        "--dim",
        "5",
        "--points",
        "40",
        "--queries",
        "5",
        "--variants",
        "ftpm",
        "--slo-p50-ms",
        "0.000001",
        "--gate",
    ]);
    assert!(!ok, "an unmeetable p50 budget must fail the gate");
    assert!(stderr.contains("SLO gate failed for FTPM"), "{stderr}");
}

/// The tentpole acceptance test: a seeded 500-query skewed workload over
/// all five variants must produce a byte-deterministic SoakSummary with
/// p50/p90/p99/p999 per variant. Self-bootstraps like the explain golden:
/// first run writes `tests/goldens/soak_summary.json`, later runs must
/// reproduce it byte for byte.
#[test]
fn soak_summary_json_is_byte_deterministic_and_matches_golden() {
    let args = [
        "soak",
        "--peers",
        "60",
        "--superpeers",
        "6",
        "--dim",
        "5",
        "--points",
        "40",
        "--queries",
        "500",
        "--seed",
        "11",
        "--workload-seed",
        "3",
        "--k-min",
        "2",
        "--k-max",
        "4",
        "--k-theta",
        "1.1",
        "--initiator-theta",
        "0.8",
        "--json",
    ];
    let (a, stderr, ok_a) = run(&args);
    let (b, _, ok_b) = run(&args);
    assert!(ok_a && ok_b, "stderr: {stderr}");
    assert_eq!(a, b, "two fresh processes must emit identical bytes");
    assert!(a.starts_with("{\"workload\":"), "{}", &a[..a.len().min(80)]);
    for variant in ["FTFM", "FTPM", "RTFM", "RTPM", "naive"] {
        assert!(a.contains(&format!("\"variant\":\"{variant}\"")), "missing {variant}");
    }
    for key in ["\"p50\":", "\"p90\":", "\"p99\":", "\"p999\":", "\"worst\":", "\"totals\":"] {
        assert!(a.contains(key), "missing {key}");
    }

    let golden =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/soak_summary.json");
    if !golden.exists() {
        std::fs::create_dir_all(golden.parent().unwrap()).expect("goldens dir");
        std::fs::write(&golden, &a).expect("bootstrap golden");
    }
    let want = std::fs::read_to_string(&golden).expect("golden readable");
    assert_eq!(
        a,
        want,
        "soak --json drifted from {}; if the change is intentional, delete the golden and rerun",
        golden.display()
    );
}

/// Extracts every occurrence of `key` followed by a number from flat
/// deterministic JSON (no nesting-aware parsing needed: the keys probed
/// here are unique within their enclosing objects).
fn json_numbers(s: &str, key: &str) -> Vec<f64> {
    let mut out = Vec::new();
    let mut rest = s;
    while let Some(p) = rest.find(key) {
        rest = &rest[p + key.len()..];
        let end = rest
            .find(|c: char| !c.is_ascii_digit() && c != '-' && c != '.' && c != 'e' && c != '+')
            .unwrap_or(rest.len());
        out.push(rest[..end].parse().expect("numeric field"));
        rest = &rest[end..];
    }
    out
}

/// The cache acceptance test: the same seeded 500-query Zipf workload,
/// run with `--cache`, must stay byte-deterministic, hit at least 30% of
/// lookups on every variant (exact + subsumption), and move strictly
/// fewer backbone bytes than the uncached golden run — while this golden
/// pins the exact output next to `soak_summary.json`.
#[test]
fn cached_soak_summary_matches_golden_and_beats_uncached() {
    let args = [
        "soak",
        "--peers",
        "60",
        "--superpeers",
        "6",
        "--dim",
        "5",
        "--points",
        "40",
        "--queries",
        "500",
        "--seed",
        "11",
        "--workload-seed",
        "3",
        "--k-min",
        "2",
        "--k-max",
        "4",
        "--k-theta",
        "1.1",
        "--initiator-theta",
        "0.8",
        "--cache",
        "--json",
    ];
    let (a, stderr, ok_a) = run(&args);
    let (b, _, ok_b) = run(&args);
    assert!(ok_a && ok_b, "stderr: {stderr}");
    assert_eq!(a, b, "cached soak must be byte-deterministic");

    let rates = json_numbers(&a, "\"hit_rate\":");
    assert_eq!(rates.len(), 5, "one cache block per variant:\n{a}");
    for r in &rates {
        assert!(*r >= 0.30, "hit rate {r} below the 30% acceptance floor");
    }

    let goldens = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens");
    let golden = goldens.join("soak_summary_cached.json");
    if !golden.exists() {
        std::fs::create_dir_all(&goldens).expect("goldens dir");
        std::fs::write(&golden, &a).expect("bootstrap golden");
    }
    let want = std::fs::read_to_string(&golden).expect("golden readable");
    assert_eq!(
        a,
        want,
        "cached soak --json drifted from {}; if the change is intentional, delete the golden and rerun",
        golden.display()
    );

    // Bootstrap the uncached golden ourselves if the sibling test has not
    // run yet, so the byte comparison below never races on test order.
    let uncached_golden = goldens.join("soak_summary.json");
    if !uncached_golden.exists() {
        let uncached_args: Vec<&str> = args.iter().copied().filter(|s| *s != "--cache").collect();
        let (u, _, ok) = run(&uncached_args);
        assert!(ok);
        std::fs::write(&uncached_golden, &u).expect("bootstrap uncached golden");
    }
    let uncached = std::fs::read_to_string(&uncached_golden).expect("uncached golden readable");
    let cached_bytes = json_numbers(&a, "\"bytes\":");
    let uncached_bytes = json_numbers(&uncached, "\"bytes\":");
    assert_eq!(cached_bytes.len(), 5, "one totals block per variant");
    assert_eq!(uncached_bytes.len(), 5);
    for (v, (c, u)) in cached_bytes.iter().zip(&uncached_bytes).enumerate() {
        assert!(c < u, "variant #{v}: cached run must move fewer bytes ({c} !< {u})");
    }
}

/// Golden test for the machine-readable explain output. Self-bootstraps:
/// the first run writes `tests/goldens/explain_rtpm.json`; every later
/// run must reproduce it byte for byte (the DES is deterministic and the
/// JSON builder is byte-stable).
#[test]
fn explain_json_is_byte_deterministic_and_matches_golden() {
    let args = [
        "explain",
        "--peers",
        "60",
        "--superpeers",
        "6",
        "--dim",
        "5",
        "--points",
        "40",
        "--dims",
        "0,3",
        "--variant",
        "rtpm",
        "--seed",
        "11",
        "--json",
    ];
    let (a, stderr, ok_a) = run(&args);
    let (b, _, ok_b) = run(&args);
    assert!(ok_a && ok_b, "stderr: {stderr}");
    assert_eq!(a, b, "two fresh processes must emit identical bytes");
    assert!(a.starts_with("{\"query\":"), "{}", &a[..a.len().min(80)]);
    for key in
        ["\"thresholds\":", "\"threshold_monotone\":true", "\"pruning\":", "\"critical_path\":"]
    {
        assert!(a.contains(key), "missing {key}");
    }

    let golden =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/explain_rtpm.json");
    if !golden.exists() {
        std::fs::create_dir_all(golden.parent().unwrap()).expect("goldens dir");
        std::fs::write(&golden, &a).expect("bootstrap golden");
    }
    let want = std::fs::read_to_string(&golden).expect("golden readable");
    assert_eq!(
        a,
        want,
        "explain --json drifted from {}; if the change is intentional, delete the golden and rerun",
        golden.display()
    );
}
