//! CLI subcommand implementations.

use crate::args::{ArgError, Args};
use skypeer_core::engine::{EngineConfig, QueryMetrics, SkypeerEngine};
use skypeer_core::Variant;
use skypeer_data::{DatasetKind, DatasetSpec, Query, WorkloadSpec};
use skypeer_netsim::cost::CostModel;
use skypeer_netsim::des::LinkModel;
use skypeer_netsim::topology::TopologySpec;
use skypeer_skyline::{DominanceIndex, Subspace};

/// Builds an engine from the shared network flags:
/// `--peers`, `--superpeers`, `--dim`, `--points`, `--degree`, `--data`,
/// `--seed`, `--routing`.
fn engine_from(args: &Args) -> Result<SkypeerEngine, ArgError> {
    let n_peers: usize = args.get_or("peers", 400)?;
    let default_sp = EngineConfig::paper_superpeers(n_peers);
    let n_superpeers: usize = args.get_or("superpeers", default_sp)?;
    let dim: usize = args.get_or("dim", 8)?;
    let points_per_peer: usize = args.get_or("points", 250)?;
    let degree: f64 = args.get_or("degree", 4.0)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let kind = match args.str_or("data", "uniform").as_str() {
        "uniform" => DatasetKind::Uniform,
        "clustered" => DatasetKind::Clustered { centroids_per_superpeer: 2 },
        "correlated" => DatasetKind::Correlated,
        "anticorrelated" => DatasetKind::Anticorrelated,
        other => return Err(ArgError(format!("unknown --data '{other}'"))),
    };
    if n_superpeers == 0 || n_peers == 0 {
        return Err(ArgError("need at least one peer and one super-peer".into()));
    }
    // Small networks cannot host the default degree; clamp like the bench
    // harness does rather than bothering the user.
    let degree = degree.min(n_superpeers.saturating_sub(1) as f64);
    let index = if args.flag("linear")? { DominanceIndex::Linear } else { DominanceIndex::RTree };
    let routing = match args.str_or("routing", "flood").as_str() {
        "flood" => skypeer_core::engine::RoutingMode::Flood,
        "tree" => skypeer_core::engine::RoutingMode::SpanningTree,
        other => return Err(ArgError(format!("unknown --routing '{other}' (flood|tree)"))),
    };
    let mut topology = TopologySpec::paper_default(n_superpeers, seed ^ 0xD1CE);
    topology.avg_degree = degree;
    Ok(SkypeerEngine::build(EngineConfig {
        n_peers,
        n_superpeers,
        dataset: DatasetSpec { dim, points_per_peer, kind, seed },
        topology,
        index,
        cost: CostModel::default(),
        link: LinkModel::paper_4kbps(),
        routing,
    }))
}

fn parse_variant(name: &str) -> Result<Variant, ArgError> {
    match name.to_lowercase().as_str() {
        "ftfm" => Ok(Variant::Ftfm),
        "ftpm" => Ok(Variant::Ftpm),
        "rtfm" => Ok(Variant::Rtfm),
        "rtpm" => Ok(Variant::Rtpm),
        "naive" => Ok(Variant::Naive),
        other => Err(ArgError(format!(
            "unknown --variant '{other}' (expected ftfm|ftpm|rtfm|rtpm|naive)"
        ))),
    }
}

fn variant_from(args: &Args) -> Result<Variant, ArgError> {
    parse_variant(&args.str_or("variant", "ftpm"))
}

/// Parses the shared `--backend` flag (default `skypeer`). The unknown-
/// backend error text is pinned in [`skypeer_core::parse_backend`] so
/// every subcommand and the soak binary report it identically.
fn backend_from(args: &Args) -> Result<skypeer_core::BackendKind, ArgError> {
    skypeer_core::parse_backend(&args.str_or("backend", "skypeer")).map_err(ArgError)
}

/// Parses and validates the shared query flags (`--dims`, `--initiator`)
/// against an already-built engine. Shared by `query`/`trace`/`explain`
/// (and, per workload query, by `soak`'s replay digest).
fn query_from(args: &Args, engine: &SkypeerEngine) -> Result<Query, ArgError> {
    let dims: Vec<usize> = args.list_or("dims", &[0usize, 1, 2])?;
    let initiator: usize = args.get_or("initiator", 0)?;
    if dims.iter().any(|&d| d >= engine.config().dataset.dim) {
        return Err(ArgError("--dims index out of range for --dim".into()));
    }
    if initiator >= engine.config().n_superpeers {
        return Err(ArgError("--initiator out of range".into()));
    }
    Ok(Query { subspace: Subspace::from_dims(&dims), initiator })
}

/// Network/query flags that a pinned `--figure` fixes; giving both is a
/// conflict worth failing fast on rather than silently ignoring one side.
const FIGURE_FIXED_FLAGS: &[&str] = &[
    "peers",
    "superpeers",
    "dim",
    "points",
    "degree",
    "data",
    "seed",
    "routing",
    "linear",
    "dims",
    "initiator",
];

/// Builds the engine + query either from `--figure NAME` (a pinned
/// bench-regression figure) or from the shared network/query flags.
/// Shared by `query`, `trace`, `explain`, and `profile` so the figure
/// resolution — and its error text — is identical across subcommands.
fn setup_from(args: &Args) -> Result<(SkypeerEngine, Query), ArgError> {
    if !args.present("figure") {
        let engine = engine_from(args)?;
        let q = query_from(args, &engine)?;
        return Ok((engine, q));
    }
    let name = args.str_or("figure", "");
    if let Some(flag) = FIGURE_FIXED_FLAGS.iter().find(|f| args.present(f)) {
        return Err(ArgError(format!(
            "--{flag} conflicts with --figure (a pinned figure fixes the network and query)"
        )));
    }
    let p = skypeer_bench::regress::pinned_figure(&name).ok_or_else(|| {
        ArgError(format!(
            "unknown figure '{name}' (known: {})",
            skypeer_bench::regress::pinned_figure_names().join(", ")
        ))
    })?;
    Ok((SkypeerEngine::build(p.config), p.query))
}

/// `skypeer-cli stats` — preprocessing selectivities of a generated
/// network (the Figure 3(a) quantities).
pub fn stats(args: &Args) -> Result<(), ArgError> {
    let engine = engine_from(args)?;
    let per_node = args.flag("per-node")?;
    args.reject_unknown()?;
    let r = engine.preprocess_report();
    let cfg = engine.config();
    println!(
        "network: {} peers / {} super-peers / d={}",
        cfg.n_peers, cfg.n_superpeers, cfg.dataset.dim
    );
    println!("raw points        : {}", r.raw_points);
    println!("uploaded (ext-sky): {}  (SEL_p  = {:.2}%)", r.uploaded_points, 100.0 * r.sel_p());
    println!("stored at SPs     : {}  (SEL_sp = {:.2}%)", r.stored_points, 100.0 * r.sel_sp());
    println!("survivor rate     : {:.2}%", 100.0 * r.sel_ratio());
    println!("upload volume     : {:.1} KB", r.uploaded_bytes as f64 / 1024.0);
    if per_node {
        println!("per super-peer stores:");
        println!("{:>6}  {:>9}  {:>9}", "node", "points", "share");
        let total = r.stored_points.max(1);
        for sp in 0..cfg.n_superpeers {
            let len = engine.store(sp).len();
            println!(
                "{:>6}  {:>9}  {:>8.2}%",
                format!("SP{sp}"),
                len,
                100.0 * len as f64 / total as f64
            );
        }
    }
    Ok(())
}

/// `skypeer-cli query` — run one subspace skyline query.
pub fn query(args: &Args) -> Result<(), ArgError> {
    let (engine, q) = setup_from(args)?;
    let variant = variant_from(args)?;
    let backend = backend_from(args)?;
    let show: usize = args.get_or("show", 10)?;
    args.reject_unknown()?;
    // The default backend keeps the original (golden-pinned) execution
    // path and output; other backends report themselves and their rounds.
    let out = match backend {
        skypeer_core::BackendKind::Skypeer => engine.run_query(q, variant),
        other => engine.run_query_on_backend(other, q, variant, None),
    };
    println!("query     : skyline on {} from SP{} via {variant}", q.subspace, q.initiator);
    if backend != skypeer_core::BackendKind::default() {
        println!("backend   : {backend} ({} rounds)", out.rounds);
    }
    println!("result    : {} points (exact)", out.result_ids.len());
    println!("comp time : {:.3} ms", out.comp_time_ns as f64 / 1e6);
    println!("total time: {:.3} ms (4 KB/s links)", out.total_time_ns as f64 / 1e6);
    println!("volume    : {:.1} KB in {} messages", out.volume_bytes as f64 / 1024.0, out.messages);
    println!("dropped   : {} messages", out.dropped);
    for i in 0..out.result.len().min(show) {
        let p = out.result.points().point(i);
        let rounded: Vec<f64> = p.iter().map(|v| (v * 1000.0).round() / 1000.0).collect();
        println!("  #{:<10} {:?}", out.result.points().id(i), rounded);
    }
    if out.result.len() > show {
        println!("  ... {} more (raise --show)", out.result.len() - show);
    }
    Ok(())
}

/// Parses a `--perturb-link FROM:TO:LATENCY_NS[:NS_PER_BYTE]` spec into a
/// directed-link override via the shared netsim parser, wrapping its
/// (pinned) error text into an [`ArgError`].
fn parse_perturb_link(spec: &str, base: LinkModel) -> Result<(usize, usize, LinkModel), ArgError> {
    skypeer_netsim::des::parse_perturb_spec(spec, base).map_err(ArgError)
}

/// `skypeer-cli trace` — run one query with full tracing: metrics
/// registry, per-node work table, hottest node/link, and the critical
/// path that determined the response time. Optionally exports the raw
/// event log (`--jsonl`) and a Perfetto/chrome://tracing file
/// (`--perfetto`). `--perturb-link` re-runs the same deterministic query
/// with one directed link degraded — capture both logs and feed them to
/// `skypeer-cli diff` to see the attribution name that link.
pub fn trace(args: &Args) -> Result<(), ArgError> {
    use skypeer_netsim::obs::{self, MemTracer, MetricsRegistry, Tracer};
    use std::sync::Arc;

    let (engine, q) = setup_from(args)?;
    let variant = variant_from(args)?;
    let backend = backend_from(args)?;
    let jsonl_path = args.str_or("jsonl", "");
    let perfetto_path = args.str_or("perfetto", "");
    let perturb_spec = args.str_or("perturb-link", "");
    args.reject_unknown()?;
    let overrides = if perturb_spec.is_empty() {
        Vec::new()
    } else {
        let (from, to, link) = parse_perturb_link(&perturb_spec, engine.config().link)?;
        if from >= engine.config().n_superpeers || to >= engine.config().n_superpeers {
            return Err(ArgError("--perturb-link node out of range".into()));
        }
        vec![(from, to, link)]
    };

    let tracer = Arc::new(MemTracer::new());
    // The default backend keeps the original (golden-pinned) paths; other
    // backends run through the trait seam with the same tracer/overrides.
    let out = if backend != skypeer_core::BackendKind::default() {
        skypeer_core::backend_for(backend).run_observed(
            &engine,
            q,
            variant,
            Some(Arc::clone(&tracer) as Arc<dyn Tracer>),
            &overrides,
        )
    } else if overrides.is_empty() {
        engine.run_query_traced(q, variant, Arc::clone(&tracer) as Arc<dyn Tracer>)
    } else {
        engine.run_query_observed_perturbed(
            q,
            variant,
            &overrides,
            Some(Arc::clone(&tracer) as Arc<dyn Tracer>),
        )
    };
    let events = tracer.take();

    println!("query     : skyline on {} from SP{} via {variant}", q.subspace, q.initiator);
    if backend != skypeer_core::BackendKind::default() {
        println!("backend   : {backend} ({} rounds)", out.rounds);
    }
    for (from, to, link) in &overrides {
        println!(
            "perturbed : SP{from} -> SP{to} latency {} ns, {} ns/byte",
            link.latency_ns, link.ns_per_byte
        );
    }
    println!("result    : {} points (exact)", out.result_ids.len());
    println!("total time: {:.3} ms (4 KB/s links)", out.total_time_ns as f64 / 1e6);
    println!("events    : {}", events.len());

    let m = MetricsRegistry::from_events(&events);
    println!("\ncounters:");
    for (name, value) in &m.counters {
        println!("  {name:<22} {value}");
    }
    println!("\nhistograms:");
    println!("  service time (ns)    {}", m.service_ns.summary());
    println!("  message size (bytes) {}", m.msg_bytes.summary());
    println!("  hop latency (ns)     {}", m.hop_latency_ns.summary());
    println!("  dominance tests/span {}", m.dominance_tests.summary());

    println!("\nper-node work:");
    println!(
        "{:>6}  {:>6}  {:>11}  {:>7}  {:>7}  {:>10}  {:>10}  {:>10}",
        "node", "spans", "service ms", "msg in", "msg out", "bytes in", "bytes out", "dom tests"
    );
    for (node, nm) in m.per_node.iter().enumerate() {
        if nm.spans == 0 && nm.msgs_in == 0 && nm.msgs_out == 0 {
            continue;
        }
        println!(
            "{:>6}  {:>6}  {:>11.3}  {:>7}  {:>7}  {:>10}  {:>10}  {:>10}",
            format!("SP{node}"),
            nm.spans,
            nm.service_ns as f64 / 1e6,
            nm.msgs_in,
            nm.msgs_out,
            nm.bytes_in,
            nm.bytes_out,
            nm.dominance_tests
        );
    }
    if let Some((node, ns)) = m.hottest_node() {
        println!("hottest node: SP{node} ({:.3} ms service time)", ns as f64 / 1e6);
    }
    if let Some(((a, b), bytes)) = m.hottest_link() {
        println!("hottest link: SP{a} -> SP{b} ({bytes} bytes)");
    }
    if !m.thresholds.is_empty() {
        println!("\nthreshold samples (sim-time ms, node, value):");
        for s in &m.thresholds {
            println!("  {:>10.3}  SP{:<4}  {:.6}", s.at as f64 / 1e6, s.node, s.value);
        }
    }

    match obs::critical_path(&events) {
        Some(path) => println!("\n{}", obs::critical::render(&path)),
        None => println!("\nno critical path (no finish event recorded)"),
    }

    if !jsonl_path.is_empty() {
        std::fs::write(&jsonl_path, obs::jsonl(&events))
            .map_err(|e| ArgError(format!("cannot write {jsonl_path}: {e}")))?;
        println!("wrote event log: {jsonl_path}");
    }
    if !perfetto_path.is_empty() {
        std::fs::write(&perfetto_path, obs::chrome_trace(&events))
            .map_err(|e| ArgError(format!("cannot write {perfetto_path}: {e}")))?;
        println!("wrote Perfetto trace: {perfetto_path} (open at https://ui.perfetto.dev)");
    }
    Ok(())
}

/// `skypeer-cli explain` — EXPLAIN/ANALYZE one query: plan and execution
/// tree (variant, fan-out, threshold timeline, per-super-peer prune
/// effectiveness, bytes per link vs. the naive baseline, annotated
/// critical path). `--json` emits the byte-deterministic machine form.
pub fn explain(args: &Args) -> Result<(), ArgError> {
    let (engine, q) = setup_from(args)?;
    let variant = variant_from(args)?;
    let backend = backend_from(args)?;
    let json = args.flag("json")?;
    args.reject_unknown()?;
    if backend != skypeer_core::BackendKind::default() {
        return Err(ArgError(format!(
            "explain supports only the skypeer backend (the {backend} protocol has no \
             threshold/merge plan to explain)"
        )));
    }
    let report = engine.explain_query(q, variant);
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    Ok(())
}

/// `skypeer-cli compare` — run the pinned bench figures (or one, via
/// `--figure`) under every distributed-skyline backend and emit a
/// head-to-head report of rounds / total bytes / simulated time /
/// dominance tests per figure. Everything derives from the deterministic
/// DES, so the report is byte-deterministic and golden-testable; the
/// answers are asserted identical across backends before anything is
/// printed. `--variant` picks the SKYPEER side's variant (default FTPM);
/// `--json` emits the machine form.
pub fn compare(args: &Args) -> Result<(), ArgError> {
    use skypeer_core::{backend_for, BackendKind};
    use skypeer_netsim::obs::{json, MemTracer, MetricsRegistry, Tracer};
    use std::sync::Arc;

    let variant = variant_from(args)?;
    let json_out = args.flag("json")?;
    let figures = if args.present("figure") {
        let name = args.str_or("figure", "");
        vec![skypeer_bench::regress::pinned_figure(&name).ok_or_else(|| {
            ArgError(format!(
                "unknown figure '{name}' (known: {})",
                skypeer_bench::regress::pinned_figure_names().join(", ")
            ))
        })?]
    } else {
        skypeer_bench::regress::pinned_figures()
    };
    args.reject_unknown()?;

    struct Measured {
        backend: BackendKind,
        rounds: u64,
        total_bytes: u64,
        sim_time_ns: u64,
        dominance_tests: u64,
        result_ids: Vec<u64>,
    }
    let mut blocks = Vec::new();
    for p in figures {
        let engine = SkypeerEngine::build(p.config);
        let runs: Vec<Measured> = BackendKind::ALL
            .iter()
            .map(|&backend| {
                let tracer = Arc::new(MemTracer::new());
                let out = backend_for(backend).run_observed(
                    &engine,
                    p.query,
                    variant,
                    Some(Arc::clone(&tracer) as Arc<dyn Tracer>),
                    &[],
                );
                let m = MetricsRegistry::from_events(&tracer.take());
                Measured {
                    backend,
                    rounds: out.rounds,
                    total_bytes: out.volume_bytes,
                    sim_time_ns: out.total_time_ns,
                    dominance_tests: m.counters.get("dominance_tests").copied().unwrap_or(0),
                    result_ids: out.result_ids,
                }
            })
            .collect();
        for r in &runs[1..] {
            if r.result_ids != runs[0].result_ids {
                return Err(ArgError(format!(
                    "{}: backend {} disagrees with {} on the answer ({} vs {} points)",
                    p.figure,
                    r.backend,
                    runs[0].backend,
                    r.result_ids.len(),
                    runs[0].result_ids.len()
                )));
            }
        }
        blocks.push((p.figure, p.query, runs));
    }

    type Metric = (&'static str, fn(&Measured) -> u64);
    // For every metric here, lower is better.
    const METRICS: [Metric; 4] = [
        ("rounds", |r| r.rounds),
        ("total_bytes", |r| r.total_bytes),
        ("sim_time_ns", |r| r.sim_time_ns),
        ("dominance_tests", |r| r.dominance_tests),
    ];
    let winner = |runs: &[Measured], get: fn(&Measured) -> u64| -> String {
        let best = runs.iter().map(&get).min().expect("at least one backend");
        let winners: Vec<&Measured> = runs.iter().filter(|r| get(r) == best).collect();
        if winners.len() == 1 {
            winners[0].backend.to_string()
        } else {
            "tie".to_string()
        }
    };

    if json_out {
        let doc = json::arr(blocks.iter().map(|(figure, q, runs)| {
            let backends = json::arr(runs.iter().map(|r| {
                json::Obj::new()
                    .str("backend", &r.backend.to_string())
                    .u64("rounds", r.rounds)
                    .u64("total_bytes", r.total_bytes)
                    .u64("sim_time_ns", r.sim_time_ns)
                    .u64("dominance_tests", r.dominance_tests)
                    .build()
            }));
            let winners = METRICS
                .iter()
                .fold(json::Obj::new(), |o, (name, get)| o.str(name, &winner(runs, *get)));
            json::Obj::new()
                .str("figure", figure)
                .str("variant", variant.mnemonic())
                .u64("result_points", runs[0].result_ids.len() as u64)
                .u64("initiator", q.initiator as u64)
                .raw("backends", &backends)
                .raw("winners", &winners.build())
                .build()
        }));
        println!("{doc}");
        return Ok(());
    }

    for (figure, q, runs) in &blocks {
        println!(
            "== {figure}: skyline on {} from SP{}, skypeer variant {} ==",
            q.subspace,
            q.initiator,
            variant.mnemonic()
        );
        println!("answers agree: {} points (exact)", runs[0].result_ids.len());
        print!("{:<16}", "metric");
        for r in runs {
            print!(" {:>12}", r.backend.to_string());
        }
        println!(" {:>10}", "winner");
        for (name, get) in METRICS {
            print!("{name:<16}");
            for r in runs {
                print!(" {:>12}", get(r));
            }
            println!(" {:>10}", winner(runs, get));
        }
        println!();
    }
    Ok(())
}

/// Shared implementation of `why` / `why-not`: resolve the positional
/// point id's full lineage against the query's subspace and render it
/// deterministically (text, or single-line JSON with `--json`). The two
/// subcommands differ only in which outcome they expect, so each adds a
/// redirect note when the point landed on the other side.
fn lineage_command(args: &Args, expect_in_answer: bool) -> Result<(), ArgError> {
    use skypeer_netsim::obs::LineageStage;

    let [id_str] = args.positional() else {
        unreachable!("main.rs enforces exactly one positional");
    };
    let id: u64 = id_str.parse().map_err(|_| ArgError(format!("bad point id '{id_str}'")))?;
    let (engine, q) = setup_from(args)?;
    let json = args.flag("json")?;
    args.reject_unknown()?;
    let resolver = skypeer_core::LineageResolver::new(&engine);
    let lineage = resolver.lineage(id, q.subspace);
    if json {
        println!("{}", lineage.to_json());
        return Ok(());
    }
    print!("{}", lineage.render_text());
    let in_answer = matches!(lineage.stage, LineageStage::InSkyline);
    if expect_in_answer && !in_answer {
        println!("note      : the point is NOT in this answer — see `why-not {id}`");
    } else if !expect_in_answer && in_answer {
        println!("note      : the point IS in this answer — see `why {id}`");
    }
    Ok(())
}

/// `skypeer-cli why <point>` — why a point is in the subspace skyline
/// answer: origin peer, owning super-peer, and the ext-skyline store
/// entry it survived through.
pub fn why(args: &Args) -> Result<(), ArgError> {
    lineage_command(args, true)
}

/// `skypeer-cli why-not <point>` — why a point is absent from the
/// answer: where the pipeline pruned it (its own peer, the super-peer
/// merge, or query-time dominance) and the dominance witness that
/// killed it.
pub fn why_not(args: &Args) -> Result<(), ArgError> {
    lineage_command(args, false)
}

/// `skypeer-cli profile` — in-process CPU profile of one query run as a
/// scoped calltree: ranked self-time table by default, byte-deterministic
/// JSON (`--json`), and folded-stack lines for flamegraph tooling
/// (`--folded FILE`). `--clock logical` swaps the monotonic clock for a
/// deterministic logical counter, making both exports byte-stable across
/// hosts — the form the committed goldens pin. `--overhead` instead
/// measures what observability costs: `--repeat` untraced runs are timed
/// against the same runs with profiling + tracing on and the ratio is
/// reported (advisory unless `--max-ratio` is set above zero).
pub fn profile(args: &Args) -> Result<(), ArgError> {
    use skypeer_netsim::obs::{prof, ClockMode, MemTracer, OverheadReport, Tracer};
    use std::sync::Arc;

    let figure_label =
        if args.present("figure") { args.str_or("figure", "") } else { "adhoc".to_string() };
    // Build the engine before any profiling session starts so the calltree
    // covers only the query run, not bulk-load/preprocessing — that keeps
    // the logical-clock goldens independent of construction details.
    let (engine, q) = setup_from(args)?;
    let variant = variant_from(args)?;
    let clock = match args.str_or("clock", "monotonic").as_str() {
        "monotonic" => ClockMode::Monotonic,
        "logical" => ClockMode::Logical,
        other => return Err(ArgError(format!("unknown --clock '{other}' (logical|monotonic)"))),
    };
    let overhead = args.flag("overhead")?;
    let repeat: u32 = args.get_or("repeat", 3)?;
    let max_ratio: f64 = args.get_or("max-ratio", 0.0)?;
    let json = args.flag("json")?;
    let folded_path = args.str_or("folded", "");
    args.reject_unknown()?;

    if overhead {
        if repeat == 0 {
            return Err(ArgError("--repeat must be at least 1".into()));
        }
        // Warm-up run outside both timers so one-time costs (allocator
        // growth, lazy inits) do not land on either side of the ratio.
        engine.run_query(q, variant);
        let t0 = std::time::Instant::now();
        for _ in 0..repeat {
            engine.run_query(q, variant);
        }
        let baseline_ns = t0.elapsed().as_nanos() as u64;
        prof::start(ClockMode::Monotonic);
        let t1 = std::time::Instant::now();
        for _ in 0..repeat {
            let tracer = Arc::new(MemTracer::new());
            engine.run_query_traced(q, variant, Arc::clone(&tracer) as Arc<dyn Tracer>);
        }
        let instrumented_ns = t1.elapsed().as_nanos() as u64;
        let p = prof::stop();
        let report = OverheadReport {
            figure: figure_label,
            repeats: repeat,
            baseline_ns,
            instrumented_ns,
            scope_enters: p.tree.total_calls(),
            distinct_scopes: p.tree.len() as u64,
        };
        if json {
            println!("{}", report.to_json());
        } else {
            print!("{}", report.render());
        }
        if max_ratio > 0.0 && report.ratio() > max_ratio {
            return Err(ArgError(format!(
                "observability overhead ratio {:.3}x exceeds --max-ratio {max_ratio}",
                report.ratio()
            )));
        }
        return Ok(());
    }

    let (p, out) = prof::profiled(clock, || engine.run_query(q, variant));
    if json {
        println!("{}", p.to_json());
    } else {
        print!("{}", p.render_table());
        println!(
            "query: skyline on {} from SP{} via {variant} -> {} points",
            q.subspace,
            q.initiator,
            out.result_ids.len()
        );
    }
    if !folded_path.is_empty() {
        std::fs::write(&folded_path, p.folded())
            .map_err(|e| ArgError(format!("cannot write {folded_path}: {e}")))?;
        println!("wrote folded stacks to {folded_path} (flamegraph.pl / inferno input)");
    }
    Ok(())
}

/// What a capture file holds, detected from its first JSON object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CaptureKind {
    /// A trace event log (`trace --jsonl`): lines starting `{"type":`.
    TraceJsonl,
    /// A soak summary (`soak --out` / `--json`): one object with a
    /// `workload` key.
    SoakSummary,
}

fn capture_kind(path: &str, text: &str) -> Result<CaptureKind, ArgError> {
    let head = text.trim_start();
    if head.starts_with("{\"type\":") {
        Ok(CaptureKind::TraceJsonl)
    } else if head.starts_with('{') {
        Ok(CaptureKind::SoakSummary)
    } else {
        Err(ArgError(format!(
            "{path}: not a capture (expected trace JSONL from `trace --jsonl` or a soak summary from `soak --out`)"
        )))
    }
}

/// `skypeer-cli diff` — root-cause the difference between two captures.
///
/// Accepts either two trace event logs (`trace --jsonl F`) or two soak
/// summaries (`soak --out F`); the kind is auto-detected and must match.
/// Trace diffs decompose the `sim_time_ns` / `total_bytes` /
/// `dominance_tests` / queue-depth deltas down to phase, node, and link,
/// and `--what-if-factor F` additionally ranks counterfactual
/// interventions (scale each critical-path node/link by `F`) by predicted
/// nanoseconds saved. Soak diffs report per-variant percentile drift,
/// cache hit-rate movement, and SLO margin movement. `--json` emits the
/// byte-deterministic machine form of either.
pub fn diff(args: &Args) -> Result<(), ArgError> {
    use skypeer_netsim::obs::{self, diff as tdiff};

    let [baseline_path, candidate_path] = args.positional() else {
        return Err(ArgError(format!(
            "diff needs exactly two capture paths, got {}",
            args.positional().len()
        )));
    };
    let json = args.flag("json")?;
    let what_if_factor: f64 = args.get_or("what-if-factor", 0.0f64)?;
    args.reject_unknown()?;
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))
    };
    let base_text = read(baseline_path)?;
    let cand_text = read(candidate_path)?;
    let kind = capture_kind(baseline_path, &base_text)?;
    let cand_kind = capture_kind(candidate_path, &cand_text)?;
    if kind != cand_kind {
        return Err(ArgError(format!(
            "cannot diff a {kind:?} against a {cand_kind:?} (both captures must be the same kind)"
        )));
    }

    match kind {
        CaptureKind::TraceJsonl => {
            let parse = |path: &str, text: &str| {
                obs::parse_jsonl(text).map_err(|e| ArgError(format!("{path}: {e}")))
            };
            let base_events = parse(baseline_path, &base_text)?;
            let cand_events = parse(candidate_path, &cand_text)?;
            let report = tdiff::AttributionReport::attribute(
                &tdiff::TraceDigest::from_events(&base_events),
                &tdiff::TraceDigest::from_events(&cand_events),
            );
            let ranked = (what_if_factor > 0.0)
                .then(|| obs::critical_path(&cand_events))
                .flatten()
                .map(|path| tdiff::rank_interventions(&path, what_if_factor));
            if json {
                let mut o = skypeer_netsim::obs::json::Obj::new()
                    .str("kind", "trace")
                    .raw("attribution", &report.to_json());
                if let Some(r) = &ranked {
                    o = o.raw("what_if", &tdiff::what_if_json(r));
                }
                println!("{}", o.build());
            } else {
                print!("{}", report.render());
                if let Some(r) = &ranked {
                    print!("{}", tdiff::render_what_if(r));
                }
            }
        }
        CaptureKind::SoakSummary => {
            let d = skypeer_bench::diff_soak_summaries(&base_text, &cand_text).map_err(ArgError)?;
            if json {
                println!(
                    "{}",
                    skypeer_netsim::obs::json::Obj::new()
                        .str("kind", "soak")
                        .raw("diff", &d.to_json())
                        .build()
                );
            } else {
                print!("{}", d.render());
            }
        }
    }
    Ok(())
}

/// `skypeer-cli workload` — averaged metrics over a random workload, all
/// variants side by side.
pub fn workload(args: &Args) -> Result<(), ArgError> {
    let engine = engine_from(args)?;
    let k: usize = args.get_or("k", 3)?;
    let queries: usize = args.get_or("queries", 10)?;
    let wl_seed: u64 = args.get_or("workload-seed", 1)?;
    args.reject_unknown()?;
    let cfg = engine.config();
    if k == 0 || k > cfg.dataset.dim {
        return Err(ArgError(format!("--k {k} out of range for d={}", cfg.dataset.dim)));
    }
    let wl = WorkloadSpec {
        dim: cfg.dataset.dim,
        k,
        queries,
        n_superpeers: cfg.n_superpeers,
        seed: wl_seed,
    }
    .generate();
    println!(
        "{} queries, k={k}, {} peers / {} super-peers",
        queries, cfg.n_peers, cfg.n_superpeers
    );
    println!(
        "{:>7}  {:>11}  {:>12}  {:>10}  {:>8}",
        "variant", "comp (ms)", "total (ms)", "vol (KB)", "msgs"
    );
    for variant in Variant::ALL {
        let m = QueryMetrics::from_outcomes(&engine.run_workload(&wl, variant));
        println!(
            "{:>7}  {:>11.3}  {:>12.3}  {:>10.1}  {:>8.1}",
            variant.mnemonic(),
            m.avg_comp_time_ns / 1e6,
            m.avg_total_time_ns / 1e6,
            m.avg_volume_bytes / 1024.0,
            m.avg_messages,
        );
    }
    Ok(())
}

/// `skypeer-cli topology` — inspect a generated super-peer backbone.
pub fn topology(args: &Args) -> Result<(), ArgError> {
    let n: usize = args.get_or("superpeers", 20)?;
    let degree: f64 = args.get_or("degree", 4.0)?;
    let seed: u64 = args.get_or("seed", 42)?;
    args.reject_unknown()?;
    let mut spec = TopologySpec::paper_default(n, seed);
    spec.avg_degree = degree;
    let topo = spec.generate();
    println!("super-peers : {}", topo.len());
    println!("edges       : {}", topo.edge_count());
    println!("avg degree  : {:.2} (target {degree})", topo.avg_degree());
    println!("connected   : {}", topo.is_connected());
    let ecc: Vec<usize> = (0..topo.len()).map(|i| topo.eccentricity(i)).collect();
    println!("diameter    : {}", ecc.iter().max().unwrap_or(&0));
    println!("radius      : {}", ecc.iter().min().unwrap_or(&0));
    let mut hist = std::collections::BTreeMap::new();
    for sp in 0..topo.len() {
        *hist.entry(topo.neighbors(sp).len()).or_insert(0usize) += 1;
    }
    println!("degree histogram:");
    for (deg, count) in hist {
        println!("  {deg:>3}: {}", "#".repeat(count.min(70)));
    }
    Ok(())
}

/// `skypeer-cli faults` — a degraded query: crash super-peers mid-run and
/// rely on child timeouts.
pub fn faults(args: &Args) -> Result<(), ArgError> {
    let engine = engine_from(args)?;
    let variant = variant_from(args)?;
    let dims: Vec<usize> = args.list_or("dims", &[0usize, 1, 2])?;
    let fail: Vec<usize> = args.list_or("fail", &[1usize])?;
    let fail_at_ms: u64 = args.get_or("fail-at-ms", 0)?;
    let timeout_s: u64 = args.get_or("timeout-s", 120)?;
    args.reject_unknown()?;
    let q = Query { subspace: Subspace::from_dims(&dims), initiator: 0 };
    if fail.contains(&0) {
        return Err(ArgError("cannot fail the initiator (SP0)".into()));
    }
    let failures: Vec<(usize, u64)> = fail.iter().map(|&sp| (sp, fail_at_ms * 1_000_000)).collect();
    let healthy = engine.run_query(q, variant);
    let degraded = engine.run_query_with_failures(q, variant, &failures, timeout_s * 1_000_000_000);
    println!(
        "query: skyline on {} via {variant}; failing SPs {fail:?} at t={fail_at_ms}ms",
        q.subspace
    );
    println!(
        "healthy : {} points, complete={}, total {:.1} ms, {} msgs dropped",
        healthy.result_ids.len(),
        healthy.complete,
        healthy.total_time_ns as f64 / 1e6,
        healthy.dropped
    );
    println!(
        "degraded: {} points, complete={}, total {:.1} ms, {} msgs dropped",
        degraded.result_ids.len(),
        degraded.complete,
        degraded.total_time_ns as f64 / 1e6,
        degraded.dropped
    );
    let missing: Vec<u64> =
        healthy.result_ids.iter().copied().filter(|id| !degraded.result_ids.contains(id)).collect();
    let extra: Vec<u64> =
        degraded.result_ids.iter().copied().filter(|id| !healthy.result_ids.contains(id)).collect();
    println!("missing vs exact: {} points; spurious: {} points", missing.len(), extra.len());
    Ok(())
}

/// `skypeer-cli estimate` — expected skyline sizes from independence
/// theory, for capacity planning.
pub fn estimate(args: &Args) -> Result<(), ArgError> {
    let n: usize = args.get_or("n", 100_000)?;
    let max_d: usize = args.get_or("max-dim", 10)?;
    args.reject_unknown()?;
    if max_d == 0 || max_d > 20 {
        return Err(ArgError("--max-dim must be in 1..=20".into()));
    }
    println!("expected skyline size of {n} independent points (uniform theory):");
    println!("{:>3}  {:>14}  {:>14}  {:>9}", "d", "exact E(n,d)", "asymptotic", "% of n");
    for d in 1..=max_d {
        let exact = skypeer_skyline::estimate::expected_skyline_size(n, d);
        let approx = skypeer_skyline::estimate::asymptotic_skyline_size(n, d);
        println!("{d:>3}  {exact:>14.1}  {approx:>14.1}  {:>8.3}%", 100.0 * exact / n as f64);
    }
    Ok(())
}

/// `skypeer-cli soak` — run a seeded (optionally skewed) query workload
/// through the DES across variants: HDR latency/bytes percentiles, a
/// top-K tail-latency flight recorder with an `explain` replay digest,
/// and per-variant SLO verdicts. While running on a terminal, a live
/// stderr line shows progress and sliding-window throughput; the final
/// stdout report (or `--json` summary) is byte-deterministic.
pub fn soak(args: &Args) -> Result<(), ArgError> {
    use skypeer_bench::soak::{run_soak, SoakAudit, SoakPerturb, SoakSpec, TelemetrySpec};
    use skypeer_data::{InitiatorMix, KMix, MixedWorkloadSpec};
    use skypeer_netsim::obs::SloSpec;
    use std::collections::VecDeque;
    use std::io::{IsTerminal, Write};
    use std::time::Instant;

    let engine = engine_from(args)?;
    let cfg = *engine.config();
    let queries: usize = args.get_or("queries", 100)?;
    let wl_seed: u64 = args.get_or("workload-seed", 1)?;
    let backend = backend_from(args)?;
    let variants_spec = args.str_or("variants", "all");
    let variants: Vec<Variant> = if variants_spec == "all" {
        Variant::ALL.to_vec()
    } else {
        variants_spec.split(',').map(|v| parse_variant(v.trim())).collect::<Result<_, _>>()?
    };
    let k_min: usize = args.get_or("k-min", 0)?;
    let k_max: usize = args.get_or("k-max", 0)?;
    let k_mix = match (k_min, k_max) {
        (0, 0) => KMix::Fixed(args.get_or("k", 3)?),
        (a, b) if a >= 1 && b >= a => {
            KMix::Zipf { k_min: a, k_max: b, exponent: args.get_or("k-theta", 1.0f64)? }
        }
        _ => return Err(ArgError("--k-min and --k-max need 1 <= min <= max".into())),
    };
    let max_k = match k_mix {
        KMix::Fixed(k) => k,
        KMix::Zipf { k_max, .. } => k_max,
    };
    if max_k == 0 || max_k > cfg.dataset.dim {
        return Err(ArgError(format!("query k {max_k} out of range for d={}", cfg.dataset.dim)));
    }
    let initiator_mix = match args.get_or("initiator-theta", 0.0f64)? {
        t if t > 0.0 => InitiatorMix::Zipf { exponent: t },
        _ => InitiatorMix::Uniform,
    };
    let ms_budget = |name: &str| -> Result<Option<u64>, ArgError> {
        let ms: f64 = args.get_or(name, -1.0f64)?;
        Ok((ms >= 0.0).then_some((ms * 1e6) as u64))
    };
    // Any `--slo-p<digits>-ms` is accepted: 50/99/999 land in the pinned
    // SloSpec fields (golden-stable check names), everything else becomes
    // an arbitrary-percentile budget. Negative budgets mean "unset".
    let mut pinned_ms = [None, None, None]; // p50, p99, p999
    let mut latency_quantiles = Vec::new();
    for (digits, value) in args.matching("slo-p", "-ms") {
        let ms: f64 = value
            .parse()
            .map_err(|_| ArgError(format!("invalid value '{value}' for --slo-p{digits}-ms")))?;
        let budget = (ms >= 0.0).then_some((ms * 1e6) as u64);
        match digits.as_str() {
            "50" => pinned_ms[0] = budget,
            "99" => pinned_ms[1] = budget,
            "999" => pinned_ms[2] = budget,
            _ => {
                if skypeer_netsim::obs::quantile_from_digits(&digits).is_none() {
                    return Err(ArgError(format!(
                        "--slo-p{digits}-ms: '{digits}' is not a percentile in (0, 100)"
                    )));
                }
                if let Some(b) = budget {
                    latency_quantiles.push((digits, b));
                }
            }
        }
    }
    let slo = SloSpec {
        p50_latency_ns: pinned_ms[0],
        p99_latency_ns: pinned_ms[1],
        p999_latency_ns: pinned_ms[2],
        max_latency_ns: ms_budget("slo-max-ms")?,
        p99_bytes: {
            let b: i64 = args.get_or("slo-p99-bytes", -1i64)?;
            (b >= 0).then_some(b as u64)
        },
        latency_quantiles,
    };
    let tail_k: usize = args.get_or("top-k", 8)?;
    let jsonl_path = args.str_or("jsonl", "");
    let out_path = args.str_or("out", "");
    let prom_path = args.str_or("prom", "");
    let json = args.flag("json")?;
    let gate = args.flag("gate")?;
    let cache = args.flag("cache")?;
    let cache_bytes_arg: u64 = args.get_or("cache-bytes", 0u64)?;
    let quiet = args.flag("quiet")?;
    let telemetry_flag = args.flag("telemetry")?;
    let history_out = args.str_or("history-out", "");
    let fail_on_incident = args.flag("fail-on-incident")?;
    let perturb_spec = args.str_or("perturb-link", "");
    let perturb_after: usize = args.get_or("perturb-after", 0)?;
    let hdr_precision: u32 = args.get_or("precision", 7u32)?;
    let audit_sample: f64 = args.get_or("audit-sample", -1.0f64)?;
    let audit_seed: u64 = args.get_or("audit-seed", SoakAudit::default().seed)?;
    let fail_on_violation = args.flag("fail-on-violation")?;
    let inject_drop_ext = args.flag("inject-drop-ext")?;
    args.reject_unknown()?;
    let audit = if args.present("audit-sample") {
        if !(0.0..=1.0).contains(&audit_sample) {
            return Err(ArgError(format!("--audit-sample {audit_sample} not in [0, 1]")));
        }
        Some(SoakAudit { sample_rate: audit_sample, seed: audit_seed, inject_drop_ext })
    } else {
        for (on, name) in [
            (fail_on_violation, "--fail-on-violation"),
            (inject_drop_ext, "--inject-drop-ext"),
            (args.present("audit-seed"), "--audit-seed"),
        ] {
            if on {
                return Err(ArgError(format!("{name} requires --audit-sample")));
            }
        }
        None
    };
    let cache_bytes: Option<u64> = if cache_bytes_arg > 0 {
        Some(cache_bytes_arg)
    } else if cache {
        Some(4 << 20) // 4 MiB default budget
    } else {
        None
    };
    if backend != skypeer_core::BackendKind::default() && cache_bytes.is_some() {
        return Err(ArgError("--backend sampling and --cache are incompatible".into()));
    }
    let perturb = if perturb_spec.is_empty() {
        if args.present("perturb-after") {
            return Err(ArgError("--perturb-after requires --perturb-link".into()));
        }
        None
    } else {
        if cache_bytes.is_some() {
            return Err(ArgError("--perturb-link and --cache are incompatible".into()));
        }
        let (from, to, link) = parse_perturb_link(&perturb_spec, cfg.link)?;
        if from >= cfg.n_superpeers || to >= cfg.n_superpeers {
            return Err(ArgError("--perturb-link node out of range".into()));
        }
        Some(SoakPerturb { after: perturb_after, overrides: vec![(from, to, link)] })
    };
    // Any flag that needs telemetry turns it on.
    let telemetry =
        (telemetry_flag || !history_out.is_empty() || fail_on_incident || perturb.is_some())
            .then(TelemetrySpec::default);

    let spec = SoakSpec {
        variants,
        workload: MixedWorkloadSpec {
            dim: cfg.dataset.dim,
            queries,
            n_superpeers: cfg.n_superpeers,
            seed: wl_seed,
            k_mix,
            initiator_mix,
        },
        slo,
        tail_k,
        hdr_precision,
        cache_bytes,
        telemetry,
        perturb,
        audit,
        backend,
    };

    let mut jsonl = match jsonl_path.as_str() {
        "" => None,
        path => Some(std::io::BufWriter::new(
            std::fs::File::create(path)
                .map_err(|e| ArgError(format!("cannot create {path}: {e}")))?,
        )),
    };
    // Live dashboard only when a human is watching (and not silenced
    // with --quiet for CI logs); deterministic output stays on stdout
    // either way.
    let dashboard = !quiet && std::io::stderr().is_terminal();
    let total_rows = queries * spec.variants.len();
    let mut done = 0usize;
    let mut cache_lookups = 0u64;
    let mut cache_hits = 0u64;
    let mut window: VecDeque<Instant> = VecDeque::with_capacity(64);
    let outcome = run_soak(&engine, &spec, |row| {
        if let Some(w) = &mut jsonl {
            let _ = writeln!(w, "{}", row.to_json());
        }
        done += 1;
        if let Some(hit) = row.served_from_cache {
            cache_lookups += 1;
            cache_hits += u64::from(hit);
        }
        if dashboard {
            let now = Instant::now();
            window.push_back(now);
            if window.len() > 64 {
                window.pop_front();
            }
            if done.is_multiple_of(10) || done == total_rows {
                let span = now.duration_since(*window.front().expect("nonempty")).as_secs_f64();
                let qps = if span > 0.0 { (window.len() - 1) as f64 / span } else { 0.0 };
                let hit_rate = if cache_lookups > 0 {
                    format!(" | hit {:5.1}%", 100.0 * cache_hits as f64 / cache_lookups as f64)
                } else {
                    String::new()
                };
                eprint!(
                    "\r{done}/{total_rows} queries | {qps:6.1} q/s{hit_rate} | {} q{} {:9.1} ms{}   ",
                    row.variant,
                    row.query,
                    row.latency_ns as f64 / 1e6,
                    if row.over_slo { " OVER SLO" } else { "" },
                );
                let _ = std::io::stderr().flush();
            }
        }
    });
    if dashboard {
        eprintln!();
    }
    if let Some(mut w) = jsonl {
        w.flush().map_err(|e| ArgError(format!("flushing {jsonl_path}: {e}")))?;
    }

    if json {
        println!("{}", outcome.summary_json());
    } else {
        print!("{}", outcome.render_table());
        print!("{}", outcome.worst_digest());
        if !spec.slo.is_empty() {
            print!("{}", outcome.render_slo());
        }
        if spec.telemetry.is_some() {
            println!("incidents: {}", outcome.incident_count());
            for v in &outcome.variants {
                if let Some(tel) = &v.telemetry {
                    for inc in tel.incidents() {
                        println!("  {} {}", v.variant.mnemonic(), inc.render());
                    }
                }
            }
        }
        if let Some(report) = outcome.audit_report() {
            print!("{report}");
        }
    }
    if !history_out.is_empty() {
        let history = outcome.history_text().expect("telemetry implied by --history-out");
        std::fs::write(&history_out, history)
            .map_err(|e| ArgError(format!("cannot write {history_out}: {e}")))?;
        if !json {
            println!("wrote telemetry history to {history_out}");
        }
    }
    if !out_path.is_empty() {
        std::fs::write(&out_path, outcome.summary_json())
            .map_err(|e| ArgError(format!("cannot write {out_path}: {e}")))?;
        if !json {
            println!("wrote summary to {out_path}");
        }
    }
    if !prom_path.is_empty() {
        std::fs::write(&prom_path, outcome.prometheus())
            .map_err(|e| ArgError(format!("cannot write {prom_path}: {e}")))?;
        if !json {
            println!("wrote Prometheus exposition to {prom_path}");
        }
    }
    if gate && !outcome.pass() {
        let failing: Vec<&str> = outcome
            .variants
            .iter()
            .filter(|v| !v.slo.pass())
            .map(|v| v.variant.mnemonic())
            .collect();
        return Err(ArgError(format!("SLO gate failed for {}", failing.join(", "))));
    }
    if fail_on_incident && outcome.incident_count() > 0 {
        return Err(ArgError(format!(
            "incident gate failed: {} incident(s) flagged",
            outcome.incident_count()
        )));
    }
    if fail_on_violation && outcome.violation_count() > 0 {
        return Err(ArgError(format!(
            "audit gate failed: {} violation(s) detected",
            outcome.violation_count()
        )));
    }
    Ok(())
}

/// `skypeer-cli top` — the live telemetry dashboard. Runs a seeded query
/// stream with per-query series retained in an embedded time-series
/// store ([`Tsdb`](skypeer_netsim::obs::Tsdb)) and watched by the
/// anomaly detector; while stderr is a terminal the frame redraws in
/// place, and the final frame always lands on stdout. `--replay FILE`
/// skips execution and renders a recorded history file (from `soak
/// --history-out` or the live example) byte-identically — the form the
/// goldens pin. `--json` emits the store and incidents as deterministic
/// JSON instead of a frame.
pub fn top(args: &Args) -> Result<(), ArgError> {
    use skypeer_data::{KMix, MixedWorkloadSpec};
    use skypeer_netsim::obs::tsdb::{history_line, DEFAULT_SERIES_CAP};
    use skypeer_netsim::obs::{
        self, dash, AnomalyDetector, MemTracer, MetricsRegistry, Tracer, Tsdb,
    };
    use std::io::IsTerminal;
    use std::sync::Arc;

    let replay = args.str_or("replay", "");
    let json = args.flag("json")?;
    let series_cap: usize = args.get_or("series-cap", DEFAULT_SERIES_CAP)?;

    let render = |db: &Tsdb, det: &AnomalyDetector, title: &str| {
        if json {
            skypeer_netsim::obs::json::Obj::new()
                .raw("tsdb", &db.to_json())
                .raw("incidents", &det.incidents_json())
                .build()
                + "\n"
        } else {
            dash::render_frame(db, det.incidents(), title)
        }
    };

    if !replay.is_empty() {
        args.reject_unknown()?;
        let text = std::fs::read_to_string(&replay)
            .map_err(|e| ArgError(format!("cannot read {replay}: {e}")))?;
        let samples = obs::parse_history(&text).map_err(|e| ArgError(format!("{replay}: {e}")))?;
        let mut db = Tsdb::new(series_cap);
        let mut det = AnomalyDetector::default();
        for s in &samples {
            db.record(&s.series, s.tick, s.value);
            det.observe(&s.series, s.tick, s.value);
        }
        // Title carries only the file name, never the directory, so a
        // replay of the same bytes renders identically anywhere.
        let name = std::path::Path::new(&replay)
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| replay.clone());
        print!("{}", render(&db, &det, &format!("replay {name}")));
        return Ok(());
    }

    let engine = engine_from(args)?;
    let cfg = *engine.config();
    let variant = variant_from(args)?;
    let queries: usize = args.get_or("queries", 60)?;
    let wl_seed: u64 = args.get_or("workload-seed", 1)?;
    let k: usize = args.get_or("k", 3)?;
    let interval: usize = args.get_or("interval", 10)?;
    let history_out = args.str_or("history-out", "");
    let perturb_spec = args.str_or("perturb-link", "");
    let perturb_after: usize = args.get_or("perturb-after", 0)?;
    args.reject_unknown()?;
    if k == 0 || k > cfg.dataset.dim {
        return Err(ArgError(format!("--k {k} out of range for d={}", cfg.dataset.dim)));
    }
    let overrides = if perturb_spec.is_empty() {
        if args.present("perturb-after") {
            return Err(ArgError("--perturb-after requires --perturb-link".into()));
        }
        Vec::new()
    } else {
        let (from, to, link) = parse_perturb_link(&perturb_spec, cfg.link)?;
        if from >= cfg.n_superpeers || to >= cfg.n_superpeers {
            return Err(ArgError("--perturb-link node out of range".into()));
        }
        vec![(from, to, link)]
    };

    let workload = MixedWorkloadSpec {
        dim: cfg.dataset.dim,
        queries,
        n_superpeers: cfg.n_superpeers,
        seed: wl_seed,
        k_mix: KMix::Fixed(k),
        initiator_mix: skypeer_data::InitiatorMix::Uniform,
    };
    let live = std::io::stderr().is_terminal();
    let mut db = Tsdb::new(series_cap);
    let mut det = AnomalyDetector::default();
    let mut history: Vec<String> = Vec::new();
    let title = format!("{} x{queries} (seed {wl_seed})", variant.mnemonic());
    for (i, q) in workload.generate().into_iter().enumerate() {
        let tracer = Arc::new(MemTracer::new());
        let tr = Some(Arc::clone(&tracer) as Arc<dyn Tracer>);
        let out = if !overrides.is_empty() && i >= perturb_after {
            engine.run_query_observed_perturbed(q, variant, &overrides, tr)
        } else {
            engine.run_query_observed(q, variant, tr)
        };
        let m = MetricsRegistry::from_events(&tracer.take());
        let tick = i as u64;
        let mut samples = vec![
            ("latency_ns".to_string(), out.total_time_ns as f64),
            ("volume_bytes".to_string(), out.volume_bytes as f64),
            ("messages".to_string(), out.messages as f64),
            (
                "dominance_tests".to_string(),
                m.counters.get("dominance_tests").copied().unwrap_or(0) as f64,
            ),
            ("queue_depth".to_string(), m.max_queue_depth() as f64),
        ];
        for (node, nm) in m.per_node.iter().enumerate() {
            if nm.spans == 0 && nm.msgs_in == 0 && nm.msgs_out == 0 {
                continue;
            }
            samples.push((format!("SP{node}/bytes_out"), nm.bytes_out as f64));
            samples.push((format!("SP{node}/msgs_out"), nm.msgs_out as f64));
        }
        for (series, value) in &samples {
            db.record(series, tick, *value);
            det.observe(series, tick, *value);
            history.push(history_line(tick, series, *value));
        }
        if live && interval > 0 && (i + 1) % interval == 0 {
            // In-place redraw: clear screen + cursor home, then a frame.
            eprint!("\x1b[2J\x1b[H{}", dash::render_frame(&db, det.incidents(), &title));
        }
    }
    print!("{}", render(&db, &det, &title));
    if !history_out.is_empty() {
        let mut text = String::new();
        for line in &history {
            text.push_str(line);
            text.push('\n');
        }
        std::fs::write(&history_out, text)
            .map_err(|e| ArgError(format!("cannot write {history_out}: {e}")))?;
        if !json {
            println!("wrote telemetry history to {history_out}");
        }
    }
    Ok(())
}

/// `skypeer-cli csv-query` — run a SKYPEER query over a CSV dataset
/// distributed across a generated super-peer network.
pub fn csv_query(args: &Args) -> Result<(), ArgError> {
    use skypeer_core::node::{InitQuery, SuperPeerNode};
    use skypeer_core::preprocess::SuperPeerStore;
    use skypeer_data::csv::{invert_column, read_points, CsvOptions};
    use skypeer_data::partition::partition_shuffled;
    use skypeer_netsim::des::Sim;
    use std::sync::Arc;

    let file = args.str_or("file", "");
    if file.is_empty() {
        return Err(ArgError("--file is required".into()));
    }
    let n_superpeers: usize = args.get_or("superpeers", 6)?;
    let degree: f64 = args.get_or("degree", 4.0)?;
    let peers_per_sp: usize = args.get_or("peers-per-superpeer", 4)?;
    let variant = variant_from(args)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let show: usize = args.get_or("show", 10)?;
    let no_header = args.flag("no-header")?;
    let separator = args.str_or("separator", ",");
    let id_column: i64 = args.get_or("id-column", -1)?;
    let columns: Vec<usize> = args.list_or("columns", &[])?;
    let invert: Vec<usize> = args.list_or("invert", &[])?;
    let dims: Vec<usize> = args.list_or("dims", &[])?;
    args.reject_unknown()?;

    let sep = separator.chars().next().unwrap_or(',');
    let opts = CsvOptions {
        separator: sep,
        has_header: !no_header,
        columns,
        id_column: (id_column >= 0).then_some(id_column as usize),
    };
    let f = std::fs::File::open(&file).map_err(|e| ArgError(format!("cannot open {file}: {e}")))?;
    let mut set = read_points(std::io::BufReader::new(f), &opts)
        .map_err(|e| ArgError(format!("{file}: {e}")))?;
    for &col in &invert {
        if col >= set.dim() {
            return Err(ArgError(format!("--invert column {col} out of range")));
        }
        set = invert_column(&set, col);
    }
    println!("loaded {} points × {} attributes from {file}", set.len(), set.dim());

    let subspace = if dims.is_empty() {
        Subspace::full(set.dim())
    } else {
        if dims.iter().any(|&d| d >= set.dim()) {
            return Err(ArgError("--dims index out of range".into()));
        }
        Subspace::from_dims(&dims)
    };

    // Distribute across peers, preprocess per super-peer.
    let mut topo_spec = TopologySpec::paper_default(n_superpeers, seed);
    topo_spec.avg_degree = degree.min(n_superpeers.saturating_sub(1) as f64);
    let topo = topo_spec.generate();
    let parts = partition_shuffled(&set, n_superpeers * peers_per_sp, seed);
    let dim = set.dim();
    let stores: Vec<Arc<skypeer_skyline::SortedDataset>> = (0..n_superpeers)
        .map(|sp| {
            let mine: Vec<_> = parts[sp * peers_per_sp..(sp + 1) * peers_per_sp].to_vec();
            Arc::new(SuperPeerStore::preprocess(&mine, dim, DominanceIndex::RTree).store)
        })
        .collect();
    let stored: usize = stores.iter().map(|s| s.len()).sum();
    println!(
        "distributed over {n_superpeers} super-peers × {peers_per_sp} peers; {stored} points stored after preprocessing ({:.1}%)",
        100.0 * stored as f64 / set.len() as f64
    );

    let nodes: Vec<SuperPeerNode> = (0..n_superpeers)
        .map(|sp| {
            let init = (sp == 0).then_some(InitQuery::standard(1, subspace, variant));
            SuperPeerNode::new(
                sp,
                topo.neighbors(sp).to_vec(),
                Arc::clone(&stores[sp]),
                DominanceIndex::RTree,
                init,
            )
        })
        .collect();
    let out = Sim::new(nodes, LinkModel::paper_4kbps(), CostModel::default()).run(0);
    let answer =
        out.nodes.into_iter().next().expect("initiator").into_outcome().expect("query completes");
    println!(
        "\nskyline on {subspace} via {variant}: {} points | {:.1} ms total | {:.1} KB",
        answer.result.len(),
        out.stats.finished_at.unwrap_or(0) as f64 / 1e6,
        out.stats.bytes as f64 / 1024.0,
    );
    for i in 0..answer.result.len().min(show) {
        let p = answer.result.points().point(i);
        let rounded: Vec<f64> = p.iter().map(|v| (v * 100.0).round() / 100.0).collect();
        println!("  #{:<10} {:?}", answer.result.points().id(i), rounded);
    }
    if answer.result.len() > show {
        println!("  ... {} more (raise --show)", answer.result.len() - show);
    }
    Ok(())
}
