//! `skypeer-cli` — explore the SKYPEER engine from the command line.
//!
//! ```text
//! skypeer-cli stats    [--peers N] [--dim D] [--points P] [--data KIND]
//! skypeer-cli query    [--dims 0,2,5] [--variant ftpm] [--initiator I]
//!                      [--backend skypeer|sampling] [...]
//! skypeer-cli workload [--k K] [--queries Q] [...]
//! skypeer-cli topology [--superpeers N] [--degree DEG]
//! skypeer-cli faults   [--fail 1,2] [--fail-at-ms T] [--timeout-s S] [...]
//! skypeer-cli trace    [--dims 0,2,5] [--variant ftpm] [--jsonl F] [--perfetto F]
//!                      [--perturb-link FROM:TO:LATENCY_NS[:NS_PER_BYTE]] [...]
//! skypeer-cli compare  [--figure NAME] [--variant ftpm] [--json]
//! skypeer-cli diff     BASELINE CANDIDATE [--json] [--what-if-factor F]
//! skypeer-cli explain  [--dims 0,2,5] [--variant ftpm] [--initiator I] [--json] [...]
//! skypeer-cli why      POINT_ID [--dims 0,2,5] [--initiator I] [--json] [...]
//! skypeer-cli why-not  POINT_ID [--dims 0,2,5] [--initiator I] [--json] [...]
//! skypeer-cli profile  [--figure NAME | network flags] [--clock logical|monotonic]
//!                      [--folded F] [--json] | --overhead [--repeat N] [--max-ratio F]
//! skypeer-cli soak     [--queries Q] [--variants LIST|all] [--k K | --k-min A --k-max B]
//!                      [--initiator-theta T] [--top-k K] [--slo-pNN-ms F] [--gate]
//!                      [--cache] [--cache-bytes N] [--json] [--out F] [--jsonl F] [--prom F]
//!                      [--quiet] [--telemetry] [--history-out F] [--fail-on-incident]
//!                      [--perturb-link SPEC] [--perturb-after N] [--audit-sample R]
//!                      [--audit-seed S] [--fail-on-violation] [--inject-drop-ext] [...]
//! skypeer-cli top      [--replay F | --queries Q --variant V [--perturb-link SPEC]]
//!                      [--json] [--history-out F] [--series-cap N] [...]
//! ```
//!
//! Shared network flags for every command that builds a network:
//! `--peers` (400), `--superpeers` (paper rule), `--dim` (8), `--points`
//! (250), `--degree` (4), `--data uniform|clustered|correlated|
//! anticorrelated`, `--seed` (42), `--routing flood|tree`. Commands that
//! run a single query (`query`, `trace`, `explain`, `profile`) also accept
//! `--figure <fig3b_d8|fig3d_k2|fig4c_deg6>` to run a pinned bench figure
//! instead.

mod args;
mod commands;

use args::Args;

const USAGE: &str =
    "usage: skypeer-cli <stats|query|trace|explain|why|why-not|compare|diff|profile|soak|top|workload|topology|faults|estimate|csv-query> [flags]
run `skypeer-cli <command> --help` semantics: see crate docs / README";

/// How many positional (non-`--flag`) arguments a command takes. One
/// shared spec, checked in one place — historically each subcommand
/// re-validated positionals slightly differently.
enum Positionals {
    /// Flags only; any positional is a typo worth failing fast on.
    None,
    /// Exactly `count` positionals, described by `what` in errors.
    Exactly { count: usize, what: &'static str },
}

struct CommandSpec {
    name: &'static str,
    positionals: Positionals,
    run: fn(&Args) -> Result<(), args::ArgError>,
}

const COMMANDS: &[CommandSpec] = &[
    CommandSpec { name: "stats", positionals: Positionals::None, run: commands::stats },
    CommandSpec { name: "query", positionals: Positionals::None, run: commands::query },
    CommandSpec { name: "trace", positionals: Positionals::None, run: commands::trace },
    CommandSpec { name: "explain", positionals: Positionals::None, run: commands::explain },
    CommandSpec {
        name: "why",
        positionals: Positionals::Exactly { count: 1, what: "point id" },
        run: commands::why,
    },
    CommandSpec {
        name: "why-not",
        positionals: Positionals::Exactly { count: 1, what: "point id" },
        run: commands::why_not,
    },
    CommandSpec { name: "compare", positionals: Positionals::None, run: commands::compare },
    CommandSpec {
        name: "diff",
        positionals: Positionals::Exactly { count: 2, what: "capture paths" },
        run: commands::diff,
    },
    CommandSpec { name: "profile", positionals: Positionals::None, run: commands::profile },
    CommandSpec { name: "soak", positionals: Positionals::None, run: commands::soak },
    CommandSpec { name: "top", positionals: Positionals::None, run: commands::top },
    CommandSpec { name: "workload", positionals: Positionals::None, run: commands::workload },
    CommandSpec { name: "topology", positionals: Positionals::None, run: commands::topology },
    CommandSpec { name: "faults", positionals: Positionals::None, run: commands::faults },
    CommandSpec { name: "estimate", positionals: Positionals::None, run: commands::estimate },
    CommandSpec { name: "csv-query", positionals: Positionals::None, run: commands::csv_query },
];

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "--help" || raw[0] == "-h" {
        eprintln!("{USAGE}");
        std::process::exit(if raw.is_empty() { 2 } else { 0 });
    }
    let cmd = raw.remove(0);
    let parsed = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let Some(spec) = COMMANDS.iter().find(|s| s.name == cmd) else {
        eprintln!("error: unknown command '{}'\n{USAGE}", cmd);
        std::process::exit(2);
    };
    match spec.positionals {
        Positionals::None => {
            if let Some(stray) = parsed.positional().first() {
                eprintln!(
                    "error: unexpected argument '{stray}' (all options are --flags)\n{USAGE}"
                );
                std::process::exit(2);
            }
        }
        Positionals::Exactly { count, what } => {
            if parsed.positional().len() != count {
                let word = match count {
                    1 => "one".to_string(),
                    2 => "two".to_string(),
                    n => n.to_string(),
                };
                eprintln!(
                    "error: {} needs exactly {word} {what}, got {}",
                    spec.name,
                    parsed.positional().len()
                );
                std::process::exit(2);
            }
        }
    }
    if let Err(e) = (spec.run)(&parsed) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
