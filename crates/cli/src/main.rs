//! `skypeer-cli` — explore the SKYPEER engine from the command line.
//!
//! ```text
//! skypeer-cli stats    [--peers N] [--dim D] [--points P] [--data KIND]
//! skypeer-cli query    [--dims 0,2,5] [--variant ftpm] [--initiator I] [...]
//! skypeer-cli workload [--k K] [--queries Q] [...]
//! skypeer-cli topology [--superpeers N] [--degree DEG]
//! skypeer-cli faults   [--fail 1,2] [--fail-at-ms T] [--timeout-s S] [...]
//! skypeer-cli trace    [--dims 0,2,5] [--variant ftpm] [--jsonl F] [--perfetto F]
//!                      [--perturb-link FROM:TO:LATENCY_NS[:NS_PER_BYTE]] [...]
//! skypeer-cli diff     BASELINE CANDIDATE [--json] [--what-if-factor F]
//! skypeer-cli explain  [--dims 0,2,5] [--variant ftpm] [--initiator I] [--json] [...]
//! skypeer-cli soak     [--queries Q] [--variants LIST|all] [--k K | --k-min A --k-max B]
//!                      [--initiator-theta T] [--top-k K] [--slo-p99-ms F] [--gate]
//!                      [--cache] [--cache-bytes N] [--json] [--out F] [--jsonl F] [--prom F] [...]
//! ```
//!
//! Shared network flags for every command that builds a network:
//! `--peers` (400), `--superpeers` (paper rule), `--dim` (8), `--points`
//! (250), `--degree` (4), `--data uniform|clustered|correlated|
//! anticorrelated`, `--seed` (42), `--routing flood|tree`.

mod args;
mod commands;

use args::Args;

const USAGE: &str =
    "usage: skypeer-cli <stats|query|trace|explain|diff|soak|workload|topology|faults|estimate|csv-query> [flags]
run `skypeer-cli <command> --help` semantics: see crate docs / README";

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "--help" || raw[0] == "-h" {
        eprintln!("{USAGE}");
        std::process::exit(if raw.is_empty() { 2 } else { 0 });
    }
    let cmd = raw.remove(0);
    let parsed = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    // `diff` takes two positional capture paths; every other command is
    // flags-only, so a positional there is a typo worth failing fast on.
    if cmd != "diff" {
        if let Some(stray) = parsed.positional().first() {
            eprintln!("error: unexpected argument '{stray}' (all options are --flags)\n{USAGE}");
            std::process::exit(2);
        }
    }
    let result = match cmd.as_str() {
        "stats" => commands::stats(&parsed),
        "query" => commands::query(&parsed),
        "trace" => commands::trace(&parsed),
        "explain" => commands::explain(&parsed),
        "diff" => commands::diff(&parsed),
        "soak" => commands::soak(&parsed),
        "workload" => commands::workload(&parsed),
        "topology" => commands::topology(&parsed),
        "faults" => commands::faults(&parsed),
        "estimate" => commands::estimate(&parsed),
        "csv-query" => commands::csv_query(&parsed),
        other => {
            eprintln!("error: unknown command '{other}'\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
