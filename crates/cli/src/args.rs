//! A tiny, dependency-free flag parser for the CLI.
//!
//! Supports `--flag value` and `--flag=value` forms, typed lookups with
//! defaults, and collects positional arguments. Unknown flags are an
//! error, so typos fail fast instead of silently running the default
//! experiment.

use std::collections::BTreeMap;

/// Parsed arguments: flags (without the leading `--`) and positionals.
#[derive(Clone, Debug, Default)]
pub struct Args {
    flags: BTreeMap<String, String>,
    positional: Vec<String>,
    /// Flags consumed by a typed getter, to report unused (unknown) ones.
    consumed: std::cell::RefCell<Vec<String>>,
}

/// A parse or validation error, with a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (not including the program/subcommand names).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, ArgError> {
        let mut flags = BTreeMap::new();
        let mut positional = Vec::new();
        let mut it = raw.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if name.is_empty() {
                    return Err(ArgError("bare '--' is not supported".into()));
                }
                if let Some((k, v)) = name.split_once('=') {
                    flags.insert(k.to_string(), v.to_string());
                } else {
                    // `--flag value`, or a boolean `--flag` when the next
                    // token is another flag (or absent).
                    match it.peek() {
                        Some(next) if !next.starts_with("--") => {
                            let v = it.next().expect("peeked");
                            flags.insert(name.to_string(), v);
                        }
                        _ => {
                            flags.insert(name.to_string(), "true".to_string());
                        }
                    }
                }
            } else {
                positional.push(tok);
            }
        }
        Ok(Args { flags, positional, consumed: Default::default() })
    }

    /// Positional arguments, in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    fn raw(&self, name: &str) -> Option<&str> {
        self.consumed.borrow_mut().push(name.to_string());
        self.flags.get(name).map(String::as_str)
    }

    /// A string flag with a default.
    pub fn str_or(&self, name: &str, default: &str) -> String {
        self.raw(name).unwrap_or(default).to_string()
    }

    /// A parsed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.raw(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError(format!("invalid value '{v}' for --{name}"))),
        }
    }

    /// A boolean flag (`--foo`, `--foo true/false`).
    pub fn flag(&self, name: &str) -> Result<bool, ArgError> {
        match self.raw(name) {
            None => Ok(false),
            Some("true") | Some("1") | Some("yes") => Ok(true),
            Some("false") | Some("0") | Some("no") => Ok(false),
            Some(v) => Err(ArgError(format!("invalid boolean '{v}' for --{name}"))),
        }
    }

    /// Comma-separated list flag, e.g. `--dims 0,2,5`.
    pub fn list_or<T: std::str::FromStr + Clone>(
        &self,
        name: &str,
        default: &[T],
    ) -> Result<Vec<T>, ArgError> {
        match self.raw(name) {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|part| {
                    part.trim()
                        .parse()
                        .map_err(|_| ArgError(format!("invalid element '{part}' in --{name}")))
                })
                .collect(),
        }
    }

    /// Whether the flag was given at all, without consuming it — for
    /// detecting conflicts before the real getters run (the eventual
    /// getter still has to consume it or `reject_unknown` fires).
    pub fn present(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// All given flags of the shape `<prefix><digits><suffix>` (e.g.
    /// every `--slo-p<NN>-ms`), as `(digits, value)` pairs sorted by the
    /// digit string. Matched flags count as consumed.
    pub fn matching(&self, prefix: &str, suffix: &str) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for (key, value) in &self.flags {
            let Some(infix) = key.strip_prefix(prefix).and_then(|k| k.strip_suffix(suffix)) else {
                continue;
            };
            if infix.is_empty() || !infix.bytes().all(|b| b.is_ascii_digit()) {
                continue;
            }
            self.consumed.borrow_mut().push(key.clone());
            out.push((infix.to_string(), value.clone()));
        }
        out
    }

    /// Errors on any flag that no getter asked about — catches typos.
    pub fn reject_unknown(&self) -> Result<(), ArgError> {
        let consumed = self.consumed.borrow();
        for key in self.flags.keys() {
            if !consumed.iter().any(|c| c == key) {
                return Err(ArgError(format!("unknown flag --{key}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|t| t.to_string())).expect("parses")
    }

    #[test]
    fn space_and_equals_forms() {
        let a = args(&["--peers", "400", "--dim=8", "run"]);
        assert_eq!(a.get_or("peers", 0usize).unwrap(), 400);
        assert_eq!(a.get_or("dim", 0usize).unwrap(), 8);
        assert_eq!(a.positional(), &["run".to_string()]);
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = args(&[]);
        assert_eq!(a.get_or("peers", 123usize).unwrap(), 123);
        assert_eq!(a.str_or("variant", "ftpm"), "ftpm");
    }

    #[test]
    fn boolean_flags() {
        let a = args(&["--verbose", "--color", "false"]);
        assert!(a.flag("verbose").unwrap());
        assert!(!a.flag("color").unwrap());
        assert!(!a.flag("absent").unwrap());
    }

    #[test]
    fn list_flag() {
        let a = args(&["--dims", "0,2, 5"]);
        assert_eq!(a.list_or("dims", &[9usize]).unwrap(), vec![0, 2, 5]);
        assert_eq!(a.list_or("other", &[9usize]).unwrap(), vec![9]);
    }

    #[test]
    fn invalid_values_error() {
        let a = args(&["--peers", "many"]);
        assert!(a.get_or("peers", 0usize).is_err());
        let b = args(&["--dims", "1,x"]);
        assert!(b.list_or("dims", &[0usize]).is_err());
    }

    #[test]
    fn unknown_flags_rejected() {
        let a = args(&["--peers", "5", "--oops", "1"]);
        let _ = a.get_or("peers", 0usize).unwrap();
        let err = a.reject_unknown().unwrap_err();
        assert!(err.0.contains("oops"));
    }

    #[test]
    fn present_does_not_consume() {
        let a = args(&["--figure", "fig3b_d8"]);
        assert!(a.present("figure"));
        assert!(!a.present("peers"));
        assert!(a.reject_unknown().is_err(), "present() alone must not satisfy reject_unknown");
        let _ = a.str_or("figure", "");
        assert!(a.reject_unknown().is_ok());
    }

    #[test]
    fn matching_collects_digit_infix_flags() {
        let a = args(&["--slo-p95-ms", "2.5", "--slo-p50-ms", "1", "--slo-max-ms", "9"]);
        let got = a.matching("slo-p", "-ms");
        assert_eq!(
            got,
            vec![("50".to_string(), "1".to_string()), ("95".to_string(), "2.5".to_string())]
        );
        // --slo-max-ms has no digit infix: untouched, still unknown.
        assert!(a.reject_unknown().is_err());
        let _ = a.get_or("slo-max-ms", 0.0f64).unwrap();
        assert!(a.reject_unknown().is_ok());
    }

    #[test]
    fn boolean_followed_by_flag() {
        let a = args(&["--fast", "--peers", "7"]);
        assert!(a.flag("fast").unwrap());
        assert_eq!(a.get_or("peers", 0usize).unwrap(), 7);
    }
}
