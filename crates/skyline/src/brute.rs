//! Quadratic brute-force skyline oracles.
//!
//! These are the ground truth every optimized kernel and the whole
//! distributed protocol are tested against. They do the obvious O(n²)
//! pairwise scan and nothing clever.

use crate::dominance::Dominance;
use crate::point::PointSet;
use crate::subspace::Subspace;

/// Indices of the points of `set` not dominated by any other point on `u`,
/// under the given dominance flavour, in input order.
pub fn skyline_indices(set: &PointSet, u: Subspace, flavour: Dominance) -> Vec<usize> {
    (0..set.len())
        .filter(|&i| {
            let p = set.point(i);
            !(0..set.len()).any(|j| j != i && flavour.dominates(set.point(j), p, u))
        })
        .collect()
}

/// Identifiers (sorted, deduplicated) of the skyline of `set` on `u`.
pub fn skyline_ids(set: &PointSet, u: Subspace, flavour: Dominance) -> Vec<u64> {
    let mut ids: Vec<u64> =
        skyline_indices(set, u, flavour).into_iter().map(|i| set.id(i)).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// The union of the skylines of *every* non-empty subspace of `u` —
/// the set the extended skyline must cover (Observation 4). Exponential in
/// `u.k()`; test-sized inputs only.
pub fn all_subspace_skyline_ids(set: &PointSet, u: Subspace) -> Vec<u64> {
    let dims: Vec<usize> = u.dims().collect();
    let mut ids: Vec<u64> = Vec::new();
    for mask in 1u32..(1 << dims.len()) {
        let sub_dims: Vec<usize> = dims
            .iter()
            .enumerate()
            .filter(|(b, _)| mask & (1 << *b) != 0)
            .map(|(_, &d)| d)
            .collect();
        let v = Subspace::from_dims(&sub_dims);
        ids.extend(skyline_ids(set, v, Dominance::Standard));
    }
    ids.sort_unstable();
    ids.dedup();
    ids
}

#[cfg(test)]
mod unit {
    use super::*;

    fn paper_peer_a() -> PointSet {
        // Peer P_A of the paper's Figure 2 (4-dimensional).
        let mut s = PointSet::new(4);
        s.push(&[2.0, 2.0, 2.0, 2.0], 1); // A1
        s.push(&[1.0, 3.0, 2.0, 3.0], 2); // A2
        s.push(&[1.0, 3.0, 5.0, 4.0], 3); // A3
        s.push(&[2.0, 3.0, 2.0, 1.0], 4); // A4
        s.push(&[5.0, 2.0, 4.0, 1.0], 5); // A5
        s
    }

    #[test]
    fn figure2_peer_a_skyline_and_ext_skyline() {
        let s = paper_peer_a();
        let d = Subspace::full(4);
        // Four of the five points are skyline points; A3 is dominated by A2.
        let sky = skyline_ids(&s, d, Dominance::Standard);
        assert_eq!(sky, vec![1, 2, 4, 5]);
        // The paper: A3 is nevertheless an ext-skyline point (ties with A2).
        let ext = skyline_ids(&s, d, Dominance::Extended);
        assert_eq!(ext, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn figure2_peer_c() {
        // Peer P_C of Figure 2: "for P_C the skyline point is C4, while the
        // ext-skyline points are C4 and C5". Reconstructed values with that
        // property: C5 ties C4 on the last dimension, so it is dominated
        // but not ext-dominated.
        let mut s = PointSet::new(4);
        s.push(&[5.0, 7.0, 5.0, 8.0], 1); // C1
        s.push(&[7.0, 7.0, 7.0, 5.0], 2); // C2
        s.push(&[7.0, 7.0, 7.0, 7.0], 3); // C3
        s.push(&[1.0, 1.0, 3.0, 4.0], 4); // C4
        s.push(&[6.0, 6.0, 6.0, 4.0], 5); // C5
        let d = Subspace::full(4);
        let sky = skyline_ids(&s, d, Dominance::Standard);
        assert_eq!(sky, vec![4], "only C4 is undominated");
        let ext = skyline_ids(&s, d, Dominance::Extended);
        assert_eq!(ext, vec![4, 5], "C5 joins the ext-skyline via its tie with C4");
    }

    #[test]
    fn empty_and_singleton() {
        let s = PointSet::new(2);
        assert!(skyline_indices(&s, Subspace::full(2), Dominance::Standard).is_empty());
        let mut s1 = PointSet::new(2);
        s1.push(&[4.0, 4.0], 9);
        assert_eq!(skyline_ids(&s1, Subspace::full(2), Dominance::Standard), vec![9]);
    }

    #[test]
    fn duplicates_all_survive_standard_dominance() {
        let mut s = PointSet::new(2);
        s.push(&[1.0, 1.0], 1);
        s.push(&[1.0, 1.0], 2);
        s.push(&[2.0, 2.0], 3);
        assert_eq!(skyline_ids(&s, Subspace::full(2), Dominance::Standard), vec![1, 2]);
    }

    #[test]
    fn all_subspace_union_within_ext_skyline() {
        let s = paper_peer_a();
        let d = Subspace::full(4);
        let union = all_subspace_skyline_ids(&s, d);
        let ext = skyline_ids(&s, d, Dominance::Extended);
        for id in &union {
            assert!(ext.contains(id), "Observation 4 violated for id {id}");
        }
    }
}
