//! Block-nested-loops skyline (Börzsönyi, Kossmann, Stocker — ICDE'01).
//!
//! The straightforward in-memory formulation: maintain a window of
//! candidate skyline points; each incoming point is compared against the
//! window, evicting dominated candidates and being discarded if dominated
//! itself. This is the engine the *naive* distributed baseline runs — no
//! sorting, no threshold, no early termination.

use crate::dominance::Dominance;
use crate::point::PointSet;
use crate::subspace::Subspace;

/// Statistics of one BNL run, used by the cost model: dominance tests are
/// the dominant kernel cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BnlStats {
    /// Number of pairwise dominance tests performed.
    pub dominance_tests: u64,
    /// Number of points read from the input.
    pub points_scanned: u64,
}

/// Computes the skyline of `set` on `u` under `flavour`, returning indices
/// into `set` in discovery order.
pub fn skyline(set: &PointSet, u: Subspace, flavour: Dominance) -> Vec<usize> {
    skyline_with_stats(set, u, flavour).0
}

/// Like [`skyline`], additionally returning operation counts.
pub fn skyline_with_stats(
    set: &PointSet,
    u: Subspace,
    flavour: Dominance,
) -> (Vec<usize>, BnlStats) {
    let mut stats = BnlStats::default();
    // The window holds indices of current candidates.
    let mut window: Vec<usize> = Vec::new();
    'outer: for i in 0..set.len() {
        stats.points_scanned += 1;
        let p = set.point(i);
        let mut w = 0;
        while w < window.len() {
            let cand = set.point(window[w]);
            stats.dominance_tests += 1;
            if flavour.dominates(cand, p, u) {
                continue 'outer; // p is dominated: drop it
            }
            stats.dominance_tests += 1;
            if flavour.dominates(p, cand, u) {
                window.swap_remove(w); // candidate evicted, don't advance
            } else {
                w += 1;
            }
        }
        window.push(i);
    }
    (window, stats)
}

/// Skyline identifiers (sorted), convenience wrapper for tests and merges.
pub fn skyline_ids(set: &PointSet, u: Subspace, flavour: Dominance) -> Vec<u64> {
    let mut ids: Vec<u64> = skyline(set, u, flavour).into_iter().map(|i| set.id(i)).collect();
    ids.sort_unstable();
    ids
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::brute;

    fn sample() -> PointSet {
        let mut s = PointSet::new(3);
        s.push(&[1.0, 5.0, 3.0], 0);
        s.push(&[2.0, 2.0, 2.0], 1);
        s.push(&[3.0, 6.0, 4.0], 2);
        s.push(&[1.0, 5.0, 3.0], 3); // duplicate of 0
        s.push(&[0.5, 9.0, 9.0], 4);
        s
    }

    #[test]
    fn matches_brute_force_full_space() {
        let s = sample();
        let u = Subspace::full(3);
        assert_eq!(
            skyline_ids(&s, u, Dominance::Standard),
            brute::skyline_ids(&s, u, Dominance::Standard)
        );
        assert_eq!(
            skyline_ids(&s, u, Dominance::Extended),
            brute::skyline_ids(&s, u, Dominance::Extended)
        );
    }

    #[test]
    fn matches_brute_force_every_subspace() {
        let s = sample();
        for u in Subspace::enumerate_all(3) {
            assert_eq!(
                skyline_ids(&s, u, Dominance::Standard),
                brute::skyline_ids(&s, u, Dominance::Standard),
                "subspace {u}"
            );
        }
    }

    #[test]
    fn eviction_mid_window_is_handled() {
        // A later point dominating several window entries at once exercises
        // the swap_remove path.
        let mut s = PointSet::new(2);
        s.push(&[5.0, 6.0], 0);
        s.push(&[6.0, 5.0], 1);
        s.push(&[5.5, 5.5], 2);
        s.push(&[1.0, 1.0], 3); // dominates all three
        let u = Subspace::full(2);
        assert_eq!(skyline_ids(&s, u, Dominance::Standard), vec![3]);
    }

    #[test]
    fn stats_are_plausible() {
        let s = sample();
        let (_, stats) = skyline_with_stats(&s, Subspace::full(3), Dominance::Standard);
        assert_eq!(stats.points_scanned, 5);
        assert!(stats.dominance_tests >= 4, "at least one test per non-first point");
    }

    #[test]
    fn empty_input() {
        let s = PointSet::new(2);
        assert!(skyline(&s, Subspace::full(2), Dominance::Standard).is_empty());
    }
}
