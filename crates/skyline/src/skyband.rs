//! The k-skyband: points dominated by fewer than `k` others.
//!
//! The skyband generalizes the skyline (`k = 1` is exactly the skyline)
//! and is the classic tool for answering *top-k with unknown monotone
//! scoring*: any top-k result under any monotone scoring function is
//! contained in the k-skyband, just as any subspace skyline is contained
//! in the extended skyline. The two supersets compose: a system that
//! stores the k-skyband of the ext-skyline can answer top-k-flavoured
//! subspace queries — the natural next step beyond the paper.

use crate::dominance::Dominance;
use crate::point::PointSet;
use crate::subspace::Subspace;

/// Computes the k-skyband of `set` on `u` under `flavour`: indices of
/// points dominated by fewer than `k` other points. `k = 1` is the
/// skyline.
///
/// # Panics
///
/// Panics if `k == 0` (every point is dominated by fewer than zero others
/// only vacuously — the empty band is never what a caller wants).
pub fn skyband(set: &PointSet, u: Subspace, k: usize, flavour: Dominance) -> Vec<usize> {
    assert!(k >= 1, "k must be at least 1");
    // O(n²) counting pass. The band is not an antichain, so the windowed
    // single-pass tricks of the skyline engines do not carry over; for the
    // in-memory sizes SKYPEER stores hold, counting is plenty.
    let n = set.len();
    let mut out = Vec::new();
    for i in 0..n {
        let p = set.point(i);
        let mut dominated_by = 0usize;
        for j in 0..n {
            if i != j && flavour.dominates(set.point(j), p, u) {
                dominated_by += 1;
                if dominated_by >= k {
                    break;
                }
            }
        }
        if dominated_by < k {
            out.push(i);
        }
    }
    out
}

/// Sorted identifiers of the k-skyband.
pub fn skyband_ids(set: &PointSet, u: Subspace, k: usize, flavour: Dominance) -> Vec<u64> {
    let mut ids: Vec<u64> = skyband(set, u, k, flavour).into_iter().map(|i| set.id(i)).collect();
    ids.sort_unstable();
    ids
}

/// The dominance count of every point (how many other points dominate
/// it) — the skyband's underlying quantity, exposed for analytics.
pub fn dominance_counts(set: &PointSet, u: Subspace, flavour: Dominance) -> Vec<usize> {
    let n = set.len();
    (0..n)
        .map(|i| {
            let p = set.point(i);
            (0..n).filter(|&j| i != j && flavour.dominates(set.point(j), p, u)).count()
        })
        .collect()
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::brute;

    fn sample() -> PointSet {
        let mut s = PointSet::new(2);
        s.push(&[1.0, 1.0], 0); // skyline
        s.push(&[2.0, 2.0], 1); // dominated by 1 point
        s.push(&[3.0, 3.0], 2); // dominated by 2 points
        s.push(&[4.0, 0.5], 3); // skyline (trade-off)
        s.push(&[5.0, 5.0], 4); // dominated by 3 points (0, 1, 2) — and 3? (4,0.5): 4<5, 0.5<5 → yes, 4 dominators
        s
    }

    #[test]
    fn one_skyband_is_the_skyline() {
        let s = sample();
        for u in Subspace::enumerate_all(2) {
            assert_eq!(
                skyband_ids(&s, u, 1, Dominance::Standard),
                brute::skyline_ids(&s, u, Dominance::Standard),
                "subspace {u}"
            );
        }
    }

    #[test]
    fn band_grows_monotonically_with_k() {
        let s = sample();
        let u = Subspace::full(2);
        let mut prev = 0;
        for k in 1..=5 {
            let band = skyband(&s, u, k, Dominance::Standard);
            assert!(band.len() >= prev, "k={k} shrank the band");
            prev = band.len();
        }
        assert_eq!(skyband(&s, u, 5, Dominance::Standard).len(), 5, "k ≥ n keeps everything");
    }

    #[test]
    fn counts_match_band_membership() {
        let s = sample();
        let u = Subspace::full(2);
        let counts = dominance_counts(&s, u, Dominance::Standard);
        assert_eq!(counts, vec![0, 1, 2, 0, 4]);
        for k in 1..=5 {
            let band = skyband(&s, u, k, Dominance::Standard);
            let expect: Vec<usize> = (0..s.len()).filter(|&i| counts[i] < k).collect();
            assert_eq!(band, expect, "k={k}");
        }
    }

    #[test]
    fn duplicates_never_dominate_each_other() {
        let mut s = PointSet::new(2);
        s.push(&[1.0, 1.0], 0);
        s.push(&[1.0, 1.0], 1);
        s.push(&[2.0, 2.0], 2);
        let counts = dominance_counts(&s, Subspace::full(2), Dominance::Standard);
        assert_eq!(counts, vec![0, 0, 2]);
    }

    #[test]
    fn ext_flavour_band_is_larger_or_equal() {
        // Ext-dominance is harder to achieve, so fewer dominators — the
        // ext k-skyband contains the standard one.
        let s = sample();
        let u = Subspace::full(2);
        for k in 1..=3 {
            let std_band = skyband_ids(&s, u, k, Dominance::Standard);
            let ext_band = skyband_ids(&s, u, k, Dominance::Extended);
            for id in &std_band {
                assert!(ext_band.contains(id), "k={k}: {id} missing from ext band");
            }
        }
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_rejected() {
        let _ = skyband(&sample(), Subspace::full(2), 0, Dominance::Standard);
    }
}
