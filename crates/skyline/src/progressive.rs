//! Progressive (streaming) skyline delivery.
//!
//! The progressive literature the paper builds on (\[14\], \[16\]) wants
//! skyline points *emitted as soon as they are confirmed*, long before the
//! scan finishes.
//!
//! **Why Algorithm 1 cannot do this.** Under the `f(p) = min_i p[i]`
//! ordering, a window point `s` is safe from future domination once the
//! scan frontier `f` exceeds `dist_U(s) = max_{i∈U} s[i]` — but the scan
//! terminates when `f` exceeds `threshold = min over window of dist_U`,
//! which is the *first* such frontier crossing. The first confirmation and
//! termination therefore coincide: `f`-ordered scans only ever emit at the
//! end. (This is tested below: see `f_ordering_cannot_confirm_early`.)
//!
//! **What does work** is a *monotone* ordering in the SFS sense: sort by
//! the entropy score `E_U(p) = Σ_{i∈U} ln(p[i]+1)`. Dominance implies a
//! strictly smaller score, so no point can ever be dominated by a
//! later-scanned one — every accepted point is final the moment it is
//! accepted. [`ProgressiveSkyline`] streams exactly that: an iterator that
//! yields each confirmed skyline point immediately and does no more work
//! than the consumer demands (dropping it early abandons the scan).

use crate::dominance::Dominance;
use crate::point::PointSet;
use crate::sfs::entropy_score;
use crate::subspace::Subspace;

/// A lazily-evaluated progressive subspace skyline: yields `(index, id)`
/// pairs into the original [`PointSet`] in entropy-score order, each final
/// at the moment of emission.
pub struct ProgressiveSkyline<'a> {
    set: &'a PointSet,
    u: Subspace,
    flavour: Dominance,
    /// Input indices sorted ascending by entropy score on `u`.
    order: Vec<usize>,
    /// Scan position in `order`.
    cursor: usize,
    /// Indices already emitted (the confirmed skyline so far).
    accepted: Vec<usize>,
}

impl<'a> ProgressiveSkyline<'a> {
    /// Prepares a progressive scan over `set` on subspace `u`. Sorting is
    /// the only up-front work; everything else happens on demand.
    pub fn new(set: &'a PointSet, u: Subspace, flavour: Dominance) -> Self {
        let mut order: Vec<usize> = (0..set.len()).collect();
        order.sort_by(|&a, &b| {
            entropy_score(set.point(a), u)
                .partial_cmp(&entropy_score(set.point(b), u))
                .expect("entropy scores are finite")
        });
        ProgressiveSkyline { set, u, flavour, order, cursor: 0, accepted: Vec::new() }
    }

    /// How many input points have been examined so far (for tests and
    /// instrumentation of progressiveness).
    pub fn scanned(&self) -> usize {
        self.cursor
    }
}

impl Iterator for ProgressiveSkyline<'_> {
    /// `(index into the input set, point id)`.
    type Item = (usize, u64);

    fn next(&mut self) -> Option<Self::Item> {
        while self.cursor < self.order.len() {
            let i = self.order[self.cursor];
            self.cursor += 1;
            let p = self.set.point(i);
            let dominated =
                self.accepted.iter().any(|&s| self.flavour.dominates(self.set.point(s), p, self.u));
            if !dominated {
                self.accepted.push(i);
                return Some((i, self.set.id(i)));
            }
        }
        None
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::brute;
    use crate::sorted::{threshold_skyline, DominanceIndex, SortedDataset};

    fn sample() -> PointSet {
        let mut s = PointSet::new(3);
        let rows = [
            [4.0, 1.0, 6.0],
            [2.0, 2.0, 2.0],
            [1.0, 7.0, 3.0],
            [6.0, 6.0, 6.0],
            [0.0, 9.0, 1.0],
            [3.0, 3.0, 1.0],
            [2.0, 2.0, 2.0],
        ];
        for (i, r) in rows.iter().enumerate() {
            s.push(r, i as u64);
        }
        s
    }

    #[test]
    fn yields_exactly_the_skyline() {
        let s = sample();
        for u in Subspace::enumerate_all(3) {
            for flavour in [Dominance::Standard, Dominance::Extended] {
                let mut ids: Vec<u64> =
                    ProgressiveSkyline::new(&s, u, flavour).map(|(_, id)| id).collect();
                ids.sort_unstable();
                assert_eq!(ids, brute::skyline_ids(&s, u, flavour), "U {u} {flavour:?}");
            }
        }
    }

    #[test]
    fn emissions_are_immediately_final() {
        let s = sample();
        let u = Subspace::full(3);
        let out: Vec<usize> =
            ProgressiveSkyline::new(&s, u, Dominance::Standard).map(|(i, _)| i).collect();
        for (a, &i) in out.iter().enumerate() {
            for &j in &out[a + 1..] {
                assert!(
                    !crate::dominance::dominates(s.point(j), s.point(i), u),
                    "a later emission dominates an earlier one"
                );
            }
        }
    }

    #[test]
    fn first_point_emitted_after_one_probe() {
        // The smallest-entropy point is always a skyline point and must be
        // emitted after examining exactly one input.
        let s = sample();
        let mut prog = ProgressiveSkyline::new(&s, Subspace::full(3), Dominance::Standard);
        let first = prog.next();
        assert!(first.is_some());
        assert_eq!(prog.scanned(), 1, "first emission must not wait for the scan");
    }

    #[test]
    fn dropping_early_does_less_work() {
        let mut s = PointSet::new(2);
        for i in 0..1000u64 {
            s.push(&[(i % 97) as f64, (i % 89) as f64], i);
        }
        let mut prog = ProgressiveSkyline::new(&s, Subspace::full(2), Dominance::Standard);
        let _ = prog.next();
        assert!(prog.scanned() < 1000, "lazy iterator must not pre-scan everything");
    }

    /// The lemma from the module docs: under the f(p)-min ordering, the
    /// first moment a window point becomes un-dominateable is the same
    /// moment the threshold terminates the scan — so Algorithm 1 cannot
    /// emit early. We verify the consequence: the scan's terminal
    /// threshold equals the minimum dist_U over the final skyline, i.e.
    /// the earliest possible confirmation frontier.
    #[test]
    fn f_ordering_cannot_confirm_early() {
        let s = sample();
        let sorted = SortedDataset::from_set(&s);
        let u = Subspace::full(3);
        let out = threshold_skyline(
            &sorted,
            u,
            Dominance::Standard,
            f64::INFINITY,
            DominanceIndex::Linear,
        );
        let min_dist = (0..out.result.len())
            .map(|i| crate::mapping::dist(out.result.points().point(i), u))
            .fold(f64::INFINITY, f64::min);
        assert_eq!(
            out.threshold, min_dist,
            "termination fires exactly at the first confirmation frontier"
        );
    }

    #[test]
    fn empty_input() {
        let s = PointSet::new(2);
        let mut prog = ProgressiveSkyline::new(&s, Subspace::full(2), Dominance::Standard);
        assert!(prog.next().is_none());
    }
}
