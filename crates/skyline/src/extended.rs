//! Extended skyline computation (Section 4 of the paper).
//!
//! The *extended skyline* `ext-SKY_U` is the set of points not
//! ext-dominated (strictly smaller on every dimension of `U`) by any other
//! point. The paper proves:
//!
//! * **Observation 3**: `SKY_U ⊆ ext-SKY_U`;
//! * **Observation 4**: `SKY_V ⊆ ext-SKY_U` for every `V ⊆ U`.
//!
//! Hence `ext-SKY_D` — computed once per peer in the preprocessing phase —
//! suffices to answer any subspace skyline query exactly, which is what
//! makes SKYPEER's data reduction lossless.
//!
//! As the paper notes (Section 5.3), *any* skyline algorithm yields the
//! ext-skyline once its domination test is swapped for ext-domination.
//! This module wires that up for the threshold engine of [`crate::sorted`]
//! (the paper's choice) and exposes size accounting used by the
//! pre-processing statistics experiment (Figure 3(a)).

use crate::dominance::Dominance;
use crate::point::PointSet;
use crate::sorted::{DominanceIndex, SortedDataset, ThresholdOutcome};
use crate::subspace::Subspace;

/// Computes the extended skyline of `set` over the full space, returning it
/// `f`-sorted, ready for upload to a super-peer.
///
/// This is the peer-side half of the preprocessing phase (Section 5.3).
pub fn ext_skyline(set: &PointSet, index: DominanceIndex) -> ThresholdOutcome {
    skypeer_obs::scope!("skyline::ext_skyline");
    let sorted = SortedDataset::from_set(set);
    sorted.subspace_skyline(Subspace::full(set.dim()), Dominance::Extended, f64::INFINITY, index)
}

/// Computes the extended skyline on an explicit subspace `u` (the paper
/// only ever needs `u = D`, but the definition is parametric).
pub fn ext_skyline_on(set: &PointSet, u: Subspace, index: DominanceIndex) -> ThresholdOutcome {
    skypeer_obs::scope!("skyline::ext_skyline");
    let sorted = SortedDataset::from_set(set);
    sorted.subspace_skyline(u, Dominance::Extended, f64::INFINITY, index)
}

/// Answers the **standard** subspace skyline `SKY_U` from a stored
/// extended result `ext-SKY_V`, for any `U ⊆ V`.
///
/// This is the generalization of Observation 4 that makes result *reuse*
/// (not just data reduction) lossless: if `q` ext-dominates `p` on `V`
/// then it does so on every `U ⊆ V`, hence `ext-SKY_U ⊆ ext-SKY_V` and in
/// particular `SKY_U ⊆ ext-SKY_V`. Dominators are preserved too — any
/// point of the original dataset that dominates `p` on `U` is itself
/// (transitively) represented in `ext-SKY_V` by a point that still
/// dominates `p` on `U` — so running Algorithm 1 over the cached extended
/// result with *standard* dominance yields `SKY_U` of the full dataset
/// exactly. This is what lets a cache keyed by `V` serve every contained
/// subspace locally.
///
/// # Panics
///
/// Debug-asserts `u` fits the dataset's dimensionality; the *semantic*
/// precondition `U ⊆ V` (where `V` is the subspace `ext` was computed on)
/// cannot be checked here and is the caller's contract.
pub fn refine_from_ext(
    ext: &SortedDataset,
    u: Subspace,
    index: DominanceIndex,
) -> ThresholdOutcome {
    skypeer_obs::scope!("skyline::refine_from_ext");
    debug_assert!(
        u.dims().all(|d| d < ext.dim()),
        "subspace {u} out of range for a {}-dimensional dataset",
        ext.dim()
    );
    ext.subspace_skyline(u, Dominance::Standard, f64::INFINITY, index)
}

/// Selectivity of a reduction step: `|reduced| / |original|`, the quantity
/// plotted in Figure 3(a) (`SEL_p`, `SEL_sp`).
pub fn selectivity(reduced: usize, original: usize) -> f64 {
    if original == 0 {
        0.0
    } else {
        reduced as f64 / original as f64
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::brute;

    fn figure2_peer_a() -> PointSet {
        let mut s = PointSet::new(4);
        s.push(&[2.0, 2.0, 2.0, 2.0], 1);
        s.push(&[1.0, 3.0, 2.0, 3.0], 2);
        s.push(&[1.0, 3.0, 5.0, 4.0], 3);
        s.push(&[2.0, 3.0, 2.0, 1.0], 4);
        s.push(&[5.0, 2.0, 4.0, 1.0], 5);
        s
    }

    #[test]
    fn paper_example_peer_a() {
        // Figure 2: all five points of P_A belong to the ext-skyline (A3 is
        // dominated but shares its x-value with A2, so it survives
        // ext-domination).
        let out = ext_skyline(&figure2_peer_a(), DominanceIndex::Linear);
        assert_eq!(out.result.len(), 5);
    }

    #[test]
    fn matches_brute_force_under_both_indexes() {
        let s = figure2_peer_a();
        for index in [DominanceIndex::Linear, DominanceIndex::RTree] {
            let out = ext_skyline(&s, index);
            let mut ids: Vec<u64> =
                (0..out.result.len()).map(|i| out.result.points().id(i)).collect();
            ids.sort_unstable();
            assert_eq!(ids, brute::skyline_ids(&s, Subspace::full(4), Dominance::Extended));
        }
    }

    #[test]
    fn observation4_on_paper_example() {
        let s = figure2_peer_a();
        let ext = ext_skyline(&s, DominanceIndex::Linear);
        let ext_ids: Vec<u64> = (0..ext.result.len()).map(|i| ext.result.points().id(i)).collect();
        for id in brute::all_subspace_skyline_ids(&s, Subspace::full(4)) {
            assert!(ext_ids.contains(&id), "subspace skyline point {id} missing from ext-skyline");
        }
    }

    #[test]
    fn ext_skyline_is_superset_of_skyline() {
        let s = figure2_peer_a();
        let ext = brute::skyline_ids(&s, Subspace::full(4), Dominance::Extended);
        for id in brute::skyline_ids(&s, Subspace::full(4), Dominance::Standard) {
            assert!(ext.contains(&id), "Observation 3 violated for {id}");
        }
    }

    #[test]
    fn selectivity_bounds() {
        assert_eq!(selectivity(0, 0), 0.0);
        assert_eq!(selectivity(5, 10), 0.5);
        assert_eq!(selectivity(10, 10), 1.0);
    }

    #[test]
    fn refine_from_ext_recovers_every_contained_skyline() {
        let s = figure2_peer_a();
        let v = crate::subspace::Subspace::from_dims(&[0, 1, 3]);
        let ext = ext_skyline_on(&s, v, DominanceIndex::Linear);
        for u in crate::subspace::Subspace::enumerate_all(4) {
            if !u.is_subset_of(v) {
                continue;
            }
            for index in [DominanceIndex::Linear, DominanceIndex::RTree] {
                let out = refine_from_ext(&ext.result, u, index);
                let mut ids: Vec<u64> =
                    (0..out.result.len()).map(|i| out.result.points().id(i)).collect();
                ids.sort_unstable();
                assert_eq!(
                    ids,
                    brute::skyline_ids(&s, u, Dominance::Standard),
                    "U={u} ⊆ V={v} must refine exactly"
                );
            }
        }
    }

    /// Coincident duplicates and per-dimension ties: a duplicated point
    /// ext-survives (its twin is never *strictly* smaller on every dim)
    /// and standard refinement must keep both copies, since neither
    /// dominates the other; likewise two points tying on the refined
    /// subspace are both answers there.
    #[test]
    fn refine_keeps_coincident_duplicates_and_subspace_ties() {
        let mut s = PointSet::new(3);
        s.push(&[1.0, 2.0, 3.0], 1);
        s.push(&[1.0, 2.0, 3.0], 2); // exact twin of #1
        s.push(&[2.0, 1.0, 3.0], 3);
        s.push(&[2.0, 1.0, 4.0], 4); // ties #3 on {0,1}, worse on dim 2
        s.push(&[3.0, 3.0, 1.0], 5);
        let ext = ext_skyline(&s, DominanceIndex::Linear);
        let ext_ids: Vec<u64> = (0..ext.result.len()).map(|i| ext.result.points().id(i)).collect();
        for id in [1, 2, 3, 4] {
            assert!(ext_ids.contains(&id), "#{id} must survive ext-domination");
        }
        for u in Subspace::enumerate_all(3) {
            for index in [DominanceIndex::Linear, DominanceIndex::RTree] {
                let out = refine_from_ext(&ext.result, u, index);
                let mut ids: Vec<u64> =
                    (0..out.result.len()).map(|i| out.result.points().id(i)).collect();
                ids.sort_unstable();
                assert_eq!(
                    ids,
                    brute::skyline_ids(&s, u, Dominance::Standard),
                    "refine on U={u} must match the brute oracle"
                );
            }
        }
        // Pinpoint the two edge cases: both twins answer the full-space
        // query, and the {0,1} tie keeps #3 and #4 side by side.
        let full = refine_from_ext(&ext.result, Subspace::full(3), DominanceIndex::Linear);
        let full_ids: Vec<u64> =
            (0..full.result.len()).map(|i| full.result.points().id(i)).collect();
        assert!(full_ids.contains(&1) && full_ids.contains(&2), "duplicates both answer");
        let tied =
            refine_from_ext(&ext.result, Subspace::from_dims(&[0, 1]), DominanceIndex::Linear);
        let tied_ids: Vec<u64> =
            (0..tied.result.len()).map(|i| tied.result.points().id(i)).collect();
        assert!(tied_ids.contains(&3) && tied_ids.contains(&4), "subspace ties both answer");
    }

    /// Quantized fuzz: coordinates drawn from `{0,1,2}` make duplicates
    /// and ties the norm rather than the exception. Every `U ⊆ V`
    /// refinement of every ext-result must match the brute oracle under
    /// both dominance indexes.
    #[test]
    fn refine_matches_oracle_on_quantized_grid_data() {
        let mut state = 0x5EED_u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 3) as f64
        };
        for _case in 0..6 {
            let mut s = PointSet::new(3);
            for id in 0..20 {
                let p = [next(), next(), next()];
                s.push(&p, id);
            }
            for v in Subspace::enumerate_all(3) {
                let ext = ext_skyline_on(&s, v, DominanceIndex::RTree);
                for u in Subspace::enumerate_all(3) {
                    if !u.is_subset_of(v) {
                        continue;
                    }
                    for index in [DominanceIndex::Linear, DominanceIndex::RTree] {
                        let out = refine_from_ext(&ext.result, u, index);
                        let mut ids: Vec<u64> =
                            (0..out.result.len()).map(|i| out.result.points().id(i)).collect();
                        ids.sort_unstable();
                        assert_eq!(
                            ids,
                            brute::skyline_ids(&s, u, Dominance::Standard),
                            "U={u} ⊆ V={v} must refine exactly on tied data"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn subspace_parametric_variant() {
        let s = figure2_peer_a();
        let u = Subspace::from_dims(&[0, 1]);
        let out = ext_skyline_on(&s, u, DominanceIndex::Linear);
        let mut ids: Vec<u64> = (0..out.result.len()).map(|i| out.result.points().id(i)).collect();
        ids.sort_unstable();
        assert_eq!(ids, brute::skyline_ids(&s, u, Dominance::Extended));
    }
}
