//! Flat, row-major point storage.
//!
//! Skyline kernels touch every coordinate of many points; storing them in a
//! single contiguous `Vec<f64>` (rather than one allocation per point) keeps
//! them cache-friendly and allocation-free on the hot path.

use serde::{Deserialize, Serialize};

/// Maximum supported dimensionality. [`crate::Subspace`] packs dimension
/// sets into a `u32`, which comfortably covers the paper's `d ∈ [5, 10]`.
pub const MAX_DIM: usize = 32;

/// A set of `d`-dimensional points with `u64` identifiers, stored row-major.
///
/// Identifiers are caller-assigned and need not be unique or dense — in the
/// distributed setting they are global point ids that survive shipping
/// between peers.
///
/// All coordinate values must be finite and non-negative (the paper's
/// standing assumption); [`PointSet::push`] enforces this.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PointSet {
    dim: usize,
    ids: Vec<u64>,
    data: Vec<f64>,
}

impl PointSet {
    /// Creates an empty set of `dim`-dimensional points.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero or exceeds [`MAX_DIM`].
    pub fn new(dim: usize) -> Self {
        assert!((1..=MAX_DIM).contains(&dim), "dimensionality {dim} out of range 1..={MAX_DIM}");
        PointSet { dim, ids: Vec::new(), data: Vec::new() }
    }

    /// Creates an empty set with room for `cap` points.
    pub fn with_capacity(dim: usize, cap: usize) -> Self {
        let mut s = Self::new(dim);
        s.ids.reserve(cap);
        s.data.reserve(cap * dim);
        s
    }

    /// Appends a point. Returns its index within this set.
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch or non-finite / negative values.
    pub fn push(&mut self, coords: &[f64], id: u64) -> usize {
        assert_eq!(coords.len(), self.dim, "point dimensionality mismatch");
        assert!(
            coords.iter().all(|v| v.is_finite() && *v >= 0.0),
            "coordinates must be finite and non-negative: {coords:?}"
        );
        self.data.extend_from_slice(coords);
        self.ids.push(id);
        self.ids.len() - 1
    }

    /// Number of stored points.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Dimensionality of the full space `D`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Coordinates of the `i`-th point.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Identifier of the `i`-th point.
    #[inline]
    pub fn id(&self, i: usize) -> u64 {
        self.ids[i]
    }

    /// Iterates over `(index, id, coords)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64, &[f64])> + '_ {
        self.ids.iter().enumerate().map(move |(i, &id)| (i, id, self.point(i)))
    }

    /// Builds a new set containing the points at `indices`, in order.
    pub fn gather(&self, indices: &[usize]) -> PointSet {
        let mut out = PointSet::with_capacity(self.dim, indices.len());
        for &i in indices {
            out.data.extend_from_slice(self.point(i));
            out.ids.push(self.ids[i]);
        }
        out
    }

    /// Appends every point of `other`.
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch.
    pub fn extend_from(&mut self, other: &PointSet) {
        assert_eq!(self.dim, other.dim, "cannot extend across dimensionalities");
        self.data.extend_from_slice(&other.data);
        self.ids.extend_from_slice(&other.ids);
    }

    /// Total bytes this set occupies on the wire: one `u64` id plus `dim`
    /// `f64` coordinates per point. Used by the network cost model.
    #[inline]
    pub fn wire_bytes(&self) -> u64 {
        (self.len() as u64) * Self::wire_bytes_per_point(self.dim)
    }

    /// On-wire size of a single `dim`-dimensional identified point.
    #[inline]
    pub fn wire_bytes_per_point(dim: usize) -> u64 {
        8 + 8 * dim as u64
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut s = PointSet::new(2);
        let i0 = s.push(&[1.0, 2.0], 10);
        let i1 = s.push(&[3.0, 4.0], 20);
        assert_eq!((i0, i1), (0, 1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.point(0), &[1.0, 2.0]);
        assert_eq!(s.point(1), &[3.0, 4.0]);
        assert_eq!(s.id(1), 20);
    }

    #[test]
    fn iter_yields_all() {
        let mut s = PointSet::new(1);
        s.push(&[5.0], 1);
        s.push(&[6.0], 2);
        let collected: Vec<(usize, u64, Vec<f64>)> =
            s.iter().map(|(i, id, p)| (i, id, p.to_vec())).collect();
        assert_eq!(collected, vec![(0, 1, vec![5.0]), (1, 2, vec![6.0])]);
    }

    #[test]
    fn gather_preserves_order_and_ids() {
        let mut s = PointSet::new(2);
        for i in 0..5u64 {
            s.push(&[i as f64, i as f64], i * 100);
        }
        let g = s.gather(&[3, 1]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.id(0), 300);
        assert_eq!(g.id(1), 100);
        assert_eq!(g.point(0), &[3.0, 3.0]);
    }

    #[test]
    fn wire_bytes_counts_ids_and_coords() {
        let mut s = PointSet::new(4);
        s.push(&[0.0; 4], 1);
        s.push(&[1.0; 4], 2);
        assert_eq!(s.wire_bytes(), 2 * (8 + 32));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_coordinates_rejected() {
        let mut s = PointSet::new(2);
        s.push(&[-1.0, 0.0], 1);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn dim_zero_rejected() {
        let _ = PointSet::new(0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn wrong_arity_rejected() {
        let mut s = PointSet::new(3);
        s.push(&[1.0, 2.0], 1);
    }
}
