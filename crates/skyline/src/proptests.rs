//! Cross-engine property tests: every optimized kernel must agree with the
//! quadratic oracle, and the paper's observations must hold on random data.

use crate::sorted::{threshold_skyline, DominanceIndex, SortedDataset};
use crate::{bnl, brute, dnc, merge, sfs};
use crate::{Dominance, PointSet, Subspace};
use proptest::prelude::*;

/// Strategy: a point set of `n` points in `dim` dimensions on a coarse grid
/// (to force ties, the interesting case) mixed with fine values.
fn point_set(dim: usize, max_n: usize) -> impl Strategy<Value = PointSet> {
    prop::collection::vec(
        prop::collection::vec(
            prop_oneof![
                (0u32..8).prop_map(f64::from),                         // coarse: ties
                (0.0f64..8.0).prop_map(|v| (v * 64.0).round() / 64.0), // finer grid
            ],
            dim,
        ),
        0..max_n,
    )
    .prop_map(move |rows| {
        let mut s = PointSet::new(dim);
        for (i, r) in rows.iter().enumerate() {
            s.push(r, i as u64);
        }
        s
    })
}

fn subspace_of(dim: usize) -> impl Strategy<Value = Subspace> {
    (1u32..(1u32 << dim)).prop_map(Subspace::from_mask)
}

fn ids_of(result: &SortedDataset) -> Vec<u64> {
    let mut ids: Vec<u64> = (0..result.len()).map(|i| result.points().id(i)).collect();
    ids.sort_unstable();
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// BNL, SFS, D&C, and Algorithm 1 (both indexes) all equal brute force,
    /// for both dominance flavours, on random subspaces.
    #[test]
    fn prop_all_engines_agree(set in point_set(4, 60), u in subspace_of(4)) {
        for flavour in [Dominance::Standard, Dominance::Extended] {
            let want = brute::skyline_ids(&set, u, flavour);
            prop_assert_eq!(&bnl::skyline_ids(&set, u, flavour), &want);
            prop_assert_eq!(&sfs::skyline_ids(&set, u, flavour), &want);
            prop_assert_eq!(&dnc::skyline_ids(&set, u, flavour), &want);
            let sorted = SortedDataset::from_set(&set);
            for index in [DominanceIndex::Linear, DominanceIndex::RTree] {
                let out = threshold_skyline(&sorted, u, flavour, f64::INFINITY, index);
                prop_assert_eq!(ids_of(&out.result), want.clone());
            }
        }
    }

    /// Observation 3: SKY_U ⊆ ext-SKY_U on every subspace.
    #[test]
    fn prop_skyline_within_ext_skyline(set in point_set(4, 60), u in subspace_of(4)) {
        let sky = brute::skyline_ids(&set, u, Dominance::Standard);
        let ext = brute::skyline_ids(&set, u, Dominance::Extended);
        for id in sky {
            prop_assert!(ext.contains(&id));
        }
    }

    /// Observation 4: SKY_V ⊆ ext-SKY_U for every V ⊆ U. Tested with
    /// U = D against every subspace skyline.
    #[test]
    fn prop_ext_skyline_covers_all_subspaces(set in point_set(3, 40)) {
        let d = Subspace::full(3);
        let ext = brute::skyline_ids(&set, d, Dominance::Extended);
        for id in brute::all_subspace_skyline_ids(&set, d) {
            prop_assert!(ext.contains(&id), "Observation 4 violated for id {}", id);
        }
    }

    /// Algorithm 2 over an arbitrary partition of the data (each part
    /// reduced to its local skyline first) equals the centralized skyline.
    /// This is the heart of the distributed correctness argument.
    #[test]
    fn prop_merge_of_partitions_is_exact(
        set in point_set(3, 60),
        u in subspace_of(3),
        assignment in prop::collection::vec(0usize..4, 0..60),
    ) {
        // Partition points across up to 4 "peers".
        let mut parts: Vec<PointSet> = (0..4).map(|_| PointSet::new(3)).collect();
        for (i, _, coords) in set.iter() {
            let part = assignment.get(i).copied().unwrap_or(0);
            parts[part].push(coords, set.id(i));
        }
        let locals: Vec<SortedDataset> = parts
            .iter()
            .map(|p| {
                threshold_skyline(
                    &SortedDataset::from_set(p),
                    u,
                    Dominance::Standard,
                    f64::INFINITY,
                    DominanceIndex::Linear,
                ).result
            })
            .collect();
        let refs: Vec<&SortedDataset> = locals.iter().collect();
        let merged = merge::merge_sorted(&refs, u, Dominance::Standard, f64::INFINITY, DominanceIndex::Linear);
        prop_assert_eq!(ids_of(&merged.result), brute::skyline_ids(&set, u, Dominance::Standard));
    }

    /// The distributed reduction pipeline end-to-end: per-part *ext*-skyline
    /// (full space), ext-merge at the "super-peer", then a subspace query
    /// over the merged store — must equal the centralized subspace skyline.
    #[test]
    fn prop_ext_pipeline_answers_subspace_queries(
        set in point_set(3, 50),
        u in subspace_of(3),
        assignment in prop::collection::vec(0usize..3, 0..50),
    ) {
        let d = Subspace::full(3);
        let mut parts: Vec<PointSet> = (0..3).map(|_| PointSet::new(3)).collect();
        for (i, _, coords) in set.iter() {
            let part = assignment.get(i).copied().unwrap_or(0);
            parts[part].push(coords, set.id(i));
        }
        // Peers upload ext-skylines; super-peer ext-merges them.
        let uploads: Vec<SortedDataset> = parts
            .iter()
            .map(|p| crate::extended::ext_skyline(p, DominanceIndex::Linear).result)
            .collect();
        let refs: Vec<&SortedDataset> = uploads.iter().collect();
        let store = merge::merge_sorted(&refs, d, Dominance::Extended, f64::INFINITY, DominanceIndex::Linear);
        // Query time: Algorithm 1 over the stored ext-skyline.
        let answer = threshold_skyline(&store.result, u, Dominance::Standard, f64::INFINITY, DominanceIndex::Linear);
        prop_assert_eq!(ids_of(&answer.result), brute::skyline_ids(&set, u, Dominance::Standard));
    }

    /// Threshold propagation soundness: seeding Algorithm 1 with the final
    /// threshold of a *different* partition never loses true skyline
    /// points once results are merged (the FT* correctness argument).
    #[test]
    fn prop_foreign_threshold_is_lossless(
        set in point_set(3, 60),
        u in subspace_of(3),
        split in 0usize..60,
    ) {
        let n = set.len();
        let cut = split.min(n);
        let first = set.gather(&(0..cut).collect::<Vec<_>>());
        let second = set.gather(&(cut..n).collect::<Vec<_>>());
        // "Initiator" computes its local skyline, yielding threshold t.
        let init = threshold_skyline(
            &SortedDataset::from_set(&first), u, Dominance::Standard, f64::INFINITY, DominanceIndex::Linear);
        // Remote super-peer computes with the foreign threshold.
        let remote = threshold_skyline(
            &SortedDataset::from_set(&second), u, Dominance::Standard, init.threshold, DominanceIndex::Linear);
        // Merging both local results recovers the exact global skyline.
        let merged = merge::merge_sorted(
            &[&init.result, &remote.result], u, Dominance::Standard, f64::INFINITY, DominanceIndex::Linear);
        prop_assert_eq!(ids_of(&merged.result), brute::skyline_ids(&set, u, Dominance::Standard));
    }

    /// The final threshold returned by Algorithm 1 is exactly
    /// `min(initial, min over result of dist_U)`.
    #[test]
    fn prop_threshold_is_min_dist(set in point_set(3, 40), u in subspace_of(3)) {
        let sorted = SortedDataset::from_set(&set);
        let out = threshold_skyline(&sorted, u, Dominance::Standard, f64::INFINITY, DominanceIndex::Linear);
        if out.result.is_empty() {
            prop_assert!(out.threshold.is_infinite());
        } else {
            let min_dist = (0..out.result.len())
                .map(|i| crate::mapping::dist(out.result.points().point(i), u))
                .fold(f64::INFINITY, f64::min);
            prop_assert_eq!(out.threshold, min_dist);
        }
    }

    /// Skyline results never contain a dominated point and never omit an
    /// undominated one (self-consistency without the oracle).
    #[test]
    fn prop_result_is_maximal_antichain(set in point_set(5, 50), u in subspace_of(5)) {
        let sorted = SortedDataset::from_set(&set);
        let out = threshold_skyline(&sorted, u, Dominance::Standard, f64::INFINITY, DominanceIndex::RTree);
        let res = out.result.points();
        for i in 0..res.len() {
            for j in 0..res.len() {
                if i != j {
                    prop_assert!(
                        !crate::dominance::dominates(res.point(j), res.point(i), u),
                        "result contains a dominated point"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// BBS agrees with brute force on random data and subspaces.
    #[test]
    fn prop_bbs_matches_brute(set in point_set(4, 80), u in subspace_of(4)) {
        for flavour in [Dominance::Standard, Dominance::Extended] {
            prop_assert_eq!(
                crate::bbs::skyline_ids(&set, u, flavour),
                brute::skyline_ids(&set, u, flavour)
            );
        }
    }

    /// The progressive iterator yields exactly the skyline, in an order
    /// where no later emission dominates an earlier one.
    #[test]
    fn prop_progressive_matches_brute(set in point_set(3, 60), u in subspace_of(3)) {
        let out: Vec<(usize, u64)> =
            crate::progressive::ProgressiveSkyline::new(&set, u, Dominance::Standard).collect();
        let mut ids: Vec<u64> = out.iter().map(|(_, id)| *id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, brute::skyline_ids(&set, u, Dominance::Standard));
        for (a, (i, _)) in out.iter().enumerate() {
            for (j, _) in &out[a + 1..] {
                prop_assert!(!crate::dominance::dominates(set.point(*j), set.point(*i), u));
            }
        }
    }

    /// The skyband is consistent with per-point dominance counts, nests
    /// monotonically in k, and skyband(1) is the skyline.
    #[test]
    fn prop_skyband_invariants(set in point_set(3, 50), u in subspace_of(3), k in 1usize..6) {
        let counts = crate::skyband::dominance_counts(&set, u, Dominance::Standard);
        let band = crate::skyband::skyband(&set, u, k, Dominance::Standard);
        let expect: Vec<usize> = (0..set.len()).filter(|&i| counts[i] < k).collect();
        prop_assert_eq!(&band, &expect);
        if k > 1 {
            let smaller = crate::skyband::skyband(&set, u, k - 1, Dominance::Standard);
            for i in &smaller {
                prop_assert!(band.contains(i), "skyband must nest in k");
            }
        }
        prop_assert_eq!(
            crate::skyband::skyband_ids(&set, u, 1, Dominance::Standard),
            brute::skyline_ids(&set, u, Dominance::Standard)
        );
    }

    /// Constrained skylines with the empty constraint equal the plain
    /// skyline, and any constraint produces a subset of the eligible set.
    #[test]
    fn prop_constrained_consistency(
        set in point_set(3, 50),
        u in subspace_of(3),
        lo in 0.0f64..4.0,
        width in 0.5f64..4.0,
    ) {
        use crate::constrained::{constrained_skyline_ids, ConstraintBox};
        let unconstrained = constrained_skyline_ids(
            &set, u, &ConstraintBox::unconstrained(), Dominance::Standard);
        prop_assert_eq!(unconstrained, brute::skyline_ids(&set, u, Dominance::Standard));
        let c = ConstraintBox::unconstrained().with_range(0, lo, lo + width);
        let ids = constrained_skyline_ids(&set, u, &c, Dominance::Standard);
        for id in &ids {
            let i = (0..set.len()).find(|&i| set.id(i) == *id).expect("id exists");
            prop_assert!(c.contains(set.point(i)), "result violates the constraint");
        }
    }

    /// The independence estimate brackets empirical uniform skylines
    /// within a generous factor (catches gross regressions in either the
    /// estimate or the generators).
    #[test]
    fn prop_estimate_brackets_uniform(seed in 0u64..50) {
        let spec = skypeer_rtree_free_uniform(seed);
        let sky = crate::bnl::skyline(&spec, Subspace::full(3), Dominance::Standard).len() as f64;
        let want = crate::estimate::expected_skyline_size(spec.len(), 3);
        prop_assert!(sky / want < 4.0 && want / sky < 4.0, "empirical {} vs theory {}", sky, want);
    }
}

/// 500 deterministic pseudo-uniform points (no rand dependency here).
fn skypeer_rtree_free_uniform(seed: u64) -> PointSet {
    let mut s = PointSet::new(3);
    let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    for i in 0..500u64 {
        let mut c = [0.0f64; 3];
        for v in &mut c {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *v = ((x >> 11) as f64) / ((u64::MAX >> 11) as f64);
        }
        s.push(&c, i);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Observation 1: no containment relationship between SKY_U and SKY_V
    /// is *assumed* anywhere — concretely, both directions of containment
    /// fail on witnesses (this test only checks the sound half: a point in
    /// SKY_V for V ⊃ U need not be in SKY_U and vice versa — we assert
    /// subspace results are mutually consistent with brute force, which
    /// the machinery relies on instead of any containment).
    ///
    /// Observation 2: for U ⊂ V, every q ∈ SKY_U is, on V, either
    /// dominated by another point of SKY_U or a member of SKY_V.
    #[test]
    fn prop_observation2(set in point_set(4, 50)) {
        let d = Subspace::full(4);
        let sky_d = brute::skyline_ids(&set, d, Dominance::Standard);
        for u in Subspace::enumerate_all(4) {
            if u == d {
                continue;
            }
            let sky_u = brute::skyline_indices(&set, u, Dominance::Standard);
            for &qi in &sky_u {
                let q = set.point(qi);
                let in_sky_d = sky_d.contains(&set.id(qi));
                let dominated_by_peer = sky_u.iter().any(|&pi| {
                    pi != qi && crate::dominance::dominates(set.point(pi), q, d)
                });
                prop_assert!(
                    in_sky_d || dominated_by_peer,
                    "Observation 2 violated for point {} on U={}",
                    set.id(qi),
                    u
                );
            }
        }
    }
}
