//! Branch-and-Bound Skyline (Papadias, Tao, Fu, Seeger — TODS 2005).
//!
//! BBS is the reference progressive skyline algorithm over an R-tree: a
//! best-first traversal ordered by the L1 *mindist* of each entry's MBR.
//! Because a box's lower corner lower-bounds every point inside it, an
//! entry whose lower corner is dominated by an already-found skyline point
//! can be pruned wholesale, and points pop off the priority queue in an
//! order that guarantees no later point can dominate an earlier one —
//! every popped, non-dominated point is immediately a confirmed skyline
//! point (the "progressive with guaranteed minimum I/O" property the
//! SKYPEER paper cites when borrowing the dominance-window technique).
//!
//! SKYPEER itself uses Algorithm 1 (the `f(p)` threshold scan) at query
//! time because its data already arrives `f`-sorted; BBS is provided as
//! the canonical centralized engine for comparison and for workloads where
//! the data is R-tree-resident.

use crate::dominance::Dominance;
use crate::point::PointSet;
use crate::subspace::Subspace;
use skypeer_rtree::{NodeRef, RTree};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A heap entry: either an R-tree node or a concrete point, keyed by L1
/// mindist from the origin (ascending).
enum Candidate<'a> {
    Node(NodeRef<'a>),
    Point { coords: &'a [f64], id: u64 },
}

struct Keyed<'a> {
    mindist: f64,
    seq: u64,
    cand: Candidate<'a>,
}

impl PartialEq for Keyed<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.mindist == other.mindist && self.seq == other.seq
    }
}
impl Eq for Keyed<'_> {}
impl PartialOrd for Keyed<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Keyed<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on mindist; seq breaks ties (FIFO).
        other
            .mindist
            .partial_cmp(&self.mindist)
            .expect("mindist is finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Computes the skyline of the points stored in `tree` on subspace `u`
/// (the tree must be built over the *projected* `u.k()`-dimensional
/// coordinates — see [`skyline_ids`] for the all-in-one path), returning
/// `(projected coords, id)` pairs in discovery (mindist) order.
pub fn skyline_from_tree(tree: &RTree, flavour: Dominance) -> Vec<(Vec<f64>, u64)> {
    let full = Subspace::full(tree.dim().clamp(1, crate::point::MAX_DIM));
    let mut heap: BinaryHeap<Keyed<'_>> = BinaryHeap::new();
    let mut seq = 0u64;
    if !tree.is_empty() {
        heap.push(Keyed {
            mindist: tree.root().mbr().mindist_l1(),
            seq,
            cand: Candidate::Node(tree.root()),
        });
        seq += 1;
    }
    let mut skyline: Vec<(Vec<f64>, u64)> = Vec::new();
    let dominated_by_result = |coords: &[f64], skyline: &[(Vec<f64>, u64)]| {
        skyline.iter().any(|(s, _)| flavour.dominates(s, coords, full))
    };
    while let Some(Keyed { cand, .. }) = heap.pop() {
        match cand {
            Candidate::Node(node) => {
                // Prune the whole subtree if its lower corner is dominated.
                if dominated_by_result(node.mbr().lo(), &skyline) {
                    continue;
                }
                if node.is_leaf() {
                    for (coords, id) in node.points() {
                        heap.push(Keyed {
                            mindist: coords.iter().sum(),
                            seq,
                            cand: Candidate::Point { coords, id },
                        });
                        seq += 1;
                    }
                } else {
                    for child in node.children() {
                        heap.push(Keyed {
                            mindist: child.mbr().mindist_l1(),
                            seq,
                            cand: Candidate::Node(child),
                        });
                        seq += 1;
                    }
                }
            }
            Candidate::Point { coords, id } => {
                if !dominated_by_result(coords, &skyline) {
                    skyline.push((coords.to_vec(), id));
                }
            }
        }
    }
    skyline
}

/// All-in-one: bulk-loads an R-tree over the `u`-projections of `set` and
/// runs BBS. Returns sorted skyline identifiers.
///
/// ```
/// use skypeer_skyline::{bbs, Dominance, PointSet, Subspace};
/// let mut s = PointSet::new(2);
/// s.push(&[1.0, 9.0], 0);
/// s.push(&[5.0, 5.0], 1);
/// s.push(&[6.0, 6.0], 2); // dominated
/// assert_eq!(bbs::skyline_ids(&s, Subspace::full(2), Dominance::Standard), vec![0, 1]);
/// ```
pub fn skyline_ids(set: &PointSet, u: Subspace, flavour: Dominance) -> Vec<u64> {
    let mut proj = Vec::new();
    let mut projected: Vec<(Vec<f64>, u64)> = Vec::with_capacity(set.len());
    for (_, id, coords) in set.iter() {
        u.project_into(coords, &mut proj);
        projected.push((proj.clone(), id));
    }
    let refs: Vec<(&[f64], u64)> = projected.iter().map(|(p, id)| (p.as_slice(), *id)).collect();
    let tree = RTree::bulk_load(u.k(), &refs);
    let mut ids: Vec<u64> =
        skyline_from_tree(&tree, flavour).into_iter().map(|(_, id)| id).collect();
    ids.sort_unstable();
    ids
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::brute;

    fn sample() -> PointSet {
        let mut s = PointSet::new(3);
        let rows = [
            [4.0, 1.0, 6.0],
            [2.0, 2.0, 2.0],
            [1.0, 7.0, 3.0],
            [6.0, 6.0, 6.0],
            [2.0, 2.0, 2.0],
            [0.0, 9.0, 1.0],
            [3.0, 3.0, 1.0],
            [5.0, 0.5, 4.0],
        ];
        for (i, r) in rows.iter().enumerate() {
            s.push(r, i as u64);
        }
        s
    }

    #[test]
    fn matches_brute_on_every_subspace() {
        let s = sample();
        for u in Subspace::enumerate_all(3) {
            for flavour in [Dominance::Standard, Dominance::Extended] {
                assert_eq!(
                    skyline_ids(&s, u, flavour),
                    brute::skyline_ids(&s, u, flavour),
                    "subspace {u} flavour {flavour:?}"
                );
            }
        }
    }

    #[test]
    fn progressive_order_is_mindist_ascending() {
        let s = sample();
        let u = Subspace::full(3);
        let mut proj = Vec::new();
        let mut projected: Vec<(Vec<f64>, u64)> = Vec::new();
        for (_, id, coords) in s.iter() {
            u.project_into(coords, &mut proj);
            projected.push((proj.clone(), id));
        }
        let refs: Vec<(&[f64], u64)> =
            projected.iter().map(|(p, id)| (p.as_slice(), *id)).collect();
        let tree = RTree::bulk_load(3, &refs);
        let result = skyline_from_tree(&tree, Dominance::Standard);
        let dists: Vec<f64> = result.iter().map(|(p, _)| p.iter().sum()).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]), "not progressive: {dists:?}");
    }

    #[test]
    fn scales_past_node_capacity() {
        // Enough points to force a multi-level tree (fanout 16).
        let mut s = PointSet::new(2);
        let mut x = 7u64;
        for i in 0..2000u64 {
            let mut c = [0.0; 2];
            for v in &mut c {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                *v = ((x >> 33) % 10_000) as f64 / 100.0;
            }
            s.push(&c, i);
        }
        let u = Subspace::full(2);
        assert_eq!(
            skyline_ids(&s, u, Dominance::Standard),
            crate::bnl::skyline_ids(&s, u, Dominance::Standard)
        );
    }

    #[test]
    fn empty_and_singleton() {
        let s = PointSet::new(2);
        assert!(skyline_ids(&s, Subspace::full(2), Dominance::Standard).is_empty());
        let mut s1 = PointSet::new(2);
        s1.push(&[3.0, 3.0], 42);
        assert_eq!(skyline_ids(&s1, Subspace::full(2), Dominance::Standard), vec![42]);
    }
}
