//! The paper's **Algorithm 2**: threshold-based merging of several
//! `f`-sorted skyline lists.
//!
//! Rather than concatenating, re-sorting, and re-running Algorithm 1, the
//! merge repeatedly takes the globally smallest-`f` head among the input
//! lists (a small binary heap), runs the usual dominance check against the
//! accumulated result, and terminates as soon as the smallest remaining
//! head exceeds the threshold. Every list is thus read only up to the
//! threshold — the property the super-peers rely on both when merging peer
//! ext-skylines in the preprocessing phase and when merging query results
//! (progressive or at the initiator).

use crate::dominance::Dominance;
use crate::mapping::dist;
use crate::sorted::{DominanceIndex, SortedDataset, ThresholdOutcome};
use crate::subspace::Subspace;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A heap key: the current head of list `list` has value `f`.
struct Head {
    f: f64,
    id: u64,
    list: usize,
    pos: usize,
}

impl PartialEq for Head {
    fn eq(&self, other: &Self) -> bool {
        self.f == other.f && self.id == other.id && self.list == other.list
    }
}
impl Eq for Head {}
impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Head {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest f first.
        other
            .f
            .partial_cmp(&self.f)
            .expect("f values are finite")
            .then_with(|| other.id.cmp(&self.id))
            .then_with(|| other.list.cmp(&self.list))
    }
}

/// **Algorithm 2** — merges `lists` (each `f`-sorted; in SKYPEER each is a
/// skyline or ext-skyline in its own right, though the algorithm does not
/// require that) into the skyline of their union on `u`.
///
/// ```
/// use skypeer_skyline::{merge, Dominance, DominanceIndex, PointSet, SortedDataset, Subspace};
///
/// let mut a = PointSet::new(2);
/// a.push(&[1.0, 6.0], 1);
/// let mut b = PointSet::new(2);
/// b.push(&[2.0, 2.0], 2);
/// b.push(&[3.0, 7.0], 3); // dominated across lists
/// let (a, b) = (SortedDataset::from_set(&a), SortedDataset::from_set(&b));
/// let out = merge::merge_sorted(
///     &[&a, &b], Subspace::full(2), Dominance::Standard, f64::INFINITY, DominanceIndex::Linear);
/// assert_eq!(out.result.len(), 2);
/// ```
///
/// `initial_threshold` plays the same role as in Algorithm 1. Lists must
/// contain points with pairwise-distinct identifiers if the caller wants a
/// duplicate-free result; exact duplicates are mutually non-dominating and
/// all survive, mirroring the centralized semantics.
pub fn merge_sorted(
    lists: &[&SortedDataset],
    u: Subspace,
    flavour: Dominance,
    initial_threshold: f64,
    index: DominanceIndex,
) -> ThresholdOutcome {
    let dim = lists.iter().map(|l| l.dim()).max().unwrap_or(u.dims().last().map_or(1, |d| d + 1));
    for l in lists {
        assert_eq!(l.dim(), dim, "merged lists must share dimensionality");
    }

    let mut heap: BinaryHeap<Head> = BinaryHeap::with_capacity(lists.len());
    for (li, l) in lists.iter().enumerate() {
        if !l.is_empty() {
            heap.push(Head { f: l.f(0), id: l.points().id(0), list: li, pos: 0 });
        }
    }

    let mut window = super::sorted::Window::new(u, flavour, index);
    let mut threshold = initial_threshold;
    let mut pruned: u64 = 0;
    while let Some(head) = heap.pop() {
        let list = lists[head.list];
        if head.f > threshold {
            // The globally smallest remaining head already exceeds the
            // threshold: everything left in every list is pruned.
            pruned += (list.len() - head.pos) as u64;
            pruned += heap.drain().map(|h| (lists[h.list].len() - h.pos) as u64).sum::<u64>();
            break;
        }
        let coords = list.points().point(head.pos);
        if window.offer(coords, list.points().id(head.pos), head.f) {
            let d = dist(coords, u);
            if d < threshold {
                threshold = d;
            }
        }
        let next = head.pos + 1;
        if next < list.len() {
            heap.push(Head {
                f: list.f(next),
                id: list.points().id(next),
                list: head.list,
                pos: next,
            });
        }
    }
    let mut out = window.into_outcome(dim, threshold);
    out.stats.pruned_by_threshold = pruned;
    out
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::point::PointSet;
    use crate::{brute, sorted::threshold_skyline};

    fn sorted_of(rows: &[(&[f64], u64)], dim: usize) -> SortedDataset {
        let mut s = PointSet::new(dim);
        for (r, id) in rows {
            s.push(r, *id);
        }
        SortedDataset::from_set(&s)
    }

    fn union(lists: &[&SortedDataset], dim: usize) -> PointSet {
        let mut all = PointSet::new(dim);
        for l in lists {
            all.extend_from(l.points());
        }
        all
    }

    #[test]
    fn merge_equals_centralized_skyline() {
        let a = sorted_of(&[(&[1.0, 6.0], 1), (&[3.0, 3.0], 2), (&[7.0, 1.0], 3)], 2);
        let b = sorted_of(&[(&[2.0, 2.0], 4), (&[6.0, 6.0], 5)], 2);
        let c = sorted_of(&[(&[0.5, 9.0], 6)], 2);
        let lists = [&a, &b, &c];
        let u = Subspace::full(2);
        let out =
            merge_sorted(&lists, u, Dominance::Standard, f64::INFINITY, DominanceIndex::Linear);
        let mut got: Vec<u64> = (0..out.result.len()).map(|i| out.result.points().id(i)).collect();
        got.sort_unstable();
        let all = union(&lists, 2);
        assert_eq!(got, brute::skyline_ids(&all, u, Dominance::Standard));
    }

    #[test]
    fn merge_matches_algorithm1_on_concatenation() {
        // Merging pre-computed skylines must give the same set as running
        // Algorithm 1 over the union from scratch.
        let raw = [
            (&[4.0, 1.0, 5.0][..], 1u64),
            (&[2.0, 2.0, 2.0], 2),
            (&[1.0, 9.0, 9.0], 3),
            (&[9.0, 9.0, 0.5], 4),
            (&[3.0, 3.0, 3.0], 5),
            (&[2.0, 2.0, 2.0], 6),
        ];
        let u = Subspace::from_dims(&[0, 2]);
        for split in 1..raw.len() {
            let left = sorted_of(&raw[..split], 3);
            let right = sorted_of(&raw[split..], 3);
            // Reduce each side to its local skyline first, as SKYPEER does.
            let ls = threshold_skyline(
                &left,
                u,
                Dominance::Standard,
                f64::INFINITY,
                DominanceIndex::Linear,
            );
            let rs = threshold_skyline(
                &right,
                u,
                Dominance::Standard,
                f64::INFINITY,
                DominanceIndex::Linear,
            );
            let merged = merge_sorted(
                &[&ls.result, &rs.result],
                u,
                Dominance::Standard,
                f64::INFINITY,
                DominanceIndex::Linear,
            );
            let all = union(&[&left, &right], 3);
            let direct = threshold_skyline(
                &SortedDataset::from_set(&all),
                u,
                Dominance::Standard,
                f64::INFINITY,
                DominanceIndex::Linear,
            );
            let mut got: Vec<u64> =
                (0..merged.result.len()).map(|i| merged.result.points().id(i)).collect();
            let mut want: Vec<u64> =
                (0..direct.result.len()).map(|i| direct.result.points().id(i)).collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "split at {split}");
        }
    }

    #[test]
    fn threshold_stops_reading_lists() {
        let a = sorted_of(&[(&[1.0, 1.0], 1)], 2);
        let b = sorted_of(&[(&[3.0, 2.0], 2), (&[4.0, 4.0], 3), (&[5.0, 5.0], 4)], 2);
        let out = merge_sorted(
            &[&a, &b],
            Subspace::full(2),
            Dominance::Standard,
            f64::INFINITY,
            DominanceIndex::Linear,
        );
        assert_eq!(out.result.len(), 1);
        assert_eq!(out.threshold, 1.0);
        assert_eq!(out.stats.pruned_by_threshold, 3, "all of list b is pruned unread");
    }

    #[test]
    fn initial_threshold_respected() {
        let a = sorted_of(&[(&[2.0, 2.0], 1)], 2);
        let out = merge_sorted(
            &[&a],
            Subspace::full(2),
            Dominance::Standard,
            1.0,
            DominanceIndex::Linear,
        );
        assert!(out.result.is_empty());
        assert_eq!(out.threshold, 1.0);
    }

    #[test]
    fn empty_lists_are_fine() {
        let e = SortedDataset::empty(2);
        let a = sorted_of(&[(&[1.0, 2.0], 1)], 2);
        let out = merge_sorted(
            &[&e, &a, &e],
            Subspace::full(2),
            Dominance::Standard,
            f64::INFINITY,
            DominanceIndex::Linear,
        );
        assert_eq!(out.result.len(), 1);
        let none = merge_sorted(
            &[],
            Subspace::full(2),
            Dominance::Standard,
            f64::INFINITY,
            DominanceIndex::Linear,
        );
        assert!(none.result.is_empty());
    }

    #[test]
    fn result_stays_f_sorted_across_lists() {
        let a = sorted_of(&[(&[1.0, 9.0], 1), (&[5.0, 5.0], 2)], 2);
        let b = sorted_of(&[(&[2.0, 8.0], 3), (&[4.0, 6.0], 4)], 2);
        let out = merge_sorted(
            &[&a, &b],
            Subspace::full(2),
            Dominance::Standard,
            f64::INFINITY,
            DominanceIndex::Linear,
        );
        let f = out.result.f_values();
        assert!(f.windows(2).all(|w| w[0] <= w[1]), "merged output must stay sorted: {f:?}");
    }

    #[test]
    fn ext_flavour_merge_for_preprocessing() {
        // Super-peers merge peer ext-skylines with ext-dominance; ties must
        // survive the merge.
        let a = sorted_of(&[(&[1.0, 3.0], 1)], 2);
        let b = sorted_of(&[(&[1.0, 5.0], 2), (&[2.0, 4.0], 3)], 2);
        let out = merge_sorted(
            &[&a, &b],
            Subspace::full(2),
            Dominance::Extended,
            f64::INFINITY,
            DominanceIndex::Linear,
        );
        let mut ids: Vec<u64> = (0..out.result.len()).map(|i| out.result.points().id(i)).collect();
        ids.sort_unstable();
        // (1,5) ties (1,3) on the first dimension, so it survives
        // ext-dominance; (2,4) is strictly worse than (1,3) everywhere.
        assert_eq!(ids, vec![1, 2]);
    }
}
