//! The 1-d mapping of Section 5.1 and its pruning rule (Observation 5).
//!
//! Every point `p` is mapped once, in the full space `D`, to
//! `f(p) = min_{i ∈ D} p[i]` (Equation 1). At query time, for a subspace
//! `U`, `dist_U(p) = max_{i ∈ U} p[i]` is the L∞ distance from the origin
//! restricted to `U`.
//!
//! **Observation 5.** If `p_sky ∈ SKY_U` and `f(p) > dist_U(p_sky)`, then
//! `p ∉ SKY_U`: every coordinate of `p` (in particular those in `U`) is at
//! least `f(p)`, which strictly exceeds every `U`-coordinate of `p_sky`, so
//! `p_sky` (ext-)dominates `p` on `U`.
//!
//! Note the strictness: a point with `f(p) == dist_U(p_sky)` may *tie*
//! `p_sky` on every dimension of `U` and still belong to the skyline. The
//! paper's pseudocode loops `while f(p) < threshold`; we deliberately keep
//! scanning through equality (`f(p) <= threshold`) and only prune on strict
//! excess — see DESIGN.md ("Known deviation").

/// `f(p) = min_i p[i]` over the *full* space (Equation 1 of the paper).
#[inline]
pub fn f_value(p: &[f64]) -> f64 {
    p.iter().copied().fold(f64::INFINITY, f64::min)
}

/// `dist_U(p) = max_{i∈U} p[i]`, the L∞ distance from the origin on `u`.
#[inline]
pub fn dist(p: &[f64], u: crate::Subspace) -> f64 {
    u.dims().map(|i| p[i]).fold(f64::NEG_INFINITY, f64::max)
}

/// Whether Observation 5 prunes a point with mapped value `f_p` given the
/// current threshold (the minimum `dist_U` over skyline points found so
/// far). Strict comparison — ties survive.
#[inline]
pub fn pruned_by_threshold(f_p: f64, threshold: f64) -> bool {
    f_p > threshold
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::Subspace;

    #[test]
    fn f_is_min_over_full_space() {
        assert_eq!(f_value(&[3.0, 1.0, 2.0]), 1.0);
        assert_eq!(f_value(&[5.0]), 5.0);
        assert_eq!(f_value(&[0.0, 7.0]), 0.0);
    }

    #[test]
    fn dist_is_max_over_subspace() {
        let p = [3.0, 1.0, 9.0];
        assert_eq!(dist(&p, Subspace::full(3)), 9.0);
        assert_eq!(dist(&p, Subspace::from_dims(&[0, 1])), 3.0);
        assert_eq!(dist(&p, Subspace::from_dims(&[1])), 1.0);
    }

    #[test]
    fn observation5_soundness_exhaustive_grid() {
        // For every pair (p, q) on a small 2-d grid and every subspace:
        // if f(p) > dist_U(q) then q dominates p on U.
        let vals = [0.0, 1.0, 2.0, 3.0];
        let subspaces = [Subspace::from_dims(&[0]), Subspace::from_dims(&[1]), Subspace::full(2)];
        for &px in &vals {
            for &py in &vals {
                for &qx in &vals {
                    for &qy in &vals {
                        let p = [px, py];
                        let q = [qx, qy];
                        for &u in &subspaces {
                            if f_value(&p) > dist(&q, u) {
                                assert!(
                                    crate::dominance::dominates(&q, &p, u),
                                    "Obs 5 violated: q={q:?} p={p:?} U={u}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn ties_are_not_pruned() {
        assert!(!pruned_by_threshold(3.0, 3.0));
        assert!(pruned_by_threshold(3.0 + f64::EPSILON * 8.0, 3.0));
        assert!(!pruned_by_threshold(2.9, 3.0));
    }

    #[test]
    fn paper_figure_1b_example() {
        // The paper's Figure 1(b): a skyline point with f(p_sky)=3 lying on
        // the diagonal prunes everything beyond the dist threshold.
        let p_sky = [3.0, 3.0];
        let u = Subspace::full(2);
        assert_eq!(f_value(&p_sky), 3.0);
        assert_eq!(dist(&p_sky, u), 3.0);
        // A point entirely beyond the threshold is dominated.
        let far = [4.0, 5.0];
        assert!(pruned_by_threshold(f_value(&far), dist(&p_sky, u)));
        assert!(crate::dominance::dominates(&p_sky, &far, u));
    }
}
