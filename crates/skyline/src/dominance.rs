//! Dominance tests on subspaces.
//!
//! Two flavours, both under *min* conditions:
//!
//! * **Standard** skyline dominance (Section 3.1): `p` dominates `q` on `U`
//!   iff `p[i] ≤ q[i]` on every `i ∈ U` and `p[j] < q[j]` on at least one
//!   `j ∈ U`.
//! * **Extended** dominance (Definition 1): `p` ext-dominates `q` on `U`
//!   iff `p[i] < q[i]` on *every* `i ∈ U`.
//!
//! Extended dominance is strictly weaker at pruning (fewer pairs are
//! ext-dominated), which is exactly why the set of non-ext-dominated points
//! — the *extended skyline* — is a superset of every subspace skyline
//! (Observations 3–4) and is the unit of data peers ship to super-peers.

use crate::subspace::Subspace;
use serde::{Deserialize, Serialize};

/// Which dominance relation a kernel should apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dominance {
    /// Classic skyline dominance: `≤` everywhere, `<` somewhere.
    Standard,
    /// Extended dominance (paper Definition 1): `<` everywhere.
    Extended,
}

impl Dominance {
    /// Whether `p` dominates `q` on subspace `u` under this flavour.
    #[inline]
    pub fn dominates(self, p: &[f64], q: &[f64], u: Subspace) -> bool {
        match self {
            Dominance::Standard => dominates(p, q, u),
            Dominance::Extended => ext_dominates(p, q, u),
        }
    }
}

/// Standard dominance of `p` over `q` on subspace `u`.
#[inline]
pub fn dominates(p: &[f64], q: &[f64], u: Subspace) -> bool {
    let mut strict = false;
    for i in u.dims() {
        if p[i] > q[i] {
            return false;
        }
        if p[i] < q[i] {
            strict = true;
        }
    }
    strict
}

/// Extended dominance (Definition 1): `p[i] < q[i]` on every `i ∈ u`.
#[inline]
pub fn ext_dominates(p: &[f64], q: &[f64], u: Subspace) -> bool {
    u.dims().all(|i| p[i] < q[i])
}

/// Whether `p` and `q` are *incomparable* on `u` under standard dominance
/// (neither dominates the other).
#[inline]
pub fn incomparable(p: &[f64], q: &[f64], u: Subspace) -> bool {
    !dominates(p, q, u) && !dominates(q, p, u)
}

#[cfg(test)]
mod unit {
    use super::*;

    fn u2() -> Subspace {
        Subspace::full(2)
    }

    #[test]
    fn standard_requires_one_strict() {
        assert!(dominates(&[1.0, 1.0], &[1.0, 2.0], u2()));
        assert!(dominates(&[0.5, 1.0], &[1.0, 2.0], u2()));
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0], u2()), "equal points do not dominate");
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0], u2()), "trade-off means incomparable");
    }

    #[test]
    fn extended_requires_all_strict() {
        assert!(ext_dominates(&[0.5, 1.0], &[1.0, 2.0], u2()));
        assert!(
            !ext_dominates(&[1.0, 1.0], &[1.0, 2.0], u2()),
            "tie on one dim blocks ext-dominance"
        );
        assert!(!ext_dominates(&[1.0, 1.0], &[1.0, 1.0], u2()));
    }

    #[test]
    fn ext_dominance_implies_standard() {
        let cases = [([0.0, 0.0], [1.0, 1.0]), ([0.1, 0.2], [0.3, 0.4]), ([2.0, 1.0], [3.0, 5.0])];
        for (p, q) in cases {
            assert!(ext_dominates(&p, &q, u2()));
            assert!(dominates(&p, &q, u2()), "ext-dominance must imply dominance");
        }
    }

    #[test]
    fn subspace_restriction_changes_verdict() {
        let p = [1.0, 9.0, 1.0];
        let q = [2.0, 1.0, 2.0];
        let xz = Subspace::from_dims(&[0, 2]);
        let y = Subspace::from_dims(&[1]);
        assert!(dominates(&p, &q, xz));
        assert!(dominates(&q, &p, y));
        assert!(incomparable(&p, &q, Subspace::full(3)));
    }

    #[test]
    fn dominance_is_irreflexive_and_antisymmetric() {
        let p = [1.0, 2.0];
        let q = [2.0, 3.0];
        assert!(!dominates(&p, &p, u2()));
        assert!(dominates(&p, &q, u2()));
        assert!(!dominates(&q, &p, u2()));
    }

    #[test]
    fn flavour_dispatch_matches_free_functions() {
        let p = [1.0, 1.0];
        let q = [1.0, 2.0];
        assert_eq!(Dominance::Standard.dominates(&p, &q, u2()), dominates(&p, &q, u2()));
        assert_eq!(Dominance::Extended.dominates(&p, &q, u2()), ext_dominates(&p, &q, u2()));
    }
}
