//! Dimension subsets `U ⊆ D` as bitmasks.

use crate::point::MAX_DIM;
use serde::{Deserialize, Serialize};

/// A non-empty subset of the dimensions of a `d`-dimensional space, packed
/// into a `u32` bitmask (bit `i` set ⇔ dimension `i` ∈ `U`).
///
/// A subspace skyline query `q(U)` carries one of these; the full-space
/// skyline is `q(Subspace::full(d))`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Subspace(u32);

impl Subspace {
    /// The full space `D` of dimensionality `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero or exceeds [`MAX_DIM`].
    pub fn full(d: usize) -> Self {
        assert!((1..=MAX_DIM).contains(&d), "dimensionality {d} out of range");
        if d == MAX_DIM {
            Subspace(u32::MAX)
        } else {
            Subspace((1u32 << d) - 1)
        }
    }

    /// A subspace from explicit dimension indices.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or contains an index `≥ MAX_DIM`.
    pub fn from_dims(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "a subspace must contain at least one dimension");
        let mut mask = 0u32;
        for &d in dims {
            assert!(d < MAX_DIM, "dimension index {d} out of range");
            mask |= 1 << d;
        }
        Subspace(mask)
    }

    /// A subspace directly from a bitmask.
    ///
    /// # Panics
    ///
    /// Panics if the mask is zero.
    pub fn from_mask(mask: u32) -> Self {
        assert!(mask != 0, "a subspace must contain at least one dimension");
        Subspace(mask)
    }

    /// The raw bitmask.
    #[inline]
    pub fn mask(self) -> u32 {
        self.0
    }

    /// Number of dimensions in the subspace (the paper's `k`).
    #[inline]
    pub fn k(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether dimension `i` belongs to the subspace.
    #[inline]
    pub fn contains(self, i: usize) -> bool {
        i < MAX_DIM && self.0 & (1 << i) != 0
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub fn is_subset_of(self, other: Subspace) -> bool {
        self.0 & other.0 == self.0
    }

    /// Iterates over the dimension indices in ascending order.
    #[inline]
    pub fn dims(self) -> impl Iterator<Item = usize> {
        let mut mask = self.0;
        std::iter::from_fn(move || {
            if mask == 0 {
                None
            } else {
                let i = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                Some(i)
            }
        })
    }

    /// Projects a full-space point onto this subspace, in ascending
    /// dimension order, appending into `out` (cleared first).
    pub fn project_into(self, p: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for i in self.dims() {
            out.push(p[i]);
        }
    }

    /// Enumerates every non-empty subspace of a `d`-dimensional space
    /// (`2^d − 1` of them). Useful for skycube computation; keep `d` small.
    pub fn enumerate_all(d: usize) -> impl Iterator<Item = Subspace> {
        assert!((1..=20).contains(&d), "enumerate_all is exponential; d={d} refused");
        (1u32..(1u32 << d)).map(Subspace)
    }

    /// Enumerates every subspace of exactly `k` dimensions out of `d`
    /// (Gosper's hack over bitmasks).
    pub fn enumerate_k(d: usize, k: usize) -> impl Iterator<Item = Subspace> {
        assert!(k >= 1 && k <= d && d <= 20, "invalid k={k} of d={d}");
        let limit = 1u32 << d;
        let mut cur = (1u32 << k) - 1;
        let mut done = false;
        std::iter::from_fn(move || {
            if done || cur >= limit {
                return None;
            }
            let out = Subspace(cur);
            // Gosper's hack: next larger integer with the same popcount.
            let c = cur & cur.wrapping_neg();
            let r = cur + c;
            if c == 0 || r == 0 {
                done = true;
            } else {
                cur = (((r ^ cur) >> 2) / c) | r;
            }
            Some(out)
        })
    }
}

impl std::fmt::Display for Subspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (n, d) in self.dims().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            write!(f, "d{d}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn full_space_has_all_dims() {
        let u = Subspace::full(5);
        assert_eq!(u.k(), 5);
        assert_eq!(u.dims().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(Subspace::full(MAX_DIM).k(), MAX_DIM);
    }

    #[test]
    fn from_dims_roundtrip() {
        let u = Subspace::from_dims(&[4, 1, 6]);
        assert_eq!(u.k(), 3);
        assert!(u.contains(1) && u.contains(4) && u.contains(6));
        assert!(!u.contains(0) && !u.contains(5));
        assert_eq!(u.dims().collect::<Vec<_>>(), vec![1, 4, 6]);
    }

    #[test]
    fn subset_relation() {
        let u = Subspace::from_dims(&[1, 3]);
        let v = Subspace::from_dims(&[1, 2, 3]);
        assert!(u.is_subset_of(v));
        assert!(!v.is_subset_of(u));
        assert!(u.is_subset_of(u));
    }

    #[test]
    fn projection_orders_ascending() {
        let u = Subspace::from_dims(&[3, 0]);
        let mut out = Vec::new();
        u.project_into(&[9.0, 8.0, 7.0, 6.0], &mut out);
        assert_eq!(out, vec![9.0, 6.0]);
    }

    #[test]
    fn enumerate_all_counts() {
        assert_eq!(Subspace::enumerate_all(1).count(), 1);
        assert_eq!(Subspace::enumerate_all(4).count(), 15);
        assert_eq!(Subspace::enumerate_all(8).count(), 255);
    }

    #[test]
    fn enumerate_k_counts_binomial() {
        assert_eq!(Subspace::enumerate_k(5, 1).count(), 5);
        assert_eq!(Subspace::enumerate_k(5, 2).count(), 10);
        assert_eq!(Subspace::enumerate_k(5, 5).count(), 1);
        assert_eq!(Subspace::enumerate_k(8, 3).count(), 56);
        for u in Subspace::enumerate_k(8, 3) {
            assert_eq!(u.k(), 3);
        }
    }

    #[test]
    fn enumerate_k_is_exhaustive_and_unique() {
        let mut seen: Vec<u32> = Subspace::enumerate_k(6, 3).map(|u| u.mask()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 20);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_subspace_rejected() {
        let _ = Subspace::from_dims(&[]);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Subspace::from_dims(&[0, 2]).to_string(), "{d0,d2}");
    }
}
