#![warn(missing_docs)]

//! Centralized skyline machinery underpinning SKYPEER.
//!
//! This crate implements everything a single node needs to compute
//! (subspace) skylines:
//!
//! * [`PointSet`] — a flat, row-major store of `d`-dimensional points;
//! * [`Subspace`] — dimension subsets `U ⊆ D` as bitmasks;
//! * dominance algebra ([`dominance`]) covering both the classic skyline
//!   dominance (`≤` everywhere, `<` somewhere) and the paper's *extended*
//!   dominance (`<` everywhere, Definition 1);
//! * the 1-d mapping of Section 5.1 ([`mapping`]): `f(p) = min_i p[i]` and
//!   `dist_U(p) = max_{i∈U} p[i]`, whose interplay (Observation 5) powers
//!   threshold pruning;
//! * classic engines: block-nested-loops ([`bnl`]), sort-filter-skyline
//!   ([`sfs`]), divide & conquer ([`dnc`]), branch-and-bound over an
//!   R-tree ([`bbs`]);
//! * the paper's **Algorithm 1** ([`sorted`]): threshold-based local
//!   subspace skyline over an `f(p)`-sorted list, with either a linear or
//!   an R-tree dominance index;
//! * the paper's **Algorithm 2** ([`merge`]): threshold-based merging of
//!   several `f`-sorted skyline lists;
//! * extended-skyline computation ([`extended`]) and the full skycube
//!   ([`skycube`]) used to validate Observation 4;
//! * quadratic brute-force oracles ([`brute`]) for testing.
//!
//! All skylines are computed under *min* conditions on non-negative values,
//! exactly as the paper assumes.
//!
//! # Quick example
//!
//! ```
//! use skypeer_skyline::{PointSet, Subspace, bnl, Dominance};
//!
//! let mut points = PointSet::new(3);
//! points.push(&[1.0, 5.0, 3.0], 0);
//! points.push(&[2.0, 2.0, 2.0], 1);
//! points.push(&[3.0, 6.0, 4.0], 2); // dominated by both others
//!
//! let sky = bnl::skyline(&points, Subspace::full(3), Dominance::Standard);
//! assert_eq!(sky, vec![0, 1]);
//! ```

pub mod bbs;
pub mod bnl;
pub mod brute;
pub mod constrained;
pub mod dnc;
pub mod dominance;
pub mod estimate;
pub mod extended;
pub mod mapping;
pub mod merge;
pub mod point;
pub mod progressive;
pub mod sfs;
pub mod skyband;
pub mod skycube;
pub mod sorted;
pub mod subspace;

pub use dominance::Dominance;
pub use mapping::{dist, f_value};
pub use point::{PointSet, MAX_DIM};
pub use sorted::{DominanceIndex, SortedDataset, ThresholdOutcome};
pub use subspace::Subspace;

#[cfg(test)]
mod proptests;
