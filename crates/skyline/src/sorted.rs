//! The paper's **Algorithm 1**: threshold-based local subspace skyline
//! computation over an `f(p)`-sorted dataset.
//!
//! Points are consumed in ascending `f(p)` order. The running threshold is
//! the minimum `dist_U` over the skyline points found so far (seeded by an
//! optional incoming threshold from another super-peer). By Observation 5,
//! once `f(p)` strictly exceeds the threshold, neither this point nor any
//! later one can be a skyline point, and the scan terminates.
//!
//! The dominance test against the accumulated skyline uses either a linear
//! scan or a main-memory R-tree of dimensionality `k = |U|`, per
//! Section 5.2.1.

use crate::dominance::Dominance;
use crate::mapping::{dist, f_value};
use crate::point::PointSet;
use crate::subspace::Subspace;
use skypeer_rtree::RTree;

/// A point set paired with its `f(p)` values, sorted ascending by `f`.
///
/// This is the resting representation of data everywhere in SKYPEER: peers
/// upload their ext-skylines in this form, super-peers store the merged
/// ext-skyline in this form, and query results travel in this form so that
/// receivers can merge them with Algorithm 2 without re-sorting.
#[derive(Clone, Debug, PartialEq)]
pub struct SortedDataset {
    set: PointSet,
    f: Vec<f64>,
}

impl SortedDataset {
    /// Builds a sorted dataset from an arbitrary point set, computing
    /// `f(p)` for every point (over the full space, Equation 1) and sorting
    /// ascending. Ties are broken by id for determinism.
    pub fn from_set(set: &PointSet) -> Self {
        let mut order: Vec<usize> = (0..set.len()).collect();
        let f_raw: Vec<f64> = (0..set.len()).map(|i| f_value(set.point(i))).collect();
        order.sort_by(|&a, &b| {
            f_raw[a]
                .partial_cmp(&f_raw[b])
                .expect("f values are finite")
                .then_with(|| set.id(a).cmp(&set.id(b)))
        });
        let sorted_set = set.gather(&order);
        let f = order.into_iter().map(|i| f_raw[i]).collect();
        SortedDataset { set: sorted_set, f }
    }

    /// Wraps parts that are already sorted ascending by `f`.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree; debug-asserts sortedness and that each
    /// `f` value matches its point.
    pub fn from_sorted_parts(set: PointSet, f: Vec<f64>) -> Self {
        assert_eq!(set.len(), f.len(), "f values misaligned with points");
        debug_assert!(f.windows(2).all(|w| w[0] <= w[1]), "f values not sorted");
        debug_assert!(
            (0..set.len()).all(|i| (f_value(set.point(i)) - f[i]).abs() < 1e-12),
            "f values inconsistent with coordinates"
        );
        SortedDataset { set, f }
    }

    /// An empty sorted dataset of the given dimensionality.
    pub fn empty(dim: usize) -> Self {
        SortedDataset { set: PointSet::new(dim), f: Vec::new() }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether there are no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Dimensionality of the full space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.set.dim()
    }

    /// The underlying point set (sorted by `f`).
    #[inline]
    pub fn points(&self) -> &PointSet {
        &self.set
    }

    /// `f` value of the `i`-th point.
    #[inline]
    pub fn f(&self, i: usize) -> f64 {
        self.f[i]
    }

    /// All `f` values, ascending.
    #[inline]
    pub fn f_values(&self) -> &[f64] {
        &self.f
    }

    /// Bytes this dataset occupies on the wire (ids + coordinates; `f` is
    /// recomputable and not shipped).
    #[inline]
    pub fn wire_bytes(&self) -> u64 {
        self.set.wire_bytes()
    }

    /// Runs Algorithm 1 on this dataset. See [`threshold_skyline`].
    pub fn subspace_skyline(
        &self,
        u: Subspace,
        flavour: Dominance,
        initial_threshold: f64,
        index: DominanceIndex,
    ) -> ThresholdOutcome {
        threshold_skyline(self, u, flavour, initial_threshold, index)
    }
}

/// How Algorithm 1/2 test candidates against the accumulated skyline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DominanceIndex {
    /// Plain scan over the current skyline points.
    Linear,
    /// Main-memory R-tree over the `U`-projections (Section 5.2.1).
    RTree,
}

/// Operation counts of one Algorithm 1/2 run; fed to the network cost
/// model so simulated computation time tracks real kernel work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Pairwise dominance tests (or R-tree point visits standing in for
    /// them).
    pub dominance_tests: u64,
    /// Points consumed from the sorted input before termination.
    pub points_scanned: u64,
    /// Points never examined because the threshold cut the scan short.
    pub pruned_by_threshold: u64,
}

impl KernelStats {
    /// Accumulates another run's counts.
    pub fn absorb(&mut self, other: KernelStats) {
        self.dominance_tests += other.dominance_tests;
        self.points_scanned += other.points_scanned;
        self.pruned_by_threshold += other.pruned_by_threshold;
    }
}

/// Result of Algorithm 1 or Algorithm 2.
#[derive(Clone, Debug)]
pub struct ThresholdOutcome {
    /// The skyline found, still sorted ascending by `f`.
    pub result: SortedDataset,
    /// Final threshold: `min(initial, min over result of dist_U)`. This is
    /// the `t` SKYPEER attaches to the query it forwards.
    pub threshold: f64,
    /// Operation counts.
    pub stats: KernelStats,
}

/// The mutable skyline window shared by Algorithm 1 and Algorithm 2:
/// accepted entries in arrival (= `f`) order, with dominated entries
/// tombstoned, and an optional R-tree over the `U`-projections.
pub(crate) struct Window {
    u: Subspace,
    flavour: Dominance,
    /// (full coords, id, f, alive) in insertion order.
    entries: Vec<(Vec<f64>, u64, f64, bool)>,
    alive: usize,
    tree: Option<RTree>,
    proj_buf: Vec<f64>,
    stats: KernelStats,
}

impl Window {
    pub(crate) fn new(u: Subspace, flavour: Dominance, index: DominanceIndex) -> Self {
        let tree = match index {
            DominanceIndex::Linear => None,
            DominanceIndex::RTree => Some(RTree::new(u.k())),
        };
        Window {
            u,
            flavour,
            entries: Vec::new(),
            alive: 0,
            tree,
            proj_buf: Vec::new(),
            stats: KernelStats::default(),
        }
    }

    /// Offers a candidate. Returns whether it was accepted into the window
    /// (evicting any entries it dominates).
    pub(crate) fn offer(&mut self, coords: &[f64], id: u64, f: f64) -> bool {
        self.stats.points_scanned += 1;
        match &mut self.tree {
            Some(tree) => {
                self.u.project_into(coords, &mut self.proj_buf);
                let flavour = self.flavour;
                // Window query over [0, candidate]: is any stored point a
                // dominator? Each visited point counts as one dominance
                // test, so the cost model sees the tree's real work.
                let mut visited = 0u64;
                let mut dominated = false;
                tree.window(&skypeer_rtree::Rect::from_origin(&self.proj_buf), |c, _| {
                    visited += 1;
                    let dom = match flavour {
                        // Inside the box already means <= everywhere.
                        Dominance::Standard => c.iter().zip(&self.proj_buf).any(|(a, b)| a < b),
                        Dominance::Extended => c.iter().zip(&self.proj_buf).all(|(a, b)| a < b),
                    };
                    if dom {
                        dominated = true;
                    }
                    !dominated
                });
                if dominated {
                    self.stats.dominance_tests += visited;
                    return false;
                }
                // Window query over [candidate, ∞): evict everything the
                // candidate dominates.
                let mut victims: Vec<(Vec<f64>, u64)> = Vec::new();
                tree.window(&skypeer_rtree::Rect::to_infinity(&self.proj_buf), |c, slot| {
                    visited += 1;
                    let dom = match flavour {
                        Dominance::Standard => c.iter().zip(&self.proj_buf).any(|(a, b)| a > b),
                        Dominance::Extended => c.iter().zip(&self.proj_buf).all(|(a, b)| a > b),
                    };
                    if dom {
                        victims.push((c.to_vec(), slot));
                    }
                    true
                });
                self.stats.dominance_tests += visited;
                for (vcoords, slot) in &victims {
                    let removed = tree.remove(vcoords, *slot);
                    debug_assert!(removed, "victim vanished from the window tree");
                    self.entries[*slot as usize].3 = false;
                    self.alive -= 1;
                }
                let slot = self.entries.len() as u64;
                tree.insert(&self.proj_buf, slot);
                self.entries.push((coords.to_vec(), id, f, true));
                self.alive += 1;
                true
            }
            None => {
                for (cand, _, _, alive) in &self.entries {
                    if !alive {
                        continue;
                    }
                    self.stats.dominance_tests += 1;
                    if self.flavour.dominates(cand, coords, self.u) {
                        return false;
                    }
                }
                for entry in &mut self.entries {
                    if !entry.3 {
                        continue;
                    }
                    self.stats.dominance_tests += 1;
                    if self.flavour.dominates(coords, &entry.0, self.u) {
                        entry.3 = false;
                        self.alive -= 1;
                    }
                }
                self.entries.push((coords.to_vec(), id, f, true));
                self.alive += 1;
                true
            }
        }
    }

    /// Finalizes into an `f`-sorted dataset of the surviving entries.
    pub(crate) fn into_outcome(self, dim: usize, threshold: f64) -> ThresholdOutcome {
        let mut set = PointSet::with_capacity(dim, self.alive);
        let mut f = Vec::with_capacity(self.alive);
        for (coords, id, fv, alive) in self.entries {
            if alive {
                set.push(&coords, id);
                f.push(fv);
            }
        }
        ThresholdOutcome {
            result: SortedDataset::from_sorted_parts(set, f),
            threshold,
            stats: self.stats,
        }
    }
}

/// **Algorithm 1** — threshold-based subspace skyline over `data` (which
/// must be `f`-sorted, as [`SortedDataset`] guarantees).
///
/// `initial_threshold` seeds the scan-termination threshold; pass
/// `f64::INFINITY` when no upstream threshold is known. The scan stops at
/// the first point with `f(p) > threshold` (strictly — equality-tied points
/// still enter, see the module docs of [`crate::mapping`]).
pub fn threshold_skyline(
    data: &SortedDataset,
    u: Subspace,
    flavour: Dominance,
    initial_threshold: f64,
    index: DominanceIndex,
) -> ThresholdOutcome {
    skypeer_obs::scope!("skyline::threshold_skyline");
    let mut window = Window::new(u, flavour, index);
    let mut threshold = initial_threshold;
    let mut consumed = 0usize;
    for i in 0..data.len() {
        if data.f(i) > threshold {
            break;
        }
        consumed = i + 1;
        let coords = data.points().point(i);
        if window.offer(coords, data.points().id(i), data.f(i)) {
            let d = dist(coords, u);
            if d < threshold {
                threshold = d;
            }
        }
    }
    window.stats.pruned_by_threshold = (data.len() - consumed) as u64;
    window.into_outcome(data.dim(), threshold)
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::brute;

    fn dataset(rows: &[&[f64]]) -> SortedDataset {
        let mut s = PointSet::new(rows[0].len());
        for (i, r) in rows.iter().enumerate() {
            s.push(r, i as u64);
        }
        SortedDataset::from_set(&s)
    }

    #[test]
    fn from_set_sorts_by_f() {
        let d = dataset(&[&[5.0, 9.0], &[1.0, 8.0], &[3.0, 3.0]]);
        assert_eq!(d.f_values(), &[1.0, 3.0, 5.0]);
        assert_eq!(d.points().id(0), 1);
        assert_eq!(d.points().id(2), 0);
    }

    #[test]
    fn algorithm1_matches_brute_force() {
        let rows: Vec<Vec<f64>> = vec![
            vec![4.0, 1.0, 6.0],
            vec![2.0, 2.0, 2.0],
            vec![1.0, 7.0, 3.0],
            vec![6.0, 6.0, 6.0],
            vec![2.0, 2.0, 2.0],
            vec![0.0, 9.0, 1.0],
            vec![3.0, 3.0, 1.0],
        ];
        let mut s = PointSet::new(3);
        for (i, r) in rows.iter().enumerate() {
            s.push(r, i as u64);
        }
        let sorted = SortedDataset::from_set(&s);
        for u in Subspace::enumerate_all(3) {
            for flavour in [Dominance::Standard, Dominance::Extended] {
                for index in [DominanceIndex::Linear, DominanceIndex::RTree] {
                    let out = threshold_skyline(&sorted, u, flavour, f64::INFINITY, index);
                    let mut got: Vec<u64> =
                        (0..out.result.len()).map(|i| out.result.points().id(i)).collect();
                    got.sort_unstable();
                    assert_eq!(
                        got,
                        brute::skyline_ids(&s, u, flavour),
                        "U={u} flavour={flavour:?} index={index:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn threshold_terminates_scan_early() {
        // Point (1,1) yields threshold 1; all points with f > 1 are pruned.
        let d = dataset(&[&[1.0, 1.0], &[2.0, 9.0], &[3.0, 3.0], &[9.0, 2.0]]);
        let out = threshold_skyline(
            &d,
            Subspace::full(2),
            Dominance::Standard,
            f64::INFINITY,
            DominanceIndex::Linear,
        );
        assert_eq!(out.result.len(), 1);
        assert_eq!(out.threshold, 1.0);
        assert_eq!(out.stats.pruned_by_threshold, 3);
    }

    #[test]
    fn equality_ties_at_threshold_survive() {
        // p=(2,2) sets threshold 2; q=(2,2) has f=2 == threshold and must
        // be kept (the paper's strict-< loop would drop it).
        let mut s = PointSet::new(2);
        s.push(&[2.0, 2.0], 0);
        s.push(&[2.0, 2.0], 1);
        let d = SortedDataset::from_set(&s);
        let out = threshold_skyline(
            &d,
            Subspace::full(2),
            Dominance::Standard,
            f64::INFINITY,
            DominanceIndex::Linear,
        );
        assert_eq!(out.result.len(), 2, "tie at the threshold must not be pruned");
    }

    #[test]
    fn initial_threshold_prunes_everything_far() {
        // An upstream threshold of 0.5 kills a dataset whose smallest f is 1.
        let d = dataset(&[&[1.0, 4.0], &[2.0, 2.0]]);
        let out = threshold_skyline(
            &d,
            Subspace::full(2),
            Dominance::Standard,
            0.5,
            DominanceIndex::Linear,
        );
        assert!(out.result.is_empty());
        assert_eq!(out.threshold, 0.5);
        assert_eq!(out.stats.pruned_by_threshold, 2);
    }

    #[test]
    fn rtree_and_linear_agree_on_result_order() {
        let d = dataset(&[
            &[5.0, 1.0, 2.0],
            &[1.0, 5.0, 2.0],
            &[2.0, 2.0, 2.0],
            &[4.0, 4.0, 0.5],
            &[3.0, 3.0, 3.0],
        ]);
        let u = Subspace::from_dims(&[0, 1]);
        let a =
            threshold_skyline(&d, u, Dominance::Standard, f64::INFINITY, DominanceIndex::Linear);
        let b = threshold_skyline(&d, u, Dominance::Standard, f64::INFINITY, DominanceIndex::RTree);
        assert_eq!(a.result, b.result);
        assert_eq!(a.threshold, b.threshold);
    }

    #[test]
    fn outcome_result_is_f_sorted() {
        let d = dataset(&[&[9.0, 1.0], &[1.0, 9.0], &[5.0, 5.0], &[2.0, 7.0]]);
        let out = threshold_skyline(
            &d,
            Subspace::full(2),
            Dominance::Standard,
            f64::INFINITY,
            DominanceIndex::Linear,
        );
        let f = out.result.f_values();
        assert!(f.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn ext_flavour_retains_tied_points() {
        let d = dataset(&[&[1.0, 3.0], &[1.0, 5.0], &[2.0, 6.0]]);
        let out = threshold_skyline(
            &d,
            Subspace::full(2),
            Dominance::Extended,
            f64::INFINITY,
            DominanceIndex::Linear,
        );
        // (1,5) ties (1,3) on dim 0 → not ext-dominated; (2,6) is
        // ext-dominated by (1,3).
        assert_eq!(out.result.len(), 2);
    }

    #[test]
    fn empty_dataset() {
        let d = SortedDataset::empty(4);
        let out = threshold_skyline(
            &d,
            Subspace::full(4),
            Dominance::Standard,
            f64::INFINITY,
            DominanceIndex::RTree,
        );
        assert!(out.result.is_empty());
        assert_eq!(out.threshold, f64::INFINITY);
    }
}
