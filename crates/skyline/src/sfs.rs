//! Sort-Filter-Skyline (Chomicki, Godfrey, Gryz, Liang — ICDE'03).
//!
//! Pre-sorts the input by a monotone scoring function (the entropy score
//! `E(p) = Σ_i ln(p[i] + 1)` restricted to the query subspace), so that no
//! point can ever be dominated by a point appearing after it. A single
//! forward pass then only tests each point against already-accepted skyline
//! points, and accepted points are never evicted.
//!
//! Under standard dominance, `p` dominates `q` on `U` ⇒ `E_U(p) < E_U(q)`,
//! because `ln(·+1)` is strictly increasing. Extended dominance implies
//! standard dominance, so the same ordering argument holds for the
//! ext-skyline as well.

use crate::dominance::Dominance;
use crate::point::PointSet;
use crate::subspace::Subspace;

/// The SFS monotone score on subspace `u`: `Σ_{i∈u} ln(p[i] + 1)`.
#[inline]
pub fn entropy_score(p: &[f64], u: Subspace) -> f64 {
    u.dims().map(|i| (p[i] + 1.0).ln()).sum()
}

/// Computes the skyline of `set` on `u` under `flavour`, returning indices
/// into `set` (in entropy order).
pub fn skyline(set: &PointSet, u: Subspace, flavour: Dominance) -> Vec<usize> {
    let mut order: Vec<usize> = (0..set.len()).collect();
    order.sort_by(|&a, &b| {
        entropy_score(set.point(a), u)
            .partial_cmp(&entropy_score(set.point(b), u))
            .expect("entropy score is always finite")
    });

    let mut sky: Vec<usize> = Vec::new();
    for &i in &order {
        let p = set.point(i);
        let dominated = sky.iter().any(|&s| flavour.dominates(set.point(s), p, u));
        if !dominated {
            sky.push(i);
        }
    }
    sky
}

/// Skyline identifiers (sorted).
pub fn skyline_ids(set: &PointSet, u: Subspace, flavour: Dominance) -> Vec<u64> {
    let mut ids: Vec<u64> = skyline(set, u, flavour).into_iter().map(|i| set.id(i)).collect();
    ids.sort_unstable();
    ids
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::{bnl, brute};

    #[test]
    fn monotonicity_of_entropy_under_dominance() {
        let u = Subspace::full(2);
        let p = [1.0, 2.0];
        let q = [1.0, 3.0];
        assert!(crate::dominance::dominates(&p, &q, u));
        assert!(entropy_score(&p, u) < entropy_score(&q, u));
    }

    #[test]
    fn matches_bnl_and_brute() {
        let mut s = PointSet::new(3);
        let vals = [
            [4.0, 1.0, 3.0],
            [1.0, 4.0, 2.0],
            [2.0, 2.0, 2.0],
            [4.0, 4.0, 4.0],
            [0.0, 9.0, 9.0],
            [2.0, 2.0, 2.0],
        ];
        for (i, v) in vals.iter().enumerate() {
            s.push(v, i as u64);
        }
        for u in Subspace::enumerate_all(3) {
            for flavour in [Dominance::Standard, Dominance::Extended] {
                assert_eq!(
                    skyline_ids(&s, u, flavour),
                    brute::skyline_ids(&s, u, flavour),
                    "subspace {u} flavour {flavour:?}"
                );
                assert_eq!(skyline_ids(&s, u, flavour), bnl::skyline_ids(&s, u, flavour));
            }
        }
    }

    #[test]
    fn accepted_points_never_need_eviction() {
        // With zeros and ties in play, order stability still guarantees
        // correctness; this is the degenerate case that breaks naive
        // "sorted by one coordinate" filters.
        let mut s = PointSet::new(2);
        s.push(&[0.0, 5.0], 0);
        s.push(&[5.0, 0.0], 1);
        s.push(&[0.0, 5.0], 2); // duplicate
        s.push(&[0.0, 0.0], 3); // dominates everything else
        let u = Subspace::full(2);
        assert_eq!(skyline_ids(&s, u, Dominance::Standard), vec![3]);
    }

    #[test]
    fn empty_input() {
        let s = PointSet::new(4);
        assert!(skyline(&s, Subspace::full(4), Dominance::Standard).is_empty());
    }
}
