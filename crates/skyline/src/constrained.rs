//! Constrained subspace skylines.
//!
//! The paper's related work (Dellis et al., CIKM'06, its reference \[6\])
//! poses *constrained* subspace skylines — skylines over the subset of
//! points falling inside per-dimension value ranges — as "the
//! generalization of all meaningful skyline queries over a given dataset".
//! This module implements them for the centralized engines.
//!
//! **Important negative result** (tested in
//! `ext_skyline_cannot_answer_constrained_queries`): SKYPEER's extended
//! skyline is *not* sufficient to answer constrained queries. A constraint
//! window can exclude a dominator while retaining the points it dominated;
//! those points then belong to the constrained skyline, but the
//! preprocessing has already discarded them. Supporting constrained
//! queries in a SKYPEER-like system requires shipping more than the
//! ext-skyline, which is exactly why the paper scopes its guarantee to
//! unconstrained subspace skylines.

use crate::dominance::Dominance;
use crate::point::PointSet;
use crate::subspace::Subspace;
use serde::{Deserialize, Serialize};

/// A closed per-dimension interval constraint. Dimensions absent from the
/// map are unconstrained.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConstraintBox {
    /// `(dimension, lo, hi)` triples, `lo <= hi`.
    ranges: Vec<(usize, f64, f64)>,
}

impl ConstraintBox {
    /// The unconstrained box.
    pub fn unconstrained() -> Self {
        ConstraintBox { ranges: Vec::new() }
    }

    /// Adds a range constraint on one dimension (replacing any previous
    /// constraint on it).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn with_range(mut self, dim: usize, lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "invalid range [{lo}, {hi}]");
        self.ranges.retain(|(d, _, _)| *d != dim);
        self.ranges.push((dim, lo, hi));
        self
    }

    /// Whether `p` satisfies every range.
    pub fn contains(&self, p: &[f64]) -> bool {
        self.ranges.iter().all(|&(d, lo, hi)| d < p.len() && p[d] >= lo && p[d] <= hi)
    }

    /// Number of constrained dimensions.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether no dimension is constrained.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

/// Computes the constrained subspace skyline: the skyline (on `u`, under
/// `flavour`) of the points of `set` satisfying `constraints`. Returns
/// sorted identifiers.
pub fn constrained_skyline_ids(
    set: &PointSet,
    u: Subspace,
    constraints: &ConstraintBox,
    flavour: Dominance,
) -> Vec<u64> {
    let eligible: Vec<usize> =
        (0..set.len()).filter(|&i| constraints.contains(set.point(i))).collect();
    let filtered = set.gather(&eligible);
    crate::bnl::skyline_ids(&filtered, u, flavour)
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::extended::ext_skyline;
    use crate::sorted::DominanceIndex;

    fn sample() -> PointSet {
        let mut s = PointSet::new(2);
        s.push(&[1.0, 1.0], 0); // global skyline point
        s.push(&[2.0, 3.0], 1); // dominated by 0 (and ext-dominated)
        s.push(&[3.0, 2.0], 2); // dominated by 0 (and ext-dominated)
        s.push(&[5.0, 5.0], 3); // dominated by everyone
        s
    }

    #[test]
    fn unconstrained_equals_plain_skyline() {
        let s = sample();
        let u = Subspace::full(2);
        assert_eq!(
            constrained_skyline_ids(&s, u, &ConstraintBox::unconstrained(), Dominance::Standard),
            crate::brute::skyline_ids(&s, u, Dominance::Standard)
        );
    }

    #[test]
    fn constraints_filter_before_dominance() {
        let s = sample();
        let u = Subspace::full(2);
        // Exclude the global winner: the previously-dominated points form
        // the constrained skyline.
        let c = ConstraintBox::unconstrained().with_range(0, 1.5, 10.0);
        assert_eq!(
            constrained_skyline_ids(&s, u, &c, Dominance::Standard),
            vec![1, 2],
            "with (1,1) excluded, (2,3) and (3,2) are undominated"
        );
    }

    #[test]
    fn empty_window_gives_empty_skyline() {
        let s = sample();
        let c = ConstraintBox::unconstrained().with_range(0, 100.0, 200.0);
        assert!(constrained_skyline_ids(&s, Subspace::full(2), &c, Dominance::Standard).is_empty());
    }

    #[test]
    fn repeated_range_on_same_dim_replaces() {
        let c = ConstraintBox::unconstrained().with_range(0, 0.0, 1.0).with_range(0, 5.0, 6.0);
        assert_eq!(c.len(), 1);
        assert!(c.contains(&[5.5, 0.0]));
        assert!(!c.contains(&[0.5, 0.0]));
    }

    /// The negative result: the extended skyline loses points that
    /// constrained queries need.
    #[test]
    fn ext_skyline_cannot_answer_constrained_queries() {
        let s = sample();
        let u = Subspace::full(2);
        // The preprocessing keeps only the ext-skyline...
        let stored = ext_skyline(&s, DominanceIndex::Linear).result;
        let stored_ids: Vec<u64> = (0..stored.len()).map(|i| stored.points().id(i)).collect();
        assert_eq!(stored_ids, vec![0], "only (1,1) survives ext-domination");
        // ...but the constrained query needs points the store discarded.
        let c = ConstraintBox::unconstrained().with_range(0, 1.5, 10.0);
        let truth = constrained_skyline_ids(&s, u, &c, Dominance::Standard);
        let from_store = constrained_skyline_ids(stored.points(), u, &c, Dominance::Standard);
        assert_eq!(truth, vec![1, 2]);
        assert!(from_store.is_empty(), "the store cannot reconstruct the constrained answer");
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn inverted_range_rejected() {
        let _ = ConstraintBox::unconstrained().with_range(0, 2.0, 1.0);
    }
}
