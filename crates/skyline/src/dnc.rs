//! Divide & conquer skyline (the D&C scheme of Börzsönyi et al., ICDE'01).
//!
//! Recursively splits the input in half, computes each half's skyline, and
//! merges by mutual filtering: a point survives iff no point of the *other*
//! half's skyline dominates it. Points within one half have already been
//! filtered against each other by the recursion, so the merge only needs
//! cross-half tests.

use crate::dominance::Dominance;
use crate::point::PointSet;
use crate::subspace::Subspace;

/// Below this size the recursion bottoms out into a direct BNL pass.
const LEAF_SIZE: usize = 16;

/// Computes the skyline of `set` on `u` under `flavour`, returning indices
/// into `set`.
pub fn skyline(set: &PointSet, u: Subspace, flavour: Dominance) -> Vec<usize> {
    let indices: Vec<usize> = (0..set.len()).collect();
    rec(set, &indices, u, flavour)
}

fn rec(set: &PointSet, indices: &[usize], u: Subspace, flavour: Dominance) -> Vec<usize> {
    if indices.len() <= LEAF_SIZE {
        return leaf(set, indices, u, flavour);
    }
    let mid = indices.len() / 2;
    let left = rec(set, &indices[..mid], u, flavour);
    let right = rec(set, &indices[mid..], u, flavour);
    merge_halves(set, left, right, u, flavour)
}

/// BNL over an index slice.
fn leaf(set: &PointSet, indices: &[usize], u: Subspace, flavour: Dominance) -> Vec<usize> {
    let mut window: Vec<usize> = Vec::new();
    'outer: for &i in indices {
        let p = set.point(i);
        let mut w = 0;
        while w < window.len() {
            let c = set.point(window[w]);
            if flavour.dominates(c, p, u) {
                continue 'outer;
            }
            if flavour.dominates(p, c, u) {
                window.swap_remove(w);
            } else {
                w += 1;
            }
        }
        window.push(i);
    }
    window
}

/// Mutual filter: keep the points of each half not dominated by the other
/// half's skyline.
fn merge_halves(
    set: &PointSet,
    left: Vec<usize>,
    right: Vec<usize>,
    u: Subspace,
    flavour: Dominance,
) -> Vec<usize> {
    let mut out = Vec::with_capacity(left.len() + right.len());
    out.extend(left.iter().copied().filter(|&i| {
        let p = set.point(i);
        !right.iter().any(|&j| flavour.dominates(set.point(j), p, u))
    }));
    out.extend(right.iter().copied().filter(|&i| {
        let p = set.point(i);
        !left.iter().any(|&j| flavour.dominates(set.point(j), p, u))
    }));
    out
}

/// Skyline identifiers (sorted).
pub fn skyline_ids(set: &PointSet, u: Subspace, flavour: Dominance) -> Vec<u64> {
    let mut ids: Vec<u64> = skyline(set, u, flavour).into_iter().map(|i| set.id(i)).collect();
    ids.sort_unstable();
    ids
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::brute;

    #[test]
    fn matches_brute_above_leaf_size() {
        // 100 deterministic pseudo-random points force several recursion
        // levels (LEAF_SIZE = 16).
        let mut s = PointSet::new(3);
        let mut x = 12345u64;
        for i in 0..100u64 {
            let mut coords = [0.0; 3];
            for c in &mut coords {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                *c = ((x >> 33) % 1000) as f64 / 100.0;
            }
            s.push(&coords, i);
        }
        for u in [Subspace::full(3), Subspace::from_dims(&[0, 2]), Subspace::from_dims(&[1])] {
            for flavour in [Dominance::Standard, Dominance::Extended] {
                assert_eq!(
                    skyline_ids(&s, u, flavour),
                    brute::skyline_ids(&s, u, flavour),
                    "subspace {u} flavour {flavour:?}"
                );
            }
        }
    }

    #[test]
    fn cross_half_ties_survive() {
        // Duplicates that land in different halves must both survive the
        // mutual filter under standard dominance.
        let mut s = PointSet::new(2);
        for i in 0..20u64 {
            s.push(&[1.0, 1.0], i);
        }
        let sky = skyline(&s, Subspace::full(2), Dominance::Standard);
        assert_eq!(sky.len(), 20);
    }

    #[test]
    fn empty_and_tiny() {
        let s = PointSet::new(2);
        assert!(skyline(&s, Subspace::full(2), Dominance::Standard).is_empty());
        let mut s1 = PointSet::new(2);
        s1.push(&[1.0, 1.0], 7);
        assert_eq!(skyline_ids(&s1, Subspace::full(2), Dominance::Standard), vec![7]);
    }
}
