//! The skycube: skylines of every non-empty subspace.
//!
//! SKYPEER never materializes the skycube — that is the whole point of the
//! extended skyline — but the cube is the natural validation artifact for
//! Observation 4 (`∪_U SKY_U ⊆ ext-SKY_D`) and a useful analysis tool for
//! workloads. The computation here is the straightforward per-subspace
//! evaluation (with optional sharing of the top-level ext-skyline as a
//! reduced input, which Observation 4 makes lossless).

use crate::dominance::Dominance;
use crate::extended::ext_skyline;
use crate::point::PointSet;
use crate::sorted::DominanceIndex;
use crate::subspace::Subspace;
use crate::{bnl, sorted::SortedDataset};
use std::collections::BTreeMap;

/// The skyline of every non-empty subspace of a `d`-dimensional dataset,
/// keyed by subspace. Values are sorted point identifiers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Skycube {
    dim: usize,
    cube: BTreeMap<Subspace, Vec<u64>>,
}

impl Skycube {
    /// Computes the skycube naively: one BNL run per subspace over the full
    /// dataset. Exponential in `d`; intended for validation and analysis.
    pub fn compute(set: &PointSet) -> Self {
        let mut cube = BTreeMap::new();
        for u in Subspace::enumerate_all(set.dim()) {
            cube.insert(u, bnl::skyline_ids(set, u, Dominance::Standard));
        }
        Skycube { dim: set.dim(), cube }
    }

    /// Computes the skycube over the extended skyline instead of the raw
    /// dataset. By Observation 4 this is exact, and it is how a super-peer
    /// could answer all subspace queries from its stored ext-skyline.
    pub fn compute_via_ext_skyline(set: &PointSet) -> Self {
        let ext = ext_skyline(set, DominanceIndex::Linear);
        Self::compute(ext.result.points())
    }

    /// Dimensionality of the underlying space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The skyline identifiers of subspace `u` (sorted), if `u` is a
    /// subspace of this cube's space.
    pub fn skyline(&self, u: Subspace) -> Option<&[u64]> {
        self.cube.get(&u).map(Vec::as_slice)
    }

    /// Iterates over `(subspace, skyline ids)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Subspace, &[u64])> {
        self.cube.iter().map(|(u, v)| (*u, v.as_slice()))
    }

    /// Union of all subspace skylines (sorted, deduplicated) — the minimal
    /// set a lossless pre-filter must retain.
    pub fn union_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.cube.values().flatten().copied().collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Number of subspaces (always `2^d − 1`).
    pub fn len(&self) -> usize {
        self.cube.len()
    }

    /// Whether the cube is empty (never, for a valid dimensionality).
    pub fn is_empty(&self) -> bool {
        self.cube.is_empty()
    }
}

/// Convenience: does the given `f`-sorted candidate set contain every
/// subspace skyline of `set`? Used in tests to validate preprocessing.
pub fn covers_all_subspace_skylines(candidate: &SortedDataset, set: &PointSet) -> bool {
    let cube = Skycube::compute(set);
    let have: Vec<u64> = (0..candidate.len()).map(|i| candidate.points().id(i)).collect();
    cube.union_ids().iter().all(|id| have.contains(id))
}

#[cfg(test)]
mod unit {
    use super::*;

    fn sample() -> PointSet {
        let mut s = PointSet::new(3);
        s.push(&[1.0, 5.0, 4.0], 0);
        s.push(&[2.0, 2.0, 2.0], 1);
        s.push(&[5.0, 1.0, 3.0], 2);
        s.push(&[4.0, 4.0, 1.0], 3);
        s.push(&[5.0, 5.0, 5.0], 4);
        s
    }

    #[test]
    fn cube_has_all_subspaces() {
        let cube = Skycube::compute(&sample());
        assert_eq!(cube.len(), 7);
        for u in Subspace::enumerate_all(3) {
            assert!(cube.skyline(u).is_some(), "missing subspace {u}");
        }
    }

    #[test]
    fn single_dimension_skylines_are_minima() {
        let cube = Skycube::compute(&sample());
        assert_eq!(cube.skyline(Subspace::from_dims(&[0])).unwrap(), &[0]);
        assert_eq!(cube.skyline(Subspace::from_dims(&[1])).unwrap(), &[2]);
        assert_eq!(cube.skyline(Subspace::from_dims(&[2])).unwrap(), &[3]);
    }

    #[test]
    fn no_containment_between_subspace_and_superspace() {
        // Observation 1: in general neither SKY_U ⊆ SKY_V nor the reverse.
        // Here point 4 is in no skyline and point 1 is in SKY_{xy} but not
        // in SKY_x or SKY_y.
        let cube = Skycube::compute(&sample());
        let xy = cube.skyline(Subspace::from_dims(&[0, 1])).unwrap();
        assert!(xy.contains(&1));
        assert!(!cube.skyline(Subspace::from_dims(&[0])).unwrap().contains(&1));
        assert!(!cube.skyline(Subspace::from_dims(&[1])).unwrap().contains(&1));
    }

    #[test]
    fn via_ext_skyline_is_identical() {
        let s = sample();
        let direct = Skycube::compute(&s);
        let via = Skycube::compute_via_ext_skyline(&s);
        assert_eq!(direct, via, "Observation 4: ext-skyline answers every subspace exactly");
    }

    #[test]
    fn union_is_covered_by_ext_skyline() {
        let s = sample();
        let ext = ext_skyline(&s, DominanceIndex::Linear);
        assert!(covers_all_subspace_skylines(&ext.result, &s));
    }
}
