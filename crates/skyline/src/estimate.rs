//! Skyline cardinality estimation.
//!
//! For `n` points with independent, continuously-distributed coordinates
//! (the paper's *uniform* dataset), the expected skyline size `E(n, d)`
//! obeys the classic recurrence over dominance ranks
//!
//! ```text
//! E(n, d) = E(n − 1, d) + E(n, d − 1) / n,    E(n, 1) = 1,  E(0, d) = 0,
//! ```
//!
//! with the asymptotic form `E(n, d) ≈ ln(n)^(d−1) / (d−1)!`. These
//! estimates predict how many points SKYPEER's stores, messages, and
//! results will hold — useful for capacity planning, for choosing the
//! dominance index, and as a sanity oracle on the synthetic generators
//! (a correlated dataset must fall far below the independence estimate,
//! an anticorrelated one far above).

/// Expected skyline size of `n` independent continuously-distributed
/// points in `d` dimensions (exact recurrence, O(n·d) time, O(n) space).
///
/// ```
/// use skypeer_skyline::estimate::expected_skyline_size;
/// // E(n, 2) is the n-th harmonic number.
/// assert!((expected_skyline_size(3, 2) - (1.0 + 0.5 + 1.0 / 3.0)).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `d == 0`.
pub fn expected_skyline_size(n: usize, d: usize) -> f64 {
    assert!(d >= 1, "dimensionality must be positive");
    if n == 0 {
        return 0.0;
    }
    // E(i, 1) = 1 for all i >= 1.
    let mut prev: Vec<f64> = vec![1.0; n + 1];
    prev[0] = 0.0;
    let mut cur = vec![0.0f64; n + 1];
    for _dim in 2..=d {
        cur[0] = 0.0;
        for i in 1..=n {
            cur[i] = cur[i - 1] + prev[i] / i as f64;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

/// The asymptotic approximation `ln(n)^(d−1) / (d−1)!`.
pub fn asymptotic_skyline_size(n: usize, d: usize) -> f64 {
    assert!(d >= 1, "dimensionality must be positive");
    if n == 0 {
        return 0.0;
    }
    let ln_n = (n as f64).ln().max(0.0);
    let mut fact = 1.0;
    for i in 1..d {
        fact *= i as f64;
    }
    ln_n.powi(d as i32 - 1) / fact
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::{bnl, Dominance, PointSet, Subspace};

    #[test]
    fn base_cases() {
        assert_eq!(expected_skyline_size(0, 3), 0.0);
        assert_eq!(expected_skyline_size(1, 5), 1.0);
        assert_eq!(expected_skyline_size(100, 1), 1.0, "1-d skyline is the unique minimum");
    }

    #[test]
    fn two_dimensions_is_harmonic_number() {
        // E(n, 2) = H_n, the n-th harmonic number.
        let n = 50;
        let h: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
        assert!((expected_skyline_size(n, 2) - h).abs() < 1e-9);
    }

    #[test]
    fn monotone_in_n_and_d() {
        assert!(expected_skyline_size(1000, 4) > expected_skyline_size(100, 4));
        assert!(expected_skyline_size(1000, 6) > expected_skyline_size(1000, 4));
    }

    #[test]
    fn asymptotic_tracks_exact_at_scale() {
        for d in 2..=5 {
            let exact = expected_skyline_size(100_000, d);
            let approx = asymptotic_skyline_size(100_000, d);
            let ratio = approx / exact;
            assert!((0.3..3.0).contains(&ratio), "d={d}: approx {approx:.1} vs exact {exact:.1}");
        }
    }

    #[test]
    fn uniform_generator_matches_theory() {
        // Empirical skyline size of uniform points must land within a
        // factor of the independence estimate.
        let mut s = PointSet::new(4);
        let mut x = 31u64;
        let n = 4000;
        for i in 0..n {
            let mut c = [0.0; 4];
            for v in &mut c {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                *v = ((x >> 11) as f64) / (u64::MAX >> 11) as f64;
            }
            s.push(&c, i as u64);
        }
        let got = bnl::skyline(&s, Subspace::full(4), Dominance::Standard).len() as f64;
        let want = expected_skyline_size(n as usize, 4);
        assert!((0.5..2.0).contains(&(got / want)), "empirical {got} vs theoretical {want:.1}");
    }
}
