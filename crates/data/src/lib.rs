#![warn(missing_docs)]

//! Synthetic datasets and query workloads for SKYPEER experiments.
//!
//! The paper evaluates on two synthetic collections (Section 6):
//!
//! * **uniform** — independent coordinates, uniform in the unit cube;
//! * **clustered** — every super-peer draws random cluster centroids, and
//!   the points of its attached peers follow an axis-wise Gaussian around a
//!   centroid with variance 0.025.
//!
//! For broader coverage this crate also ships the two other classic
//! skyline-literature distributions (Börzsönyi et al.): **correlated** and
//! **anticorrelated**.
//!
//! Everything is seeded and deterministic: the same spec always produces
//! the same bytes, which the tests and the figure harness rely on.

pub mod csv;
pub mod generate;
pub mod partition;
pub mod stats;
pub mod workload;

pub use csv::{read_points, CsvOptions};
pub use generate::{DatasetKind, DatasetSpec};
pub use partition::partition_even;
pub use workload::{InitiatorMix, KMix, MixedWorkloadSpec, Query, WorkloadSpec};
