//! Query workload generation.
//!
//! Section 6: "Given a query dimensionality, all dimension subsets have
//! uniform probability to be requested. We generate 100 queries, and for
//! each query a super-peer initiator is randomly selected."

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use skypeer_skyline::Subspace;

/// One subspace skyline query: the requested dimensions and the super-peer
/// that initiates it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    /// Requested dimension set `U`.
    pub subspace: Subspace,
    /// Initiating super-peer index.
    pub initiator: usize,
}

/// Specification of a query workload.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Dimensionality `d` of the data space.
    pub dim: usize,
    /// Query dimensionality `k ≤ d` (the paper default is 3).
    pub k: usize,
    /// Number of queries (the paper runs 100 per configuration).
    pub queries: usize,
    /// Number of super-peers to choose initiators from.
    pub n_superpeers: usize,
    /// Seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Generates the workload: uniformly random `k`-subsets of the `d`
    /// dimensions and uniformly random initiators.
    pub fn generate(&self) -> Vec<Query> {
        assert!(self.k >= 1 && self.k <= self.dim, "invalid k={} for d={}", self.k, self.dim);
        assert!(self.n_superpeers > 0, "need at least one super-peer");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut dims: Vec<usize> = (0..self.dim).collect();
        (0..self.queries)
            .map(|_| {
                dims.shuffle(&mut rng);
                let subspace = Subspace::from_dims(&dims[..self.k]);
                let initiator = rng.gen_range(0..self.n_superpeers);
                Query { subspace, initiator }
            })
            .collect()
    }
}

/// How the query dimensionality `k` is chosen per query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KMix {
    /// Every query has the same `k` (the paper's setup).
    Fixed(usize),
    /// Zipf-weighted `k ∈ [k_min, k_max]`: value `k_min + r` has weight
    /// `(r + 1)^-exponent`, so low-dimensional queries dominate —
    /// the common observation about real subspace-skyline workloads.
    Zipf {
        /// Smallest query dimensionality (≥ 1).
        k_min: usize,
        /// Largest query dimensionality (≤ `dim`).
        k_max: usize,
        /// Skew exponent `θ ≥ 0` (0 = uniform over the range).
        exponent: f64,
    },
}

/// How the initiating super-peer is chosen per query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum InitiatorMix {
    /// Uniform over all super-peers (the paper's setup).
    Uniform,
    /// Zipf-weighted hot spots: rank `r` (1-based) of a seeded random
    /// permutation of the super-peers gets weight `r^-exponent`, so a few
    /// "hot" super-peers originate most queries. The permutation is drawn
    /// from `seed ^ INITIATOR_PERM_SALT`, independent of the query
    /// stream, so which super-peers are hot varies with the seed.
    Zipf {
        /// Skew exponent `θ ≥ 0` (0 = uniform).
        exponent: f64,
    },
}

/// Salt for the hot-initiator permutation RNG (kept out of the main query
/// stream so mixes stay comparable across the same seed).
const INITIATOR_PERM_SALT: u64 = 0x005E_ED0F_1217;

/// A skewed query workload: [`WorkloadSpec`] generalized with pluggable
/// `k` and initiator mixes, behind the same seeded determinism.
///
/// With `KMix::Fixed(k)` + `InitiatorMix::Uniform` the generator consumes
/// the RNG stream exactly like [`WorkloadSpec::generate`], so it
/// reproduces the uniform workload query for query (pinned by a unit
/// test).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MixedWorkloadSpec {
    /// Dimensionality `d` of the data space.
    pub dim: usize,
    /// Number of queries.
    pub queries: usize,
    /// Number of super-peers to choose initiators from.
    pub n_superpeers: usize,
    /// Seed.
    pub seed: u64,
    /// Per-query dimensionality mix.
    pub k_mix: KMix,
    /// Per-query initiator mix.
    pub initiator_mix: InitiatorMix,
}

impl MixedWorkloadSpec {
    /// The uniform workload of [`WorkloadSpec`] as a mixed spec
    /// (`Fixed(k)` + `Uniform`).
    pub fn uniform(spec: WorkloadSpec) -> Self {
        MixedWorkloadSpec {
            dim: spec.dim,
            queries: spec.queries,
            n_superpeers: spec.n_superpeers,
            seed: spec.seed,
            k_mix: KMix::Fixed(spec.k),
            initiator_mix: InitiatorMix::Uniform,
        }
    }

    /// Generates the workload deterministically from the seed.
    pub fn generate(&self) -> Vec<Query> {
        assert!(self.n_superpeers > 0, "need at least one super-peer");
        let (k_min, k_max) = match self.k_mix {
            KMix::Fixed(k) => (k, k),
            KMix::Zipf { k_min, k_max, exponent } => {
                assert!(exponent >= 0.0, "negative zipf exponent");
                assert!(k_min <= k_max, "k_min {k_min} > k_max {k_max}");
                (k_min, k_max)
            }
        };
        assert!(
            k_min >= 1 && k_max <= self.dim,
            "invalid k range [{k_min}, {k_max}] for d={}",
            self.dim
        );
        let k_cdf = match self.k_mix {
            KMix::Fixed(_) => Vec::new(),
            KMix::Zipf { exponent, .. } => zipf_cdf(k_max - k_min + 1, exponent),
        };
        // The hot-initiator identity permutation comes from a salted side
        // RNG, leaving the main stream untouched.
        let (init_cdf, init_perm) = match self.initiator_mix {
            InitiatorMix::Uniform => (Vec::new(), Vec::new()),
            InitiatorMix::Zipf { exponent } => {
                assert!(exponent >= 0.0, "negative zipf exponent");
                let mut perm: Vec<usize> = (0..self.n_superpeers).collect();
                perm.shuffle(&mut StdRng::seed_from_u64(self.seed ^ INITIATOR_PERM_SALT));
                (zipf_cdf(self.n_superpeers, exponent), perm)
            }
        };

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut dims: Vec<usize> = (0..self.dim).collect();
        (0..self.queries)
            .map(|_| {
                let k = match self.k_mix {
                    KMix::Fixed(k) => k,
                    KMix::Zipf { k_min, .. } => k_min + draw_rank(&k_cdf, rng.gen::<f64>()),
                };
                dims.shuffle(&mut rng);
                let subspace = Subspace::from_dims(&dims[..k]);
                let initiator = match self.initiator_mix {
                    InitiatorMix::Uniform => rng.gen_range(0..self.n_superpeers),
                    InitiatorMix::Zipf { .. } => init_perm[draw_rank(&init_cdf, rng.gen::<f64>())],
                };
                Query { subspace, initiator }
            })
            .collect()
    }
}

/// Cumulative (unnormalized) zipf weights: rank `r ∈ 1..=n` has weight
/// `r^-exponent`.
fn zipf_cdf(n: usize, exponent: f64) -> Vec<f64> {
    let mut cum = Vec::with_capacity(n);
    let mut total = 0.0;
    for r in 1..=n {
        total += (r as f64).powf(-exponent);
        cum.push(total);
    }
    cum
}

/// Inverts the CDF for a uniform draw `u ∈ [0, 1)`: the 0-based rank.
fn draw_rank(cdf: &[f64], u: f64) -> usize {
    let target = u * cdf.last().copied().unwrap_or(0.0);
    cdf.partition_point(|&c| c <= target).min(cdf.len() - 1)
}

#[cfg(test)]
mod unit {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec { dim: 8, k: 3, queries: 200, n_superpeers: 10, seed: 4 }
    }

    #[test]
    fn queries_have_requested_dimensionality() {
        for q in spec().generate() {
            assert_eq!(q.subspace.k(), 3);
            assert!(q.initiator < 10);
        }
    }

    #[test]
    fn workload_is_deterministic() {
        assert_eq!(spec().generate(), spec().generate());
        let other = WorkloadSpec { seed: 5, ..spec() };
        assert_ne!(spec().generate(), other.generate());
    }

    #[test]
    fn subsets_cover_the_space() {
        // With 200 draws of 3-of-8, every dimension should appear at least
        // once and more than one distinct subspace should occur.
        let qs = spec().generate();
        let mut dim_seen = [false; 8];
        let mut masks: Vec<u32> = qs.iter().map(|q| q.subspace.mask()).collect();
        for q in &qs {
            for d in q.subspace.dims() {
                dim_seen[d] = true;
            }
        }
        assert!(dim_seen.iter().all(|&s| s), "some dimension never requested");
        masks.sort_unstable();
        masks.dedup();
        assert!(masks.len() > 10, "only {} distinct subspaces in 200 draws", masks.len());
    }

    #[test]
    fn full_space_queries_allowed() {
        let w = WorkloadSpec { dim: 3, k: 3, queries: 5, n_superpeers: 2, seed: 0 };
        for q in w.generate() {
            assert_eq!(q.subspace, Subspace::full(3));
        }
    }

    #[test]
    #[should_panic(expected = "invalid k")]
    fn oversized_k_rejected() {
        let w = WorkloadSpec { dim: 3, k: 4, queries: 1, n_superpeers: 1, seed: 0 };
        let _ = w.generate();
    }

    fn skewed() -> MixedWorkloadSpec {
        MixedWorkloadSpec {
            dim: 8,
            queries: 400,
            n_superpeers: 10,
            seed: 4,
            k_mix: KMix::Zipf { k_min: 2, k_max: 6, exponent: 1.2 },
            initiator_mix: InitiatorMix::Zipf { exponent: 1.0 },
        }
    }

    #[test]
    fn fixed_uniform_mix_reproduces_the_plain_workload() {
        // Backward-compat pin: the mixed generator with Fixed + Uniform
        // consumes the RNG stream exactly like WorkloadSpec::generate.
        let plain = spec().generate();
        let mixed = MixedWorkloadSpec::uniform(spec()).generate();
        assert_eq!(plain, mixed);
    }

    #[test]
    fn mixed_workload_is_deterministic() {
        assert_eq!(skewed().generate(), skewed().generate());
        let other = MixedWorkloadSpec { seed: 5, ..skewed() };
        assert_ne!(skewed().generate(), other.generate());
    }

    #[test]
    fn zipf_k_mix_prefers_low_dimensionality() {
        let qs = skewed().generate();
        let mut count = [0usize; 9];
        for q in &qs {
            let k = q.subspace.k();
            assert!((2..=6).contains(&k), "k={k} outside the mix range");
            count[k] += 1;
        }
        assert!(
            count[2] > count[6] * 2,
            "zipf mix should favor small k: k=2 seen {} vs k=6 seen {}",
            count[2],
            count[6]
        );
    }

    #[test]
    fn zipf_initiator_mix_creates_hot_superpeers() {
        let qs = skewed().generate();
        let mut count = [0usize; 10];
        for q in &qs {
            count[q.initiator] += 1;
        }
        let hottest = *count.iter().max().unwrap();
        // Uniform share would be 40 of 400; the rank-1 zipf weight at
        // θ = 1 over 10 super-peers is 1/H_10 ≈ 34%.
        assert!(hottest > 80, "hot initiator only got {hottest}/400 queries");
    }

    #[test]
    fn skewed_sequences_are_pinned() {
        // Pins the exact generated sequence (first six queries) so any
        // change to the sampling algorithm or RNG stream is loud.
        let got: Vec<(usize, usize)> =
            skewed().generate().iter().take(6).map(|q| (q.subspace.k(), q.initiator)).collect();
        assert_eq!(got, PINNED_HEAD);
    }

    /// `(k, initiator)` of the first six queries of `skewed()`.
    const PINNED_HEAD: [(usize, usize); 6] = [(3, 8), (2, 1), (3, 1), (5, 6), (5, 9), (4, 1)];

    #[test]
    fn initiators_spread_across_superpeers() {
        let qs = spec().generate();
        let mut seen = [false; 10];
        for q in &qs {
            seen[q.initiator] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() >= 8, "initiators too concentrated");
    }
}
