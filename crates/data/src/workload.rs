//! Query workload generation.
//!
//! Section 6: "Given a query dimensionality, all dimension subsets have
//! uniform probability to be requested. We generate 100 queries, and for
//! each query a super-peer initiator is randomly selected."

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use skypeer_skyline::Subspace;

/// One subspace skyline query: the requested dimensions and the super-peer
/// that initiates it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    /// Requested dimension set `U`.
    pub subspace: Subspace,
    /// Initiating super-peer index.
    pub initiator: usize,
}

/// Specification of a query workload.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Dimensionality `d` of the data space.
    pub dim: usize,
    /// Query dimensionality `k ≤ d` (the paper default is 3).
    pub k: usize,
    /// Number of queries (the paper runs 100 per configuration).
    pub queries: usize,
    /// Number of super-peers to choose initiators from.
    pub n_superpeers: usize,
    /// Seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Generates the workload: uniformly random `k`-subsets of the `d`
    /// dimensions and uniformly random initiators.
    pub fn generate(&self) -> Vec<Query> {
        assert!(self.k >= 1 && self.k <= self.dim, "invalid k={} for d={}", self.k, self.dim);
        assert!(self.n_superpeers > 0, "need at least one super-peer");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut dims: Vec<usize> = (0..self.dim).collect();
        (0..self.queries)
            .map(|_| {
                dims.shuffle(&mut rng);
                let subspace = Subspace::from_dims(&dims[..self.k]);
                let initiator = rng.gen_range(0..self.n_superpeers);
                Query { subspace, initiator }
            })
            .collect()
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec { dim: 8, k: 3, queries: 200, n_superpeers: 10, seed: 4 }
    }

    #[test]
    fn queries_have_requested_dimensionality() {
        for q in spec().generate() {
            assert_eq!(q.subspace.k(), 3);
            assert!(q.initiator < 10);
        }
    }

    #[test]
    fn workload_is_deterministic() {
        assert_eq!(spec().generate(), spec().generate());
        let other = WorkloadSpec { seed: 5, ..spec() };
        assert_ne!(spec().generate(), other.generate());
    }

    #[test]
    fn subsets_cover_the_space() {
        // With 200 draws of 3-of-8, every dimension should appear at least
        // once and more than one distinct subspace should occur.
        let qs = spec().generate();
        let mut dim_seen = [false; 8];
        let mut masks: Vec<u32> = qs.iter().map(|q| q.subspace.mask()).collect();
        for q in &qs {
            for d in q.subspace.dims() {
                dim_seen[d] = true;
            }
        }
        assert!(dim_seen.iter().all(|&s| s), "some dimension never requested");
        masks.sort_unstable();
        masks.dedup();
        assert!(masks.len() > 10, "only {} distinct subspaces in 200 draws", masks.len());
    }

    #[test]
    fn full_space_queries_allowed() {
        let w = WorkloadSpec { dim: 3, k: 3, queries: 5, n_superpeers: 2, seed: 0 };
        for q in w.generate() {
            assert_eq!(q.subspace, Subspace::full(3));
        }
    }

    #[test]
    #[should_panic(expected = "invalid k")]
    fn oversized_k_rejected() {
        let w = WorkloadSpec { dim: 3, k: 4, queries: 1, n_superpeers: 1, seed: 0 };
        let _ = w.generate();
    }

    #[test]
    fn initiators_spread_across_superpeers() {
        let qs = spec().generate();
        let mut seen = [false; 10];
        for q in &qs {
            seen[q.initiator] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() >= 8, "initiators too concentrated");
    }
}
