//! CSV ingestion: load real datasets into a [`PointSet`].
//!
//! A deliberately small, dependency-free reader for the common case —
//! numeric columns, one point per line, optional header, `#` comments.
//! Values must be finite; minimization direction is the caller's business
//! (invert "bigger is better" columns with [`invert_column`] before
//! querying, as the hotel example does with ratings).

use skypeer_skyline::PointSet;
use std::io::BufRead;

/// Options for [`read_points`].
#[derive(Clone, Debug)]
pub struct CsvOptions {
    /// Column separator (default `,`).
    pub separator: char,
    /// Whether the first non-comment line is a header to skip.
    pub has_header: bool,
    /// Zero-based indices of the columns to load, in order. Empty means
    /// "all columns".
    pub columns: Vec<usize>,
    /// Column holding the point id; `None` assigns sequential ids.
    pub id_column: Option<usize>,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions { separator: ',', has_header: true, columns: Vec::new(), id_column: None }
    }
}

/// A parse failure, with 1-based line number and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line where parsing failed (0 for structural errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

/// Reads points from CSV text. Negative values are shifted to zero-based
/// per column? No — they are an error: the skyline machinery requires
/// non-negative values, and silent shifting would corrupt semantics.
/// Pre-process your data instead (e.g. with [`invert_column`]).
pub fn read_points<R: BufRead>(reader: R, opts: &CsvOptions) -> Result<PointSet, CsvError> {
    let mut dim: Option<usize> = None;
    let mut set: Option<PointSet> = None;
    let mut next_id = 0u64;
    let mut header_pending = opts.has_header;

    for (lineno, line) in reader.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.map_err(|e| CsvError { line: lineno, message: e.to_string() })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if header_pending {
            header_pending = false;
            continue;
        }
        let fields: Vec<&str> = trimmed.split(opts.separator).map(str::trim).collect();
        let wanted: Vec<usize> = if opts.columns.is_empty() {
            (0..fields.len()).filter(|i| Some(*i) != opts.id_column).collect()
        } else {
            opts.columns.clone()
        };
        if wanted.is_empty() {
            return Err(CsvError { line: lineno, message: "no value columns selected".into() });
        }
        let d = *dim.get_or_insert(wanted.len());
        if wanted.len() != d {
            return Err(CsvError {
                line: lineno,
                message: format!("expected {d} columns, found {}", wanted.len()),
            });
        }
        let mut coords = Vec::with_capacity(d);
        for &c in &wanted {
            let raw = fields
                .get(c)
                .ok_or_else(|| CsvError { line: lineno, message: format!("missing column {c}") })?;
            let v: f64 = raw.parse().map_err(|_| CsvError {
                line: lineno,
                message: format!("'{raw}' is not a number (column {c})"),
            })?;
            if !v.is_finite() || v < 0.0 {
                return Err(CsvError {
                    line: lineno,
                    message: format!("value {v} out of domain (finite, ≥ 0) in column {c}"),
                });
            }
            coords.push(v);
        }
        let id = match opts.id_column {
            Some(c) => {
                let raw = fields.get(c).ok_or_else(|| CsvError {
                    line: lineno,
                    message: format!("missing id column {c}"),
                })?;
                raw.parse().map_err(|_| CsvError {
                    line: lineno,
                    message: format!("'{raw}' is not a valid id"),
                })?
            }
            None => {
                let id = next_id;
                next_id += 1;
                id
            }
        };
        set.get_or_insert_with(|| PointSet::new(d)).push(&coords, id);
    }
    set.ok_or(CsvError { line: 0, message: "no data rows".into() })
}

/// Replaces column `col` with `max_over_column - value`, turning a
/// "bigger is better" attribute into the min-domain the skyline expects.
/// Returns the new point set (ids preserved).
///
/// # Panics
///
/// Panics if `col` is out of range.
pub fn invert_column(set: &PointSet, col: usize) -> PointSet {
    assert!(col < set.dim(), "column {col} out of range for dim {}", set.dim());
    let max = (0..set.len()).map(|i| set.point(i)[col]).fold(0.0f64, f64::max);
    let mut out = PointSet::with_capacity(set.dim(), set.len());
    let mut buf = vec![0.0; set.dim()];
    for (i, id, coords) in set.iter() {
        buf.copy_from_slice(coords);
        buf[col] = max - coords[col];
        out.push(&buf, id);
        let _ = i;
    }
    out
}

#[cfg(test)]
mod unit {
    use super::*;

    fn parse(text: &str, opts: &CsvOptions) -> Result<PointSet, CsvError> {
        read_points(std::io::Cursor::new(text), opts)
    }

    #[test]
    fn basic_csv_with_header() {
        let set = parse("price,dist\n10,2.5\n20,1.0\n", &CsvOptions::default()).expect("parses");
        assert_eq!(set.len(), 2);
        assert_eq!(set.dim(), 2);
        assert_eq!(set.point(0), &[10.0, 2.5]);
        assert_eq!(set.id(1), 1);
    }

    #[test]
    fn comments_blanks_and_no_header() {
        let opts = CsvOptions { has_header: false, ..CsvOptions::default() };
        let set = parse("# a comment\n\n1,2\n# mid comment\n3,4\n", &opts).expect("parses");
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn column_selection_and_id_column() {
        let opts = CsvOptions { columns: vec![2, 1], id_column: Some(0), ..CsvOptions::default() };
        let set = parse("id,a,b\n100,1,2\n200,3,4\n", &opts).expect("parses");
        assert_eq!(set.id(0), 100);
        assert_eq!(set.point(0), &[2.0, 1.0], "columns load in requested order");
    }

    #[test]
    fn id_column_excluded_from_values_by_default() {
        let opts = CsvOptions { id_column: Some(0), ..CsvOptions::default() };
        let set = parse("id,a,b\n7,1,2\n", &opts).expect("parses");
        assert_eq!(set.dim(), 2);
        assert_eq!(set.id(0), 7);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("a,b\n1,2\n1,oops\n", &CsvOptions::default()).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("oops"));

        let neg = parse("a,b\n-1,2\n", &CsvOptions::default()).unwrap_err();
        assert!(neg.message.contains("out of domain"));

        let ragged = parse("a,b\n1,2\n1,2,3\n", &CsvOptions::default()).unwrap_err();
        assert_eq!(ragged.line, 3);

        let empty = parse("a,b\n", &CsvOptions::default()).unwrap_err();
        assert_eq!(empty.line, 0);
    }

    #[test]
    fn custom_separator() {
        let opts = CsvOptions { separator: ';', has_header: false, ..CsvOptions::default() };
        let set = parse("1;2;3\n", &opts).expect("parses");
        assert_eq!(set.dim(), 3);
    }

    #[test]
    fn invert_column_flips_direction() {
        let mut s = PointSet::new(2);
        s.push(&[1.0, 9.0], 0); // rating 9 = best
        s.push(&[2.0, 3.0], 1);
        let inv = invert_column(&s, 1);
        assert_eq!(inv.point(0), &[1.0, 0.0], "best rating becomes smallest value");
        assert_eq!(inv.point(1), &[2.0, 6.0]);
        assert_eq!(inv.id(0), 0);
    }
}
