//! Dataset generators.
//!
//! Per-peer generation: SKYPEER's clustered distribution is defined in
//! terms of the network ("each super-peer picks cluster centroids randomly
//! and all associated peers obtain points [around them]"), so the generator
//! API produces data *per peer*, given the peer's super-peer assignment.
//! The uniform/correlated/anticorrelated kinds simply ignore the
//! assignment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};
use skypeer_skyline::PointSet;

/// The paper's Gaussian spread for clustered data (variance 0.025).
pub const CLUSTER_STDDEV: f64 = 0.15811388300841897; // sqrt(0.025)

/// Which synthetic distribution to draw from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Independent uniform coordinates in `[0, 1)`.
    Uniform,
    /// Per-super-peer Gaussian clusters (σ² = 0.025), clamped to `[0, 1]`.
    Clustered {
        /// How many centroids each super-peer draws.
        centroids_per_superpeer: usize,
    },
    /// Correlated: points near the main diagonal (good on one dimension ⇒
    /// good on the others). Tiny skylines.
    Correlated,
    /// Anticorrelated: points near the anti-diagonal plane (good on one
    /// dimension ⇒ bad on others). Huge skylines — the adversarial case.
    Anticorrelated,
}

/// A complete description of a horizontally-partitioned synthetic dataset.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dimensionality `d` of the full space.
    pub dim: usize,
    /// Points held by each peer (`n / N_p`; the paper default is 250).
    pub points_per_peer: usize,
    /// Distribution.
    pub kind: DatasetKind,
    /// Master seed; every peer derives an independent stream from it.
    pub seed: u64,
}

impl DatasetSpec {
    /// The paper's default workload: `d = 8`, 250 points/peer, uniform.
    pub fn paper_default(seed: u64) -> Self {
        DatasetSpec { dim: 8, points_per_peer: 250, kind: DatasetKind::Uniform, seed }
    }

    /// Generates the local dataset of one peer.
    ///
    /// * `peer` — global peer index (keys the RNG stream and point ids);
    /// * `super_peer` — index of the super-peer the peer attaches to
    ///   (selects the centroid pool for [`DatasetKind::Clustered`]).
    ///
    /// Point ids are globally unique: `peer * points_per_peer + i`.
    pub fn generate_peer(&self, peer: usize, super_peer: usize) -> PointSet {
        let mut rng = self.peer_rng(peer);
        let mut set = PointSet::with_capacity(self.dim, self.points_per_peer);
        let base_id = (peer * self.points_per_peer) as u64;
        let mut buf = vec![0.0f64; self.dim];
        match self.kind {
            DatasetKind::Uniform => {
                for i in 0..self.points_per_peer {
                    for v in buf.iter_mut() {
                        *v = rng.gen::<f64>();
                    }
                    set.push(&buf, base_id + i as u64);
                }
            }
            DatasetKind::Clustered { centroids_per_superpeer } => {
                let centroids = self.superpeer_centroids(super_peer, centroids_per_superpeer);
                let normal = Normal::new(0.0, CLUSTER_STDDEV).expect("valid stddev");
                for i in 0..self.points_per_peer {
                    let c = &centroids[rng.gen_range(0..centroids.len())];
                    for (v, &mu) in buf.iter_mut().zip(c) {
                        *v = (mu + normal.sample(&mut rng)).clamp(0.0, 1.0);
                    }
                    set.push(&buf, base_id + i as u64);
                }
            }
            DatasetKind::Correlated => {
                for i in 0..self.points_per_peer {
                    let base = rng.gen::<f64>();
                    for v in buf.iter_mut() {
                        // Jitter around the diagonal, clamped into the cube.
                        *v = (base + rng.gen_range(-0.1..0.1)).clamp(0.0, 1.0);
                    }
                    set.push(&buf, base_id + i as u64);
                }
            }
            DatasetKind::Anticorrelated => {
                for i in 0..self.points_per_peer {
                    // Draw on the plane Σv ≈ d/2 with per-axis jitter: a
                    // point good on one axis is bad on the rest.
                    let mut remaining = self.dim as f64 / 2.0;
                    for (ax, v) in buf.iter_mut().enumerate() {
                        let left = self.dim - ax - 1;
                        let lo = (remaining - left as f64).max(0.0);
                        let hi = remaining.min(1.0);
                        *v = if lo >= hi { lo } else { rng.gen_range(lo..hi) };
                        remaining -= *v;
                    }
                    set.push(&buf, base_id + i as u64);
                }
            }
        }
        set
    }

    /// The centroid pool of one super-peer: deterministic in the spec seed
    /// and the super-peer index, shared by every attached peer.
    pub fn superpeer_centroids(&self, super_peer: usize, count: usize) -> Vec<Vec<f64>> {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ 0x5bd1_e995_u64.wrapping_mul(super_peer as u64 + 1));
        (0..count.max(1)).map(|_| (0..self.dim).map(|_| rng.gen::<f64>()).collect()).collect()
    }

    /// Independent RNG stream for one peer.
    fn peer_rng(&self, peer: usize) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(peer as u64 + 1))
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    fn spec(kind: DatasetKind) -> DatasetSpec {
        DatasetSpec { dim: 4, points_per_peer: 100, kind, seed: 7 }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = spec(DatasetKind::Uniform);
        assert_eq!(s.generate_peer(3, 0), s.generate_peer(3, 0));
        assert_ne!(s.generate_peer(3, 0), s.generate_peer(4, 0), "peers get distinct streams");
    }

    #[test]
    fn ids_are_globally_unique() {
        let s = spec(DatasetKind::Uniform);
        let a = s.generate_peer(0, 0);
        let b = s.generate_peer(1, 0);
        let mut ids: Vec<u64> = a.iter().chain(b.iter()).map(|(_, id, _)| id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 200);
        assert_eq!(ids[0], 0);
        assert_eq!(ids[199], 199);
    }

    #[test]
    fn uniform_stays_in_unit_cube() {
        let s = spec(DatasetKind::Uniform);
        let set = s.generate_peer(0, 0);
        for (_, _, p) in set.iter() {
            assert!(p.iter().all(|v| (0.0..1.0).contains(v)));
        }
    }

    #[test]
    fn clustered_points_hug_their_centroids() {
        let s = spec(DatasetKind::Clustered { centroids_per_superpeer: 2 });
        let centroids = s.superpeer_centroids(5, 2);
        let set = s.generate_peer(11, 5);
        let mut near = 0;
        for (_, _, p) in set.iter() {
            let close = centroids
                .iter()
                .any(|c| p.iter().zip(c).all(|(v, m)| (v - m).abs() < 4.0 * CLUSTER_STDDEV + 1e-9));
            if close {
                near += 1;
            }
        }
        // Clamping can push points off-centroid, but the bulk must be close.
        assert!(near as f64 >= 0.8 * set.len() as f64, "only {near}/100 near a centroid");
    }

    #[test]
    fn clustered_same_superpeer_shares_centroids() {
        let s = spec(DatasetKind::Clustered { centroids_per_superpeer: 3 });
        assert_eq!(s.superpeer_centroids(2, 3), s.superpeer_centroids(2, 3));
        assert_ne!(s.superpeer_centroids(2, 3), s.superpeer_centroids(3, 3));
    }

    #[test]
    fn correlated_points_near_diagonal() {
        let s = spec(DatasetKind::Correlated);
        let set = s.generate_peer(0, 0);
        for (_, _, p) in set.iter() {
            let mean: f64 = p.iter().sum::<f64>() / p.len() as f64;
            assert!(
                p.iter().all(|v| (v - mean).abs() < 0.25),
                "spread too large for correlated point {p:?}"
            );
        }
    }

    #[test]
    fn anticorrelated_points_sum_to_half_dim() {
        let s = spec(DatasetKind::Anticorrelated);
        let set = s.generate_peer(0, 0);
        for (_, _, p) in set.iter() {
            let sum: f64 = p.iter().sum();
            assert!((sum - 2.0).abs() < 1e-6, "sum {sum} should be d/2 = 2");
            assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn anticorrelated_has_large_skyline() {
        use skypeer_skyline::{bnl, Dominance, Subspace};
        let uni = spec(DatasetKind::Uniform).generate_peer(0, 0);
        let anti = spec(DatasetKind::Anticorrelated).generate_peer(0, 0);
        let u = Subspace::full(4);
        let sky_uni = bnl::skyline(&uni, u, Dominance::Standard).len();
        let sky_anti = bnl::skyline(&anti, u, Dominance::Standard).len();
        assert!(
            sky_anti > sky_uni,
            "anticorrelated skyline ({sky_anti}) should dwarf uniform ({sky_uni})"
        );
    }
}
