//! Dataset statistics: per-dimension summaries and correlation structure.
//!
//! The skyline-friendliness of a dataset is a function of its correlation
//! structure (Börzsönyi et al.): positively correlated dimensions give
//! tiny skylines, anticorrelated ones give enormous skylines. These
//! helpers characterize a [`PointSet`] so workloads can be sanity-checked
//! against what their generator promises — the tests here pin down that
//! every generator in this crate produces the correlation sign it
//! advertises.

use skypeer_skyline::PointSet;

/// Per-dimension summary statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct DimSummary {
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

/// Summarizes every dimension of `set`.
///
/// # Panics
///
/// Panics on an empty set (no meaningful summary exists).
pub fn summarize(set: &PointSet) -> Vec<DimSummary> {
    assert!(!set.is_empty(), "cannot summarize an empty point set");
    let d = set.dim();
    let n = set.len() as f64;
    let mut mins = vec![f64::INFINITY; d];
    let mut maxs = vec![f64::NEG_INFINITY; d];
    let mut sums = vec![0.0f64; d];
    for (_, _, p) in set.iter() {
        for (i, &v) in p.iter().enumerate() {
            mins[i] = mins[i].min(v);
            maxs[i] = maxs[i].max(v);
            sums[i] += v;
        }
    }
    let means: Vec<f64> = sums.iter().map(|s| s / n).collect();
    let mut sq = vec![0.0f64; d];
    for (_, _, p) in set.iter() {
        for (i, &v) in p.iter().enumerate() {
            sq[i] += (v - means[i]).powi(2);
        }
    }
    (0..d)
        .map(|i| DimSummary {
            min: mins[i],
            max: maxs[i],
            mean: means[i],
            stddev: (sq[i] / n).sqrt(),
        })
        .collect()
}

/// Pearson correlation between dimensions `a` and `b` of `set`, in
/// `[-1, 1]`. Returns 0 for degenerate (zero-variance) dimensions.
///
/// # Panics
///
/// Panics on an empty set or out-of-range dimensions.
pub fn correlation(set: &PointSet, a: usize, b: usize) -> f64 {
    assert!(!set.is_empty(), "cannot correlate an empty point set");
    assert!(a < set.dim() && b < set.dim(), "dimension out of range");
    let n = set.len() as f64;
    let (mut sa, mut sb) = (0.0, 0.0);
    for (_, _, p) in set.iter() {
        sa += p[a];
        sb += p[b];
    }
    let (ma, mb) = (sa / n, sb / n);
    let (mut cov, mut va, mut vb) = (0.0, 0.0, 0.0);
    for (_, _, p) in set.iter() {
        let (da, db) = (p[a] - ma, p[b] - mb);
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Mean pairwise Pearson correlation over all dimension pairs — a single
/// scalar locating the dataset on the correlated ↔ anticorrelated axis.
pub fn mean_pairwise_correlation(set: &PointSet) -> f64 {
    let d = set.dim();
    if d < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for a in 0..d {
        for b in (a + 1)..d {
            total += correlation(set, a, b);
            pairs += 1;
        }
    }
    total / pairs as f64
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::{DatasetKind, DatasetSpec};

    fn generate(kind: DatasetKind) -> PointSet {
        DatasetSpec { dim: 4, points_per_peer: 2000, kind, seed: 5 }.generate_peer(0, 0)
    }

    #[test]
    fn summaries_are_consistent() {
        let set = generate(DatasetKind::Uniform);
        let sums = summarize(&set);
        assert_eq!(sums.len(), 4);
        for s in &sums {
            assert!(s.min >= 0.0 && s.max < 1.0);
            assert!((s.mean - 0.5).abs() < 0.05, "uniform mean ≈ 0.5, got {}", s.mean);
            // Uniform stddev = 1/sqrt(12) ≈ 0.2887.
            assert!((s.stddev - 0.2887).abs() < 0.03);
        }
    }

    #[test]
    fn correlation_is_symmetric_and_reflexive() {
        let set = generate(DatasetKind::Uniform);
        assert!((correlation(&set, 1, 1) - 1.0).abs() < 1e-12);
        assert!((correlation(&set, 0, 2) - correlation(&set, 2, 0)).abs() < 1e-12);
    }

    #[test]
    fn generators_have_the_advertised_correlation_sign() {
        let uni = mean_pairwise_correlation(&generate(DatasetKind::Uniform));
        let cor = mean_pairwise_correlation(&generate(DatasetKind::Correlated));
        let anti = mean_pairwise_correlation(&generate(DatasetKind::Anticorrelated));
        assert!(uni.abs() < 0.1, "uniform should be uncorrelated, got {uni}");
        assert!(cor > 0.5, "correlated generator too weak: {cor}");
        assert!(anti < -0.1, "anticorrelated generator has the wrong sign: {anti}");
    }

    #[test]
    fn degenerate_dimension_yields_zero() {
        let mut s = PointSet::new(2);
        s.push(&[1.0, 2.0], 0);
        s.push(&[1.0, 5.0], 1);
        assert_eq!(correlation(&s, 0, 1), 0.0, "zero variance on dim 0");
    }

    #[test]
    #[should_panic(expected = "empty point set")]
    fn empty_set_panics() {
        let _ = summarize(&PointSet::new(2));
    }
}
