//! Horizontal partitioning helpers.
//!
//! The paper partitions the dataset "horizontally … evenly among the
//! peers". The generators in [`crate::generate`] already produce data
//! per peer; this module covers the inverse situation — distributing an
//! existing point set across peers — which the examples use to feed real
//! (non-synthetic-spec) data into the network.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use skypeer_skyline::PointSet;

/// Splits `set` into `parts` point sets of near-equal size (sizes differ by
/// at most one), preserving input order within each part.
///
/// # Panics
///
/// Panics if `parts == 0`.
pub fn partition_even(set: &PointSet, parts: usize) -> Vec<PointSet> {
    assert!(parts > 0, "cannot partition into zero parts");
    let n = set.len();
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut next = 0usize;
    for p in 0..parts {
        let take = base + usize::from(p < extra);
        let indices: Vec<usize> = (next..next + take).collect();
        out.push(set.gather(&indices));
        next += take;
    }
    out
}

/// Like [`partition_even`], but shuffles the points first (seeded), so that
/// ordered inputs don't produce skewed per-peer value ranges.
pub fn partition_shuffled(set: &PointSet, parts: usize, seed: u64) -> Vec<PointSet> {
    assert!(parts > 0, "cannot partition into zero parts");
    let mut order: Vec<usize> = (0..set.len()).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    let shuffled = set.gather(&order);
    partition_even(&shuffled, parts)
}

#[cfg(test)]
mod unit {
    use super::*;

    fn sample(n: usize) -> PointSet {
        let mut s = PointSet::new(2);
        for i in 0..n {
            s.push(&[i as f64, (n - i) as f64], i as u64);
        }
        s
    }

    #[test]
    fn sizes_differ_by_at_most_one() {
        let s = sample(103);
        let parts = partition_even(&s, 10);
        assert_eq!(parts.len(), 10);
        let sizes: Vec<usize> = parts.iter().map(PointSet::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 103);
        assert_eq!(*sizes.iter().max().unwrap() - *sizes.iter().min().unwrap(), 1);
    }

    #[test]
    fn nothing_lost_or_duplicated() {
        let s = sample(50);
        for parts in [1, 3, 7, 50, 60] {
            let split = partition_even(&s, parts);
            let mut ids: Vec<u64> =
                split.iter().flat_map(|p| p.iter().map(|(_, id, _)| id)).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..50).collect::<Vec<u64>>(), "parts={parts}");
        }
    }

    #[test]
    fn more_parts_than_points_gives_empties() {
        let s = sample(3);
        let split = partition_even(&s, 5);
        assert_eq!(split.iter().filter(|p| !p.is_empty()).count(), 3);
        assert_eq!(split.iter().filter(|p| p.is_empty()).count(), 2);
    }

    #[test]
    fn shuffled_partition_is_deterministic_and_complete() {
        let s = sample(40);
        let a = partition_shuffled(&s, 4, 9);
        let b = partition_shuffled(&s, 4, 9);
        assert_eq!(a, b);
        let mut ids: Vec<u64> = a.iter().flat_map(|p| p.iter().map(|(_, id, _)| id)).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..40).collect::<Vec<u64>>());
        let c = partition_shuffled(&s, 4, 10);
        assert_ne!(a, c, "different seed should shuffle differently");
    }
}
