//! Query-local planning: choosing the dominance index.
//!
//! Algorithm 1 tests every scanned point against the skyline found so
//! far. With a *small* expected skyline the linear window is faster (no
//! tree maintenance, perfect locality); with a *large* one the R-tree's
//! sub-linear window queries win — the trade-off the paper's Section 5.2.1
//! motivates with "computationally expensive if the skyline set contains a
//! large number of points and the dimensionality of the query is high".
//!
//! [`choose_index`] makes that call per query from the independence
//! estimate of [`skypeer_skyline::estimate`]: it predicts the expected
//! skyline size of the store's points projected onto the query subspace
//! and switches to the R-tree beyond a calibrated window size.

use skypeer_skyline::estimate::expected_skyline_size;
use skypeer_skyline::{DominanceIndex, Subspace};

/// Expected-window-size threshold above which the R-tree pays off. The
/// criterion `skyline_kernels` bench puts the crossover for uniform data
/// in the tens-of-points range on modern hardware; 48 is a conservative
/// middle.
pub const RTREE_THRESHOLD: f64 = 48.0;

/// How a super-peer picks the dominance index for each query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum IndexPolicy {
    /// Always the given index.
    Fixed(DominanceIndex),
    /// Per-query: linear for small expected skylines, R-tree otherwise
    /// (see [`choose_index`]).
    #[default]
    Auto,
}

impl IndexPolicy {
    /// Resolves the policy for one query.
    pub fn resolve(self, store_len: usize, u: Subspace) -> DominanceIndex {
        match self {
            IndexPolicy::Fixed(index) => index,
            IndexPolicy::Auto => choose_index(store_len, u),
        }
    }
}

/// Chooses the dominance index for a scan of `store_len` points on
/// subspace `u`, using the independence estimate of the skyline size as a
/// proxy for the dominance-window size.
pub fn choose_index(store_len: usize, u: Subspace) -> DominanceIndex {
    let expected = expected_skyline_size(store_len, u.k());
    if expected <= RTREE_THRESHOLD {
        DominanceIndex::Linear
    } else {
        DominanceIndex::RTree
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use skypeer_data::{DatasetKind, DatasetSpec};
    use skypeer_skyline::sorted::threshold_skyline;
    use skypeer_skyline::{Dominance, SortedDataset};

    #[test]
    fn low_dimensional_queries_stay_linear() {
        // k = 1..2 skylines are tiny at any realistic store size.
        for n in [100usize, 10_000, 1_000_000] {
            assert_eq!(choose_index(n, Subspace::from_dims(&[3])), DominanceIndex::Linear);
            assert_eq!(choose_index(n, Subspace::from_dims(&[0, 1])), DominanceIndex::Linear);
        }
    }

    #[test]
    fn high_dimensional_large_stores_use_the_tree() {
        assert_eq!(
            choose_index(100_000, Subspace::from_dims(&[0, 1, 2, 3, 4])),
            DominanceIndex::RTree
        );
        assert_eq!(choose_index(50_000, Subspace::full(6)), DominanceIndex::RTree);
    }

    #[test]
    fn tiny_stores_stay_linear_even_in_high_dims() {
        assert_eq!(choose_index(30, Subspace::full(8)), DominanceIndex::Linear);
    }

    #[test]
    fn policy_resolution() {
        let u = Subspace::full(6);
        assert_eq!(
            IndexPolicy::Fixed(DominanceIndex::Linear).resolve(1_000_000, u),
            DominanceIndex::Linear
        );
        assert_eq!(IndexPolicy::Auto.resolve(50_000, u), DominanceIndex::RTree);
        assert_eq!(IndexPolicy::default(), IndexPolicy::Auto);
    }

    #[test]
    fn both_choices_are_equivalent_in_results() {
        // Whatever the planner picks, the answers agree (the index is a
        // performance choice only).
        let spec =
            DatasetSpec { dim: 6, points_per_peer: 400, kind: DatasetKind::Uniform, seed: 4 };
        let set = spec.generate_peer(0, 0);
        let sorted = SortedDataset::from_set(&set);
        for u in [Subspace::from_dims(&[0, 5]), Subspace::full(6)] {
            let lin = threshold_skyline(
                &sorted,
                u,
                Dominance::Standard,
                f64::INFINITY,
                DominanceIndex::Linear,
            );
            let tree = threshold_skyline(
                &sorted,
                u,
                Dominance::Standard,
                f64::INFINITY,
                DominanceIndex::RTree,
            );
            assert_eq!(lin.result, tree.result);
        }
    }
}
