//! Online correctness auditing: per-point lineage resolution, sampled
//! shadow verification, and deterministic violation records.
//!
//! The paper's central claim is exactness; the rest of the observability
//! stack watches performance. This module watches *correctness at
//! runtime*: a [`LineageResolver`] explains any point id's journey
//! through the pipeline (the `why` / `why-not` subcommands), and an
//! [`Auditor`] samples live queries at a configured rate,
//! shadow-recomputes them against the raw-data oracle
//! ([`crate::verify::exact_skyline_ids`]), cross-checks cache-fronted
//! answers against direct distributed answers, and turns every mismatch
//! into an [`AuditViolation`] carrying the lineage of each disputed
//! point — naming the offending point, its origin peer, and the queried
//! subspace.
//!
//! For drills, [`AnswerFault`] corrupts one in-flight ext-skyline entry
//! (removing a point id from every `Answer` payload) without touching
//! timing or byte accounting: invisible to every performance metric,
//! caught only by the audit.

use crate::engine::SkypeerEngine;
use crate::msg::Msg;
use crate::verify;
use skypeer_data::Query;
use skypeer_obs::json::{arr, Obj};
use skypeer_obs::lineage::{dim_set, LineageStage, PointLineage, PointOrigin, Witness};
use skypeer_skyline::{dominance, PointSet, Subspace};
use std::collections::{HashMap, HashSet};

/// Silent in-flight corruption: removes `drop_id` from every
/// [`Msg::Answer`] payload crossing the wire. The message stays
/// well-formed (`done` / `complete` flags untouched) and its declared
/// wire size was fixed at send time, so the drill changes no timing and
/// no byte accounting — only the decoded answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnswerFault {
    /// The point id silently removed from in-flight answers.
    pub drop_id: u64,
}

impl AnswerFault {
    /// Applies the fault to one payload: returns the re-encoded message
    /// with the victim removed, or `None` when the payload is not an
    /// answer containing it (leave it untouched).
    pub fn tamper(&self, payload: &[u8]) -> Option<Vec<u8>> {
        let Msg::Answer { qid, done, complete, points } = Msg::decode(payload)? else {
            return None;
        };
        let set = points.points();
        let keep: Vec<usize> = (0..set.len()).filter(|&i| set.id(i) != self.drop_id).collect();
        if keep.len() == set.len() {
            return None;
        }
        let kept = set.gather(&keep);
        Some(
            Msg::Answer {
                qid,
                done,
                complete,
                points: skypeer_skyline::SortedDataset::from_set(&kept),
            }
            .encode(),
        )
    }
}

/// Resolves the full provenance of any point id with respect to a
/// query: origin peer, owning super-peer, ext-skyline store membership,
/// and — for candidates that never reach an answer — the dominance
/// witness that killed them.
///
/// Construction regenerates every peer's raw dataset (the same
/// deterministic generation the engine itself used), so memory scales
/// with `n_peers × points_per_peer`: verification-sized networks only.
pub struct LineageResolver {
    peer_sets: Vec<PointSet>,
    peer_home: Vec<usize>,
    /// id → (origin peer, index within that peer's set).
    locate: HashMap<u64, (usize, usize)>,
    /// Per super-peer: ids present in its merged ext-skyline store.
    store_ids: Vec<HashSet<u64>>,
    all: PointSet,
}

impl LineageResolver {
    /// Builds a resolver for `engine`'s generated network.
    pub fn new(engine: &SkypeerEngine) -> Self {
        let cfg = engine.config();
        let peer_home = engine.topology().assign_peers(cfg.n_peers);
        let peer_sets: Vec<PointSet> =
            (0..cfg.n_peers).map(|p| cfg.dataset.generate_peer(p, peer_home[p])).collect();
        let mut locate = HashMap::new();
        let mut all = PointSet::new(cfg.dataset.dim);
        for (peer, set) in peer_sets.iter().enumerate() {
            for (i, id, _) in set.iter() {
                locate.insert(id, (peer, i));
            }
            all.extend_from(set);
        }
        let store_ids = (0..cfg.n_superpeers)
            .map(|sp| {
                let store = engine.store(sp).points();
                (0..store.len()).map(|i| store.id(i)).collect()
            })
            .collect();
        LineageResolver { peer_sets, peer_home, locate, store_ids, all }
    }

    /// The regenerated raw union of every peer's data.
    pub fn global(&self) -> &PointSet {
        &self.all
    }

    /// Full provenance of `id` with respect to subspace `u`.
    pub fn lineage(&self, id: u64, u: Subspace) -> PointLineage {
        let query_dims: Vec<usize> = u.dims().collect();
        let Some(&(peer, idx)) = self.locate.get(&id) else {
            return PointLineage {
                id,
                query_dims,
                origin: None,
                stage: LineageStage::NotGenerated,
            };
        };
        let coords = self.peer_sets[peer].point(idx).to_vec();
        let super_peer = self.peer_home[peer];
        let in_ext_store = self.store_ids[super_peer].contains(&id);
        let origin = Some(PointOrigin { coords: coords.clone(), peer, super_peer, in_ext_store });
        let full = Subspace::full(self.all.dim());
        let stage = if in_ext_store {
            // Survived preprocessing. Either it is in SKY_U or a standard
            // dominator on U excludes it — find the smallest-id one.
            match self.find_witness(&coords, id, u, false, None) {
                Some(w) => LineageStage::Dominated(w),
                None => LineageStage::InSkyline,
            }
        } else if let Some(w) = self.find_witness(&coords, id, full, true, Some(peer)) {
            // Ext-dominated by a same-peer point: never uploaded.
            LineageStage::PrunedAtPeer(w)
        } else {
            // Uploaded but ext-pruned during the super-peer merge; the
            // dominator lives on a sibling peer of the same super-peer.
            let group: Vec<usize> =
                (0..self.peer_sets.len()).filter(|&p| self.peer_home[p] == super_peer).collect();
            let w = group
                .iter()
                .filter_map(|&p| self.find_witness(&coords, id, full, true, Some(p)))
                .min_by_key(|w| w.id)
                .expect("a point absent from its store must have an ext-dominator in its group");
            LineageStage::PrunedAtSuperPeer(w)
        };
        PointLineage { id, query_dims, origin, stage }
    }

    /// Smallest-id point dominating `coords` on `u` (extended or
    /// standard), optionally restricted to one peer's set.
    fn find_witness(
        &self,
        coords: &[f64],
        victim: u64,
        u: Subspace,
        extended: bool,
        peer: Option<usize>,
    ) -> Option<Witness> {
        let test = |p: &[f64], q: &[f64]| {
            if extended {
                dominance::ext_dominates(p, q, u)
            } else {
                dominance::dominates(p, q, u)
            }
        };
        let dims: Vec<usize> = u.dims().collect();
        let mut best: Option<Witness> = None;
        let peers: Vec<usize> = match peer {
            Some(p) => vec![p],
            None => (0..self.peer_sets.len()).collect(),
        };
        for p in peers {
            for (_, id, cand) in self.peer_sets[p].iter() {
                if id == victim || !test(cand, coords) {
                    continue;
                }
                if best.as_ref().is_none_or(|b| id < b.id) {
                    best = Some(Witness {
                        id,
                        coords: cand.to_vec(),
                        origin_peer: p,
                        dims: dims.clone(),
                        extended,
                    });
                }
            }
        }
        best
    }
}

/// Audit configuration: what fraction of queries to shadow-verify and
/// the seed of the deterministic sampling hash.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AuditSpec {
    /// Fraction of queries sampled, in `[0, 1]`. `1.0` audits everything.
    pub sample_rate: f64,
    /// Sampling seed — same seed, same rate, same workload ⇒ the same
    /// queries are audited, so audit output is byte-deterministic.
    pub seed: u64,
}

impl Default for AuditSpec {
    fn default() -> Self {
        AuditSpec { sample_rate: 0.1, seed: 0xA0D17 }
    }
}

/// Point count below which the shadow oracle brute-forces (above it,
/// Algorithm 1 over a sorted copy — same answer, much faster).
const ORACLE_CUTOFF: usize = 512;

/// Counters of one audited stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AuditStats {
    /// Queries sampled for shadow verification.
    pub sampled: u64,
    /// Cache-fronted answers additionally cross-checked against a direct
    /// distributed run.
    pub crosschecks: u64,
    /// Violations recorded (a query can contribute several).
    pub violations: u64,
    /// True-skyline points absent from audited answers, summed.
    pub missing_points: u64,
    /// Answered points absent from the true skyline, summed.
    pub spurious_points: u64,
}

/// One detected correctness violation, with the lineage of every
/// disputed point.
#[derive(Clone, Debug, PartialEq)]
pub struct AuditViolation {
    /// Index of the query within its workload stream.
    pub query_index: usize,
    /// Dimensions of the queried subspace.
    pub dims: Vec<usize>,
    /// `"shadow"` (answer vs raw-data oracle) or `"cache"` (cache-fronted
    /// answer vs direct distributed answer).
    pub kind: &'static str,
    /// True-skyline points missing from the answer.
    pub missing: Vec<PointLineage>,
    /// Answered points that are not in the true skyline.
    pub spurious: Vec<PointLineage>,
}

impl AuditViolation {
    /// Deterministic single-line JSON record.
    pub fn to_json(&self) -> String {
        Obj::new()
            .u64("query", self.query_index as u64)
            .raw("dims", &arr(self.dims.iter().map(|d| d.to_string())))
            .str("kind", self.kind)
            .raw("missing", &arr(self.missing.iter().map(|l| l.to_json())))
            .raw("spurious", &arr(self.spurious.iter().map(|l| l.to_json())))
            .build()
    }

    /// One-line human rendering naming each disputed point, its origin
    /// peer, and the queried subspace.
    pub fn render(&self) -> String {
        let name = |ls: &[PointLineage]| {
            arr(ls.iter().map(|l| match &l.origin {
                Some(o) => format!("#{} (peer {}, SP{})", l.id, o.peer, o.super_peer),
                None => format!("#{} (not generated)", l.id),
            }))
        };
        format!(
            "query #{} on {}: {} mismatch - missing {}, spurious {}",
            self.query_index,
            dim_set(&self.dims),
            self.kind,
            name(&self.missing),
            name(&self.spurious)
        )
    }
}

/// The online auditor: deterministic sampling, shadow recomputation,
/// cache cross-checking, violation records.
pub struct Auditor {
    resolver: LineageResolver,
    spec: AuditSpec,
    /// Aggregate counters.
    pub stats: AuditStats,
    /// Violations in detection order.
    pub violations: Vec<AuditViolation>,
}

/// SplitMix64 — the sampling hash. Deterministic, seedable, and good
/// enough to make "every r-th query on average" unbiased across the
/// stream without any OS randomness.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Auditor {
    /// Builds an auditor over `engine`'s network.
    pub fn new(engine: &SkypeerEngine, spec: AuditSpec) -> Self {
        Auditor {
            resolver: LineageResolver::new(engine),
            spec,
            stats: AuditStats::default(),
            violations: Vec::new(),
        }
    }

    /// The lineage resolver (shared with `why` / `why-not`).
    pub fn resolver(&self) -> &LineageResolver {
        &self.resolver
    }

    /// Whether query `index` of the stream is sampled for audit.
    /// Deterministic in `(seed, index)`.
    pub fn should_sample(&self, index: usize) -> bool {
        if self.spec.sample_rate >= 1.0 {
            return true;
        }
        if self.spec.sample_rate <= 0.0 {
            return false;
        }
        let h = splitmix64(self.spec.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        (h >> 11) as f64 / ((1u64 << 53) as f64) < self.spec.sample_rate
    }

    /// The exact answer for `query` per the raw-data oracle, sorted.
    pub fn shadow_skyline(&self, query: Query) -> Vec<u64> {
        verify::exact_skyline_ids(&self.resolver.all, query.subspace, ORACLE_CUTOFF)
    }

    /// Shadow-verifies one sampled answer against the raw-data oracle.
    /// Returns `true` when a violation was recorded. `answer_ids` must be
    /// sorted ascending (as `QueryOutcome::result_ids` is).
    pub fn check_answer(&mut self, index: usize, query: Query, answer_ids: &[u64]) -> bool {
        self.stats.sampled += 1;
        let truth = self.shadow_skyline(query);
        self.record_diff(index, query, &truth, answer_ids, "shadow")
    }

    /// Cross-checks a cache-fronted answer against the answer of a direct
    /// distributed run of the same query. Returns `true` when a violation
    /// was recorded.
    pub fn crosscheck_cache(
        &mut self,
        index: usize,
        query: Query,
        cached_ids: &[u64],
        direct_ids: &[u64],
    ) -> bool {
        self.stats.crosschecks += 1;
        self.record_diff(index, query, direct_ids, cached_ids, "cache")
    }

    fn record_diff(
        &mut self,
        index: usize,
        query: Query,
        want: &[u64],
        got: &[u64],
        kind: &'static str,
    ) -> bool {
        if want == got {
            return false;
        }
        let want_set: HashSet<u64> = want.iter().copied().collect();
        let got_set: HashSet<u64> = got.iter().copied().collect();
        let missing: Vec<PointLineage> = want
            .iter()
            .filter(|id| !got_set.contains(id))
            .map(|&id| self.resolver.lineage(id, query.subspace))
            .collect();
        let spurious: Vec<PointLineage> = got
            .iter()
            .filter(|id| !want_set.contains(id))
            .map(|&id| self.resolver.lineage(id, query.subspace))
            .collect();
        self.stats.violations += 1;
        self.stats.missing_points += missing.len() as u64;
        self.stats.spurious_points += spurious.len() as u64;
        self.violations.push(AuditViolation {
            query_index: index,
            dims: query.subspace.dims().collect(),
            kind,
            missing,
            spurious,
        });
        true
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::engine::{EngineConfig, RoutingMode, SkypeerEngine};
    use crate::variants::Variant;
    use skypeer_data::{DatasetKind, DatasetSpec, WorkloadSpec};
    use skypeer_netsim::cost::CostModel;
    use skypeer_netsim::des::LinkModel;
    use skypeer_netsim::topology::TopologySpec;
    use skypeer_skyline::{DominanceIndex, SortedDataset};

    fn small_engine() -> SkypeerEngine {
        let n_superpeers = 4;
        let mut topology = TopologySpec::paper_default(n_superpeers, 22);
        topology.avg_degree = topology.avg_degree.min(n_superpeers as f64 - 1.0);
        SkypeerEngine::build(EngineConfig {
            n_peers: 12,
            n_superpeers,
            dataset: DatasetSpec {
                dim: 4,
                points_per_peer: 25,
                kind: DatasetKind::Uniform,
                seed: 21,
            },
            topology,
            index: DominanceIndex::RTree,
            cost: CostModel::default(),
            link: LinkModel::paper_4kbps(),
            routing: RoutingMode::Flood,
        })
    }

    #[test]
    fn lineage_is_consistent_with_the_engine_answer() {
        let engine = small_engine();
        let resolver = LineageResolver::new(&engine);
        let u = Subspace::from_dims(&[0, 2]);
        let q = Query { subspace: u, initiator: 0 };
        let answer = engine.run_query(q, Variant::Ftpm).result_ids;
        for id in 0..(12 * 25) as u64 {
            let l = resolver.lineage(id, u);
            let in_answer = answer.binary_search(&id).is_ok();
            assert_eq!(
                matches!(l.stage, LineageStage::InSkyline),
                in_answer,
                "lineage and answer disagree on #{id}: {:?}",
                l.stage
            );
            // Every witness claim must actually hold.
            if let Some(w) = l.stage.witness() {
                let wu = Subspace::from_dims(&w.dims);
                let victim = l.origin.as_ref().expect("witnessed points are generated");
                assert!(
                    if w.extended {
                        dominance::ext_dominates(&w.coords, &victim.coords, wu)
                    } else {
                        dominance::dominates(&w.coords, &victim.coords, wu)
                    },
                    "witness #{} does not dominate #{id}",
                    w.id
                );
            }
        }
    }

    #[test]
    fn lineage_stages_partition_the_pipeline() {
        let engine = small_engine();
        let resolver = LineageResolver::new(&engine);
        let u = Subspace::from_dims(&[1, 3]);
        let mut counts = [0usize; 5];
        for id in 0..(12 * 25) as u64 {
            let l = resolver.lineage(id, u);
            let origin = l.origin.as_ref().expect("generated");
            match l.stage {
                LineageStage::NotGenerated => counts[0] += 1,
                LineageStage::PrunedAtPeer(_) => {
                    assert!(!origin.in_ext_store);
                    counts[1] += 1;
                }
                LineageStage::PrunedAtSuperPeer(_) => {
                    assert!(!origin.in_ext_store);
                    counts[2] += 1;
                }
                LineageStage::Dominated(_) => {
                    assert!(origin.in_ext_store);
                    counts[3] += 1;
                }
                LineageStage::InSkyline => {
                    assert!(origin.in_ext_store, "answers come from ext stores");
                    counts[4] += 1;
                }
            }
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > 0, "uniform data always ext-prunes something at peers");
        assert!(counts[3] > 0 && counts[4] > 0, "store splits into dominated and skyline");
        // An id beyond the dataset is NotGenerated.
        let l = resolver.lineage(10_000, u);
        assert_eq!(l.stage, LineageStage::NotGenerated);
        assert!(l.origin.is_none());
    }

    #[test]
    fn sampling_is_deterministic_and_roughly_calibrated() {
        let engine = small_engine();
        let a = Auditor::new(&engine, AuditSpec { sample_rate: 0.25, seed: 7 });
        let b = Auditor::new(&engine, AuditSpec { sample_rate: 0.25, seed: 7 });
        let hits: Vec<bool> = (0..1000).map(|i| a.should_sample(i)).collect();
        assert_eq!(hits, (0..1000).map(|i| b.should_sample(i)).collect::<Vec<_>>());
        let n = hits.iter().filter(|&&h| h).count();
        assert!((150..350).contains(&n), "got {n} samples at rate 0.25");
        let all = Auditor::new(&engine, AuditSpec { sample_rate: 1.0, seed: 7 });
        assert!((0..100).all(|i| all.should_sample(i)));
        let none = Auditor::new(&engine, AuditSpec { sample_rate: 0.0, seed: 7 });
        assert!(!(0..100).any(|i| none.should_sample(i)));
    }

    #[test]
    fn clean_answers_pass_and_corrupted_answers_are_named() {
        let engine = small_engine();
        let mut auditor = Auditor::new(&engine, AuditSpec { sample_rate: 1.0, seed: 1 });
        let workload = WorkloadSpec { dim: 4, k: 2, queries: 4, n_superpeers: 4, seed: 3 };
        for (i, q) in workload.generate().into_iter().enumerate() {
            let out = engine.run_query(q, Variant::Ftpm);
            assert!(!auditor.check_answer(i, q, &out.result_ids), "clean run must audit clean");
        }
        assert_eq!(auditor.stats.violations, 0);

        // Corrupt an answer by hand: drop its first point.
        let q = Query { subspace: Subspace::from_dims(&[0, 1]), initiator: 0 };
        let mut ids = engine.run_query(q, Variant::Ftpm).result_ids;
        let victim = ids.remove(0);
        assert!(auditor.check_answer(99, q, &ids));
        let v = auditor.violations.last().unwrap();
        assert_eq!(v.query_index, 99);
        assert_eq!(v.missing.len(), 1);
        assert_eq!(v.missing[0].id, victim);
        assert!(v.spurious.is_empty());
        let text = v.render();
        assert!(text.contains(&format!("#{victim}")), "{text}");
        assert!(text.contains("peer "), "{text}");
        assert!(text.contains("on {0,1}"), "{text}");
        let json = v.to_json();
        assert!(json.contains(r#""kind":"shadow""#), "{json}");
        assert!(json.contains(r#""stage":"in-skyline""#), "{json}");
    }

    #[test]
    fn answer_fault_drops_exactly_one_id_and_audit_catches_it() {
        let engine = small_engine();
        let q = Query { subspace: Subspace::from_dims(&[0, 1, 2]), initiator: 1 };
        let clean = engine.run_query_observed(q, Variant::Ftpm, None);
        // Pick a victim homed away from the initiator so it must cross
        // the wire.
        let resolver = LineageResolver::new(&engine);
        let victim = *clean
            .result_ids
            .iter()
            .find(|&&id| {
                let l = resolver.lineage(id, q.subspace);
                l.origin.as_ref().map(|o| o.super_peer) != Some(q.initiator)
            })
            .expect("some answer point is remote");
        engine.set_fault(Some(AnswerFault { drop_id: victim }));
        let faulty = engine.run_query_observed(q, Variant::Ftpm, None);
        engine.set_fault(None);
        assert!(!faulty.result_ids.contains(&victim), "the fault must remove the victim");
        assert_eq!(faulty.volume_bytes, clean.volume_bytes, "tamper must not change bytes");
        assert_eq!(faulty.messages, clean.messages, "tamper must not change messages");

        let mut auditor = Auditor::new(&engine, AuditSpec { sample_rate: 1.0, seed: 1 });
        assert!(auditor.check_answer(0, q, &faulty.result_ids));
        let v = &auditor.violations[0];
        assert!(v.missing.iter().any(|l| l.id == victim), "violation names the dropped point");
    }

    #[test]
    fn tamper_leaves_non_answer_messages_alone() {
        let fault = AnswerFault { drop_id: 3 };
        let query = Msg::Query {
            qid: 1,
            subspace: Subspace::from_dims(&[0]),
            threshold: f64::INFINITY,
            variant: Variant::Ftpm,
            flavour: skypeer_skyline::Dominance::Standard,
        };
        assert_eq!(fault.tamper(&query.encode()), None);
        let mut set = PointSet::new(2);
        set.push(&[1.0, 2.0], 3);
        set.push(&[2.0, 1.0], 4);
        let answer = Msg::Answer {
            qid: 1,
            done: true,
            complete: true,
            points: SortedDataset::from_set(&set),
        };
        let tampered = fault.tamper(&answer.encode()).expect("victim present");
        let Some(Msg::Answer { points, .. }) = Msg::decode(&tampered) else {
            panic!("tampered message must stay a well-formed answer");
        };
        assert_eq!(points.len(), 1);
        assert_eq!(points.points().id(0), 4);
        // An answer without the victim passes through untouched.
        let mut other = PointSet::new(2);
        other.push(&[1.0, 2.0], 9);
        let benign = Msg::Answer {
            qid: 1,
            done: false,
            complete: true,
            points: SortedDataset::from_set(&other),
        };
        assert_eq!(fault.tamper(&benign.encode()), None);
    }
}
