//! Churn scenarios: a dynamic network where peers join, super-peers
//! crash, and queries interleave.
//!
//! The paper handles peer *joins* incrementally (Section 5.3) and names
//! churn/peer failure as future work. This module makes both executable:
//! a [`ChurnRunner`] owns the evolving network state and applies a
//! sequence of [`ChurnEvent`]s, answering queries against whatever data is
//! alive at that moment — with the child-timeout fault-tolerance extension
//! keeping queries terminating while super-peers are down.
//!
//! The runner also maintains the ground truth (which points are currently
//! reachable), so every query report carries an exactness verdict.

use std::sync::Arc;

use skypeer_cache::{CacheConfig, CacheStats, SubspaceCache};
use skypeer_data::Query;
use skypeer_netsim::cost::{CostModel, WorkReport};
use skypeer_netsim::des::{LinkModel, Sim};
use skypeer_netsim::topology::Topology;
use skypeer_skyline::extended::refine_from_ext;
use skypeer_skyline::merge::merge_sorted;
use skypeer_skyline::{Dominance, DominanceIndex, PointSet, SortedDataset, Subspace};

use crate::node::{InitQuery, SuperPeerNode};
use crate::preprocess::SuperPeerStore;
use crate::variants::Variant;

/// One step of a churn scenario.
pub enum ChurnEvent {
    /// A peer joins `superpeer`, bringing its local dataset (the store is
    /// updated incrementally, per Section 5.3).
    PeerJoin {
        /// Hosting super-peer.
        superpeer: usize,
        /// The joining peer's local data.
        points: PointSet,
    },
    /// A super-peer crashes: its stored data (and its attached peers')
    /// becomes unreachable until [`ChurnEvent::SuperPeerRecover`].
    SuperPeerCrash {
        /// The crashing super-peer.
        superpeer: usize,
    },
    /// A crashed super-peer comes back, with its store intact.
    SuperPeerRecover {
        /// The recovering super-peer.
        superpeer: usize,
    },
    /// A subspace skyline query.
    Query {
        /// The query (subspace + initiator).
        query: Query,
        /// Execution strategy.
        variant: Variant,
    },
}

/// What a query executed during churn returned.
#[derive(Clone, Debug)]
pub struct ChurnQueryReport {
    /// Sorted global ids of the returned skyline.
    pub result_ids: Vec<u64>,
    /// Whether every *reachable, alive* super-peer contributed.
    pub complete: bool,
    /// Whether the answer equals the exact skyline of all currently-alive
    /// stores (always true when `complete`; checked independently).
    pub exact_for_live_data: bool,
    /// Simulated response time (ns). For a cache-served answer this is the
    /// local refinement cost alone — no network round trip happened.
    pub total_time_ns: u64,
    /// Bytes moved.
    pub volume_bytes: u64,
    /// Whether the answer came from the runner's [`SubspaceCache`] without
    /// touching the backbone (always `false` without
    /// [`ChurnRunner::with_cache`]).
    pub served_from_cache: bool,
}

/// The evolving network state of a churn scenario.
pub struct ChurnRunner {
    topology: Topology,
    stores: Vec<SuperPeerStore>,
    alive: Vec<bool>,
    dim: usize,
    index: DominanceIndex,
    cost: CostModel,
    link: LinkModel,
    /// Child timeout for query execution while peers may be down.
    child_timeout_ns: u64,
    next_qid: u32,
    /// Optional result cache. Every membership event bumps its epoch, so a
    /// query issued after a join/crash/recovery can never be served a
    /// result computed against the previous network.
    cache: Option<SubspaceCache>,
}

impl ChurnRunner {
    /// Creates an empty network over `topology`: every super-peer starts
    /// with no data and alive.
    pub fn new(
        topology: Topology,
        dim: usize,
        index: DominanceIndex,
        cost: CostModel,
        link: LinkModel,
        child_timeout_ns: u64,
    ) -> Self {
        let n = topology.len();
        ChurnRunner {
            topology,
            stores: (0..n).map(|_| SuperPeerStore::empty(dim)).collect(),
            alive: vec![true; n],
            dim,
            index,
            cost,
            link,
            child_timeout_ns,
            next_qid: 1,
            cache: None,
        }
    }

    /// Enables the subsumption-aware result cache with the given byte
    /// budget. Queries then first consult the cache; misses execute an
    /// **Extended**-flavour backbone query whose global `ext-SKY_U` result
    /// is admitted (when complete) and refined locally — so later queries
    /// for the same or any contained subspace are answered without
    /// touching the network. Every churn event invalidates the cache by
    /// bumping its epoch.
    pub fn with_cache(mut self, max_bytes: u64) -> Self {
        self.cache = Some(SubspaceCache::new(CacheConfig { max_bytes, index: self.index }));
        self
    }

    /// Cache counters, when the cache is enabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// The store currently held by super-peer `sp`.
    pub fn store(&self, sp: usize) -> &SuperPeerStore {
        &self.stores[sp]
    }

    /// Whether super-peer `sp` is currently up.
    pub fn is_alive(&self, sp: usize) -> bool {
        self.alive[sp]
    }

    /// The exact skyline of all data reachable *right now* (alive stores).
    pub fn live_skyline(&self, u: Subspace) -> Vec<u64> {
        let lists: Vec<&SortedDataset> = self
            .stores
            .iter()
            .zip(&self.alive)
            .filter(|(_, &alive)| alive)
            .map(|(s, _)| &s.store)
            .collect();
        if lists.is_empty() {
            return Vec::new();
        }
        let merged = merge_sorted(&lists, u, Dominance::Standard, f64::INFINITY, self.index);
        let mut ids: Vec<u64> =
            (0..merged.result.len()).map(|i| merged.result.points().id(i)).collect();
        ids.sort_unstable();
        ids
    }

    /// Applies one event. Query events return a report; the others return
    /// `None`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range super-peer indices, on a query from a dead
    /// initiator, and on data dimensionality mismatches.
    pub fn apply(&mut self, event: ChurnEvent) -> Option<ChurnQueryReport> {
        match event {
            ChurnEvent::PeerJoin { superpeer, points } => {
                assert!(self.alive[superpeer], "cannot join a dead super-peer");
                self.stores[superpeer].join_peer(&points, self.index);
                self.invalidate_cache();
                None
            }
            ChurnEvent::SuperPeerCrash { superpeer } => {
                self.alive[superpeer] = false;
                self.invalidate_cache();
                None
            }
            ChurnEvent::SuperPeerRecover { superpeer } => {
                self.alive[superpeer] = true;
                self.invalidate_cache();
                None
            }
            ChurnEvent::Query { query, variant } => Some(self.run_query(query, variant)),
        }
    }

    /// The reachable data just changed; no cached global result can be
    /// trusted any more.
    fn invalidate_cache(&mut self) {
        if let Some(cache) = self.cache.as_mut() {
            cache.bump_epoch();
        }
    }

    fn run_query(&mut self, query: Query, variant: Variant) -> ChurnQueryReport {
        assert!(self.alive[query.initiator], "initiator is down");
        if self.cache.is_some() {
            return self.run_query_cached(query, variant);
        }
        let run = self.run_distributed(query, variant, Dominance::Standard);
        let mut result_ids: Vec<u64> =
            (0..run.result.len()).map(|i| run.result.points().id(i)).collect();
        result_ids.sort_unstable();
        let exact = result_ids == self.live_skyline(query.subspace);
        ChurnQueryReport {
            result_ids,
            complete: run.complete,
            exact_for_live_data: exact,
            total_time_ns: run.total_time_ns,
            volume_bytes: run.volume_bytes,
            served_from_cache: false,
        }
    }

    /// Cache-first query path: a (non-stale) covering entry answers
    /// locally; a miss runs the backbone query with the **Extended**
    /// flavour so its result is admissible for every contained subspace,
    /// then refines locally to the standard skyline. Incomplete results
    /// (super-peers down) are never admitted.
    fn run_query_cached(&mut self, query: Query, variant: Variant) -> ChurnQueryReport {
        let cache = self.cache.as_mut().expect("cached path requires a cache");
        if let Some(ans) = cache.lookup(query.subspace) {
            let refine_ns = self.cost.service_ns(&WorkReport::from_counts(
                ans.refine_stats.dominance_tests,
                ans.refine_stats.points_scanned,
            ));
            let exact = ans.result_ids == self.live_skyline(query.subspace);
            return ChurnQueryReport {
                result_ids: ans.result_ids,
                complete: true,
                exact_for_live_data: exact,
                total_time_ns: refine_ns,
                volume_bytes: 0,
                served_from_cache: true,
            };
        }
        let run = self.run_distributed(query, variant, Dominance::Extended);
        let refined = refine_from_ext(&run.result, query.subspace, self.index);
        let mut result_ids: Vec<u64> =
            (0..refined.result.len()).map(|i| refined.result.points().id(i)).collect();
        result_ids.sort_unstable();
        if run.complete {
            self.cache.as_mut().expect("cached path requires a cache").admit(
                query.subspace,
                run.result,
                run.volume_bytes,
            );
        }
        let exact = result_ids == self.live_skyline(query.subspace);
        ChurnQueryReport {
            result_ids,
            complete: run.complete,
            exact_for_live_data: exact,
            total_time_ns: run.total_time_ns,
            volume_bytes: run.volume_bytes,
            served_from_cache: false,
        }
    }

    fn run_distributed(
        &mut self,
        query: Query,
        variant: Variant,
        flavour: Dominance,
    ) -> DistributedRun {
        let qid = self.next_qid;
        self.next_qid = self.next_qid.wrapping_add(1);
        let nodes: Vec<SuperPeerNode> = (0..self.topology.len())
            .map(|sp| {
                let init = (sp == query.initiator).then_some(InitQuery {
                    qid,
                    subspace: query.subspace,
                    variant,
                    flavour,
                });
                SuperPeerNode::new(
                    sp,
                    self.topology.neighbors(sp).to_vec(),
                    Arc::new(self.stores[sp].store.clone()),
                    self.index,
                    init,
                )
                .with_child_timeout(self.child_timeout_ns)
            })
            .collect();
        let mut sim = Sim::new(nodes, self.link, self.cost);
        for (sp, &alive) in self.alive.iter().enumerate() {
            if !alive {
                sim = sim.with_node_failure(sp, 0);
            }
        }
        let out = sim.run(query.initiator);
        let answer = out
            .nodes
            .into_iter()
            .nth(query.initiator)
            .expect("initiator exists")
            .into_outcome()
            .expect("child timeouts guarantee completion");
        DistributedRun {
            result: answer.result,
            complete: answer.complete,
            total_time_ns: out.stats.finished_at.expect("completed"),
            volume_bytes: out.stats.bytes,
        }
    }

    /// Convenience: applies a whole scenario, returning the query reports
    /// in order.
    pub fn run_scenario(&mut self, events: Vec<ChurnEvent>) -> Vec<ChurnQueryReport> {
        events.into_iter().filter_map(|e| self.apply(e)).collect()
    }

    /// Dimensionality of the data space.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

/// What one backbone execution produced (initiator's view).
struct DistributedRun {
    result: SortedDataset,
    complete: bool,
    total_time_ns: u64,
    volume_bytes: u64,
}

/// A seeded generator of random churn scenarios, for stress tests: waves
/// of joins interleaved with crashes, recoveries, and queries. Crashes
/// never take the designated initiator down, and at most
/// `max_concurrent_failures` super-peers are down at any moment.
pub struct ChurnScenarioSpec {
    /// Number of super-peers in the network.
    pub n_superpeers: usize,
    /// Data dimensionality.
    pub dim: usize,
    /// Points per joining peer.
    pub points_per_peer: usize,
    /// Total events to generate.
    pub events: usize,
    /// Super-peer that initiates every generated query (kept alive).
    pub initiator: usize,
    /// Cap on simultaneously-failed super-peers.
    pub max_concurrent_failures: usize,
    /// Seed.
    pub seed: u64,
}

impl ChurnScenarioSpec {
    /// Generates the event sequence.
    pub fn generate(&self) -> Vec<ChurnEvent> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        assert!(self.initiator < self.n_superpeers, "initiator out of range");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut down: Vec<usize> = Vec::new();
        let mut out = Vec::with_capacity(self.events);
        let mut peer_no = 0usize;
        for _ in 0..self.events {
            let roll = rng.gen_range(0..100);
            if roll < 50 {
                // Join an alive super-peer.
                let alive: Vec<usize> =
                    (0..self.n_superpeers).filter(|sp| !down.contains(sp)).collect();
                let sp = alive[rng.gen_range(0..alive.len())];
                let spec = skypeer_data::DatasetSpec {
                    dim: self.dim,
                    points_per_peer: self.points_per_peer,
                    kind: skypeer_data::DatasetKind::Uniform,
                    seed: self.seed ^ 0xC0FFEE,
                };
                out.push(ChurnEvent::PeerJoin {
                    superpeer: sp,
                    points: spec.generate_peer(peer_no, sp),
                });
                peer_no += 1;
            } else if roll < 65 && down.len() < self.max_concurrent_failures {
                let candidates: Vec<usize> = (0..self.n_superpeers)
                    .filter(|&sp| sp != self.initiator && !down.contains(&sp))
                    .collect();
                if let Some(&sp) = candidates.get(
                    rng.gen_range(0..candidates.len().max(1))
                        .min(candidates.len().saturating_sub(1)),
                ) {
                    down.push(sp);
                    out.push(ChurnEvent::SuperPeerCrash { superpeer: sp });
                }
            } else if roll < 75 && !down.is_empty() {
                let sp = down.swap_remove(rng.gen_range(0..down.len()));
                out.push(ChurnEvent::SuperPeerRecover { superpeer: sp });
            } else {
                let mut dims: Vec<usize> = (0..self.dim).collect();
                use rand::seq::SliceRandom;
                dims.shuffle(&mut rng);
                let k = rng.gen_range(1..=self.dim);
                out.push(ChurnEvent::Query {
                    query: Query {
                        subspace: Subspace::from_dims(&dims[..k]),
                        initiator: self.initiator,
                    },
                    variant: Variant::ALL[rng.gen_range(0..Variant::ALL.len())],
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use skypeer_data::{DatasetKind, DatasetSpec};
    use skypeer_netsim::topology::TopologySpec;

    const HOUR: u64 = 3_600_000_000_000;

    fn runner(n_sp: usize, seed: u64) -> ChurnRunner {
        let mut spec = TopologySpec::paper_default(n_sp, seed);
        spec.avg_degree = spec.avg_degree.min((n_sp.saturating_sub(1)) as f64);
        ChurnRunner::new(
            spec.generate(),
            4,
            DominanceIndex::Linear,
            CostModel::default(),
            LinkModel::zero_delay(),
            HOUR,
        )
    }

    fn peer(spec_seed: u64, peer_idx: usize) -> PointSet {
        DatasetSpec { dim: 4, points_per_peer: 30, kind: DatasetKind::Uniform, seed: spec_seed }
            .generate_peer(peer_idx, 0)
    }

    #[test]
    fn joins_then_query_is_exact_and_complete() {
        let mut r = runner(5, 1);
        for sp in 0..5 {
            for p in 0..2 {
                r.apply(ChurnEvent::PeerJoin { superpeer: sp, points: peer(9, sp * 2 + p) });
            }
        }
        let u = Subspace::from_dims(&[0, 2]);
        let report = r
            .apply(ChurnEvent::Query {
                query: Query { subspace: u, initiator: 3 },
                variant: Variant::Ftpm,
            })
            .expect("query returns a report");
        assert!(report.complete);
        assert!(report.exact_for_live_data);
        assert!(!report.result_ids.is_empty());
    }

    #[test]
    fn empty_network_query_returns_empty() {
        let mut r = runner(4, 2);
        let report = r
            .apply(ChurnEvent::Query {
                query: Query { subspace: Subspace::full(4), initiator: 0 },
                variant: Variant::Rtfm,
            })
            .expect("report");
        assert!(report.result_ids.is_empty());
        assert!(report.complete);
        assert!(report.exact_for_live_data);
    }

    #[test]
    fn crash_degrades_then_recovery_restores() {
        let mut r = runner(5, 3);
        for sp in 0..5 {
            r.apply(ChurnEvent::PeerJoin { superpeer: sp, points: peer(11, sp) });
        }
        let u = Subspace::from_dims(&[1, 3]);
        let q = Query { subspace: u, initiator: 0 };
        let healthy =
            r.apply(ChurnEvent::Query { query: q, variant: Variant::Ftpm }).expect("report");
        assert!(healthy.complete && healthy.exact_for_live_data);

        r.apply(ChurnEvent::SuperPeerCrash { superpeer: 2 });
        let degraded =
            r.apply(ChurnEvent::Query { query: q, variant: Variant::Ftpm }).expect("report");
        // The crash may or may not cut off additional super-peers; either
        // way the query terminated and the verdicts are consistent.
        if degraded.complete {
            assert!(degraded.exact_for_live_data, "complete answers must match live data");
        }

        r.apply(ChurnEvent::SuperPeerRecover { superpeer: 2 });
        let recovered =
            r.apply(ChurnEvent::Query { query: q, variant: Variant::Ftpm }).expect("report");
        assert!(recovered.complete);
        assert_eq!(recovered.result_ids, healthy.result_ids, "recovery restores the answer");
    }

    #[test]
    fn joins_after_crash_land_on_survivors() {
        let mut r = runner(4, 4);
        r.apply(ChurnEvent::SuperPeerCrash { superpeer: 1 });
        r.apply(ChurnEvent::PeerJoin { superpeer: 0, points: peer(5, 0) });
        r.apply(ChurnEvent::PeerJoin { superpeer: 2, points: peer(5, 1) });
        let report = r
            .apply(ChurnEvent::Query {
                query: Query { subspace: Subspace::from_dims(&[0, 1]), initiator: 0 },
                variant: Variant::Naive,
            })
            .expect("report");
        if report.complete {
            assert!(report.exact_for_live_data);
        }
    }

    #[test]
    #[should_panic(expected = "cannot join a dead super-peer")]
    fn join_on_dead_superpeer_panics() {
        let mut r = runner(3, 5);
        r.apply(ChurnEvent::SuperPeerCrash { superpeer: 1 });
        r.apply(ChurnEvent::PeerJoin { superpeer: 1, points: peer(1, 0) });
    }

    #[test]
    fn cached_repeat_query_is_served_locally_and_exact() {
        let mut r = runner(5, 12).with_cache(4 << 20);
        for sp in 0..5 {
            r.apply(ChurnEvent::PeerJoin { superpeer: sp, points: peer(23, sp) });
        }
        let q = Query { subspace: Subspace::from_dims(&[0, 2, 3]), initiator: 1 };
        let miss = r.apply(ChurnEvent::Query { query: q, variant: Variant::Ftpm }).expect("report");
        assert!(!miss.served_from_cache);
        assert!(miss.exact_for_live_data, "extended-flavour miss run must still be exact");
        assert!(miss.volume_bytes > 0);

        let hit = r.apply(ChurnEvent::Query { query: q, variant: Variant::Ftpm }).expect("report");
        assert!(hit.served_from_cache, "repeat query must hit");
        assert_eq!(hit.result_ids, miss.result_ids);
        assert!(hit.exact_for_live_data);
        assert_eq!(hit.volume_bytes, 0, "a hit moves no bytes");

        // Subsumption: a contained subspace is also served from the cache.
        let sub = Query { subspace: Subspace::from_dims(&[0, 3]), initiator: 1 };
        let sub_hit =
            r.apply(ChurnEvent::Query { query: sub, variant: Variant::Ftpm }).expect("report");
        assert!(sub_hit.served_from_cache);
        assert!(sub_hit.exact_for_live_data);
        assert_eq!(sub_hit.result_ids, r.live_skyline(sub.subspace));

        let st = r.cache_stats().expect("cache enabled");
        assert_eq!((st.exact_hits, st.subsumption_hits, st.misses), (1, 1, 1));
    }

    #[test]
    fn post_churn_query_never_serves_a_stale_epoch() {
        let mut r = runner(5, 31).with_cache(4 << 20);
        for sp in 0..5 {
            r.apply(ChurnEvent::PeerJoin { superpeer: sp, points: peer(29, sp) });
        }
        let q = Query { subspace: Subspace::from_dims(&[1, 2]), initiator: 0 };
        let warm = r.apply(ChurnEvent::Query { query: q, variant: Variant::Ftpm }).expect("report");
        assert!(!warm.served_from_cache);
        let hit = r.apply(ChurnEvent::Query { query: q, variant: Variant::Ftpm }).expect("report");
        assert!(hit.served_from_cache, "cache is warm before the crash");

        // A crash makes the cached global result untrustworthy: the next
        // query must go back to the network, and whatever it returns is
        // checked against the *current* live data.
        r.apply(ChurnEvent::SuperPeerCrash { superpeer: 3 });
        let after =
            r.apply(ChurnEvent::Query { query: q, variant: Variant::Ftpm }).expect("report");
        assert!(!after.served_from_cache, "crash must invalidate the cache");
        if after.complete {
            assert!(after.exact_for_live_data);
        }
        let st = r.cache_stats().expect("cache enabled");
        assert!(st.stale_rejects >= 1, "the stale entry was rejected at lookup");

        // Same story for recovery (data grows back) and joins (data grows).
        r.apply(ChurnEvent::SuperPeerRecover { superpeer: 3 });
        let recovered =
            r.apply(ChurnEvent::Query { query: q, variant: Variant::Ftpm }).expect("report");
        assert!(!recovered.served_from_cache, "recovery must invalidate too");
        assert!(recovered.exact_for_live_data);

        r.apply(ChurnEvent::PeerJoin { superpeer: 2, points: peer(77, 9) });
        let joined =
            r.apply(ChurnEvent::Query { query: q, variant: Variant::Ftpm }).expect("report");
        assert!(!joined.served_from_cache, "a join must invalidate too");
        assert!(joined.exact_for_live_data);
    }

    #[test]
    fn incomplete_results_are_never_admitted() {
        let mut r = runner(6, 41).with_cache(4 << 20);
        for sp in 0..6 {
            r.apply(ChurnEvent::PeerJoin { superpeer: sp, points: peer(43, sp) });
        }
        r.apply(ChurnEvent::SuperPeerCrash { superpeer: 4 });
        let q = Query { subspace: Subspace::from_dims(&[0, 1]), initiator: 0 };
        let first =
            r.apply(ChurnEvent::Query { query: q, variant: Variant::Ftpm }).expect("report");
        if !first.complete {
            // The partial answer must not have been cached: the repeat
            // query goes to the network again.
            let again =
                r.apply(ChurnEvent::Query { query: q, variant: Variant::Ftpm }).expect("report");
            assert!(!again.served_from_cache);
        }
    }

    #[test]
    fn scenario_runner_collects_reports() {
        let mut r = runner(4, 6);
        let reports = r.run_scenario(vec![
            ChurnEvent::PeerJoin { superpeer: 0, points: peer(7, 0) },
            ChurnEvent::Query {
                query: Query { subspace: Subspace::full(4), initiator: 0 },
                variant: Variant::Ftfm,
            },
            ChurnEvent::PeerJoin { superpeer: 1, points: peer(7, 1) },
            ChurnEvent::Query {
                query: Query { subspace: Subspace::full(4), initiator: 1 },
                variant: Variant::Rtpm,
            },
        ]);
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.exact_for_live_data));
        // More data can only grow or reshape the skyline, never shrink it
        // to empty.
        assert!(!reports[1].result_ids.is_empty());
    }
}

#[cfg(test)]
mod scenario_proptests {
    use super::*;
    use proptest::prelude::*;
    use skypeer_netsim::topology::TopologySpec;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Random churn scenarios: every query terminates, and whenever a
        /// query reports complete it is exact for the live data.
        #[test]
        fn prop_random_churn_is_safe(seed in 0u64..500, n_sp in 4usize..8) {
            let mut topo_spec = TopologySpec::paper_default(n_sp, seed);
            topo_spec.avg_degree = topo_spec.avg_degree.min((n_sp - 1) as f64);
            let mut runner = ChurnRunner::new(
                topo_spec.generate(),
                3,
                DominanceIndex::Linear,
                skypeer_netsim::cost::CostModel::default(),
                skypeer_netsim::des::LinkModel::zero_delay(),
                3_600_000_000_000,
            );
            let events = ChurnScenarioSpec {
                n_superpeers: n_sp,
                dim: 3,
                points_per_peer: 15,
                events: 25,
                initiator: 0,
                max_concurrent_failures: n_sp / 2,
                seed,
            }
            .generate();
            for report in runner.run_scenario(events) {
                if report.complete {
                    prop_assert!(
                        report.exact_for_live_data,
                        "complete but inexact: {:?}",
                        report.result_ids
                    );
                }
            }
        }
    }
}
