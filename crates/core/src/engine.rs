//! Network construction and query execution — the experiment driver.
//!
//! [`SkypeerEngine::build`] generates the synthetic network of the paper's
//! Section 6: `N_p` peers attached evenly to `N_sp` super-peers on a random
//! connected backbone, per-peer data, and the preprocessing phase. Queries
//! then run on the deterministic DES.
//!
//! Each query is simulated twice:
//!
//! * with the paper's **4 KB/s** link model — yielding the *total response
//!   time* and the *volume of transferred data*;
//! * with **zero-delay** links — yielding the *computational time* (the
//!   critical path of computation alone, "neglecting network delays" as
//!   the paper puts it for Figure 3(b)).
//!
//! Both runs execute the full protocol and both results are checked for
//! exactness. The spanning tree that duplicate suppression induces can
//! differ between the two link models (first arrival wins), which is fine:
//! each metric is read from the run whose link model defines it.

use std::sync::Arc;

use skypeer_data::{DatasetSpec, Query};
use skypeer_netsim::cost::CostModel;
use skypeer_netsim::des::{LinkModel, Sim, SimStats};
use skypeer_netsim::obs::Tracer;
use skypeer_netsim::topology::{Topology, TopologySpec};
use skypeer_skyline::{Dominance, DominanceIndex, SortedDataset, Subspace};

use crate::node::{InitQuery, SuperPeerNode};
use crate::preprocess::{preprocess_network, PreprocessReport};
use crate::variants::Variant;

/// Query dissemination strategy (see [`crate::node::Routing`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RoutingMode {
    /// The paper's constrained flooding with duplicate suppression.
    #[default]
    Flood,
    /// Precomputed BFS spanning tree per initiator (routing-index style):
    /// no duplicate queries, no dup-acks, at the cost of maintaining
    /// per-root trees.
    SpanningTree,
}

/// Everything needed to build a SKYPEER network.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Number of peers `N_p`.
    pub n_peers: usize,
    /// Number of super-peers `N_sp`. The paper uses `5% · N_p`, dropping to
    /// `1%` for `N_p ≥ 20000`; see [`EngineConfig::paper_superpeers`].
    pub n_superpeers: usize,
    /// Dataset specification (dimensionality, points per peer, kind, seed).
    pub dataset: DatasetSpec,
    /// Backbone specification (degree `DEG_sp`, model, seed).
    pub topology: TopologySpec,
    /// Dominance index used by every kernel.
    pub index: DominanceIndex,
    /// Computation cost model for the simulator.
    pub cost: CostModel,
    /// Link model for the total-time run (the computational-time run always
    /// uses zero-delay links).
    pub link: LinkModel,
    /// Query dissemination strategy.
    pub routing: RoutingMode,
}

impl EngineConfig {
    /// The paper's super-peer count rule: `N_sp = 5% · N_p`, or `1%` for
    /// `N_p ≥ 20000`, never less than one.
    pub fn paper_superpeers(n_peers: usize) -> usize {
        let frac = if n_peers >= 20_000 { 0.01 } else { 0.05 };
        ((n_peers as f64 * frac).round() as usize).max(1)
    }

    /// The paper's default configuration (Section 6) at a chosen network
    /// size: `d = 8`, 250 points/peer, uniform data, `DEG_sp = 4`, 4 KB/s.
    pub fn paper_default(n_peers: usize, seed: u64) -> Self {
        let n_superpeers = Self::paper_superpeers(n_peers);
        // Tiny backbones cannot host the paper's degree 4; clamp rather
        // than surprise users experimenting at toy scale.
        let mut topology = TopologySpec::paper_default(n_superpeers, seed.wrapping_add(1));
        topology.avg_degree = topology.avg_degree.min(n_superpeers.saturating_sub(1) as f64);
        EngineConfig {
            n_peers,
            n_superpeers,
            dataset: DatasetSpec::paper_default(seed),
            topology,
            index: DominanceIndex::RTree,
            cost: CostModel::default(),
            link: LinkModel::paper_4kbps(),
            routing: RoutingMode::Flood,
        }
    }
}

/// Metrics of one query execution.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The exact subspace skyline (global point ids, sorted).
    pub result_ids: Vec<u64>,
    /// Whether every super-peer contributed (always `true` without the
    /// fault-tolerance extension / node failures).
    pub complete: bool,
    /// The result points themselves (`f`-ascending).
    pub result: SortedDataset,
    /// Simulated response time with the configured link model, ns.
    pub total_time_ns: u64,
    /// Simulated response time with zero-delay links, ns — the paper's
    /// "computational time".
    pub comp_time_ns: u64,
    /// Bytes transferred (configured-link run).
    pub volume_bytes: u64,
    /// Messages delivered (configured-link run).
    pub messages: u64,
    /// Messages dropped — by dead nodes or injected faults (configured-link
    /// run; always 0 on a failure-free query).
    pub dropped: u64,
    /// Total computation service time across all super-peers, ns.
    pub compute_ns_total: u64,
    /// Sequential communication rounds of the configured-link run — the
    /// maximum causal message depth (see
    /// [`skypeer_netsim::des::SimStats::rounds`]). SKYPEER floods scale
    /// with backbone diameter; the sampling backend is constant at 2.
    pub rounds: u64,
}

/// Averages over a batch of queries (the paper reports averages over 100).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QueryMetrics {
    /// Number of queries aggregated.
    pub queries: usize,
    /// Mean total response time, ns.
    pub avg_total_time_ns: f64,
    /// Mean computational time, ns.
    pub avg_comp_time_ns: f64,
    /// Mean transferred volume, bytes.
    pub avg_volume_bytes: f64,
    /// Mean delivered messages.
    pub avg_messages: f64,
    /// Mean dropped messages (non-zero only under failure injection).
    pub avg_dropped: f64,
}

impl QueryMetrics {
    /// Folds a batch of outcomes into averages.
    pub fn from_outcomes(outcomes: &[QueryOutcome]) -> Self {
        if outcomes.is_empty() {
            return QueryMetrics::default();
        }
        let n = outcomes.len() as f64;
        QueryMetrics {
            queries: outcomes.len(),
            avg_total_time_ns: outcomes.iter().map(|o| o.total_time_ns as f64).sum::<f64>() / n,
            avg_comp_time_ns: outcomes.iter().map(|o| o.comp_time_ns as f64).sum::<f64>() / n,
            avg_volume_bytes: outcomes.iter().map(|o| o.volume_bytes as f64).sum::<f64>() / n,
            avg_messages: outcomes.iter().map(|o| o.messages as f64).sum::<f64>() / n,
            avg_dropped: outcomes.iter().map(|o| o.dropped as f64).sum::<f64>() / n,
        }
    }
}

/// Result of a concurrent query batch (see
/// [`SkypeerEngine::run_concurrent`]).
#[derive(Clone, Debug)]
pub struct ConcurrentOutcome {
    /// Per-query sorted result ids, in batch order.
    pub result_ids: Vec<Vec<u64>>,
    /// Simulated time until the *last* query completed.
    pub makespan_ns: u64,
    /// Total bytes moved by the whole batch.
    pub volume_bytes: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Simulated completion time of each query, in completion order (one
    /// entry per query; the last equals `makespan_ns`). Captured via the
    /// DES finish hook, so a workload driver can build a latency
    /// distribution from a single concurrent batch.
    pub finish_times_ns: Vec<u64>,
}

/// Where one query's work and traffic concentrated (see
/// [`SkypeerEngine::profile_query`]).
#[derive(Clone, Debug)]
pub struct QueryProfile {
    /// Raw per-node / per-link breakdown.
    pub breakdown: skypeer_netsim::des::SimBreakdown,
    /// Fraction of all computation spent on the initiator.
    pub initiator_compute_share: f64,
    /// Bytes that crossed the initiator's inbound links.
    pub initiator_inbound_bytes: u64,
    /// Bytes that crossed any link.
    pub total_bytes: u64,
}

/// A built SKYPEER network, ready to answer queries.
///
/// ```
/// use skypeer_core::{EngineConfig, SkypeerEngine, Variant};
/// use skypeer_data::Query;
/// use skypeer_skyline::Subspace;
///
/// let engine = SkypeerEngine::build(EngineConfig::paper_default(100, 7));
/// let query = Query { subspace: Subspace::from_dims(&[0, 3]), initiator: 2 };
/// let out = engine.run_query(query, Variant::Ftpm);
/// assert_eq!(out.result_ids, engine.centralized_skyline(query.subspace));
/// assert!(out.complete);
/// ```
pub struct SkypeerEngine {
    config: EngineConfig,
    topology: Topology,
    /// Per-super-peer merged ext-skyline stores, shared with simulator
    /// nodes.
    stores: Vec<Arc<SortedDataset>>,
    preprocess: PreprocessReport,
    /// Per-query dominance-index policy applied at query time (defaults to
    /// `Fixed(config.index)`).
    query_policy: crate::planner::IndexPolicy,
    next_qid: std::cell::Cell<u32>,
    /// Optional in-flight answer corruption (audit drills); `None` keeps
    /// every run byte-identical to a fault-free engine.
    fault: std::cell::Cell<Option<crate::audit::AnswerFault>>,
}

impl SkypeerEngine {
    /// Generates topology and data and runs the preprocessing phase.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration (zero peers/super-peers,
    /// topology/spec size mismatch).
    pub fn build(config: EngineConfig) -> Self {
        assert!(config.n_peers > 0, "need at least one peer");
        assert_eq!(
            config.topology.n_superpeers, config.n_superpeers,
            "topology spec does not match super-peer count"
        );
        let topology = config.topology.generate();
        let peer_home = topology.assign_peers(config.n_peers);
        let peer_sets: Vec<_> =
            (0..config.n_peers).map(|p| config.dataset.generate_peer(p, peer_home[p])).collect();
        let (stores, preprocess) = preprocess_network(
            &peer_sets,
            &peer_home,
            config.n_superpeers,
            config.dataset.dim,
            config.index,
        );
        SkypeerEngine {
            config,
            topology,
            stores: stores.into_iter().map(|s| Arc::new(s.store)).collect(),
            preprocess,
            query_policy: crate::planner::IndexPolicy::Fixed(config.index),
            next_qid: std::cell::Cell::new(1),
            fault: std::cell::Cell::new(None),
        }
    }

    /// Installs (or clears) an in-flight [`crate::audit::AnswerFault`]
    /// applied to every subsequent observed run — the audit drill that
    /// silently corrupts one ext-skyline entry in transit. `None` (the
    /// default) leaves every code path byte-identical to a fault-free
    /// engine.
    pub fn set_fault(&self, fault: Option<crate::audit::AnswerFault>) {
        self.fault.set(fault);
    }

    /// Switches the query-time dominance-index policy (preprocessing
    /// always used `config.index`). `IndexPolicy::Auto` picks per query
    /// from the cardinality estimate — see [`crate::planner`].
    pub fn set_query_policy(&mut self, policy: crate::planner::IndexPolicy) {
        self.query_policy = policy;
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The super-peer backbone.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Preprocessing statistics (Figure 3(a) quantities).
    pub fn preprocess_report(&self) -> &PreprocessReport {
        &self.preprocess
    }

    /// The merged ext-skyline stored at super-peer `sp`.
    pub fn store(&self, sp: usize) -> &SortedDataset {
        &self.stores[sp]
    }

    /// All per-super-peer stores, shareable with simulator nodes.
    pub(crate) fn shared_stores(&self) -> &[Arc<SortedDataset>] {
        &self.stores
    }

    /// Allocates the next query id (wrapping).
    pub(crate) fn alloc_qid(&self) -> u32 {
        let qid = self.next_qid.get();
        self.next_qid.set(qid.wrapping_add(1));
        qid
    }

    /// The query-time dominance-index policy.
    pub(crate) fn current_query_policy(&self) -> crate::planner::IndexPolicy {
        self.query_policy
    }

    /// The currently-installed answer fault, if any.
    pub(crate) fn current_fault(&self) -> Option<crate::audit::AnswerFault> {
        self.fault.get()
    }

    /// Builds the per-run node vector.
    fn make_nodes(
        &self,
        query: Query,
        variant: Variant,
        qid: u32,
        flavour: Dominance,
    ) -> Vec<SuperPeerNode> {
        let tree = match self.config.routing {
            RoutingMode::Flood => None,
            RoutingMode::SpanningTree => Some(self.topology.bfs_tree(query.initiator)),
        };
        (0..self.topology.len())
            .map(|sp| {
                let init = (sp == query.initiator).then_some(InitQuery {
                    qid,
                    subspace: query.subspace,
                    variant,
                    flavour,
                });
                let node = SuperPeerNode::new(
                    sp,
                    self.topology.neighbors(sp).to_vec(),
                    Arc::clone(&self.stores[sp]),
                    self.config.index,
                    init,
                )
                .with_index_policy(self.query_policy);
                match &tree {
                    Some(children) => node.with_tree_routing(children[sp].clone()),
                    None => node,
                }
            })
            .collect()
    }

    /// Executes one query under `variant` on the DES and returns its
    /// metrics.
    ///
    /// # Panics
    ///
    /// Panics if either simulation fails to complete (a protocol bug) or if
    /// the two runs disagree on the result (ditto).
    pub fn run_query(&self, query: Query, variant: Variant) -> QueryOutcome {
        self.run_query_inner(query, variant, None)
    }

    /// [`SkypeerEngine::run_query`] with a [`Tracer`] observing the
    /// total-time (configured-link) run — the run whose timings define the
    /// response time, so its trace is the one worth profiling. The
    /// zero-delay computational-time run stays untraced.
    pub fn run_query_traced(
        &self,
        query: Query,
        variant: Variant,
        tracer: Arc<dyn Tracer>,
    ) -> QueryOutcome {
        self.run_query_inner(query, variant, Some(tracer))
    }

    /// The soak-runner path: executes one query in a **single** simulation
    /// with the configured links, optionally traced. Unlike
    /// [`SkypeerEngine::run_query`] there is no second zero-delay run and
    /// no cross-check between the two, so a long workload pays one
    /// simulation per query instead of two; consequently `comp_time_ns`
    /// is reported as 0 (the zero-delay run is what defines it). The
    /// answer is still asserted complete.
    pub fn run_query_observed(
        &self,
        query: Query,
        variant: Variant,
        tracer: Option<Arc<dyn Tracer>>,
    ) -> QueryOutcome {
        self.run_observed_inner(query, variant, Dominance::Standard, tracer, &[])
    }

    /// [`SkypeerEngine::run_query_observed`] with per-directed-link
    /// overrides of the configured [`LinkModel`] — the perturbation hook
    /// for regression root-cause work: capture a baseline trace, bump one
    /// link's latency, capture again, and diff the two. Overrides change
    /// timings only; the answer is still asserted complete.
    pub fn run_query_observed_perturbed(
        &self,
        query: Query,
        variant: Variant,
        overrides: &[(usize, usize, LinkModel)],
        tracer: Option<Arc<dyn Tracer>>,
    ) -> QueryOutcome {
        self.run_observed_inner(query, variant, Dominance::Standard, tracer, overrides)
    }

    /// [`SkypeerEngine::run_query_observed`] with the **Extended** dominance
    /// flavour: every kernel along the way (local filtering, threshold
    /// pruning, merging) uses ext-domination, so the initiator ends up with
    /// the *global extended skyline* `ext-SKY_U`. That result is a superset
    /// of `SKY_U` (Observation 3) and, crucially, can be refined locally
    /// into the exact `SKY_{U'}` for **any** `U' ⊆ U` (see
    /// [`skypeer_skyline::extended::refine_from_ext`]) — which is what
    /// makes it worth caching. The run is exact because removing
    /// ext-dominated points never removes a point another peer could not
    /// also ext-dominate, and threshold pruning stays sound: `f(p) >
    /// dist_U(q)` implies `q` is strictly smaller than `p` on every
    /// dimension of `U`.
    pub fn run_query_ext_observed(
        &self,
        query: Query,
        variant: Variant,
        tracer: Option<Arc<dyn Tracer>>,
    ) -> QueryOutcome {
        self.run_observed_inner(query, variant, Dominance::Extended, tracer, &[])
    }

    fn run_observed_inner(
        &self,
        query: Query,
        variant: Variant,
        flavour: Dominance,
        tracer: Option<Arc<dyn Tracer>>,
        link_overrides: &[(usize, usize, LinkModel)],
    ) -> QueryOutcome {
        let qid = self.next_qid.get();
        self.next_qid.set(qid.wrapping_add(1));
        let mut sim = Sim::new(
            self.make_nodes(query, variant, qid, flavour),
            self.config.link,
            self.config.cost,
        );
        for &(from, to, model) in link_overrides {
            sim = sim.with_link_override(from, to, model);
        }
        if let Some(tracer) = tracer {
            sim = sim.with_tracer(tracer);
        }
        if let Some(fault) = self.fault.get() {
            sim = sim.with_tamper_hook(move |_, _, payload| fault.tamper(payload));
        }
        let out = sim.run(query.initiator);
        let (stats, result, complete) = extract(out, query.initiator);
        assert!(complete, "failure-free runs must be complete");
        let mut result_ids: Vec<u64> = (0..result.len()).map(|i| result.points().id(i)).collect();
        result_ids.sort_unstable();
        QueryOutcome {
            result_ids,
            complete,
            result,
            total_time_ns: stats.finished_at.expect("query must complete"),
            comp_time_ns: 0,
            volume_bytes: stats.bytes,
            messages: stats.messages,
            dropped: stats.dropped,
            compute_ns_total: stats.compute_ns_total,
            rounds: stats.rounds,
        }
    }

    fn run_query_inner(
        &self,
        query: Query,
        variant: Variant,
        tracer: Option<Arc<dyn Tracer>>,
    ) -> QueryOutcome {
        let qid = self.next_qid.get();
        self.next_qid.set(qid.wrapping_add(1));

        // Total-time run with the configured (4 KB/s) links.
        let mut sim = Sim::new(
            self.make_nodes(query, variant, qid, Dominance::Standard),
            self.config.link,
            self.config.cost,
        );
        if let Some(tracer) = tracer {
            sim = sim.with_tracer(tracer);
        }
        let real = sim.run(query.initiator);
        let (real_stats, real_result, real_complete) = extract(real, query.initiator);

        // Computational-time run with zero-delay links.
        let zero = Sim::new(
            self.make_nodes(query, variant, qid, Dominance::Standard),
            LinkModel::zero_delay(),
            self.config.cost,
        )
        .run(query.initiator);
        let (zero_stats, zero_result, zero_complete) = extract(zero, query.initiator);
        assert!(real_complete && zero_complete, "failure-free runs must be complete");

        let mut real_ids: Vec<u64> =
            (0..real_result.len()).map(|i| real_result.points().id(i)).collect();
        real_ids.sort_unstable();
        let mut zero_ids: Vec<u64> =
            (0..zero_result.len()).map(|i| zero_result.points().id(i)).collect();
        zero_ids.sort_unstable();
        assert_eq!(
            real_ids, zero_ids,
            "link model must not change the query answer (variant {variant})"
        );

        QueryOutcome {
            result_ids: real_ids,
            complete: real_complete,
            result: real_result,
            total_time_ns: real_stats.finished_at.expect("query must complete"),
            comp_time_ns: zero_stats.finished_at.expect("query must complete"),
            volume_bytes: real_stats.bytes,
            messages: real_stats.messages,
            dropped: real_stats.dropped,
            compute_ns_total: real_stats.compute_ns_total,
            rounds: real_stats.rounds,
        }
    }

    /// Runs a whole workload under `variant`, returning per-query outcomes.
    pub fn run_workload(&self, queries: &[Query], variant: Variant) -> Vec<QueryOutcome> {
        queries.iter().map(|q| self.run_query(*q, variant)).collect()
    }

    /// Runs a whole batch of queries **concurrently** in one simulation:
    /// all initiators fire at t = 0, messages of different queries share
    /// nodes and links, and per-node busy time plus per-link bandwidth
    /// capture the queueing between them. Returns the per-query results
    /// (in input order) plus batch metrics.
    ///
    /// The paper runs its 100-query workloads serially; this extension
    /// measures what a loaded network does instead. Flood routing only.
    ///
    /// # Panics
    ///
    /// Panics under [`RoutingMode::SpanningTree`] (a tree is rooted at a
    /// single initiator) or if the batch does not complete.
    pub fn run_concurrent(&self, batch: &[(Query, Variant)]) -> ConcurrentOutcome {
        assert!(
            self.config.routing == RoutingMode::Flood,
            "concurrent batches require flood routing"
        );
        assert!(!batch.is_empty(), "empty batch");
        let base_qid = self.next_qid.get();
        self.next_qid.set(base_qid.wrapping_add(batch.len() as u32));

        let mut nodes: Vec<SuperPeerNode> = (0..self.topology.len())
            .map(|sp| {
                SuperPeerNode::new(
                    sp,
                    self.topology.neighbors(sp).to_vec(),
                    Arc::clone(&self.stores[sp]),
                    self.config.index,
                    None,
                )
            })
            .collect();
        let mut starts: Vec<usize> = Vec::new();
        for (i, (q, variant)) in batch.iter().enumerate() {
            let qid = base_qid.wrapping_add(i as u32);
            nodes[q.initiator].push_init_query(InitQuery::standard(qid, q.subspace, *variant));
            if !starts.contains(&q.initiator) {
                starts.push(q.initiator);
            }
        }
        let finish_times: std::rc::Rc<std::cell::RefCell<Vec<u64>>> = Default::default();
        let sink = std::rc::Rc::clone(&finish_times);
        let out = Sim::new(nodes, self.config.link, self.config.cost)
            .with_finish_hook(move |_node, at| sink.borrow_mut().push(at))
            .run_multi(&starts, batch.len());
        let makespan_ns = out.stats.finished_at.expect("batch must complete");
        let finish_times_ns = finish_times.borrow().clone();

        let mut per_query: Vec<Vec<u64>> = Vec::with_capacity(batch.len());
        for (i, (q, _)) in batch.iter().enumerate() {
            let qid = base_qid.wrapping_add(i as u32);
            let answer = out.nodes[q.initiator]
                .outcome_for(qid)
                .unwrap_or_else(|| panic!("query {qid} missing at its initiator"));
            assert!(answer.complete, "failure-free batch must be complete");
            let mut ids: Vec<u64> =
                (0..answer.result.len()).map(|j| answer.result.points().id(j)).collect();
            ids.sort_unstable();
            per_query.push(ids);
        }
        ConcurrentOutcome {
            result_ids: per_query,
            makespan_ns,
            volume_bytes: out.stats.bytes,
            messages: out.stats.messages,
            finish_times_ns,
        }
    }

    /// Profiles one query with per-node / per-link breakdowns: where the
    /// computation concentrated and which links carried the bytes. The
    /// classic finding is that fixed merging concentrates both on the
    /// initiator and its links — the bottleneck progressive merging
    /// removes (Section 5.2.3 of the paper).
    pub fn profile_query(&self, query: Query, variant: Variant) -> QueryProfile {
        let qid = self.next_qid.get();
        self.next_qid.set(qid.wrapping_add(1));
        let out = Sim::new(
            self.make_nodes(query, variant, qid, Dominance::Standard),
            self.config.link,
            self.config.cost,
        )
        .with_breakdown()
        .run(query.initiator);
        let breakdown = out.breakdown.expect("breakdown enabled");
        let total: u64 = breakdown.compute_ns.iter().sum();
        let initiator_share = if total == 0 {
            0.0
        } else {
            breakdown.compute_ns[query.initiator] as f64 / total as f64
        };
        let inbound_initiator: u64 = breakdown
            .link_bytes
            .iter()
            .filter(|(&(_, to), _)| to == query.initiator)
            .map(|(_, &b)| b)
            .sum();
        QueryProfile {
            breakdown,
            initiator_compute_share: initiator_share,
            initiator_inbound_bytes: inbound_initiator,
            total_bytes: out.stats.bytes,
        }
    }

    /// Fault-tolerance extension (the paper's future work): executes one
    /// query while the given super-peers crash at the given simulated
    /// times. Every surviving super-peer abandons children that stay
    /// silent for `child_timeout_ns`, so the query always terminates.
    ///
    /// When the outcome is flagged incomplete, the answer is the exact
    /// skyline *of the data that reached the initiator*: relative to the
    /// true global skyline it may miss points held by lost subtrees and
    /// may contain points that only a lost subtree could have dominated.
    /// When the outcome is complete, it is the exact global skyline.
    ///
    /// # Panics
    ///
    /// Panics if the initiator itself fails before completion.
    pub fn run_query_with_failures(
        &self,
        query: Query,
        variant: Variant,
        failures: &[(usize, u64)],
        child_timeout_ns: u64,
    ) -> QueryOutcome {
        let qid = self.next_qid.get();
        self.next_qid.set(qid.wrapping_add(1));
        let nodes: Vec<SuperPeerNode> = self
            .make_nodes(query, variant, qid, Dominance::Standard)
            .into_iter()
            .map(|n| n.with_child_timeout(child_timeout_ns))
            .collect();
        let mut sim = Sim::new(nodes, self.config.link, self.config.cost);
        for &(node, at) in failures {
            sim = sim.with_node_failure(node, at);
        }
        let out = sim.run(query.initiator);
        let (stats, result, complete) = extract(out, query.initiator);
        let mut result_ids: Vec<u64> = (0..result.len()).map(|i| result.points().id(i)).collect();
        result_ids.sort_unstable();
        QueryOutcome {
            result_ids,
            complete,
            result,
            total_time_ns: stats.finished_at.expect("timeouts guarantee completion"),
            comp_time_ns: stats.finished_at.expect("timeouts guarantee completion"),
            volume_bytes: stats.bytes,
            messages: stats.messages,
            dropped: stats.dropped,
            compute_ns_total: stats.compute_ns_total,
            rounds: stats.rounds,
        }
    }

    /// The exact global subspace skyline, computed centrally from the
    /// super-peer stores (lossless by Observation 4) — the oracle the
    /// distributed answers are verified against.
    pub fn centralized_skyline(&self, u: Subspace) -> Vec<u64> {
        let refs: Vec<&SortedDataset> = self.stores.iter().map(|a| a.as_ref()).collect();
        let merged = skypeer_skyline::merge::merge_sorted(
            &refs,
            u,
            Dominance::Standard,
            f64::INFINITY,
            self.config.index,
        );
        let mut ids: Vec<u64> =
            (0..merged.result.len()).map(|i| merged.result.points().id(i)).collect();
        ids.sort_unstable();
        ids
    }
}

/// Pulls the initiator's final result out of a finished simulation.
fn extract(
    out: skypeer_netsim::des::SimOutcome<SuperPeerNode>,
    initiator: usize,
) -> (SimStats, SortedDataset, bool) {
    let answer = out
        .nodes
        .into_iter()
        .nth(initiator)
        .expect("initiator exists")
        .into_outcome()
        .expect("initiator must hold the final result after completion");
    (out.stats, answer.result, answer.complete)
}

#[cfg(test)]
mod unit {
    use super::*;
    use skypeer_data::DatasetKind;

    fn tiny_config(seed: u64) -> EngineConfig {
        let n_superpeers = 6;
        EngineConfig {
            n_peers: 12,
            n_superpeers,
            dataset: DatasetSpec { dim: 4, points_per_peer: 30, kind: DatasetKind::Uniform, seed },
            topology: TopologySpec::paper_default(n_superpeers, seed),
            index: DominanceIndex::Linear,
            cost: CostModel::default(),
            link: LinkModel::paper_4kbps(),
            routing: RoutingMode::Flood,
        }
    }

    #[test]
    fn every_variant_returns_the_exact_skyline() {
        let engine = SkypeerEngine::build(tiny_config(3));
        let query = Query { subspace: Subspace::from_dims(&[0, 2]), initiator: 1 };
        let want = engine.centralized_skyline(query.subspace);
        assert!(!want.is_empty());
        for variant in Variant::ALL {
            let out = engine.run_query(query, variant);
            assert_eq!(out.result_ids, want, "variant {variant}");
        }
    }

    #[test]
    fn exactness_across_initiators_and_subspaces() {
        let engine = SkypeerEngine::build(tiny_config(8));
        for initiator in 0..6 {
            for u in [Subspace::from_dims(&[1]), Subspace::from_dims(&[0, 3]), Subspace::full(4)] {
                let want = engine.centralized_skyline(u);
                let query = Query { subspace: u, initiator };
                for variant in [Variant::Ftpm, Variant::Rtfm, Variant::Naive] {
                    let out = engine.run_query(query, variant);
                    assert_eq!(out.result_ids, want, "init {initiator} U {u} {variant}");
                }
            }
        }
    }

    #[test]
    fn skypeer_moves_less_data_than_naive() {
        let engine = SkypeerEngine::build(tiny_config(5));
        let query = Query { subspace: Subspace::from_dims(&[0, 1, 2]), initiator: 0 };
        let naive = engine.run_query(query, Variant::Naive);
        for variant in Variant::SKYPEER {
            let out = engine.run_query(query, variant);
            assert!(
                out.volume_bytes <= naive.volume_bytes,
                "{variant} volume {} > naive {}",
                out.volume_bytes,
                naive.volume_bytes
            );
        }
    }

    #[test]
    fn progressive_merging_moves_less_than_fixed() {
        let engine = SkypeerEngine::build(tiny_config(13));
        let query = Query { subspace: Subspace::from_dims(&[0, 1, 2]), initiator: 2 };
        let ftfm = engine.run_query(query, Variant::Ftfm);
        let ftpm = engine.run_query(query, Variant::Ftpm);
        assert!(
            ftpm.volume_bytes <= ftfm.volume_bytes,
            "FTPM {} should not exceed FTFM {}",
            ftpm.volume_bytes,
            ftfm.volume_bytes
        );
    }

    #[test]
    fn metrics_average_correctly() {
        let engine = SkypeerEngine::build(tiny_config(21));
        let queries = [
            Query { subspace: Subspace::from_dims(&[0, 1]), initiator: 0 },
            Query { subspace: Subspace::from_dims(&[2, 3]), initiator: 3 },
        ];
        let outcomes = engine.run_workload(&queries, Variant::Ftpm);
        let m = QueryMetrics::from_outcomes(&outcomes);
        assert_eq!(m.queries, 2);
        let manual = (outcomes[0].total_time_ns as f64 + outcomes[1].total_time_ns as f64) / 2.0;
        assert_eq!(m.avg_total_time_ns, manual);
        assert_eq!(QueryMetrics::from_outcomes(&[]), QueryMetrics::default());
    }

    #[test]
    fn traced_query_is_identical_and_critical_path_accounts_response_time() {
        use skypeer_netsim::obs::{critical_path, MemTracer, Tracer};
        let engine = SkypeerEngine::build(tiny_config(9));
        let query = Query { subspace: Subspace::from_dims(&[0, 2]), initiator: 1 };
        let plain = engine.run_query(query, Variant::Ftpm);
        let tracer = Arc::new(MemTracer::new());
        let traced =
            engine.run_query_traced(query, Variant::Ftpm, Arc::clone(&tracer) as Arc<dyn Tracer>);
        assert_eq!(plain.result_ids, traced.result_ids);
        assert_eq!(plain.total_time_ns, traced.total_time_ns);
        assert_eq!(plain.volume_bytes, traced.volume_bytes);
        let events = tracer.take();
        assert!(!events.is_empty());
        let path = critical_path(&events).expect("query finished");
        assert_eq!(path.finish_at, traced.total_time_ns);
        assert_eq!(
            path.total_ns, traced.total_time_ns,
            "critical path must account for the whole response time"
        );
    }

    #[test]
    fn observed_run_matches_the_real_link_leg_of_run_query() {
        use skypeer_netsim::obs::{MemTracer, Tracer};
        let engine = SkypeerEngine::build(tiny_config(17));
        let query = Query { subspace: Subspace::from_dims(&[0, 3]), initiator: 2 };
        let full = engine.run_query(query, Variant::Rtpm);
        let tracer = Arc::new(MemTracer::new());
        let observed = engine.run_query_observed(
            query,
            Variant::Rtpm,
            Some(Arc::clone(&tracer) as Arc<dyn Tracer>),
        );
        assert_eq!(observed.result_ids, full.result_ids);
        assert_eq!(observed.total_time_ns, full.total_time_ns);
        assert_eq!(observed.volume_bytes, full.volume_bytes);
        assert_eq!(observed.messages, full.messages);
        assert_eq!(observed.comp_time_ns, 0, "no zero-delay leg on the observed path");
        assert!(!tracer.take().is_empty(), "the single sim is traced");
    }

    #[test]
    fn concurrent_batch_reports_per_query_finish_times() {
        let engine = SkypeerEngine::build(tiny_config(11));
        let batch = [
            (Query { subspace: Subspace::from_dims(&[0, 1]), initiator: 0 }, Variant::Ftpm),
            (Query { subspace: Subspace::from_dims(&[2, 3]), initiator: 4 }, Variant::Rtfm),
            (Query { subspace: Subspace::from_dims(&[1, 2]), initiator: 2 }, Variant::Naive),
        ];
        let out = engine.run_concurrent(&batch);
        assert_eq!(out.finish_times_ns.len(), batch.len());
        assert!(out.finish_times_ns.windows(2).all(|w| w[0] <= w[1]), "completion order");
        assert_eq!(*out.finish_times_ns.last().unwrap(), out.makespan_ns);
    }

    #[test]
    fn runs_are_deterministic() {
        let engine = SkypeerEngine::build(tiny_config(30));
        let query = Query { subspace: Subspace::from_dims(&[1, 2]), initiator: 1 };
        let a = engine.run_query(query, Variant::Rtpm);
        let b = engine.run_query(query, Variant::Rtpm);
        assert_eq!(a.result_ids, b.result_ids);
        assert_eq!(a.total_time_ns, b.total_time_ns);
        assert_eq!(a.volume_bytes, b.volume_bytes);
    }

    #[test]
    fn single_superpeer_network_works() {
        let mut cfg = tiny_config(2);
        cfg.n_superpeers = 1;
        cfg.topology = TopologySpec::paper_default(1, 2);
        cfg.n_peers = 3;
        let engine = SkypeerEngine::build(cfg);
        let query = Query { subspace: Subspace::from_dims(&[0, 1]), initiator: 0 };
        for variant in Variant::ALL {
            let out = engine.run_query(query, variant);
            assert_eq!(out.result_ids, engine.centralized_skyline(query.subspace));
            assert_eq!(out.volume_bytes, 0, "no network traffic with one super-peer");
        }
    }

    #[test]
    fn paper_superpeer_rule() {
        assert_eq!(EngineConfig::paper_superpeers(4000), 200);
        assert_eq!(EngineConfig::paper_superpeers(12000), 600);
        assert_eq!(EngineConfig::paper_superpeers(20000), 200);
        assert_eq!(EngineConfig::paper_superpeers(80000), 800);
        assert_eq!(EngineConfig::paper_superpeers(5), 1);
    }
}

#[cfg(test)]
mod profile_tests {
    use super::*;
    use skypeer_data::DatasetKind;

    #[test]
    fn fixed_merging_concentrates_on_the_initiator() {
        let n_superpeers = 10;
        let engine = SkypeerEngine::build(EngineConfig {
            n_peers: 40,
            n_superpeers,
            dataset: DatasetSpec {
                dim: 6,
                points_per_peer: 60,
                kind: DatasetKind::Uniform,
                seed: 3,
            },
            topology: TopologySpec::paper_default(n_superpeers, 4),
            index: DominanceIndex::RTree,
            cost: CostModel::default(),
            link: LinkModel::paper_4kbps(),
            routing: RoutingMode::Flood,
        });
        let q = Query { subspace: Subspace::from_dims(&[0, 2, 4]), initiator: 0 };
        let fm = engine.profile_query(q, Variant::Ftfm);
        let pm = engine.profile_query(q, Variant::Ftpm);
        assert!(
            fm.initiator_compute_share > pm.initiator_compute_share,
            "fixed merging must load the initiator more ({:.3} vs {:.3})",
            fm.initiator_compute_share,
            pm.initiator_compute_share
        );
        assert!(
            fm.initiator_inbound_bytes > pm.initiator_inbound_bytes,
            "fixed merging must funnel more bytes into the initiator"
        );
        assert!(fm.breakdown.hottest_node().is_some());
        assert!(fm.initiator_inbound_bytes <= fm.total_bytes);
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::planner::IndexPolicy;
    use skypeer_data::DatasetKind;

    #[test]
    fn auto_policy_preserves_answers_through_the_engine() {
        let n_superpeers = 6;
        let cfg = EngineConfig {
            n_peers: 18,
            n_superpeers,
            dataset: DatasetSpec {
                dim: 5,
                points_per_peer: 30,
                kind: DatasetKind::Uniform,
                seed: 77,
            },
            topology: TopologySpec::paper_default(n_superpeers, 78),
            index: DominanceIndex::RTree,
            cost: CostModel::default(),
            link: LinkModel::paper_4kbps(),
            routing: RoutingMode::Flood,
        };
        let fixed_engine = SkypeerEngine::build(cfg);
        let mut auto_engine = SkypeerEngine::build(cfg);
        auto_engine.set_query_policy(IndexPolicy::Auto);
        let q = Query { subspace: Subspace::from_dims(&[0, 2, 4]), initiator: 2 };
        for variant in Variant::ALL {
            assert_eq!(
                fixed_engine.run_query(q, variant).result_ids,
                auto_engine.run_query(q, variant).result_ids,
                "{variant}"
            );
        }
    }
}
