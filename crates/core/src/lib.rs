#![warn(missing_docs)]

//! The SKYPEER protocol (Vlachou et al., ICDE 2007).
//!
//! SKYPEER answers *subspace skyline* queries over data horizontally
//! partitioned across a super-peer P2P network, exactly, while shipping a
//! small fraction of the data:
//!
//! 1. **Preprocessing** ([`preprocess`]): every peer computes the
//!    *extended skyline* of its local data and uploads it to its
//!    super-peer, which merges the uploads (Algorithm 2 with ext-dominance)
//!    into its query store. Observation 4 makes this reduction lossless
//!    for every subspace query.
//! 2. **Query execution** ([`node`], [`engine`]): the initiating
//!    super-peer computes its local subspace skyline, obtaining a
//!    threshold `t`, attaches it to the query, and floods the query over
//!    the super-peer backbone (duplicate-suppressed, forming a spanning
//!    tree). Every super-peer answers from its stored ext-skyline with the
//!    threshold-based Algorithm 1. Results flow back along the tree.
//! 3. **Variants** ([`variants`]): threshold propagation is either *fixed*
//!    (`FT*`, the initiator's `t` everywhere) or *refined* (`RT*`, each
//!    super-peer tightens `t` with its local result before forwarding);
//!    merging is either *fixed* at the initiator (`*FM`) or *progressive*
//!    at every super-peer (`*PM`). The **naive** baseline skips the
//!    threshold machinery entirely and ships every local skyline to the
//!    initiator.
//!
//! The same protocol state machine runs on the deterministic DES (for the
//! paper's scalability experiments) and on the live threaded runtime (to
//! prove the logic under real concurrency) — see [`engine`] and [`live`].

pub mod audit;
pub mod backend;
pub mod cached;
pub mod churn;
pub mod engine;
pub mod explain;
pub mod live;
pub mod msg;
pub mod node;
pub mod planner;
pub mod preprocess;
pub mod variants;
pub mod verify;

pub use audit::{AnswerFault, AuditSpec, AuditStats, AuditViolation, Auditor, LineageResolver};
pub use backend::{
    backend_for, parse_backend, BackendKind, DistributedSkylineBackend, SamplingBackend,
    SkypeerBackend,
};
pub use engine::{EngineConfig, QueryMetrics, QueryOutcome, SkypeerEngine};
pub use explain::ExplainReport;
pub use preprocess::{preprocess_network, PreprocessReport, SuperPeerStore};
pub use variants::Variant;
