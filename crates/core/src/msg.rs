//! Protocol messages and their wire codec.
//!
//! The network substrate moves opaque byte buffers, so every message is
//! serialized through a small hand-rolled binary format (via the `bytes`
//! crate). This keeps the *volume of transferred data* — one of the three
//! metrics of the paper's evaluation — an honest property of the actual
//! encoded bytes, rather than an estimate bolted onto in-memory structures.
//!
//! Result points travel with their full-space coordinates and global ids,
//! ordered ascending by `f(p)` as Algorithm 2 expects; the `f` values
//! themselves are recomputed on arrival (they are derivable, so shipping
//! them would inflate volume for nothing).

use bytes::{Buf, BufMut, BytesMut};
use skypeer_skyline::{Dominance, PointSet, SortedDataset, Subspace};

use crate::variants::Variant;

/// Compact wire encoding of the dominance flavour a query runs under.
fn flavour_to_wire(flavour: Dominance) -> u8 {
    match flavour {
        Dominance::Standard => 0,
        Dominance::Extended => 1,
    }
}

/// Decodes [`flavour_to_wire`].
fn flavour_from_wire(v: u8) -> Option<Dominance> {
    match v {
        0 => Some(Dominance::Standard),
        1 => Some(Dominance::Extended),
        _ => None,
    }
}

/// One protocol message between super-peers (or a super-peer and itself,
/// for the deferred-computation trick in `FT*` modes).
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// The query `q(U, t)` of Algorithm 3, flooded over the backbone.
    Query {
        /// Query identifier.
        qid: u32,
        /// Requested subspace `U`.
        subspace: Subspace,
        /// Threshold `t` (`f64::INFINITY` for the naive baseline).
        threshold: f64,
        /// Execution strategy.
        variant: Variant,
        /// Dominance flavour every kernel along the way applies.
        /// [`Dominance::Standard`] is the ordinary protocol;
        /// [`Dominance::Extended`] makes the distributed run produce the
        /// global *extended* subspace skyline — the cacheable superset
        /// that can later answer any contained subspace locally.
        flavour: Dominance,
    },
    /// A result list flowing back toward the initiator. `done` marks the
    /// single final message of a child's subtree; `FT*M`/naive relays may
    /// precede it with `done = false` messages.
    Answer {
        /// Query identifier.
        qid: u32,
        /// Whether the sending subtree is finished sending.
        done: bool,
        /// Whether every super-peer of the subtree actually contributed.
        /// `false` once any node abandoned a timed-out child (the
        /// fault-tolerance extension): the result may then be missing
        /// skyline points from failed subtrees.
        complete: bool,
        /// The result points, `f`-ascending.
        points: SortedDataset,
    },
    /// "I already received this query from elsewhere" — the receiver is
    /// not a child of the sender; the sender must not await its results.
    DupAck {
        /// Query identifier.
        qid: u32,
    },
    /// Self-addressed marker used by `FT*`/naive modes to run the local
    /// skyline computation *after* forwarding the query (so propagation is
    /// not serialized behind computation). Never crosses the wire; size 0.
    ComputeLocal {
        /// Query identifier.
        qid: u32,
    },
    /// Round 1 of the sampling backend (Zhang & Zhang, arXiv 1611.00423):
    /// the coordinator broadcasts the query together with a pruning
    /// `filter` — its own local subspace skyline — directly to every
    /// other super-peer. Receivers drop locally-stored points dominated
    /// by any filter point before replying.
    SampleQuery {
        /// Query identifier.
        qid: u32,
        /// Requested subspace `U`.
        subspace: Subspace,
        /// Dominance flavour every kernel of the query applies.
        flavour: Dominance,
        /// The coordinator's local subspace skyline, shipped as the
        /// pruning filter (`f`-ascending).
        filter: SortedDataset,
    },
    /// Round 2 of the sampling backend: a super-peer's surviving local
    /// skyline candidates, sent straight back to the coordinator.
    Candidates {
        /// Query identifier.
        qid: u32,
        /// Whether this peer's contribution is trustworthy (always `true`
        /// today; reserved for fault-tolerant extensions).
        complete: bool,
        /// The surviving candidate points, `f`-ascending.
        points: SortedDataset,
    },
}

/// Appends the shared point-list layout: `dim: u8`, `count: u32`, then
/// `count` × (`id: u64`, `dim` × `coord: f64`).
fn encode_points(b: &mut BytesMut, points: &SortedDataset) {
    let set = points.points();
    b.put_u8(set.dim() as u8);
    b.put_u32(set.len() as u32);
    for (_, id, coords) in set.iter() {
        b.put_u64(id);
        for &v in coords {
            b.put_f64(v);
        }
    }
}

/// Decodes [`encode_points`], applying the same hostile-payload rejection
/// rules as the `Answer` path (bounded dim, finite non-negative coords,
/// declared count backed by actual payload).
fn decode_points(buf: &mut &[u8]) -> Option<SortedDataset> {
    if buf.remaining() < 1 + 4 {
        return None;
    }
    let dim = buf.get_u8() as usize;
    let n = buf.get_u32() as usize;
    if dim == 0 || buf.remaining() < n * (8 + 8 * dim) {
        return None;
    }
    if dim > skypeer_skyline::MAX_DIM {
        return None;
    }
    let mut set = PointSet::with_capacity(dim, n);
    let mut coords = vec![0.0; dim];
    for _ in 0..n {
        let id = buf.get_u64();
        for c in coords.iter_mut() {
            *c = buf.get_f64();
        }
        // Reject rather than panic on hostile payloads: the value domain
        // is finite non-negative reals.
        if coords.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return None;
        }
        set.push(&coords, id);
    }
    // The sender guarantees f-ascending order; rebuilding via from_set
    // re-sorts defensively (stable for valid senders).
    Some(SortedDataset::from_set(&set))
}

impl Msg {
    /// Serializes into bytes. The buffer length is the message's wire size,
    /// except for [`Msg::ComputeLocal`], which callers send with 0 bytes.
    pub fn encode(&self) -> Vec<u8> {
        skypeer_obs::scope!("wire::encode");
        let mut b = BytesMut::new();
        match self {
            Msg::Query { qid, subspace, threshold, variant, flavour } => {
                b.put_u8(1);
                b.put_u32(*qid);
                b.put_u32(subspace.mask());
                b.put_f64(*threshold);
                b.put_u8(variant.to_wire());
                b.put_u8(flavour_to_wire(*flavour));
            }
            Msg::Answer { qid, done, complete, points } => {
                b.put_u8(2);
                b.put_u32(*qid);
                b.put_u8(u8::from(*done));
                b.put_u8(u8::from(*complete));
                encode_points(&mut b, points);
            }
            Msg::DupAck { qid } => {
                b.put_u8(3);
                b.put_u32(*qid);
            }
            Msg::ComputeLocal { qid } => {
                b.put_u8(4);
                b.put_u32(*qid);
            }
            Msg::SampleQuery { qid, subspace, flavour, filter } => {
                b.put_u8(5);
                b.put_u32(*qid);
                b.put_u32(subspace.mask());
                b.put_u8(flavour_to_wire(*flavour));
                encode_points(&mut b, filter);
            }
            Msg::Candidates { qid, complete, points } => {
                b.put_u8(6);
                b.put_u32(*qid);
                b.put_u8(u8::from(*complete));
                encode_points(&mut b, points);
            }
        }
        b.to_vec()
    }

    /// Deserializes; returns `None` on malformed input.
    pub fn decode(mut buf: &[u8]) -> Option<Msg> {
        skypeer_obs::scope!("wire::decode");
        if buf.remaining() < 1 {
            return None;
        }
        match buf.get_u8() {
            1 => {
                if buf.remaining() < 4 + 4 + 8 + 1 + 1 {
                    return None;
                }
                let qid = buf.get_u32();
                let mask = buf.get_u32();
                if mask == 0 {
                    return None;
                }
                let threshold = buf.get_f64();
                // Thresholds are min-dist values: non-negative, possibly
                // +∞ (no pruning). Anything else is a hostile payload.
                if threshold.is_nan() || threshold < 0.0 {
                    return None;
                }
                let variant = Variant::from_wire(buf.get_u8())?;
                let flavour = flavour_from_wire(buf.get_u8())?;
                Some(Msg::Query {
                    qid,
                    subspace: Subspace::from_mask(mask),
                    threshold,
                    variant,
                    flavour,
                })
            }
            2 => {
                if buf.remaining() < 4 + 1 + 1 {
                    return None;
                }
                let qid = buf.get_u32();
                let done = buf.get_u8() != 0;
                let complete = buf.get_u8() != 0;
                let points = decode_points(&mut buf)?;
                Some(Msg::Answer { qid, done, complete, points })
            }
            3 => {
                if buf.remaining() < 4 {
                    return None;
                }
                Some(Msg::DupAck { qid: buf.get_u32() })
            }
            4 => {
                if buf.remaining() < 4 {
                    return None;
                }
                Some(Msg::ComputeLocal { qid: buf.get_u32() })
            }
            5 => {
                if buf.remaining() < 4 + 4 + 1 {
                    return None;
                }
                let qid = buf.get_u32();
                let mask = buf.get_u32();
                if mask == 0 {
                    return None;
                }
                let flavour = flavour_from_wire(buf.get_u8())?;
                let filter = decode_points(&mut buf)?;
                Some(Msg::SampleQuery { qid, subspace: Subspace::from_mask(mask), flavour, filter })
            }
            6 => {
                if buf.remaining() < 4 + 1 {
                    return None;
                }
                let qid = buf.get_u32();
                let complete = buf.get_u8() != 0;
                let points = decode_points(&mut buf)?;
                Some(Msg::Candidates { qid, complete, points })
            }
            _ => None,
        }
    }

    /// On-wire size in bytes: actual encoded length, except that
    /// [`Msg::ComputeLocal`] is free (it never crosses the network).
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Msg::ComputeLocal { .. } => 0,
            _ => self.encode().len() as u64,
        }
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    fn sample_points() -> SortedDataset {
        let mut s = PointSet::new(3);
        s.push(&[1.0, 2.0, 3.0], 7);
        s.push(&[0.5, 4.0, 4.0], 9);
        SortedDataset::from_set(&s)
    }

    #[test]
    fn query_roundtrip() {
        for flavour in [Dominance::Standard, Dominance::Extended] {
            let m = Msg::Query {
                qid: 42,
                subspace: Subspace::from_dims(&[1, 3, 5]),
                threshold: 0.75,
                variant: Variant::Rtpm,
                flavour,
            };
            assert_eq!(Msg::decode(&m.encode()), Some(m));
        }
    }

    #[test]
    fn bad_flavour_byte_rejected() {
        let mut q = Msg::Query {
            qid: 0,
            subspace: Subspace::from_mask(1),
            threshold: 1.0,
            variant: Variant::Ftfm,
            flavour: Dominance::Standard,
        }
        .encode();
        let flavour_off = q.len() - 1;
        for bad in [2u8, 255] {
            q[flavour_off] = bad;
            assert_eq!(Msg::decode(&q), None, "flavour byte {bad} must be rejected");
        }
    }

    #[test]
    fn answer_roundtrip_preserves_points_and_order() {
        let m = Msg::Answer { qid: 1, done: true, complete: true, points: sample_points() };
        let d = Msg::decode(&m.encode()).expect("decodes");
        let Msg::Answer { points, done, complete, qid } = d else { panic!() };
        assert!(done);
        assert!(complete);
        assert_eq!(qid, 1);
        assert_eq!(points.len(), 2);
        assert_eq!(points.points().id(0), 9, "f=0.5 point first");
        assert_eq!(points.points().point(0), &[0.5, 4.0, 4.0]);
    }

    #[test]
    fn dupack_and_compute_roundtrip() {
        for m in [Msg::DupAck { qid: 3 }, Msg::ComputeLocal { qid: 8 }] {
            assert_eq!(Msg::decode(&m.encode()), Some(m));
        }
    }

    #[test]
    fn wire_size_tracks_point_count() {
        let empty =
            Msg::Answer { qid: 0, done: true, complete: true, points: SortedDataset::empty(3) };
        let full = Msg::Answer { qid: 0, done: true, complete: true, points: sample_points() };
        // Two 3-d points cost 2 × (8 id + 24 coords) = 64 extra bytes.
        assert_eq!(full.wire_bytes(), empty.wire_bytes() + 64);
        assert_eq!(Msg::ComputeLocal { qid: 0 }.wire_bytes(), 0, "self message is free");
    }

    #[test]
    fn malformed_input_rejected() {
        assert_eq!(Msg::decode(&[]), None);
        assert_eq!(Msg::decode(&[9, 0, 0]), None);
        assert_eq!(Msg::decode(&[1, 0, 0]), None, "truncated query");
        // Query with an empty subspace mask.
        let mut bad = Msg::Query {
            qid: 0,
            subspace: Subspace::from_mask(1),
            threshold: 1.0,
            variant: Variant::Ftfm,
            flavour: Dominance::Standard,
        }
        .encode();
        bad[5..9].fill(0);
        assert_eq!(Msg::decode(&bad), None);
        // Answer whose declared count exceeds the payload.
        let mut ans =
            Msg::Answer { qid: 0, done: false, complete: true, points: sample_points() }.encode();
        ans.truncate(ans.len() - 8);
        assert_eq!(Msg::decode(&ans), None);
    }

    #[test]
    fn hostile_payloads_are_rejected_not_panicking() {
        // Negative coordinate inside an Answer.
        let mut ans =
            Msg::Answer { qid: 0, done: true, complete: true, points: sample_points() }.encode();
        let coord_off = ans.len() - 8;
        ans[coord_off..].copy_from_slice(&(-1.0f64).to_be_bytes());
        assert_eq!(Msg::decode(&ans), None, "negative coordinate must be rejected");
        // NaN coordinate.
        let mut nan =
            Msg::Answer { qid: 0, done: true, complete: true, points: sample_points() }.encode();
        nan[coord_off..].copy_from_slice(&f64::NAN.to_be_bytes());
        assert_eq!(Msg::decode(&nan), None, "NaN coordinate must be rejected");
        // NaN threshold in a Query.
        let mut q = Msg::Query {
            qid: 0,
            subspace: Subspace::from_mask(1),
            threshold: 1.0,
            variant: Variant::Ftfm,
            flavour: Dominance::Standard,
        }
        .encode();
        q[9..17].copy_from_slice(&f64::NAN.to_be_bytes());
        assert_eq!(Msg::decode(&q), None, "NaN threshold must be rejected");
        // Oversized declared dimensionality.
        let mut big =
            Msg::Answer { qid: 0, done: true, complete: true, points: SortedDataset::empty(3) }
                .encode();
        big[7] = 255; // dim byte (tag + qid + done + complete precede it)
        assert_eq!(Msg::decode(&big), None, "dim > MAX_DIM must be rejected");
    }

    #[test]
    fn sample_query_and_candidates_roundtrip() {
        for flavour in [Dominance::Standard, Dominance::Extended] {
            let m = Msg::SampleQuery {
                qid: 11,
                subspace: Subspace::from_dims(&[0, 2]),
                flavour,
                filter: sample_points(),
            };
            assert_eq!(Msg::decode(&m.encode()), Some(m));
        }
        for complete in [true, false] {
            let m = Msg::Candidates { qid: 12, complete, points: sample_points() };
            assert_eq!(Msg::decode(&m.encode()), Some(m));
        }
        // Empty point lists survive too (a peer may have nothing left
        // after filtering).
        let m = Msg::Candidates { qid: 0, complete: true, points: SortedDataset::empty(3) };
        assert_eq!(Msg::decode(&m.encode()), Some(m));
    }

    #[test]
    fn sampling_messages_reject_hostile_payloads() {
        // Empty subspace mask in a SampleQuery.
        let mut bad = Msg::SampleQuery {
            qid: 0,
            subspace: Subspace::from_mask(1),
            flavour: Dominance::Standard,
            filter: SortedDataset::empty(3),
        }
        .encode();
        bad[5..9].fill(0);
        assert_eq!(Msg::decode(&bad), None, "empty mask must be rejected");
        // Negative coordinate inside a Candidates list.
        let mut ans = Msg::Candidates { qid: 0, complete: true, points: sample_points() }.encode();
        let coord_off = ans.len() - 8;
        ans[coord_off..].copy_from_slice(&(-1.0f64).to_be_bytes());
        assert_eq!(Msg::decode(&ans), None, "negative coordinate must be rejected");
        // Truncated Candidates payload.
        let mut trunc =
            Msg::Candidates { qid: 0, complete: true, points: sample_points() }.encode();
        trunc.truncate(trunc.len() - 8);
        assert_eq!(Msg::decode(&trunc), None, "declared count must be backed by payload");
    }

    #[test]
    fn sampling_wire_size_tracks_point_count() {
        let empty = Msg::SampleQuery {
            qid: 0,
            subspace: Subspace::from_mask(5),
            flavour: Dominance::Standard,
            filter: SortedDataset::empty(3),
        };
        let full = Msg::SampleQuery {
            qid: 0,
            subspace: Subspace::from_mask(5),
            flavour: Dominance::Standard,
            filter: sample_points(),
        };
        // Two 3-d points cost 2 × (8 id + 24 coords) = 64 extra bytes.
        assert_eq!(full.wire_bytes(), empty.wire_bytes() + 64);
        assert_eq!(full.wire_bytes(), full.encode().len() as u64);
    }

    #[test]
    fn infinity_threshold_survives_roundtrip() {
        let m = Msg::Query {
            qid: 0,
            subspace: Subspace::from_mask(1),
            threshold: f64::INFINITY,
            variant: Variant::Naive,
            flavour: Dominance::Standard,
        };
        let Some(Msg::Query { threshold, .. }) = Msg::decode(&m.encode()) else { panic!() };
        assert!(threshold.is_infinite());
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(512))]

            /// Arbitrary byte soup never panics the decoder.
            #[test]
            fn prop_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
                let _ = Msg::decode(&bytes);
            }

            /// Single-byte corruption of a valid message never panics, and
            /// whatever still decodes re-encodes without panicking.
            #[test]
            fn prop_bitflips_never_panic(pos in 0usize..64, val in any::<u8>()) {
                let valid = Msg::Answer {
                    qid: 7,
                    done: true,
                    complete: true,
                    points: sample_points(),
                }
                .encode();
                let mut corrupted = valid.clone();
                let idx = pos % corrupted.len();
                corrupted[idx] = val;
                if let Some(m) = Msg::decode(&corrupted) {
                    let _ = m.encode();
                }
            }

            /// Round-trip identity over the structured message space.
            #[test]
            fn prop_query_roundtrip(
                qid in any::<u32>(),
                mask in 1u32..=0xFF,
                threshold in prop_oneof![(0.0f64..1e12), Just(f64::INFINITY)],
                variant_idx in 0usize..5,
                flavour_idx in 0usize..2,
            ) {
                let m = Msg::Query {
                    qid,
                    subspace: Subspace::from_mask(mask),
                    threshold,
                    variant: Variant::ALL[variant_idx],
                    flavour: [Dominance::Standard, Dominance::Extended][flavour_idx],
                };
                prop_assert_eq!(Msg::decode(&m.encode()), Some(m));
            }

            /// Round-trip identity for the sampling-backend messages, and
            /// the declared wire size is the bytes actually on the wire.
            #[test]
            fn prop_sampling_roundtrip_and_size(
                qid in any::<u32>(),
                mask in 1u32..=0xFF,
                flavour_idx in 0usize..2,
                complete in any::<bool>(),
                coords in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 0..8),
            ) {
                let mut set = PointSet::new(2);
                for (i, &(x, y)) in coords.iter().enumerate() {
                    set.push(&[x, y], i as u64);
                }
                let points = SortedDataset::from_set(&set);
                let sq = Msg::SampleQuery {
                    qid,
                    subspace: Subspace::from_mask(mask),
                    flavour: [Dominance::Standard, Dominance::Extended][flavour_idx],
                    filter: points.clone(),
                };
                prop_assert_eq!(sq.wire_bytes(), sq.encode().len() as u64);
                prop_assert_eq!(Msg::decode(&sq.encode()), Some(sq));
                let cand = Msg::Candidates { qid, complete, points };
                prop_assert_eq!(cand.wire_bytes(), cand.encode().len() as u64);
                prop_assert_eq!(Msg::decode(&cand.encode()), Some(cand));
            }
        }
    }
}
