//! The SKYPEER variant matrix (Table 2 of the paper) plus the naive
//! baseline.

use serde::{Deserialize, Serialize};

/// Query-execution strategy run by every super-peer.
///
/// Two orthogonal choices (Section 5.2.3):
///
/// * **Threshold propagation** — *Fixed* (`FT*`): the initiator's threshold
///   is forwarded unchanged; *Refined* (`RT*`): each super-peer first
///   computes its local skyline, tightens the threshold, and only then
///   forwards the query.
/// * **Merging** — *Fixed* (`*FM`): all local results travel to the
///   initiator, which merges them; *Progressive* (`*PM`): each super-peer
///   merges its children's results with its own before replying.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// Fixed threshold, fixed merging at the initiator.
    Ftfm,
    /// Fixed threshold, progressive merging.
    Ftpm,
    /// Refined threshold, fixed merging at the initiator.
    Rtfm,
    /// Refined threshold, progressive merging.
    Rtpm,
    /// The baseline of Section 3.2: local skyline computation over the
    /// stored ext-skylines with no threshold, everything shipped to and
    /// merged at the initiator with plain BNL.
    Naive,
}

impl Variant {
    /// All four SKYPEER variants (excluding the baseline), in Table 2
    /// order.
    pub const SKYPEER: [Variant; 4] = [Variant::Ftfm, Variant::Ftpm, Variant::Rtfm, Variant::Rtpm];

    /// All five strategies, baseline last.
    pub const ALL: [Variant; 5] =
        [Variant::Ftfm, Variant::Ftpm, Variant::Rtfm, Variant::Rtpm, Variant::Naive];

    /// Whether the threshold is refined at every super-peer (`RT*`).
    pub fn refines_threshold(self) -> bool {
        matches!(self, Variant::Rtfm | Variant::Rtpm)
    }

    /// Whether results are merged progressively (`*PM`).
    pub fn merges_progressively(self) -> bool {
        matches!(self, Variant::Ftpm | Variant::Rtpm)
    }

    /// Whether the threshold machinery is used at all.
    pub fn uses_threshold(self) -> bool {
        !matches!(self, Variant::Naive)
    }

    /// The paper's mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Variant::Ftfm => "FTFM",
            Variant::Ftpm => "FTPM",
            Variant::Rtfm => "RTFM",
            Variant::Rtpm => "RTPM",
            Variant::Naive => "naive",
        }
    }

    /// Compact wire encoding.
    pub(crate) fn to_wire(self) -> u8 {
        match self {
            Variant::Ftfm => 0,
            Variant::Ftpm => 1,
            Variant::Rtfm => 2,
            Variant::Rtpm => 3,
            Variant::Naive => 4,
        }
    }

    /// Decodes [`Variant::to_wire`].
    pub(crate) fn from_wire(v: u8) -> Option<Variant> {
        Some(match v {
            0 => Variant::Ftfm,
            1 => Variant::Ftpm,
            2 => Variant::Rtfm,
            3 => Variant::Rtpm,
            4 => Variant::Naive,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn table2_matrix() {
        assert!(!Variant::Ftfm.refines_threshold() && !Variant::Ftfm.merges_progressively());
        assert!(!Variant::Ftpm.refines_threshold() && Variant::Ftpm.merges_progressively());
        assert!(Variant::Rtfm.refines_threshold() && !Variant::Rtfm.merges_progressively());
        assert!(Variant::Rtpm.refines_threshold() && Variant::Rtpm.merges_progressively());
    }

    #[test]
    fn naive_has_no_threshold() {
        assert!(!Variant::Naive.uses_threshold());
        for v in Variant::SKYPEER {
            assert!(v.uses_threshold());
        }
    }

    #[test]
    fn wire_roundtrip() {
        for v in Variant::ALL {
            assert_eq!(Variant::from_wire(v.to_wire()), Some(v));
        }
        assert_eq!(Variant::from_wire(99), None);
    }

    #[test]
    fn mnemonics_match_paper() {
        let names: Vec<&str> = Variant::SKYPEER.iter().map(|v| v.mnemonic()).collect();
        assert_eq!(names, vec!["FTFM", "FTPM", "RTFM", "RTPM"]);
    }
}
