//! Running a SKYPEER query on the live threaded runtime.
//!
//! The same [`SuperPeerNode`] state machine
//! that the DES drives is handed to real OS threads here — one per
//! super-peer, crossbeam channels as links. The result must be the exact
//! subspace skyline regardless of thread scheduling, which the integration
//! tests assert repeatedly.

use std::sync::Arc;
use std::time::Duration;

use skypeer_cache::{Flight, SharedSubspaceCache};
use skypeer_netsim::live::{run_live_multi_traced, LiveStats};
use skypeer_netsim::obs::{SamplerHandle, Tracer};
use skypeer_netsim::topology::Topology;
use skypeer_skyline::{Dominance, DominanceIndex, SortedDataset, Subspace};

use crate::node::{InitQuery, SuperPeerNode};
use crate::variants::Variant;

/// Result of a live query execution.
#[derive(Clone, Debug)]
pub struct LiveQueryOutcome {
    /// Sorted global ids of the exact subspace skyline.
    pub result_ids: Vec<u64>,
    /// Whether every super-peer contributed.
    pub complete: bool,
    /// The result points.
    pub result: SortedDataset,
    /// Wire statistics of the run.
    pub stats: LiveStats,
    /// Wall-clock nanoseconds (since run start) at which the query's
    /// `finish` was observed — the live runtime's per-query latency
    /// sample.
    pub finish_ns: u64,
}

/// Executes one subspace skyline query over `stores` live, with one thread
/// per super-peer. Returns `None` if the query does not complete within
/// `timeout` (which, absent deadlock bugs, it always does).
pub fn run_query_live(
    topology: &Topology,
    stores: &[Arc<SortedDataset>],
    subspace: Subspace,
    initiator: usize,
    variant: Variant,
    index: DominanceIndex,
    timeout: Duration,
) -> Option<LiveQueryOutcome> {
    run_query_live_traced(
        topology, stores, subspace, initiator, variant, index, timeout, None, None,
    )
}

/// [`run_query_live`] with an optional [`Tracer`] observing every node
/// thread and an optional metrics [`SamplerHandle`] flushing a Prometheus
/// snapshot of the same tracer to its file while the query runs (plus one
/// final flush after all threads join).
#[allow(clippy::too_many_arguments)]
pub fn run_query_live_traced(
    topology: &Topology,
    stores: &[Arc<SortedDataset>],
    subspace: Subspace,
    initiator: usize,
    variant: Variant,
    index: DominanceIndex,
    timeout: Duration,
    tracer: Option<Arc<dyn Tracer>>,
    sampler: Option<&SamplerHandle>,
) -> Option<LiveQueryOutcome> {
    run_live_inner(
        topology,
        stores,
        subspace,
        initiator,
        variant,
        Dominance::Standard,
        index,
        timeout,
        tracer,
        sampler,
    )
}

/// [`run_query_live`] with the **Extended** dominance flavour: the
/// initiator ends up with the global `ext-SKY_U`, which a
/// [`skypeer_cache::SubspaceCache`] can admit and later refine into the
/// exact `SKY_{U'}` for any `U' ⊆ U`. This is the miss path of the live
/// cached runtime.
pub fn run_query_live_ext(
    topology: &Topology,
    stores: &[Arc<SortedDataset>],
    subspace: Subspace,
    initiator: usize,
    variant: Variant,
    index: DominanceIndex,
    timeout: Duration,
) -> Option<LiveQueryOutcome> {
    run_live_inner(
        topology,
        stores,
        subspace,
        initiator,
        variant,
        Dominance::Extended,
        index,
        timeout,
        None,
        None,
    )
}

/// Executes one query through a [`SharedSubspaceCache`] with blocking
/// single-flight admission — the live runtime's cached initiator path:
///
/// * a cache hit (exact or subsumed) is served locally, with zero wire
///   traffic (`stats` is all zeros);
/// * a miss whose subspace an in-flight execution covers blocks inside
///   [`SharedSubspaceCache::begin`] until that leader completes, then is
///   served from the freshly admitted entry;
/// * otherwise this caller leads: it runs the **Extended**-flavour live
///   query, admits the complete result (waking followers), and refines it
///   locally to the standard skyline. Timeouts and incomplete results
///   abort the flight so a waiting follower becomes the next leader.
#[allow(clippy::too_many_arguments)]
pub fn run_query_live_cached(
    topology: &Topology,
    stores: &[Arc<SortedDataset>],
    subspace: Subspace,
    initiator: usize,
    variant: Variant,
    index: DominanceIndex,
    timeout: Duration,
    cache: &SharedSubspaceCache,
) -> Option<LiveQueryOutcome> {
    match cache.begin(subspace) {
        Flight::Hit(ans) => Some(LiveQueryOutcome {
            result_ids: ans.result_ids,
            complete: true,
            result: ans.result,
            stats: LiveStats::default(),
            finish_ns: 0,
        }),
        Flight::Lead => {
            match run_query_live_ext(topology, stores, subspace, initiator, variant, index, timeout)
            {
                Some(out) if out.complete => {
                    cache.complete(subspace, out.result.clone(), out.stats.bytes);
                    let refined =
                        skypeer_skyline::extended::refine_from_ext(&out.result, subspace, index);
                    let mut result_ids: Vec<u64> =
                        (0..refined.result.len()).map(|i| refined.result.points().id(i)).collect();
                    result_ids.sort_unstable();
                    Some(LiveQueryOutcome {
                        result_ids,
                        complete: true,
                        result: refined.result,
                        stats: out.stats,
                        finish_ns: out.finish_ns,
                    })
                }
                other => {
                    cache.abort(subspace);
                    other
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_live_inner(
    topology: &Topology,
    stores: &[Arc<SortedDataset>],
    subspace: Subspace,
    initiator: usize,
    variant: Variant,
    flavour: Dominance,
    index: DominanceIndex,
    timeout: Duration,
    tracer: Option<Arc<dyn Tracer>>,
    sampler: Option<&SamplerHandle>,
) -> Option<LiveQueryOutcome> {
    assert_eq!(topology.len(), stores.len(), "one store per super-peer required");
    assert!(initiator < topology.len(), "initiator out of range");
    let nodes: Vec<SuperPeerNode> = (0..topology.len())
        .map(|sp| {
            let init =
                (sp == initiator).then_some(InitQuery { qid: 1, subspace, variant, flavour });
            SuperPeerNode::new(
                sp,
                topology.neighbors(sp).to_vec(),
                Arc::clone(&stores[sp]),
                index,
                init,
            )
        })
        .collect();
    let out = run_live_multi_traced(nodes, &[initiator], 1, timeout, tracer, sampler)?;
    let finish_ns = out.finish_times.first().copied().unwrap_or(0);
    let answer = out
        .nodes
        .into_iter()
        .nth(initiator)
        .expect("initiator exists")
        .into_outcome()
        .expect("finished run must leave the result at the initiator");
    let result = answer.result;
    let mut result_ids: Vec<u64> = (0..result.len()).map(|i| result.points().id(i)).collect();
    result_ids.sort_unstable();
    Some(LiveQueryOutcome {
        result_ids,
        complete: answer.complete,
        result,
        stats: out.stats,
        finish_ns,
    })
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::preprocess::SuperPeerStore;
    use skypeer_data::{DatasetKind, DatasetSpec};
    use skypeer_netsim::topology::TopologySpec;
    use skypeer_skyline::PointSet;

    fn build_stores(
        n_superpeers: usize,
        peers_per_sp: usize,
        seed: u64,
    ) -> (Topology, Vec<Arc<SortedDataset>>, PointSet) {
        let topo = TopologySpec::paper_default(n_superpeers, seed).generate();
        let spec = DatasetSpec { dim: 4, points_per_peer: 25, kind: DatasetKind::Uniform, seed };
        let mut all = PointSet::new(4);
        let mut stores = Vec::new();
        for sp in 0..n_superpeers {
            let sets: Vec<PointSet> =
                (0..peers_per_sp).map(|i| spec.generate_peer(sp * peers_per_sp + i, sp)).collect();
            for s in &sets {
                all.extend_from(s);
            }
            let store = SuperPeerStore::preprocess(&sets, 4, DominanceIndex::Linear);
            stores.push(Arc::new(store.store));
        }
        (topo, stores, all)
    }

    #[test]
    fn live_run_is_exact_for_every_variant() {
        let (topo, stores, all) = build_stores(6, 3, 42);
        let u = Subspace::from_dims(&[0, 2]);
        let want =
            skypeer_skyline::brute::skyline_ids(&all, u, skypeer_skyline::Dominance::Standard);
        for variant in Variant::ALL {
            let out = run_query_live(
                &topo,
                &stores,
                u,
                1,
                variant,
                DominanceIndex::Linear,
                Duration::from_secs(20),
            )
            .expect("live query must complete");
            assert_eq!(out.result_ids, want, "variant {variant}");
            assert!(out.stats.messages > 0);
        }
    }

    #[test]
    fn live_cached_single_flight_is_exact_and_saves_traffic() {
        use skypeer_cache::{CacheConfig, SharedSubspaceCache};
        let (topo, stores, all) = build_stores(5, 2, 99);
        let cache = SharedSubspaceCache::new(CacheConfig {
            max_bytes: 4 << 20,
            index: DominanceIndex::Linear,
        });
        let u = Subspace::from_dims(&[0, 2]);
        let sub = Subspace::from_dims(&[0]);
        let outs: Vec<LiveQueryOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = [u, u, u, sub]
                .into_iter()
                .map(|q| {
                    let (topo, stores, cache) = (&topo, &stores, &cache);
                    s.spawn(move || {
                        run_query_live_cached(
                            topo,
                            stores,
                            q,
                            1,
                            Variant::Ftpm,
                            DominanceIndex::Linear,
                            Duration::from_secs(20),
                            cache,
                        )
                        .expect("live cached query must complete")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("join")).collect()
        });
        let std = skypeer_skyline::Dominance::Standard;
        for (out, q) in outs.iter().zip([u, u, u, sub]) {
            assert_eq!(out.result_ids, skypeer_skyline::brute::skyline_ids(&all, q, std));
            assert!(out.complete);
        }
        // Single-flight: exactly one of the four executions touched the
        // wire; the rest were hits or coalesced followers.
        let executed = outs.iter().filter(|o| o.stats.messages > 0).count();
        assert_eq!(executed, 1, "one leader, three cache-served");
        let st = cache.stats();
        assert_eq!(st.hits() + st.coalesced, 3);
        assert_eq!(st.misses, 1);
        // And a later identical query is a plain local hit.
        let again = run_query_live_cached(
            &topo,
            &stores,
            u,
            0,
            Variant::Rtfm,
            DominanceIndex::Linear,
            Duration::from_secs(20),
            &cache,
        )
        .expect("hit");
        assert_eq!(again.stats.bytes, 0);
        assert_eq!(again.result_ids, skypeer_skyline::brute::skyline_ids(&all, u, std));
    }

    #[test]
    fn repeated_live_runs_agree_despite_scheduling() {
        let (topo, stores, _) = build_stores(5, 2, 7);
        let u = Subspace::from_dims(&[1, 3]);
        let first = run_query_live(
            &topo,
            &stores,
            u,
            0,
            Variant::Ftpm,
            DominanceIndex::Linear,
            Duration::from_secs(20),
        )
        .expect("completes");
        for _ in 0..5 {
            let again = run_query_live(
                &topo,
                &stores,
                u,
                0,
                Variant::Ftpm,
                DominanceIndex::Linear,
                Duration::from_secs(20),
            )
            .expect("completes");
            assert_eq!(again.result_ids, first.result_ids, "thread schedule changed the answer");
        }
    }
}
