//! The SKYPEER super-peer state machine (Algorithm 3).
//!
//! One [`SuperPeerNode`] per super-peer, runnable on either the DES or the
//! live runtime. A query executes as follows:
//!
//! * An **initiator** (a node constructed with an [`InitQuery`]) computes
//!   its local subspace skyline to obtain the threshold `t` (SKYPEER
//!   variants), then floods `q(U, t)` to its neighbors.
//! * On first receipt of the query, a super-peer adopts the sender as its
//!   **parent** in the implicit spanning tree and forwards the query to its
//!   other neighbors; later receipts are answered with a [`Msg::DupAck`]
//!   so the sender does not await a subtree that is not there.
//! * `FT*`/naive nodes forward the query *before* computing (the local
//!   computation is deferred behind a zero-byte self-message, so in the
//!   simulator propagation and computation overlap, as they would in a
//!   threaded deployment). `RT*` nodes compute first, refine `t`, and
//!   forward the tightened query — buying pruning at the price of
//!   serialized propagation, exactly the trade-off the paper evaluates.
//! * `*FM`/naive nodes relay every child result straight toward the
//!   initiator; `*PM` nodes buffer child results and send a single merged
//!   list (Algorithm 2) upward once their subtree completes.
//! * A node's subtree is complete when its local computation is done and
//!   every neighbor it forwarded to has either sent its final
//!   (`done = true`) answer or a `DupAck`. The initiator then performs the
//!   final merge and declares its query finished.
//!
//! State is keyed by query id, so any number of queries — from the same or
//! different initiators — can be in flight concurrently through one node;
//! the runtime's per-node busy model then captures the queueing between
//! them.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use skypeer_netsim::cost::WorkReport;
use skypeer_netsim::des::{Behavior, Context};
use skypeer_netsim::obs::{ProtoEvent, QueryPhase};
use skypeer_skyline::merge::merge_sorted;
use skypeer_skyline::sorted::KernelStats;
use skypeer_skyline::{bnl, Dominance, DominanceIndex, PointSet, SortedDataset, Subspace};

use crate::msg::Msg;
use crate::planner::IndexPolicy;
use crate::variants::Variant;

/// A query this node initiates at start of run.
#[derive(Clone, Copy, Debug)]
pub struct InitQuery {
    /// Query identifier — must be unique across the queries of one run.
    pub qid: u32,
    /// Requested subspace `U`.
    pub subspace: Subspace,
    /// Execution strategy.
    pub variant: Variant,
    /// Dominance flavour applied by every kernel of the run. Standard is
    /// the ordinary protocol; Extended computes the global extended
    /// subspace skyline (the cacheable superset — see `skypeer-cache`).
    pub flavour: Dominance,
}

impl InitQuery {
    /// An ordinary (standard-dominance) query.
    pub fn standard(qid: u32, subspace: Subspace, variant: Variant) -> Self {
        InitQuery { qid, subspace, variant, flavour: Dominance::Standard }
    }

    /// An extended-dominance query: the distributed run returns
    /// `ext-SKY_U`, which a cache can refine into `SKY_V` for any
    /// `V ⊆ U`. Exactness holds because the per-super-peer stores are
    /// extended skylines (so no global ext-skyline point is lost locally)
    /// and threshold pruning is sound under extended dominance:
    /// `f(p) > dist_U(q)` means `q` is strictly below `p` on every
    /// dimension of `U`, i.e. `q` ext-dominates `p`.
    pub fn extended(qid: u32, subspace: Subspace, variant: Variant) -> Self {
        InitQuery { qid, subspace, variant, flavour: Dominance::Extended }
    }
}

/// Per-query bookkeeping on one super-peer.
struct QueryState {
    subspace: Subspace,
    variant: Variant,
    /// Dominance flavour every kernel of this query applies.
    flavour: Dominance,
    /// Tightest threshold known to this node (∞ for naive).
    threshold: f64,
    /// Node the query arrived from (`None` on the initiator).
    parent: Option<usize>,
    /// Neighbors forwarded to whose subtrees have not yet closed.
    outstanding: Vec<usize>,
    /// Local subspace skyline, once computed.
    local: Option<SortedDataset>,
    /// Buffered result lists: children's lists (`*PM`) or everything that
    /// reached the initiator (`*FM`/naive).
    collected: Vec<SortedDataset>,
    /// Whether this node already sent its final answer / finished.
    finalized: bool,
    /// Whether every super-peer of this subtree contributed. Cleared when
    /// a timed-out child is abandoned or a child reports incompleteness.
    complete: bool,
}

/// The initiator's final answer.
#[derive(Clone, Debug)]
pub struct FinalAnswer {
    /// The subspace skyline, `f`-ascending. Exact when `complete`.
    pub result: SortedDataset,
    /// Whether every reachable super-peer contributed. `false` only under
    /// the fault-tolerance extension, after abandoning failed subtrees.
    pub complete: bool,
}

/// How queries spread over the backbone.
///
/// The paper's protocol floods: every node forwards to all neighbors
/// except the sender, duplicate receipts are dup-acked, and the spanning
/// tree emerges from first arrivals. Systems with routing indices at the
/// super-peer level (the paper cites Edutella) can instead precompute an
/// explicit spanning tree per initiator and forward only along it —
/// trading the index maintenance for the elimination of every duplicate
/// query and dup-ack. Provided as an ablation
/// (`EngineConfig::routing`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Routing {
    /// Gnutella-style constrained flooding (the paper's protocol).
    Flood,
    /// Forward only to the given children of a precomputed spanning tree.
    Tree {
        /// This node's children in the tree rooted at the initiator.
        children: Vec<usize>,
    },
}

/// A super-peer node: stored ext-skyline plus protocol state.
pub struct SuperPeerNode {
    id: usize,
    neighbors: Vec<usize>,
    store: Arc<SortedDataset>,
    policy: IndexPolicy,
    init_queries: Vec<InitQuery>,
    routing: Routing,
    /// Fault-tolerance extension: abandon children that have not closed
    /// their subtree within this many (simulated) nanoseconds of the query
    /// being forwarded. `None` (the paper's protocol) waits forever.
    child_timeout: Option<u64>,
    states: HashMap<u32, QueryState>,
    /// Final answers of the queries this node initiated, in completion
    /// order.
    pub outcomes: Vec<(u32, FinalAnswer)>,
}

impl SuperPeerNode {
    /// Creates a node. Pass `init_query: Some(..)` on the initiator (use
    /// [`SuperPeerNode::push_init_query`] for additional concurrent
    /// queries).
    pub fn new(
        id: usize,
        neighbors: Vec<usize>,
        store: Arc<SortedDataset>,
        index: DominanceIndex,
        init_query: Option<InitQuery>,
    ) -> Self {
        SuperPeerNode {
            id,
            neighbors,
            store,
            policy: IndexPolicy::Fixed(index),
            init_queries: init_query.into_iter().collect(),
            routing: Routing::Flood,
            child_timeout: None,
            states: HashMap::new(),
            outcomes: Vec::new(),
        }
    }

    /// Registers another query for this node to initiate at start of run.
    /// Query ids must be unique across the whole run.
    pub fn push_init_query(&mut self, q: InitQuery) {
        self.init_queries.push(q);
    }

    /// Replaces the fixed dominance index with a per-query policy (see
    /// [`IndexPolicy`]).
    pub fn with_index_policy(mut self, policy: IndexPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables the fault-tolerance extension: children that have not
    /// closed their subtree within `timeout_ns` of the query forward are
    /// abandoned, and the result is flagged incomplete.
    pub fn with_child_timeout(mut self, timeout_ns: u64) -> Self {
        self.child_timeout = Some(timeout_ns);
        self
    }

    /// Switches this node to spanning-tree routing with the given
    /// children (see [`Routing::Tree`]). Tree routing supports a single
    /// query per run (the tree is rooted at one initiator).
    pub fn with_tree_routing(mut self, children: Vec<usize>) -> Self {
        self.routing = Routing::Tree { children };
        self
    }

    /// The single final answer of a single-query run, consuming the node.
    pub fn into_outcome(self) -> Option<FinalAnswer> {
        self.outcomes.into_iter().next().map(|(_, a)| a)
    }

    /// The final answer of one specific query, if this node initiated and
    /// completed it.
    pub fn outcome_for(&self, qid: u32) -> Option<&FinalAnswer> {
        self.outcomes.iter().find(|(q, _)| *q == qid).map(|(_, a)| a)
    }

    /// Runs the local computation: Algorithm 1 with the current threshold
    /// for SKYPEER variants, plain BNL for the naive baseline. Updates the
    /// state's threshold and reports the work to the runtime.
    fn compute_local(&mut self, qid: u32, ctx: &mut dyn Context) {
        let state = self.states.get_mut(&qid).expect("compute without state");
        let index = self.policy.resolve(self.store.len(), state.subspace);
        let old_threshold = state.threshold;
        let started = Instant::now();
        let (result, threshold, stats) = if state.variant.uses_threshold() {
            let out =
                self.store.subspace_skyline(state.subspace, state.flavour, state.threshold, index);
            (out.result, out.threshold, out.stats)
        } else {
            let (indices, bstats) =
                bnl::skyline_with_stats(self.store.points(), state.subspace, state.flavour);
            let set = self.store.points().gather(&indices);
            let stats = KernelStats {
                dominance_tests: bstats.dominance_tests,
                points_scanned: bstats.points_scanned,
                pruned_by_threshold: 0,
            };
            (SortedDataset::from_set(&set), f64::INFINITY, stats)
        };
        ctx.report_work(WorkReport {
            dominance_tests: stats.dominance_tests,
            points_scanned: stats.points_scanned,
            measured: Some(started.elapsed()),
        });
        state.threshold = threshold;
        state.local = Some(result);
        if state.variant.uses_threshold() {
            ctx.note(ProtoEvent::ThresholdRefine { qid, old: old_threshold, new: threshold });
        }
        if stats.pruned_by_threshold > 0 {
            ctx.note(ProtoEvent::Prune { qid, pruned: stats.pruned_by_threshold });
        }
        ctx.note(ProtoEvent::Phase { qid, phase: QueryPhase::LocalDone });
    }

    /// Sends the query onward to every neighbor except the parent and
    /// returns the neighbors contacted (the initially outstanding set).
    /// Arms the child timeout, if configured.
    fn forward_query(&mut self, qid: u32, ctx: &mut dyn Context) -> Vec<usize> {
        let state = self.states.get(&qid).expect("forward without state");
        let msg = Msg::Query {
            qid,
            subspace: state.subspace,
            threshold: state.threshold,
            variant: state.variant,
            flavour: state.flavour,
        };
        let bytes = msg.wire_bytes();
        let encoded = msg.encode();
        let targets: Vec<usize> = match &self.routing {
            Routing::Flood => {
                self.neighbors.iter().copied().filter(|&n| Some(n) != state.parent).collect()
            }
            Routing::Tree { children } => children.clone(),
        };
        for &n in &targets {
            ctx.send(n, bytes, encoded.clone());
        }
        if let Some(timeout) = self.child_timeout {
            if !targets.is_empty() {
                ctx.set_timer(timeout, u64::from(qid));
            }
        }
        targets
    }

    /// Final-merge + completion check; called whenever local computation
    /// finishes or a subtree closes.
    fn check_finalize(&mut self, qid: u32, ctx: &mut dyn Context) {
        let ready = {
            let state = self.states.get(&qid).expect("finalize without state");
            !state.finalized && state.local.is_some() && state.outstanding.is_empty()
        };
        if !ready {
            return;
        }
        let state = self.states.get_mut(&qid).expect("finalize without state");
        state.finalized = true;
        let is_initiator = state.parent.is_none();
        let complete = state.complete;
        ctx.note(ProtoEvent::Phase { qid, phase: QueryPhase::Finalized });

        if is_initiator {
            // Merge everything that reached us with our local result.
            let local = state.local.take().expect("local result checked above");
            let collected = std::mem::take(&mut state.collected);
            let subspace = state.subspace;
            let threshold = state.threshold;
            let variant = state.variant;
            let flavour = state.flavour;
            let final_result = if variant.uses_threshold() {
                let started = Instant::now();
                let mut lists: Vec<&SortedDataset> = Vec::with_capacity(collected.len() + 1);
                lists.push(&local);
                lists.extend(collected.iter());
                let index = self.policy.resolve(self.store.len(), subspace);
                let merged = merge_sorted(&lists, subspace, flavour, threshold, index);
                ctx.report_work(WorkReport {
                    dominance_tests: merged.stats.dominance_tests,
                    points_scanned: merged.stats.points_scanned,
                    measured: Some(started.elapsed()),
                });
                if merged.stats.pruned_by_threshold > 0 {
                    ctx.note(ProtoEvent::Prune { qid, pruned: merged.stats.pruned_by_threshold });
                }
                merged.result
            } else {
                // Naive: plain BNL over the concatenation of all lists.
                let started = Instant::now();
                let mut all = PointSet::new(self.store.dim());
                all.extend_from(local.points());
                for l in &collected {
                    all.extend_from(l.points());
                }
                let (indices, bstats) = bnl::skyline_with_stats(&all, subspace, flavour);
                ctx.report_work(WorkReport {
                    dominance_tests: bstats.dominance_tests,
                    points_scanned: bstats.points_scanned,
                    measured: Some(started.elapsed()),
                });
                SortedDataset::from_set(&all.gather(&indices))
            };
            self.outcomes.push((qid, FinalAnswer { result: final_result, complete }));
            ctx.finish();
        } else {
            let parent = state.parent.expect("non-initiator has a parent");
            let answer = if state.variant.merges_progressively() {
                // Merge children + local into one list (Algorithm 2).
                let local = state.local.take().expect("local result checked above");
                let collected = std::mem::take(&mut state.collected);
                let subspace = state.subspace;
                let threshold = state.threshold;
                let flavour = state.flavour;
                let started = Instant::now();
                let mut lists: Vec<&SortedDataset> = Vec::with_capacity(collected.len() + 1);
                lists.push(&local);
                lists.extend(collected.iter());
                let index = self.policy.resolve(self.store.len(), subspace);
                let merged = merge_sorted(&lists, subspace, flavour, threshold, index);
                ctx.report_work(WorkReport {
                    dominance_tests: merged.stats.dominance_tests,
                    points_scanned: merged.stats.points_scanned,
                    measured: Some(started.elapsed()),
                });
                merged.result
            } else {
                // Fixed merging: children's lists were already relayed; our
                // final answer carries just the local result.
                state.local.take().expect("local result checked above")
            };
            let msg = Msg::Answer { qid, done: true, complete, points: answer };
            ctx.send(parent, msg.wire_bytes(), msg.encode());
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_query(
        &mut self,
        from: usize,
        qid: u32,
        subspace: Subspace,
        threshold: f64,
        variant: Variant,
        flavour: Dominance,
        ctx: &mut dyn Context,
    ) {
        if self.states.contains_key(&qid) {
            // Already part of this query's spanning tree via another
            // neighbor.
            let ack = Msg::DupAck { qid };
            ctx.send(from, ack.wire_bytes(), ack.encode());
            return;
        }
        self.states.insert(
            qid,
            QueryState {
                subspace,
                variant,
                flavour,
                threshold,
                parent: Some(from),
                outstanding: Vec::new(),
                local: None,
                collected: Vec::new(),
                finalized: false,
                complete: true,
            },
        );
        ctx.note(ProtoEvent::ThresholdInstall { qid, value: threshold });
        ctx.note(ProtoEvent::Phase { qid, phase: QueryPhase::Started });
        if variant.refines_threshold() {
            // RT*: compute first (tightening the threshold), then forward.
            self.compute_local(qid, ctx);
            let sent = self.forward_query(qid, ctx);
            if !sent.is_empty() {
                ctx.note(ProtoEvent::Phase { qid, phase: QueryPhase::Forwarded });
            }
            self.states.get_mut(&qid).expect("state installed above").outstanding = sent;
            self.check_finalize(qid, ctx);
        } else {
            // FT*/naive: forward immediately, defer computation so that
            // query propagation is not serialized behind it.
            let sent = self.forward_query(qid, ctx);
            if !sent.is_empty() {
                ctx.note(ProtoEvent::Phase { qid, phase: QueryPhase::Forwarded });
            }
            self.states.get_mut(&qid).expect("state installed above").outstanding = sent;
            let tick = Msg::ComputeLocal { qid };
            ctx.send(self.id, tick.wire_bytes(), tick.encode());
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_answer(
        &mut self,
        from: usize,
        qid: u32,
        done: bool,
        complete: bool,
        points: SortedDataset,
        ctx: &mut dyn Context,
    ) {
        let Some(state) = self.states.get_mut(&qid) else {
            debug_assert!(false, "answer for unknown query {qid}");
            return;
        };
        if !state.outstanding.contains(&from) {
            // A straggler from a subtree we already abandoned (timeout) or
            // never awaited: its data is lost, which the completeness flag
            // already accounts for.
            return;
        }
        state.complete &= complete;
        let is_initiator = state.parent.is_none();
        if state.variant.merges_progressively() || is_initiator {
            if !points.is_empty() {
                state.collected.push(points);
            }
        } else {
            // Fixed merging at an interior node: relay toward the initiator
            // (before any completion bookkeeping, so FIFO links preserve
            // list-before-done ordering).
            let parent = state.parent.expect("interior node has a parent");
            if !points.is_empty() {
                let relay = Msg::Answer { qid, done: false, complete, points };
                ctx.send(parent, relay.wire_bytes(), relay.encode());
            }
        }
        if done {
            let state = self.states.get_mut(&qid).expect("state checked above");
            state.outstanding.retain(|&c| c != from);
            self.check_finalize(qid, ctx);
        }
    }

    /// Start-of-run behavior for one of this node's own queries.
    fn start_query(&mut self, init: InitQuery, ctx: &mut dyn Context) {
        let qid = init.qid;
        let prev = self.states.insert(
            qid,
            QueryState {
                subspace: init.subspace,
                variant: init.variant,
                flavour: init.flavour,
                threshold: f64::INFINITY,
                parent: None,
                outstanding: Vec::new(),
                local: None,
                collected: Vec::new(),
                finalized: false,
                complete: true,
            },
        );
        assert!(prev.is_none(), "duplicate query id {qid} in one run");
        ctx.note(ProtoEvent::Phase { qid, phase: QueryPhase::Started });
        if init.variant.uses_threshold() {
            // "P_init first executes the local subspace skyline computation
            // to obtain an initial value for t, and then the query is
            // forwarded" (Section 5.2.3).
            self.compute_local(qid, ctx);
            let sent = self.forward_query(qid, ctx);
            if !sent.is_empty() {
                ctx.note(ProtoEvent::Phase { qid, phase: QueryPhase::Forwarded });
            }
            self.states.get_mut(&qid).expect("state installed above").outstanding = sent;
            self.check_finalize(qid, ctx);
        } else {
            let sent = self.forward_query(qid, ctx);
            if !sent.is_empty() {
                ctx.note(ProtoEvent::Phase { qid, phase: QueryPhase::Forwarded });
            }
            self.states.get_mut(&qid).expect("state installed above").outstanding = sent;
            let tick = Msg::ComputeLocal { qid };
            ctx.send(self.id, tick.wire_bytes(), tick.encode());
        }
    }
}

impl Behavior for SuperPeerNode {
    fn on_start(&mut self, ctx: &mut dyn Context) {
        let inits = std::mem::take(&mut self.init_queries);
        assert!(!inits.is_empty(), "on_start on a node without a query");
        for init in inits {
            self.start_query(init, ctx);
        }
    }

    fn on_message(&mut self, from: usize, msg: Vec<u8>, ctx: &mut dyn Context) {
        match Msg::decode(&msg) {
            Some(Msg::Query { qid, subspace, threshold, variant, flavour }) => {
                self.on_query(from, qid, subspace, threshold, variant, flavour, ctx);
            }
            Some(Msg::Answer { qid, done, complete, points }) => {
                self.on_answer(from, qid, done, complete, points, ctx);
            }
            Some(Msg::DupAck { qid }) => {
                let Some(state) = self.states.get_mut(&qid) else {
                    debug_assert!(false, "dup-ack for unknown query {qid}");
                    return;
                };
                state.outstanding.retain(|&c| c != from);
                self.check_finalize(qid, ctx);
            }
            Some(Msg::ComputeLocal { qid }) => {
                debug_assert!(self.states.contains_key(&qid));
                self.compute_local(qid, ctx);
                self.check_finalize(qid, ctx);
            }
            Some(other @ (Msg::SampleQuery { .. } | Msg::Candidates { .. })) => {
                debug_assert!(false, "sampling-backend message at a SKYPEER node: {other:?}");
            }
            None => debug_assert!(false, "undecodable message from {from}"),
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut dyn Context) {
        // The child timeout fired: abandon every subtree that has not
        // closed yet and settle for an incomplete (but still dominance-
        // correct) answer.
        let qid = tag as u32;
        let Some(state) = self.states.get_mut(&qid) else {
            return;
        };
        if state.finalized || state.outstanding.is_empty() {
            return;
        }
        state.outstanding.clear();
        state.complete = false;
        ctx.note(ProtoEvent::Phase { qid, phase: QueryPhase::Abandoned });
        self.check_finalize(qid, ctx);
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use skypeer_netsim::cost::CostModel;
    use skypeer_netsim::des::{LinkModel, Sim};
    use skypeer_netsim::topology::Topology;
    use skypeer_skyline::brute;

    /// Builds one store per super-peer from deterministic pseudo-random
    /// points, returning the stores plus the union for oracle checks.
    fn stores(n: usize, points_each: usize) -> (Vec<Arc<SortedDataset>>, PointSet) {
        let mut all = PointSet::new(3);
        let mut x = 99u64;
        let mut out = Vec::new();
        for sp in 0..n {
            let mut set = PointSet::new(3);
            for i in 0..points_each {
                let mut c = [0.0; 3];
                for v in &mut c {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    *v = ((x >> 33) % 1000) as f64 / 100.0;
                }
                let id = (sp * points_each + i) as u64;
                set.push(&c, id);
                all.push(&c, id);
            }
            let ext = skypeer_skyline::extended::ext_skyline(&set, DominanceIndex::Linear);
            out.push(Arc::new(ext.result));
        }
        (out, all)
    }

    fn run_on(
        topo: &Topology,
        stores: &[Arc<SortedDataset>],
        initiator: usize,
        variant: Variant,
        u: Subspace,
    ) -> (Vec<u64>, bool, skypeer_netsim::des::SimStats) {
        let nodes: Vec<SuperPeerNode> = (0..topo.len())
            .map(|sp| {
                let init = (sp == initiator).then_some(InitQuery::standard(9, u, variant));
                SuperPeerNode::new(
                    sp,
                    topo.neighbors(sp).to_vec(),
                    Arc::clone(&stores[sp]),
                    DominanceIndex::Linear,
                    init,
                )
            })
            .collect();
        let out = Sim::new(nodes, LinkModel::zero_delay(), CostModel::default()).run(initiator);
        let answer = out
            .nodes
            .into_iter()
            .nth(initiator)
            .expect("initiator")
            .into_outcome()
            .expect("query completed");
        let mut ids: Vec<u64> =
            (0..answer.result.len()).map(|i| answer.result.points().id(i)).collect();
        ids.sort_unstable();
        (ids, answer.complete, out.stats)
    }

    #[test]
    fn triangle_topology_handles_dup_acks() {
        // A 3-cycle guarantees at least one duplicate query delivery; the
        // dup-ack path must still close every subtree.
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let (stores, all) = stores(3, 20);
        let u = Subspace::from_dims(&[0, 2]);
        let want = brute::skyline_ids(&all, u, Dominance::Standard);
        for variant in Variant::ALL {
            let (ids, complete, _) = run_on(&topo, &stores, 0, variant, u);
            assert_eq!(ids, want, "{variant}");
            assert!(complete);
        }
    }

    #[test]
    fn deep_line_topology_chains_relays() {
        // A 7-node line maximizes relay depth for the FM variants.
        let edges: Vec<(usize, usize)> = (0..6).map(|i| (i, i + 1)).collect();
        let topo = Topology::from_edges(7, &edges);
        let (stores, all) = stores(7, 15);
        let u = Subspace::full(3);
        let want = brute::skyline_ids(&all, u, Dominance::Standard);
        for initiator in [0, 3, 6] {
            for variant in [Variant::Ftfm, Variant::Rtpm, Variant::Naive] {
                let (ids, complete, _) = run_on(&topo, &stores, initiator, variant, u);
                assert_eq!(ids, want, "init {initiator} {variant}");
                assert!(complete);
            }
        }
    }

    #[test]
    fn star_initiator_is_pure_fanout() {
        let topo = Topology::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let (stores, all) = stores(5, 15);
        let u = Subspace::from_dims(&[1]);
        let want = brute::skyline_ids(&all, u, Dominance::Standard);
        let (ids, _, stats) = run_on(&topo, &stores, 0, Variant::Ftpm, u);
        assert_eq!(ids, want);
        // Star from the hub: 4 queries out, 4 answers back, one deferred
        // self-compute per leaf (the FT initiator computes inline in
        // on_start, so no self-message for the hub).
        assert_eq!(stats.messages, 4 + 4 + 4);
    }

    #[test]
    fn fm_relays_preserve_every_list() {
        // On a line with the initiator at one end, every other node's local
        // result must arrive (relayed) — count distinct contributing ids.
        let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let (stores, all) = stores(4, 25);
        let u = Subspace::from_dims(&[0, 1]);
        let (ids, _, _) = run_on(&topo, &stores, 0, Variant::Ftfm, u);
        assert_eq!(ids, brute::skyline_ids(&all, u, Dominance::Standard));
    }

    #[test]
    fn timeout_on_healthy_network_changes_nothing() {
        let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let (stores, all) = stores(4, 20);
        let u = Subspace::from_dims(&[0, 2]);
        let nodes: Vec<SuperPeerNode> = (0..4)
            .map(|sp| {
                let init = (sp == 0).then_some(InitQuery::standard(1, u, Variant::Rtpm));
                SuperPeerNode::new(
                    sp,
                    topo.neighbors(sp).to_vec(),
                    Arc::clone(&stores[sp]),
                    DominanceIndex::Linear,
                    init,
                )
                .with_child_timeout(3_600_000_000_000) // one simulated hour
            })
            .collect();
        let out = Sim::new(nodes, LinkModel::zero_delay(), CostModel::default()).run(0);
        let answer = out.nodes.into_iter().next().expect("node 0").into_outcome().expect("done");
        assert!(answer.complete, "generous timeout must never fire on a healthy run");
        let mut ids: Vec<u64> =
            (0..answer.result.len()).map(|i| answer.result.points().id(i)).collect();
        ids.sort_unstable();
        assert_eq!(ids, brute::skyline_ids(&all, u, Dominance::Standard));
    }

    #[test]
    fn late_answer_after_timeout_is_ignored() {
        // Line 0-1-2 where node 2's answers are hugely delayed by a slow
        // link; node 1 times out first, finalizes incomplete, then node
        // 2's answer arrives and must be dropped without corrupting state.
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let (stores, _) = stores(3, 20);
        let u = Subspace::from_dims(&[0]);
        let nodes: Vec<SuperPeerNode> = (0..3)
            .map(|sp| {
                let init = (sp == 0).then_some(InitQuery::standard(1, u, Variant::Ftpm));
                SuperPeerNode::new(
                    sp,
                    topo.neighbors(sp).to_vec(),
                    Arc::clone(&stores[sp]),
                    DominanceIndex::Linear,
                    init,
                )
                .with_child_timeout(1) // 1ns: fires before any child answers
            })
            .collect();
        let out = Sim::new(nodes, LinkModel::zero_delay(), CostModel::default()).run(0);
        let answer = out.nodes.into_iter().next().expect("node 0").into_outcome().expect("done");
        assert!(!answer.complete, "instant timeout abandons all children");
    }

    #[test]
    fn extended_flavour_run_returns_global_ext_skyline() {
        // An Extended-flavour distributed query must return exactly the
        // extended subspace skyline of the *union* of all raw data — the
        // invariant the result cache depends on. Threshold pruning and
        // progressive merging must not lose any ext-skyline point.
        let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let (stores, all) = stores(4, 25);
        for u in [Subspace::from_dims(&[0, 1]), Subspace::full(3), Subspace::from_dims(&[2])] {
            let want = brute::skyline_ids(&all, u, Dominance::Extended);
            for variant in Variant::ALL {
                let nodes: Vec<SuperPeerNode> = (0..4)
                    .map(|sp| {
                        let init = (sp == 1).then_some(InitQuery::extended(5, u, variant));
                        SuperPeerNode::new(
                            sp,
                            topo.neighbors(sp).to_vec(),
                            Arc::clone(&stores[sp]),
                            DominanceIndex::Linear,
                            init,
                        )
                    })
                    .collect();
                let out = Sim::new(nodes, LinkModel::zero_delay(), CostModel::default()).run(1);
                let answer = out
                    .nodes
                    .into_iter()
                    .nth(1)
                    .expect("initiator")
                    .into_outcome()
                    .expect("query completed");
                assert!(answer.complete);
                let mut ids: Vec<u64> =
                    (0..answer.result.len()).map(|i| answer.result.points().id(i)).collect();
                ids.sort_unstable();
                assert_eq!(ids, want, "U={u} {variant}");
            }
        }
    }

    #[test]
    fn two_superpeers_minimal_network() {
        let topo = Topology::from_edges(2, &[(0, 1)]);
        let (stores, all) = stores(2, 30);
        let u = Subspace::full(3);
        let want = brute::skyline_ids(&all, u, Dominance::Standard);
        for variant in Variant::ALL {
            let (ids, complete, stats) = run_on(&topo, &stores, 1, variant, u);
            assert_eq!(ids, want, "{variant}");
            assert!(complete);
            assert!(stats.messages >= 2, "at least a query and an answer cross the link");
        }
    }
}
