//! Cache-fronted query execution: a [`SkypeerEngine`] behind a
//! [`SubspaceCache`].
//!
//! The miss path deliberately runs the backbone query with the
//! **Extended** dominance flavour
//! ([`SkypeerEngine::run_query_ext_observed`]): the initiator then holds
//! the global `ext-SKY_U`, which by the paper's Observation 4 (generalized
//! in [`skypeer_skyline::extended::refine_from_ext`]) answers not just the
//! query at hand but *every* later query for a contained subspace — with a
//! purely local refinement, zero network traffic. The extended result
//! costs slightly more bytes than `SKY_U` on the wire once; every hit it
//! serves afterwards saves the whole backbone exchange.
//!
//! [`CachedEngine::run_batch`] adds **single-flight admission** on top:
//! simultaneous identical (or subsumed) queries coalesce onto one backbone
//! execution, visible in the DES as fewer messages than running each query
//! separately.

use skypeer_cache::{CacheAnswer, CacheConfig, CacheStats, FlightRole, HitKind, SubspaceCache};
use skypeer_data::Query;
use skypeer_netsim::cost::WorkReport;
use skypeer_skyline::extended::refine_from_ext;
use skypeer_skyline::Subspace;

use crate::engine::{QueryOutcome, SkypeerEngine};
use crate::variants::Variant;

/// How the cache participated in one query.
#[derive(Clone, Debug)]
pub enum CacheRole {
    /// Served from a cached entry, no backbone execution.
    Hit {
        /// Exact or subsumption hit.
        kind: HitKind,
        /// The cached subspace the answer was refined from.
        source: Subspace,
        /// Network bytes the hit avoided re-shipping.
        saved_bytes: u64,
    },
    /// Executed on the backbone; the extended result was offered to the
    /// cache.
    Miss,
    /// Coalesced onto the in-flight execution of the batch query at this
    /// index (single-flight admission).
    Coalesced {
        /// Batch index of the leader whose result was shared.
        leader: usize,
    },
}

/// A query outcome plus how the cache was involved.
#[derive(Clone, Debug)]
pub struct CachedOutcome {
    /// The query outcome. On a hit, `total_time_ns` is the local
    /// refinement's modeled service time and `volume_bytes`/`messages`
    /// are zero — nothing touched the network.
    pub outcome: QueryOutcome,
    /// Hit, miss, or coalesced.
    pub role: CacheRole,
    /// Dominance tests the initiator-local refinement performed (on top
    /// of any backbone work the trace accounts for).
    pub refine_tests: u64,
}

impl CachedOutcome {
    /// Whether the answer was produced without a backbone execution of its
    /// own (a cache hit or a coalesced follower).
    pub fn served_from_cache(&self) -> bool {
        !matches!(self.role, CacheRole::Miss)
    }

    /// A one-line, EXPLAIN-style note describing the cache's part in this
    /// query, suitable for appending to a query plan rendering.
    pub fn explain_note(&self) -> String {
        match &self.role {
            CacheRole::Hit { kind: HitKind::Exact, saved_bytes, .. } => {
                format!("cache: exact hit — served locally, saved {saved_bytes} backbone bytes")
            }
            CacheRole::Hit { kind: HitKind::Subsumed, source, saved_bytes } => format!(
                "cache: subsumption hit — refined from cached ext-skyline of {source}, \
                 saved {saved_bytes} backbone bytes"
            ),
            CacheRole::Miss => format!(
                "cache: miss — executed on the backbone ({} bytes), extended result admitted",
                self.outcome.volume_bytes
            ),
            CacheRole::Coalesced { leader } => {
                format!("cache: coalesced onto in-flight batch query #{leader} (single-flight)")
            }
        }
    }
}

/// A [`SkypeerEngine`] fronted by a [`SubspaceCache`] at the initiator.
///
/// ```
/// use skypeer_core::cached::CachedEngine;
/// use skypeer_core::{EngineConfig, SkypeerEngine, Variant};
/// use skypeer_data::Query;
/// use skypeer_skyline::Subspace;
///
/// let engine = SkypeerEngine::build(EngineConfig::paper_default(60, 5));
/// let mut cached = CachedEngine::new(&engine, 4 << 20);
/// let q = Query { subspace: Subspace::from_dims(&[0, 3]), initiator: 1 };
/// let miss = cached.run_query(q, Variant::Ftpm);
/// let hit = cached.run_query(q, Variant::Ftpm);
/// assert!(!miss.served_from_cache());
/// assert!(hit.served_from_cache());
/// assert_eq!(hit.outcome.result_ids, miss.outcome.result_ids);
/// assert_eq!(hit.outcome.volume_bytes, 0);
/// ```
pub struct CachedEngine<'a> {
    engine: &'a SkypeerEngine,
    cache: SubspaceCache,
}

impl<'a> CachedEngine<'a> {
    /// Wraps `engine` with a fresh cache of the given byte budget, using
    /// the engine's dominance index for refinement.
    pub fn new(engine: &'a SkypeerEngine, max_bytes: u64) -> Self {
        let config = CacheConfig { max_bytes, index: engine.config().index };
        CachedEngine { engine, cache: SubspaceCache::new(config) }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &SkypeerEngine {
        self.engine
    }

    /// Cache counters so far.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Invalidates every cached entry (network membership changed).
    pub fn bump_epoch(&mut self) {
        self.cache.bump_epoch();
    }

    /// Executes one query, consulting the cache first. A miss runs the
    /// Extended-flavour backbone query and admits its result.
    pub fn run_query(&mut self, query: Query, variant: Variant) -> CachedOutcome {
        self.run_query_traced(query, variant, None)
    }

    /// [`CachedEngine::run_query`] with a tracer observing the backbone
    /// execution of a miss. Hits perform no simulation, so their trace is
    /// empty.
    pub fn run_query_traced(
        &mut self,
        query: Query,
        variant: Variant,
        tracer: Option<std::sync::Arc<dyn skypeer_netsim::obs::Tracer>>,
    ) -> CachedOutcome {
        match self.cache.lookup(query.subspace) {
            Some(ans) => self.hit_outcome(ans, None),
            None => self.run_miss_traced(query, variant, tracer),
        }
    }

    /// Executes a batch with **single-flight admission**: cache-covered
    /// queries are served; of the rest, only the first query of each
    /// coverage group executes on the backbone, and every later query
    /// whose subspace it contains shares that result. Outcomes are in
    /// batch order.
    pub fn run_batch(&mut self, batch: &[(Query, Variant)]) -> Vec<CachedOutcome> {
        let subspaces: Vec<Subspace> = batch.iter().map(|(q, _)| q.subspace).collect();
        let roles = self.cache.plan_flight(&subspaces);
        batch
            .iter()
            .zip(roles)
            .map(|(&(q, variant), role)| match role {
                // `run_query` re-checks the cache, so a Served role that an
                // eviction raced away simply becomes a miss.
                FlightRole::Served | FlightRole::Leader => self.run_query(q, variant),
                FlightRole::Follower(leader) => match self.cache.answer_via(q.subspace) {
                    Some(ans) => self.hit_outcome(ans, Some(leader)),
                    // The leader's result was refused admission (e.g.
                    // oversized): fall back to executing ourselves.
                    None => self.run_miss(q, variant),
                },
            })
            .collect()
    }

    fn run_miss(&mut self, query: Query, variant: Variant) -> CachedOutcome {
        self.run_miss_traced(query, variant, None)
    }

    fn run_miss_traced(
        &mut self,
        query: Query,
        variant: Variant,
        tracer: Option<std::sync::Arc<dyn skypeer_netsim::obs::Tracer>>,
    ) -> CachedOutcome {
        let ext = self.engine.run_query_ext_observed(query, variant, tracer);
        let refined = refine_from_ext(&ext.result, query.subspace, self.engine.config().index);
        let refine_ns = self.engine.config().cost.service_ns(&WorkReport::from_counts(
            refined.stats.dominance_tests,
            refined.stats.points_scanned,
        ));
        self.cache.admit(query.subspace, ext.result, ext.volume_bytes);
        let mut result_ids: Vec<u64> =
            (0..refined.result.len()).map(|i| refined.result.points().id(i)).collect();
        result_ids.sort_unstable();
        CachedOutcome {
            outcome: QueryOutcome {
                result_ids,
                complete: ext.complete,
                result: refined.result,
                total_time_ns: ext.total_time_ns + refine_ns,
                comp_time_ns: 0,
                volume_bytes: ext.volume_bytes,
                messages: ext.messages,
                dropped: ext.dropped,
                compute_ns_total: ext.compute_ns_total + refine_ns,
                rounds: ext.rounds,
            },
            role: CacheRole::Miss,
            refine_tests: refined.stats.dominance_tests,
        }
    }

    fn hit_outcome(&self, ans: CacheAnswer, coalesced_onto: Option<usize>) -> CachedOutcome {
        let refine_ns = self.engine.config().cost.service_ns(&WorkReport::from_counts(
            ans.refine_stats.dominance_tests,
            ans.refine_stats.points_scanned,
        ));
        let role = match coalesced_onto {
            Some(leader) => CacheRole::Coalesced { leader },
            None => {
                CacheRole::Hit { kind: ans.kind, source: ans.source, saved_bytes: ans.saved_bytes }
            }
        };
        CachedOutcome {
            outcome: QueryOutcome {
                result_ids: ans.result_ids,
                complete: true,
                result: ans.result,
                total_time_ns: refine_ns,
                comp_time_ns: 0,
                volume_bytes: 0,
                messages: 0,
                dropped: 0,
                compute_ns_total: refine_ns,
                rounds: 0,
            },
            role,
            refine_tests: ans.refine_stats.dominance_tests,
        }
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::engine::{EngineConfig, RoutingMode};
    use skypeer_data::{DatasetKind, DatasetSpec};
    use skypeer_netsim::cost::CostModel;
    use skypeer_netsim::des::LinkModel;
    use skypeer_netsim::topology::TopologySpec;
    use skypeer_skyline::DominanceIndex;

    fn engine(seed: u64) -> SkypeerEngine {
        let n_superpeers = 6;
        SkypeerEngine::build(EngineConfig {
            n_peers: 18,
            n_superpeers,
            dataset: DatasetSpec { dim: 4, points_per_peer: 30, kind: DatasetKind::Uniform, seed },
            topology: TopologySpec::paper_default(n_superpeers, seed),
            index: DominanceIndex::RTree,
            cost: CostModel::default(),
            link: LinkModel::paper_4kbps(),
            routing: RoutingMode::Flood,
        })
    }

    #[test]
    fn cached_answers_match_the_uncached_engine() {
        let eng = engine(19);
        let mut cached = CachedEngine::new(&eng, 4 << 20);
        let queries = [
            Query { subspace: Subspace::from_dims(&[0, 1, 2]), initiator: 0 },
            Query { subspace: Subspace::from_dims(&[0, 1]), initiator: 3 }, // subsumed
            Query { subspace: Subspace::from_dims(&[0, 1, 2]), initiator: 5 }, // exact repeat
            Query { subspace: Subspace::from_dims(&[3]), initiator: 2 },    // miss
        ];
        for q in queries {
            let got = cached.run_query(q, Variant::Ftpm);
            assert_eq!(
                got.outcome.result_ids,
                eng.centralized_skyline(q.subspace),
                "cached answer must be exact for {}",
                q.subspace
            );
        }
        let st = cached.stats();
        assert_eq!((st.exact_hits, st.subsumption_hits, st.misses), (1, 1, 2));
        assert!(st.bytes_saved > 0);
    }

    #[test]
    fn hits_cost_no_bytes_and_less_time_than_misses() {
        let eng = engine(23);
        let mut cached = CachedEngine::new(&eng, 4 << 20);
        let q = Query { subspace: Subspace::from_dims(&[1, 2]), initiator: 1 };
        let miss = cached.run_query(q, Variant::Rtpm);
        let hit = cached.run_query(q, Variant::Rtpm);
        assert!(matches!(miss.role, CacheRole::Miss));
        assert!(matches!(hit.role, CacheRole::Hit { kind: HitKind::Exact, .. }));
        assert_eq!(hit.outcome.volume_bytes, 0);
        assert_eq!(hit.outcome.messages, 0);
        assert!(miss.outcome.volume_bytes > 0);
        assert!(
            hit.outcome.total_time_ns < miss.outcome.total_time_ns,
            "local refinement ({} ns) must beat the backbone round trip ({} ns)",
            hit.outcome.total_time_ns,
            miss.outcome.total_time_ns
        );
    }

    #[test]
    fn single_flight_batch_moves_fewer_messages_than_serial_execution() {
        let eng = engine(29);
        let q = Query { subspace: Subspace::from_dims(&[0, 2, 3]), initiator: 2 };
        let sub = Query { subspace: Subspace::from_dims(&[0, 3]), initiator: 4 };
        let batch =
            [(q, Variant::Ftpm), (q, Variant::Ftpm), (sub, Variant::Ftpm), (q, Variant::Ftpm)];

        // Serial baseline: every query pays its own backbone execution.
        let serial: u64 =
            batch.iter().map(|&(q, v)| eng.run_query_observed(q, v, None).messages).sum();

        let mut cached = CachedEngine::new(&eng, 4 << 20);
        let outcomes = cached.run_batch(&batch);
        let deduped: u64 = outcomes.iter().map(|o| o.outcome.messages).sum();
        assert!(deduped < serial, "single-flight must move fewer messages ({deduped} vs {serial})");
        assert!(matches!(outcomes[0].role, CacheRole::Miss), "first is the leader");
        assert!(matches!(outcomes[1].role, CacheRole::Coalesced { leader: 0 }));
        assert!(matches!(outcomes[2].role, CacheRole::Coalesced { leader: 0 }));
        assert!(matches!(outcomes[3].role, CacheRole::Coalesced { leader: 0 }));
        for (o, (q, _)) in outcomes.iter().zip(&batch) {
            assert_eq!(o.outcome.result_ids, eng.centralized_skyline(q.subspace));
        }
        assert_eq!(cached.stats().coalesced, 3);
    }

    #[test]
    fn epoch_bump_forces_reexecution() {
        let eng = engine(31);
        let mut cached = CachedEngine::new(&eng, 4 << 20);
        let q = Query { subspace: Subspace::from_dims(&[0, 1]), initiator: 0 };
        cached.run_query(q, Variant::Ftpm);
        assert!(cached.run_query(q, Variant::Ftpm).served_from_cache());
        cached.bump_epoch();
        let after = cached.run_query(q, Variant::Ftpm);
        assert!(!after.served_from_cache(), "stale entry must not serve");
        assert!(cached.stats().stale_rejects >= 1);
    }

    #[test]
    fn explain_notes_render_each_role() {
        let eng = engine(37);
        let mut cached = CachedEngine::new(&eng, 4 << 20);
        let q = Query { subspace: Subspace::from_dims(&[1, 3]), initiator: 1 };
        let sub = Query { subspace: Subspace::from_dims(&[1]), initiator: 2 };
        let miss = cached.run_query(q, Variant::Ftpm);
        assert!(miss.explain_note().starts_with("cache: miss"));
        let exact = cached.run_query(q, Variant::Ftpm);
        assert!(exact.explain_note().starts_with("cache: exact hit"));
        let subsumed = cached.run_query(sub, Variant::Ftpm);
        assert!(subsumed.explain_note().starts_with("cache: subsumption hit"));
        let batch = [(sub, Variant::Naive), (sub, Variant::Naive)];
        cached.bump_epoch();
        let outcomes = cached.run_batch(&batch);
        assert!(outcomes[1].explain_note().starts_with("cache: coalesced"));
    }
}
