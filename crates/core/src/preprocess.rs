//! The preprocessing phase (Section 5.3).
//!
//! Every peer computes the extended skyline of its local dataset in the
//! full space `D` and uploads it to its super-peer. The super-peer merges
//! the uploads with Algorithm 2 under ext-dominance into a single
//! `f`-sorted store — the only data it ever touches at query time.
//! Observation 4 guarantees the store can answer *any* subspace skyline
//! query exactly.
//!
//! Peer joins are incremental: a new peer's upload is ext-merged with the
//! existing store without reprocessing the other peers' lists.

use skypeer_skyline::extended::ext_skyline;
use skypeer_skyline::merge::merge_sorted;
use skypeer_skyline::{Dominance, DominanceIndex, PointSet, SortedDataset, Subspace};

/// A super-peer's query-time state after preprocessing.
///
/// ```
/// use skypeer_core::preprocess::SuperPeerStore;
/// use skypeer_skyline::{Dominance, DominanceIndex, PointSet, Subspace};
///
/// let mut peer = PointSet::new(2);
/// peer.push(&[1.0, 4.0], 0);
/// peer.push(&[2.0, 2.0], 1);
/// peer.push(&[5.0, 5.0], 2); // ext-dominated: never uploaded
/// let store = SuperPeerStore::preprocess(&[peer], 2, DominanceIndex::Linear);
/// assert_eq!(store.store.len(), 2);
/// // The store answers any subspace skyline exactly (Observation 4).
/// let out = store.store.subspace_skyline(
///     Subspace::from_dims(&[1]), Dominance::Standard, f64::INFINITY, DominanceIndex::Linear);
/// assert_eq!(out.result.points().id(0), 1);
/// ```
#[derive(Clone, Debug)]
pub struct SuperPeerStore {
    /// The ext-skyline of the union of all attached peers' data,
    /// `f`-ascending (the paper's `∪ ext-SKY_Di`).
    pub store: SortedDataset,
    /// Total raw points held by the attached peers.
    pub raw_points: usize,
    /// Total points uploaded by peers (Σ local ext-skyline sizes) —
    /// the numerator of `SEL_p`.
    pub uploaded_points: usize,
    /// Bytes uploaded from peers to this super-peer.
    pub uploaded_bytes: u64,
}

impl SuperPeerStore {
    /// An empty store of the given dimensionality.
    pub fn empty(dim: usize) -> Self {
        SuperPeerStore {
            store: SortedDataset::empty(dim),
            raw_points: 0,
            uploaded_points: 0,
            uploaded_bytes: 0,
        }
    }

    /// Builds the store from the attached peers' local datasets: each peer
    /// computes its ext-skyline (Algorithm 1 with ext-dominance), the
    /// super-peer merges the uploads (Algorithm 2 with ext-dominance).
    pub fn preprocess(peer_sets: &[PointSet], dim: usize, index: DominanceIndex) -> Self {
        let mut uploads: Vec<SortedDataset> = Vec::with_capacity(peer_sets.len());
        let mut raw_points = 0usize;
        let mut uploaded_points = 0usize;
        let mut uploaded_bytes = 0u64;
        for set in peer_sets {
            assert_eq!(set.dim(), dim, "peer data dimensionality mismatch");
            raw_points += set.len();
            let up = ext_skyline(set, index).result;
            uploaded_points += up.len();
            uploaded_bytes += up.wire_bytes();
            uploads.push(up);
        }
        let refs: Vec<&SortedDataset> = uploads.iter().collect();
        let store = if refs.is_empty() {
            SortedDataset::empty(dim)
        } else {
            merge_sorted(&refs, Subspace::full(dim), Dominance::Extended, f64::INFINITY, index)
                .result
        };
        SuperPeerStore { store, raw_points, uploaded_points, uploaded_bytes }
    }

    /// Handles a peer join (Section 5.3): ext-merges the newcomer's upload
    /// into the existing store incrementally.
    pub fn join_peer(&mut self, new_peer: &PointSet, index: DominanceIndex) {
        assert_eq!(new_peer.dim(), self.store.dim(), "joining peer dimensionality mismatch");
        let up = ext_skyline(new_peer, index).result;
        self.raw_points += new_peer.len();
        self.uploaded_points += up.len();
        self.uploaded_bytes += up.wire_bytes();
        let merged = merge_sorted(
            &[&self.store, &up],
            Subspace::full(self.store.dim()),
            Dominance::Extended,
            f64::INFINITY,
            index,
        );
        self.store = merged.result;
    }
}

/// Network-wide preprocessing statistics — the quantities of Figure 3(a).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PreprocessReport {
    /// Total raw points in the network (`n`).
    pub raw_points: usize,
    /// Σ over peers of local ext-skyline size.
    pub uploaded_points: usize,
    /// Σ over super-peers of stored (merged) ext-skyline size.
    pub stored_points: usize,
    /// Total peer → super-peer upload volume in bytes.
    pub uploaded_bytes: u64,
}

impl PreprocessReport {
    /// `SEL_p`: fraction of raw data transmitted from peers to super-peers.
    pub fn sel_p(&self) -> f64 {
        ratio(self.uploaded_points, self.raw_points)
    }

    /// `SEL_sp`: fraction of raw data stored at super-peers after merging.
    pub fn sel_sp(&self) -> f64 {
        ratio(self.stored_points, self.raw_points)
    }

    /// `SEL_sp / SEL_p`: survivor rate of uploaded points at super-peers.
    pub fn sel_ratio(&self) -> f64 {
        ratio(self.stored_points, self.uploaded_points)
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Preprocesses a whole network: `peer_sets[p]` is peer `p`'s data and
/// `peer_home[p]` its super-peer. Returns per-super-peer stores and the
/// aggregate report.
pub fn preprocess_network(
    peer_sets: &[PointSet],
    peer_home: &[usize],
    n_superpeers: usize,
    dim: usize,
    index: DominanceIndex,
) -> (Vec<SuperPeerStore>, PreprocessReport) {
    assert_eq!(peer_sets.len(), peer_home.len(), "peer/home length mismatch");
    let mut grouped: Vec<Vec<&PointSet>> = vec![Vec::new(); n_superpeers];
    for (set, &home) in peer_sets.iter().zip(peer_home) {
        assert!(home < n_superpeers, "peer assigned to unknown super-peer {home}");
        grouped[home].push(set);
    }
    let mut stores = Vec::with_capacity(n_superpeers);
    let mut report = PreprocessReport::default();
    for members in &grouped {
        let owned: Vec<PointSet> = members.iter().map(|s| (*s).clone()).collect();
        let store = SuperPeerStore::preprocess(&owned, dim, index);
        report.raw_points += store.raw_points;
        report.uploaded_points += store.uploaded_points;
        report.stored_points += store.store.len();
        report.uploaded_bytes += store.uploaded_bytes;
        stores.push(store);
    }
    (stores, report)
}

#[cfg(test)]
mod unit {
    use super::*;
    use skypeer_skyline::brute;

    fn peers() -> Vec<PointSet> {
        // Figure 2's three peers (P_A exactly; P_B, P_C reconstructed).
        let mut a = PointSet::new(4);
        a.push(&[2.0, 2.0, 2.0, 2.0], 1);
        a.push(&[1.0, 3.0, 2.0, 3.0], 2);
        a.push(&[1.0, 3.0, 5.0, 4.0], 3);
        a.push(&[2.0, 3.0, 2.0, 1.0], 4);
        a.push(&[5.0, 2.0, 4.0, 1.0], 5);
        let mut b = PointSet::new(4);
        b.push(&[3.0, 1.0, 1.0, 3.0], 6);
        b.push(&[4.0, 5.0, 4.0, 6.0], 7);
        b.push(&[2.0, 3.0, 3.0, 3.0], 8);
        b.push(&[1.0, 2.0, 3.0, 4.0], 9);
        b.push(&[5.0, 5.0, 5.0, 5.0], 10);
        let mut c = PointSet::new(4);
        c.push(&[5.0, 7.0, 5.0, 8.0], 11);
        c.push(&[7.0, 7.0, 7.0, 5.0], 12);
        c.push(&[7.0, 7.0, 7.0, 7.0], 13);
        c.push(&[1.0, 1.0, 3.0, 4.0], 14);
        c.push(&[6.0, 6.0, 6.0, 4.0], 15);
        vec![a, b, c]
    }

    fn union(sets: &[PointSet]) -> PointSet {
        let mut all = PointSet::new(4);
        for s in sets {
            all.extend_from(s);
        }
        all
    }

    #[test]
    fn store_is_ext_skyline_of_union() {
        let ps = peers();
        let sp = SuperPeerStore::preprocess(&ps, 4, DominanceIndex::Linear);
        let mut got: Vec<u64> = (0..sp.store.len()).map(|i| sp.store.points().id(i)).collect();
        got.sort_unstable();
        let want = brute::skyline_ids(&union(&ps), Subspace::full(4), Dominance::Extended);
        assert_eq!(got, want);
    }

    #[test]
    fn store_answers_every_subspace_query() {
        let ps = peers();
        let all = union(&ps);
        let sp = SuperPeerStore::preprocess(&ps, 4, DominanceIndex::Linear);
        for u in Subspace::enumerate_all(4) {
            let out = sp.store.subspace_skyline(
                u,
                Dominance::Standard,
                f64::INFINITY,
                DominanceIndex::Linear,
            );
            let mut got: Vec<u64> =
                (0..out.result.len()).map(|i| out.result.points().id(i)).collect();
            got.sort_unstable();
            assert_eq!(got, brute::skyline_ids(&all, u, Dominance::Standard), "subspace {u}");
        }
    }

    #[test]
    fn upload_accounting() {
        let ps = peers();
        let sp = SuperPeerStore::preprocess(&ps, 4, DominanceIndex::Linear);
        assert_eq!(sp.raw_points, 15);
        assert!(sp.uploaded_points <= 15);
        assert!(sp.store.len() <= sp.uploaded_points);
        assert_eq!(sp.uploaded_bytes, sp.uploaded_points as u64 * (8 + 4 * 8));
    }

    #[test]
    fn incremental_join_equals_batch() {
        let ps = peers();
        let batch = SuperPeerStore::preprocess(&ps, 4, DominanceIndex::Linear);
        let mut inc = SuperPeerStore::preprocess(&ps[..2], 4, DominanceIndex::Linear);
        inc.join_peer(&ps[2], DominanceIndex::Linear);
        let ids = |s: &SortedDataset| {
            let mut v: Vec<u64> = (0..s.len()).map(|i| s.points().id(i)).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(ids(&batch.store), ids(&inc.store));
        assert_eq!(batch.raw_points, inc.raw_points);
        assert_eq!(batch.uploaded_points, inc.uploaded_points);
    }

    #[test]
    fn empty_network() {
        let sp = SuperPeerStore::preprocess(&[], 3, DominanceIndex::Linear);
        assert!(sp.store.is_empty());
        let (stores, report) = preprocess_network(&[], &[], 2, 3, DominanceIndex::Linear);
        assert_eq!(stores.len(), 2);
        assert_eq!(report, PreprocessReport::default());
        assert_eq!(report.sel_p(), 0.0);
    }

    #[test]
    fn network_report_sums_superpeers() {
        let ps = peers();
        let homes = vec![0, 0, 1];
        let (stores, report) = preprocess_network(&ps, &homes, 2, 4, DominanceIndex::Linear);
        assert_eq!(stores.len(), 2);
        assert_eq!(report.raw_points, 15);
        assert_eq!(report.stored_points, stores.iter().map(|s| s.store.len()).sum::<usize>());
        assert!(report.sel_p() > 0.0 && report.sel_p() <= 1.0);
        assert!(report.sel_ratio() <= 1.0);
    }

    #[test]
    fn selectivity_monotonicity() {
        // SEL_sp ≤ SEL_p always (merging can only discard).
        let ps = peers();
        let (_, report) = preprocess_network(&ps, &[0, 0, 0], 1, 4, DominanceIndex::Linear);
        assert!(report.sel_sp() <= report.sel_p());
    }
}
