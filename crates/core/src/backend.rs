//! Pluggable distributed-skyline backends.
//!
//! SKYPEER's threshold protocol is one way to compute a subspace skyline
//! over data partitioned across super-peers — not the only one. This
//! module factors the query lifecycle (plan, per-round message exchange
//! over the DES, answer assembly) behind the
//! [`DistributedSkylineBackend`] trait so alternative protocols run over
//! the **same** network, stores, cost model, tracer, and metrics, and are
//! therefore directly comparable on bytes, rounds, and simulated time.
//!
//! Two implementations ship today:
//!
//! * [`SkypeerBackend`] — the paper's threshold protocol (all five
//!   variants), delegating to the existing [`SkypeerEngine`] query paths.
//!   Rounds scale with backbone diameter (query flood down, answers up).
//! * [`SamplingBackend`] — Zhang & Zhang's sampling-based constant-round
//!   algorithm ("Computing Skylines on Distributed Data",
//!   arXiv 1611.00423), adapted to the super-peer stores: the coordinator
//!   computes its local subspace skyline and broadcasts it as a pruning
//!   filter (round 1); every other super-peer computes its local skyline,
//!   drops filter-dominated points, and ships the survivors straight back
//!   (round 2); the coordinator merges. Exactly **2** communication
//!   rounds regardless of backbone size, at the price of contacting every
//!   super-peer directly instead of riding the backbone topology.
//!
//! Both backends return exact answers (proptested against the brute
//! oracle in [`crate::verify`]); they differ only in *how much* data
//! moves, *how many* sequential rounds it takes, and *where* the work
//! lands.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use skypeer_data::Query;
use skypeer_netsim::cost::WorkReport;
use skypeer_netsim::des::{Behavior, Context, LinkModel, Sim};
use skypeer_netsim::obs::{ProtoEvent, QueryPhase, Tracer};
use skypeer_skyline::merge::merge_sorted;
use skypeer_skyline::{Dominance, PointSet, SortedDataset, Subspace};

use crate::engine::{QueryOutcome, SkypeerEngine};
use crate::msg::Msg;
use crate::node::FinalAnswer;
use crate::planner::IndexPolicy;
use crate::variants::Variant;

/// Which distributed-skyline backend executes a query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The SKYPEER threshold protocol (the paper's algorithm; default).
    #[default]
    Skypeer,
    /// Zhang & Zhang's sampling-based constant-round algorithm.
    Sampling,
}

impl BackendKind {
    /// Every backend, in comparison-report order.
    pub const ALL: [BackendKind; 2] = [BackendKind::Skypeer, BackendKind::Sampling];

    /// Stable lowercase name — the value `--backend` accepts and the
    /// string reports print.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Skypeer => "skypeer",
            BackendKind::Sampling => "sampling",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parses a `--backend` value. Every front end routes through this one
/// function so the accepted names — and the error text — cannot drift.
pub fn parse_backend(s: &str) -> Result<BackendKind, String> {
    match s {
        "skypeer" => Ok(BackendKind::Skypeer),
        "sampling" => Ok(BackendKind::Sampling),
        other => Err(format!("unknown --backend '{other}' (expected skypeer|sampling)")),
    }
}

/// A distributed-skyline protocol runnable over a built [`SkypeerEngine`]
/// network: it owns the query lifecycle — planning, per-round message
/// exchange on the DES, and answer assembly — while the engine supplies
/// the shared substrate (topology, per-super-peer stores, link and cost
/// models, index policy, fault injection).
///
/// Contract every implementation must honor:
///
/// * **Exactness** — the returned [`QueryOutcome::result_ids`] equal the
///   brute-force subspace skyline of the union of all raw data.
/// * **Determinism** — identical inputs produce identical outcomes,
///   byte-for-byte (the DES guarantees this if the behavior is
///   deterministic).
/// * **Honest accounting** — every byte crossing the wire is a real
///   encoded message through [`crate::msg::Msg`]; computation is reported
///   via [`WorkReport`] so the cost model prices it.
/// * **Observability** — tracing must ride the standard [`Tracer`] hooks
///   so trace/explain/soak/audit tools work unmodified.
pub trait DistributedSkylineBackend {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// Executes one query in a single simulation with the engine's
    /// configured links, optionally traced and with per-link overrides
    /// (`comp_time_ns` is reported as 0, as on the engine's observed
    /// path). `variant` selects the SKYPEER strategy; backends without a
    /// variant dimension ignore it.
    fn run_observed(
        &self,
        engine: &SkypeerEngine,
        query: Query,
        variant: Variant,
        tracer: Option<Arc<dyn Tracer>>,
        link_overrides: &[(usize, usize, LinkModel)],
    ) -> QueryOutcome;
}

/// The paper's SKYPEER threshold protocol, behind the backend seam.
pub struct SkypeerBackend;

impl DistributedSkylineBackend for SkypeerBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Skypeer
    }

    fn run_observed(
        &self,
        engine: &SkypeerEngine,
        query: Query,
        variant: Variant,
        tracer: Option<Arc<dyn Tracer>>,
        link_overrides: &[(usize, usize, LinkModel)],
    ) -> QueryOutcome {
        engine.run_query_observed_perturbed(query, variant, link_overrides, tracer)
    }
}

/// Zhang & Zhang's sampling-based constant-round backend (see the module
/// docs for the protocol). The `variant` argument is ignored: the
/// algorithm has no threshold/merging axes.
pub struct SamplingBackend;

impl DistributedSkylineBackend for SamplingBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Sampling
    }

    fn run_observed(
        &self,
        engine: &SkypeerEngine,
        query: Query,
        _variant: Variant,
        tracer: Option<Arc<dyn Tracer>>,
        link_overrides: &[(usize, usize, LinkModel)],
    ) -> QueryOutcome {
        let qid = engine.alloc_qid();
        let stores = engine.shared_stores();
        let n = stores.len();
        let nodes: Vec<SamplingNode> = (0..n)
            .map(|sp| {
                let init = (sp == query.initiator).then_some(SamplingInit {
                    qid,
                    subspace: query.subspace,
                    flavour: Dominance::Standard,
                });
                SamplingNode::new(
                    sp,
                    n,
                    Arc::clone(&stores[sp]),
                    engine.current_query_policy(),
                    init,
                )
            })
            .collect();
        let mut sim = Sim::new(nodes, engine.config().link, engine.config().cost);
        for &(from, to, model) in link_overrides {
            sim = sim.with_link_override(from, to, model);
        }
        if let Some(tracer) = tracer {
            sim = sim.with_tracer(tracer);
        }
        if let Some(fault) = engine.current_fault() {
            sim = sim.with_tamper_hook(move |_, _, payload| fault.tamper(payload));
        }
        let out = sim.run(query.initiator);
        let answer = out
            .nodes
            .into_iter()
            .nth(query.initiator)
            .expect("initiator exists")
            .into_outcome()
            .expect("coordinator must hold the final result after completion");
        assert!(answer.complete, "failure-free runs must be complete");
        let mut result_ids: Vec<u64> =
            (0..answer.result.len()).map(|i| answer.result.points().id(i)).collect();
        result_ids.sort_unstable();
        QueryOutcome {
            result_ids,
            complete: answer.complete,
            result: answer.result,
            total_time_ns: out.stats.finished_at.expect("query must complete"),
            comp_time_ns: 0,
            volume_bytes: out.stats.bytes,
            messages: out.stats.messages,
            dropped: out.stats.dropped,
            compute_ns_total: out.stats.compute_ns_total,
            rounds: out.stats.rounds,
        }
    }
}

/// The statically-known backend for a [`BackendKind`].
pub fn backend_for(kind: BackendKind) -> &'static dyn DistributedSkylineBackend {
    match kind {
        BackendKind::Skypeer => &SkypeerBackend,
        BackendKind::Sampling => &SamplingBackend,
    }
}

impl SkypeerEngine {
    /// [`SkypeerEngine::run_query_observed`] routed through a backend:
    /// the shared entry point of the soak runner, the CLI, and the
    /// head-to-head comparison. `BackendKind::Skypeer` is byte-identical
    /// to calling the engine's observed path directly.
    pub fn run_query_on_backend(
        &self,
        backend: BackendKind,
        query: Query,
        variant: Variant,
        tracer: Option<Arc<dyn Tracer>>,
    ) -> QueryOutcome {
        backend_for(backend).run_observed(self, query, variant, tracer, &[])
    }
}

/// A query the coordinator starts at t = 0.
#[derive(Clone, Copy, Debug)]
struct SamplingInit {
    qid: u32,
    subspace: Subspace,
    flavour: Dominance,
}

/// Coordinator-side bookkeeping for one in-flight sampling query.
struct CoordState {
    subspace: Subspace,
    flavour: Dominance,
    /// The coordinator's local subspace skyline (also the filter it
    /// broadcast).
    local: SortedDataset,
    /// Candidate lists received so far.
    collected: Vec<SortedDataset>,
    /// Peers whose candidates are still outstanding.
    awaiting: usize,
    complete: bool,
}

/// One super-peer of the sampling backend: stored ext-skyline plus the
/// two-round protocol. The coordinator broadcasts its local skyline as a
/// pruning filter, every other node answers once with its filtered local
/// skyline, and the coordinator merges — no spanning tree, no relaying,
/// no per-hop threshold refinement.
struct SamplingNode {
    id: usize,
    n_superpeers: usize,
    store: Arc<SortedDataset>,
    policy: IndexPolicy,
    init: Option<SamplingInit>,
    states: HashMap<u32, CoordState>,
    outcomes: Vec<(u32, FinalAnswer)>,
}

impl SamplingNode {
    fn new(
        id: usize,
        n_superpeers: usize,
        store: Arc<SortedDataset>,
        policy: IndexPolicy,
        init: Option<SamplingInit>,
    ) -> Self {
        SamplingNode {
            id,
            n_superpeers,
            store,
            policy,
            init,
            states: HashMap::new(),
            outcomes: Vec::new(),
        }
    }

    /// The single final answer of a single-query run, consuming the node.
    fn into_outcome(self) -> Option<FinalAnswer> {
        self.outcomes.into_iter().next().map(|(_, a)| a)
    }

    /// Computes this node's local subspace skyline (no threshold — the
    /// sampling protocol prunes with the filter, not with `t`) and
    /// reports the work.
    fn local_skyline(
        &self,
        qid: u32,
        subspace: Subspace,
        flavour: Dominance,
        ctx: &mut dyn Context,
    ) -> SortedDataset {
        let index = self.policy.resolve(self.store.len(), subspace);
        let started = Instant::now();
        let out = self.store.subspace_skyline(subspace, flavour, f64::INFINITY, index);
        ctx.report_work(WorkReport {
            dominance_tests: out.stats.dominance_tests,
            points_scanned: out.stats.points_scanned,
            measured: Some(started.elapsed()),
        });
        ctx.note(ProtoEvent::Phase { qid, phase: QueryPhase::LocalDone });
        out.result
    }

    /// Coordinator start: local skyline → broadcast filter to every other
    /// super-peer (round 1).
    fn start_query(&mut self, init: SamplingInit, ctx: &mut dyn Context) {
        let SamplingInit { qid, subspace, flavour } = init;
        ctx.note(ProtoEvent::Phase { qid, phase: QueryPhase::Started });
        let local = self.local_skyline(qid, subspace, flavour, ctx);
        let awaiting = self.n_superpeers - 1;
        if awaiting > 0 {
            let msg = Msg::SampleQuery { qid, subspace, flavour, filter: local.clone() };
            let bytes = msg.wire_bytes();
            let encoded = msg.encode();
            for sp in (0..self.n_superpeers).filter(|&sp| sp != self.id) {
                ctx.send(sp, bytes, encoded.clone());
            }
            ctx.note(ProtoEvent::Phase { qid, phase: QueryPhase::Forwarded });
        }
        self.states.insert(
            qid,
            CoordState {
                subspace,
                flavour,
                local,
                collected: Vec::new(),
                awaiting,
                complete: true,
            },
        );
        self.check_finalize(qid, ctx);
    }

    /// Peer side of round 1: local skyline, filter out dominated points,
    /// reply with the survivors (round 2).
    fn on_sample_query(
        &mut self,
        from: usize,
        qid: u32,
        subspace: Subspace,
        flavour: Dominance,
        filter: SortedDataset,
        ctx: &mut dyn Context,
    ) {
        ctx.note(ProtoEvent::Phase { qid, phase: QueryPhase::Started });
        let local = self.local_skyline(qid, subspace, flavour, ctx);
        let started = Instant::now();
        let (survivors, tests, pruned) = filter_candidates(&local, &filter, subspace, flavour);
        ctx.report_work(WorkReport {
            dominance_tests: tests,
            points_scanned: local.len() as u64,
            measured: Some(started.elapsed()),
        });
        if pruned > 0 {
            ctx.note(ProtoEvent::Prune { qid, pruned });
        }
        ctx.note(ProtoEvent::Phase { qid, phase: QueryPhase::Finalized });
        let msg = Msg::Candidates { qid, complete: true, points: survivors };
        ctx.send(from, msg.wire_bytes(), msg.encode());
    }

    /// Coordinator side of round 2: collect candidates; once every peer
    /// answered, merge and finish.
    fn on_candidates(
        &mut self,
        qid: u32,
        complete: bool,
        points: SortedDataset,
        ctx: &mut dyn Context,
    ) {
        let Some(state) = self.states.get_mut(&qid) else {
            debug_assert!(false, "candidates for unknown query {qid}");
            return;
        };
        debug_assert!(state.awaiting > 0, "more candidate lists than peers");
        state.complete &= complete;
        if !points.is_empty() {
            state.collected.push(points);
        }
        state.awaiting -= 1;
        self.check_finalize(qid, ctx);
    }

    /// Final merge once every peer's candidates are in.
    fn check_finalize(&mut self, qid: u32, ctx: &mut dyn Context) {
        let ready = self.states.get(&qid).is_some_and(|s| s.awaiting == 0);
        if !ready {
            return;
        }
        let state = self.states.remove(&qid).expect("state checked above");
        let started = Instant::now();
        let mut lists: Vec<&SortedDataset> = Vec::with_capacity(state.collected.len() + 1);
        lists.push(&state.local);
        lists.extend(state.collected.iter());
        let index = self.policy.resolve(self.store.len(), state.subspace);
        let merged = merge_sorted(&lists, state.subspace, state.flavour, f64::INFINITY, index);
        ctx.report_work(WorkReport {
            dominance_tests: merged.stats.dominance_tests,
            points_scanned: merged.stats.points_scanned,
            measured: Some(started.elapsed()),
        });
        ctx.note(ProtoEvent::Phase { qid, phase: QueryPhase::Finalized });
        self.outcomes.push((qid, FinalAnswer { result: merged.result, complete: state.complete }));
        ctx.finish();
    }
}

impl Behavior for SamplingNode {
    fn on_start(&mut self, ctx: &mut dyn Context) {
        let init = self.init.take().expect("on_start on a node without a query");
        self.start_query(init, ctx);
    }

    fn on_message(&mut self, from: usize, msg: Vec<u8>, ctx: &mut dyn Context) {
        match Msg::decode(&msg) {
            Some(Msg::SampleQuery { qid, subspace, flavour, filter }) => {
                self.on_sample_query(from, qid, subspace, flavour, filter, ctx);
            }
            Some(Msg::Candidates { qid, complete, points }) => {
                self.on_candidates(qid, complete, points, ctx);
            }
            Some(other) => debug_assert!(false, "unexpected message for sampling node: {other:?}"),
            None => debug_assert!(false, "undecodable message from {from}"),
        }
    }
}

/// Drops every `local` point dominated (under `flavour`, on `subspace`)
/// by some `filter` point. Returns `(survivors, dominance_tests,
/// pruned)`.
fn filter_candidates(
    local: &SortedDataset,
    filter: &SortedDataset,
    subspace: Subspace,
    flavour: Dominance,
) -> (SortedDataset, u64, u64) {
    let set = local.points();
    let fset = filter.points();
    let mut keep = PointSet::new(set.dim());
    let mut tests = 0u64;
    let mut pruned = 0u64;
    for (_, id, coords) in set.iter() {
        let mut dominated = false;
        for (_, _, f) in fset.iter() {
            tests += 1;
            if flavour.dominates(f, coords, subspace) {
                dominated = true;
                break;
            }
        }
        if dominated {
            pruned += 1;
        } else {
            keep.push(coords, id);
        }
    }
    (SortedDataset::from_set(&keep), tests, pruned)
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::engine::{EngineConfig, RoutingMode};
    use crate::verify::{exact_skyline_ids, global_dataset};
    use skypeer_data::{DatasetKind, DatasetSpec};
    use skypeer_netsim::cost::CostModel;
    use skypeer_netsim::topology::TopologySpec;
    use skypeer_skyline::DominanceIndex;
    use std::cell::OnceCell;
    use std::rc::Rc;

    fn test_config(kind: DatasetKind, seed: u64) -> EngineConfig {
        let n_superpeers = 6;
        EngineConfig {
            n_peers: 12,
            n_superpeers,
            dataset: DatasetSpec { dim: 4, points_per_peer: 25, kind, seed },
            topology: TopologySpec::paper_default(n_superpeers, seed ^ 0xD1CE),
            index: DominanceIndex::Linear,
            cost: CostModel::default(),
            link: LinkModel::paper_4kbps(),
            routing: RoutingMode::Flood,
        }
    }

    /// Engine + raw-data union, built once per dataset kind and test
    /// thread (engine construction dominates test time; the engine is
    /// not `Sync`, so the cache is thread-local).
    fn fixture(clustered: bool) -> Rc<(SkypeerEngine, PointSet)> {
        thread_local! {
            static UNIFORM: OnceCell<Rc<(SkypeerEngine, PointSet)>> = const { OnceCell::new() };
            static CLUSTERED: OnceCell<Rc<(SkypeerEngine, PointSet)>> = const { OnceCell::new() };
        }
        let build = move || {
            let (kind, seed) = if clustered {
                (DatasetKind::Clustered { centroids_per_superpeer: 2 }, 31u64)
            } else {
                (DatasetKind::Uniform, 17u64)
            };
            let cfg = test_config(kind, seed);
            let engine = SkypeerEngine::build(cfg);
            let peer_home = engine.topology().assign_peers(cfg.n_peers);
            let all = global_dataset(&cfg.dataset, &peer_home);
            Rc::new((engine, all))
        };
        if clustered {
            CLUSTERED.with(|c| Rc::clone(c.get_or_init(build)))
        } else {
            UNIFORM.with(|c| Rc::clone(c.get_or_init(build)))
        }
    }

    #[test]
    fn parse_backend_accepts_names_and_pins_error_text() {
        assert_eq!(parse_backend("skypeer"), Ok(BackendKind::Skypeer));
        assert_eq!(parse_backend("sampling"), Ok(BackendKind::Sampling));
        // Pinned error text: front ends surface this string verbatim.
        assert_eq!(
            parse_backend("gossip").unwrap_err(),
            "unknown --backend 'gossip' (expected skypeer|sampling)"
        );
        for kind in BackendKind::ALL {
            assert_eq!(parse_backend(kind.name()), Ok(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
    }

    #[test]
    fn every_backend_is_exact_on_every_subspace() {
        // Exhaustive over all 15 non-empty subspaces of d = 4, both data
        // distributions, both backends.
        for clustered in [false, true] {
            let fx = fixture(clustered);
            let (engine, all) = (&fx.0, &fx.1);
            for mask in 1u32..16 {
                let u = Subspace::from_mask(mask);
                let want = exact_skyline_ids(all, u, usize::MAX);
                let q = Query { subspace: u, initiator: mask as usize % 6 };
                for kind in BackendKind::ALL {
                    let out = engine.run_query_on_backend(kind, q, Variant::Ftpm, None);
                    assert!(out.complete);
                    assert_eq!(out.result_ids, want, "backend {kind} U={u} clustered={clustered}");
                }
            }
        }
    }

    #[test]
    fn sampling_backend_takes_exactly_two_rounds() {
        let fx = fixture(false);
        let engine = &fx.0;
        for initiator in 0..6 {
            let q = Query { subspace: Subspace::from_dims(&[0, 2]), initiator };
            let out = engine.run_query_on_backend(BackendKind::Sampling, q, Variant::Ftpm, None);
            assert_eq!(out.rounds, 2, "sampling is constant-round from initiator {initiator}");
        }
    }

    #[test]
    fn skypeer_backend_is_identical_to_the_engine_path() {
        let fx = fixture(false);
        let engine = &fx.0;
        let q = Query { subspace: Subspace::from_dims(&[1, 3]), initiator: 2 };
        let direct = engine.run_query_observed(q, Variant::Rtpm, None);
        let routed = engine.run_query_on_backend(BackendKind::Skypeer, q, Variant::Rtpm, None);
        assert_eq!(direct.result_ids, routed.result_ids);
        assert_eq!(direct.total_time_ns, routed.total_time_ns);
        assert_eq!(direct.volume_bytes, routed.volume_bytes);
        assert_eq!(direct.messages, routed.messages);
        assert_eq!(direct.rounds, routed.rounds);
    }

    #[test]
    fn sampling_runs_are_deterministic() {
        let fx = fixture(true);
        let engine = &fx.0;
        let q = Query { subspace: Subspace::from_dims(&[0, 1, 3]), initiator: 4 };
        let a = engine.run_query_on_backend(BackendKind::Sampling, q, Variant::Ftpm, None);
        let b = engine.run_query_on_backend(BackendKind::Sampling, q, Variant::Ftpm, None);
        assert_eq!(a.result_ids, b.result_ids);
        assert_eq!(a.total_time_ns, b.total_time_ns);
        assert_eq!(a.volume_bytes, b.volume_bytes);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn sampling_tracer_observes_the_run_without_perturbing_it() {
        use skypeer_netsim::obs::MemTracer;
        let fx = fixture(false);
        let engine = &fx.0;
        let q = Query { subspace: Subspace::from_dims(&[0, 3]), initiator: 1 };
        let plain = engine.run_query_on_backend(BackendKind::Sampling, q, Variant::Ftpm, None);
        let tracer = Arc::new(MemTracer::new());
        let traced = engine.run_query_on_backend(
            BackendKind::Sampling,
            q,
            Variant::Ftpm,
            Some(Arc::clone(&tracer) as Arc<dyn Tracer>),
        );
        assert_eq!(plain.result_ids, traced.result_ids);
        assert_eq!(plain.total_time_ns, traced.total_time_ns);
        assert_eq!(plain.volume_bytes, traced.volume_bytes);
        let events = tracer.take();
        assert!(!events.is_empty(), "the sampling run is traced");
        assert!(
            events.iter().any(|e| matches!(
                e,
                skypeer_netsim::obs::TraceEvent::Proto {
                    event: ProtoEvent::Phase { phase: QueryPhase::Finalized, .. },
                    ..
                }
            )),
            "protocol phases ride the standard tracer"
        );
    }

    #[test]
    fn filter_drops_only_dominated_points() {
        let u = Subspace::full(2);
        let mut f = PointSet::new(2);
        f.push(&[1.0, 1.0], 100);
        let filter = SortedDataset::from_set(&f);
        let mut l = PointSet::new(2);
        l.push(&[2.0, 2.0], 1); // dominated
        l.push(&[0.5, 3.0], 2); // incomparable: survives
        l.push(&[1.0, 1.0], 3); // equal: survives under standard dominance
        let local = SortedDataset::from_set(&l);
        let (kept, tests, pruned) = filter_candidates(&local, &filter, u, Dominance::Standard);
        assert_eq!(pruned, 1);
        assert!(tests >= 3);
        let mut ids: Vec<u64> = (0..kept.len()).map(|i| kept.points().id(i)).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![2, 3]);
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Random subspace × initiator × backend: the distributed
            /// answer always equals the brute oracle over the raw data,
            /// on uniform and clustered distributions.
            #[test]
            fn prop_backends_match_brute_oracle(
                mask in 1u32..16,
                initiator in 0usize..6,
                clustered in any::<bool>(),
                backend_idx in 0usize..2,
            ) {
                let fx = fixture(clustered);
            let (engine, all) = (&fx.0, &fx.1);
                let u = Subspace::from_mask(mask);
                let want = exact_skyline_ids(all, u, usize::MAX);
                let q = Query { subspace: u, initiator };
                let kind = BackendKind::ALL[backend_idx];
                let out = engine.run_query_on_backend(kind, q, Variant::Rtfm, None);
                prop_assert!(out.complete);
                prop_assert_eq!(out.result_ids, want);
            }
        }
    }
}
