//! Query EXPLAIN/ANALYZE: one traced execution distilled into a
//! plan-plus-execution report.
//!
//! [`SkypeerEngine::explain_query`] runs a query under full tracing and
//! derives an [`ExplainReport`]: the variant chosen, the super-peer
//! fan-out tree (who first received the query from whom, at what time),
//! the threshold timeline (install at the initiator, then every refine
//! with its value and originating node), per-super-peer prune
//! effectiveness (points skipped by the threshold vs. what was still
//! shipped), bytes per link against the naive all-the-data baseline, and
//! the critical path annotated with what each hop was waiting on.
//!
//! The report renders two ways: [`ExplainReport::render`] for humans and
//! [`ExplainReport::to_json`] for tools. The JSON is built on
//! `skypeer-obs`'s byte-deterministic builder, so on the DES the same
//! seed and flags reproduce the identical byte string — goldens compare
//! with `==`.

use crate::engine::{RoutingMode, SkypeerEngine};
use crate::variants::Variant;
use skypeer_data::Query;
use skypeer_netsim::obs::critical::{render as render_critical, CriticalPath, StepKind};
use skypeer_netsim::obs::json;
use skypeer_netsim::obs::{
    critical_path, MemTracer, MetricsRegistry, ProtoEvent, SpanCause, TraceEvent, Tracer,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How a threshold value entered the timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThresholdKind {
    /// Installed verbatim on arrival of the query.
    Install,
    /// Tightened (or confirmed) by a local computation.
    Refine,
}

/// One entry of the threshold timeline.
#[derive(Clone, Copy, Debug)]
pub struct ThresholdStep {
    /// Sim-time of the span that produced the value.
    pub at_ns: u64,
    /// Super-peer it happened on.
    pub node: usize,
    /// Install or refine.
    pub kind: ThresholdKind,
    /// Value before a refine (`None` for installs).
    pub old: Option<f64>,
    /// Value after this step.
    pub value: f64,
    /// Tightest value seen anywhere up to and including this step — the
    /// quantity that must be monotone non-increasing on a correct run.
    pub best: f64,
}

/// Threshold effectiveness on one super-peer.
#[derive(Clone, Copy, Debug, Default)]
pub struct PruneStats {
    /// Super-peer id.
    pub node: usize,
    /// Points its kernels scanned.
    pub points_scanned: u64,
    /// Dominance tests it performed.
    pub dominance_tests: u64,
    /// Points the threshold let it skip.
    pub pruned: u64,
    /// Bytes it still shipped.
    pub bytes_out: u64,
    /// Messages it sent.
    pub msgs_out: u64,
}

/// Bytes over one directed link, next to the naive baseline.
#[derive(Clone, Copy, Debug)]
pub struct LinkUsage {
    /// Sending super-peer.
    pub from: usize,
    /// Receiving super-peer.
    pub to: usize,
    /// Bytes under the explained variant.
    pub bytes: u64,
    /// Bytes the naive variant moved over the same link.
    pub naive_bytes: u64,
}

/// One edge of the query fan-out: `node` first heard about the query from
/// `parent` at `at_ns`.
#[derive(Clone, Copy, Debug)]
pub struct FanoutEdge {
    /// Receiving super-peer.
    pub node: usize,
    /// The neighbor whose copy arrived first.
    pub parent: usize,
    /// Hops from the initiator along first arrivals.
    pub depth: usize,
    /// First-arrival time.
    pub at_ns: u64,
}

/// The EXPLAIN/ANALYZE report of one query execution.
#[derive(Clone, Debug)]
pub struct ExplainReport {
    /// Variant the query ran under.
    pub variant: Variant,
    /// The queried subspace, rendered (`{d0,d2}` style).
    pub subspace: String,
    /// Dimensions of the subspace, ascending.
    pub dims: Vec<usize>,
    /// Initiating super-peer.
    pub initiator: usize,
    /// Network shape: peers.
    pub n_peers: usize,
    /// Network shape: super-peers.
    pub n_superpeers: usize,
    /// Query dissemination strategy.
    pub routing: RoutingMode,
    /// Skyline cardinality.
    pub result_points: usize,
    /// Whether every super-peer contributed.
    pub complete: bool,
    /// Simulated response time, configured links, ns.
    pub total_time_ns: u64,
    /// Simulated response time, zero-delay links, ns.
    pub comp_time_ns: u64,
    /// Bytes moved by this variant.
    pub volume_bytes: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Bytes the naive variant moves for the same query.
    pub naive_bytes: u64,
    /// First-arrival fan-out tree, sorted by (arrival, node).
    pub fanout: Vec<FanoutEdge>,
    /// Threshold timeline in execution order.
    pub thresholds: Vec<ThresholdStep>,
    /// Per-super-peer prune effectiveness, ascending node id (only nodes
    /// that did any work).
    pub pruning: Vec<PruneStats>,
    /// Per-link bytes vs. naive, ascending (from, to); union of the links
    /// either variant used.
    pub links: Vec<LinkUsage>,
    /// The chain of segments that determined the response time.
    pub critical: Option<CriticalPath>,
}

impl ExplainReport {
    /// Whether the running-best threshold never loosened — the invariant
    /// the RT* variants promise (FT* timelines are trivially monotone too:
    /// install once, refine locally downward).
    pub fn timeline_monotone(&self) -> bool {
        self.thresholds.windows(2).all(|w| w[1].best <= w[0].best)
            && self
                .thresholds
                .iter()
                .all(|s| s.old.map(|old| s.value <= old || old.is_nan()).unwrap_or(true))
    }

    /// `naive_bytes / volume_bytes` — how much traffic the variant saved.
    pub fn savings_factor(&self) -> f64 {
        if self.volume_bytes == 0 {
            if self.naive_bytes == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.naive_bytes as f64 / self.volume_bytes as f64
        }
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "EXPLAIN skyline on {} via {} (initiator SP{})\n",
            self.subspace,
            self.variant.mnemonic(),
            self.initiator
        ));
        let routing = match self.routing {
            RoutingMode::Flood => "flood",
            RoutingMode::SpanningTree => "tree",
        };
        out.push_str(&format!(
            "network   : {} peers / {} super-peers, {routing} routing\n",
            self.n_peers, self.n_superpeers
        ));
        out.push_str(&format!(
            "result    : {} points (exact), complete={}\n",
            self.result_points, self.complete
        ));
        out.push_str(&format!(
            "times     : total {:.3} ms | computational {:.3} ms\n",
            self.total_time_ns as f64 / 1e6,
            self.comp_time_ns as f64 / 1e6
        ));
        out.push_str(&format!(
            "volume    : {:.1} KB in {} messages (naive baseline {:.1} KB, {:.2}x)\n",
            self.volume_bytes as f64 / 1024.0,
            self.messages,
            self.naive_bytes as f64 / 1024.0,
            self.savings_factor()
        ));

        out.push_str("\nquery fan-out (first receipt):\n");
        out.push_str(&format!("  SP{} (initiator)\n", self.initiator));
        for e in &self.fanout {
            out.push_str(&format!(
                "  {}SP{} <- SP{}  @ {:.3} ms\n",
                "  ".repeat(e.depth),
                e.node,
                e.parent,
                e.at_ns as f64 / 1e6
            ));
        }
        if self.fanout.is_empty() {
            out.push_str("  (single super-peer, nothing to forward)\n");
        }

        out.push_str("\nthreshold timeline:\n");
        if self.thresholds.is_empty() {
            out.push_str("  (none — naive runs carry no threshold)\n");
        } else {
            out.push_str(&format!(
                "  {:>10}  {:>6}  {:>8}  {:>22}  {:>10}\n",
                "ms", "node", "event", "value", "best"
            ));
            for s in &self.thresholds {
                let value = match (s.kind, s.old) {
                    (ThresholdKind::Refine, Some(old)) => {
                        format!("{} -> {}", fmt_threshold(old), fmt_threshold(s.value))
                    }
                    _ => fmt_threshold(s.value),
                };
                let kind = match s.kind {
                    ThresholdKind::Install => "install",
                    ThresholdKind::Refine => "refine",
                };
                out.push_str(&format!(
                    "  {:>10.3}  {:>6}  {:>8}  {:>22}  {:>10}\n",
                    s.at_ns as f64 / 1e6,
                    format!("SP{}", s.node),
                    kind,
                    value,
                    fmt_threshold(s.best)
                ));
            }
            out.push_str(&format!(
                "  monotone: {}\n",
                if self.timeline_monotone() { "yes" } else { "NO (protocol bug)" }
            ));
        }

        out.push_str("\nper-super-peer pruning:\n");
        out.push_str(&format!(
            "  {:>6}  {:>9}  {:>10}  {:>8}  {:>10}  {:>8}\n",
            "node", "scanned", "dom.tests", "pruned", "bytes out", "msgs out"
        ));
        for p in &self.pruning {
            out.push_str(&format!(
                "  {:>6}  {:>9}  {:>10}  {:>8}  {:>10}  {:>8}\n",
                format!("SP{}", p.node),
                p.points_scanned,
                p.dominance_tests,
                p.pruned,
                p.bytes_out,
                p.msgs_out
            ));
        }

        out.push_str("\nlink usage vs naive:\n");
        if self.links.is_empty() {
            out.push_str("  (no traffic)\n");
        } else {
            out.push_str(&format!(
                "  {:>12}  {:>10}  {:>10}  {:>8}\n",
                "link", "bytes", "naive", "saved"
            ));
            for l in &self.links {
                out.push_str(&format!(
                    "  {:>12}  {:>10}  {:>10}  {:>8}\n",
                    format!("SP{}->SP{}", l.from, l.to),
                    l.bytes,
                    l.naive_bytes,
                    l.naive_bytes.saturating_sub(l.bytes)
                ));
            }
        }

        match &self.critical {
            Some(path) => {
                out.push('\n');
                out.push_str(&render_critical(path));
            }
            None => out.push_str("\nno critical path (no finish event recorded)\n"),
        }
        out
    }

    /// Byte-deterministic JSON encoding (stable key order, shortest
    /// round-trip floats, `"inf"` strings for infinities).
    pub fn to_json(&self) -> String {
        let query = json::Obj::new()
            .str("subspace", &self.subspace)
            .raw("dims", &json::arr(self.dims.iter().map(|d| d.to_string())))
            .u64("initiator", self.initiator as u64)
            .str("variant", self.variant.mnemonic())
            .build();
        let routing = match self.routing {
            RoutingMode::Flood => "flood",
            RoutingMode::SpanningTree => "tree",
        };
        let network = json::Obj::new()
            .u64("peers", self.n_peers as u64)
            .u64("superpeers", self.n_superpeers as u64)
            .str("routing", routing)
            .build();
        let result = json::Obj::new()
            .u64("points", self.result_points as u64)
            .bool("complete", self.complete)
            .build();
        let times = json::Obj::new()
            .u64("total_ns", self.total_time_ns)
            .u64("comp_ns", self.comp_time_ns)
            .build();
        let volume = json::Obj::new()
            .u64("bytes", self.volume_bytes)
            .u64("messages", self.messages)
            .u64("naive_bytes", self.naive_bytes)
            .f64("savings_factor", self.savings_factor())
            .build();
        let fanout = json::arr(self.fanout.iter().map(|e| {
            json::Obj::new()
                .u64("node", e.node as u64)
                .u64("parent", e.parent as u64)
                .u64("depth", e.depth as u64)
                .u64("at_ns", e.at_ns)
                .build()
        }));
        let thresholds = json::arr(self.thresholds.iter().map(|s| {
            let mut o = json::Obj::new().u64("at_ns", s.at_ns).u64("node", s.node as u64).str(
                "event",
                match s.kind {
                    ThresholdKind::Install => "install",
                    ThresholdKind::Refine => "refine",
                },
            );
            if let Some(old) = s.old {
                o = o.f64("old", old);
            }
            o.f64("value", s.value).f64("best", s.best).build()
        }));
        let pruning = json::arr(self.pruning.iter().map(|p| {
            json::Obj::new()
                .u64("node", p.node as u64)
                .u64("points_scanned", p.points_scanned)
                .u64("dominance_tests", p.dominance_tests)
                .u64("pruned", p.pruned)
                .u64("bytes_out", p.bytes_out)
                .u64("msgs_out", p.msgs_out)
                .build()
        }));
        let links = json::arr(self.links.iter().map(|l| {
            json::Obj::new()
                .u64("from", l.from as u64)
                .u64("to", l.to as u64)
                .u64("bytes", l.bytes)
                .u64("naive_bytes", l.naive_bytes)
                .build()
        }));
        let critical = match &self.critical {
            Some(path) => {
                let steps = json::arr(path.steps.iter().map(|s| {
                    let (kind, detail) = match s.kind {
                        StepKind::Service { span, cause, dominance_tests, points_scanned } => {
                            let cause = match cause {
                                SpanCause::Start => "start".to_string(),
                                SpanCause::Msg(seq) => format!("msg #{seq}"),
                                SpanCause::Timer(seq) => format!("timer #{seq}"),
                            };
                            (
                                "service",
                                format!(
                                    "SP{} serving {cause}: {dominance_tests} dominance tests, \
                                     {points_scanned} points scanned (span {span})",
                                    s.node
                                ),
                            )
                        }
                        StepKind::NodeQueue => {
                            ("node_queue", format!("waiting for SP{} to go idle", s.node))
                        }
                        StepKind::Transfer { msg_seq, from_node, bytes } => (
                            "transfer",
                            format!(
                                "msg #{msg_seq} in flight SP{from_node}->SP{} ({bytes} B at link \
                                 speed)",
                                s.node
                            ),
                        ),
                        StepKind::LinkQueue { msg_seq, from_node } => (
                            "link_queue",
                            format!(
                                "msg #{msg_seq} waiting behind earlier transfers on \
                                 SP{from_node}->SP{}",
                                s.node
                            ),
                        ),
                        StepKind::TimerWait { timer_seq, tag } => (
                            "timer_wait",
                            format!("SP{} waiting for timer #{timer_seq} (tag {tag})", s.node),
                        ),
                    };
                    json::Obj::new()
                        .u64("from_ns", s.from)
                        .u64("to_ns", s.to)
                        .u64("node", s.node as u64)
                        .str("kind", kind)
                        .str("waiting_on", &detail)
                        .build()
                }));
                json::Obj::new()
                    .u64("finish_node", path.finish_node as u64)
                    .u64("finish_at_ns", path.finish_at)
                    .u64("total_ns", path.total_ns)
                    .raw("steps", &steps)
                    .build()
            }
            None => "null".to_string(),
        };
        json::Obj::new()
            .raw("query", &query)
            .raw("network", &network)
            .raw("result", &result)
            .raw("times", &times)
            .raw("volume", &volume)
            .raw("fanout", &fanout)
            .raw("thresholds", &thresholds)
            .bool("threshold_monotone", self.timeline_monotone())
            .raw("pruning", &pruning)
            .raw("links", &links)
            .raw("critical_path", &critical)
            .build()
    }
}

fn fmt_threshold(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else if v > 0.0 {
        "inf".to_string()
    } else {
        "-inf".to_string()
    }
}

impl SkypeerEngine {
    /// Runs one query under full tracing and distills the trace into an
    /// [`ExplainReport`]. Also runs the naive variant (untraced, with a
    /// per-link breakdown) as the bytes baseline, unless the explained
    /// variant *is* naive, in which case it is its own baseline.
    ///
    /// # Panics
    ///
    /// Panics where [`SkypeerEngine::run_query`] panics (incomplete run
    /// or divergent results — protocol bugs).
    pub fn explain_query(&self, query: Query, variant: Variant) -> ExplainReport {
        let tracer = Arc::new(MemTracer::new());
        let out = self.run_query_traced(query, variant, Arc::clone(&tracer) as Arc<dyn Tracer>);
        let events = tracer.take();
        let registry = MetricsRegistry::from_events(&events);

        let naive_links: BTreeMap<(usize, usize), u64> = if variant == Variant::Naive {
            registry.link_bytes.clone()
        } else {
            self.profile_query(query, Variant::Naive).breakdown.link_bytes.into_iter().collect()
        };
        let naive_bytes: u64 = naive_links.values().sum();

        let cfg = self.config();
        ExplainReport {
            variant,
            subspace: query.subspace.to_string(),
            dims: query.subspace.dims().collect(),
            initiator: query.initiator,
            n_peers: cfg.n_peers,
            n_superpeers: cfg.n_superpeers,
            routing: cfg.routing,
            result_points: out.result_ids.len(),
            complete: out.complete,
            total_time_ns: out.total_time_ns,
            comp_time_ns: out.comp_time_ns,
            volume_bytes: out.volume_bytes,
            messages: out.messages,
            naive_bytes,
            fanout: fanout_tree(&events, query.initiator),
            thresholds: threshold_timeline(&events),
            pruning: prune_stats(&events, &registry),
            links: link_usage(&registry.link_bytes, &naive_links),
            critical: critical_path(&events),
        }
    }
}

/// First-arrival tree: each non-initiator node's earliest `Deliver`
/// defines its parent. Sorted by (arrival, node); depths follow parents.
fn fanout_tree(events: &[TraceEvent], initiator: usize) -> Vec<FanoutEdge> {
    let mut first: BTreeMap<usize, (u64, usize)> = BTreeMap::new();
    for ev in events {
        if let TraceEvent::Deliver { at, from, to, .. } = *ev {
            if to != initiator {
                first.entry(to).or_insert((at, from));
            }
        }
    }
    let mut depth: BTreeMap<usize, usize> = BTreeMap::new();
    depth.insert(initiator, 0);
    fn depth_of(
        node: usize,
        first: &BTreeMap<usize, (u64, usize)>,
        depth: &mut BTreeMap<usize, usize>,
    ) -> usize {
        if let Some(&d) = depth.get(&node) {
            return d;
        }
        let d = match first.get(&node) {
            Some(&(_, parent)) => depth_of(parent, first, depth) + 1,
            // Unreachable parent chain (should not happen on a complete
            // run); treat as a root.
            None => 0,
        };
        depth.insert(node, d);
        d
    }
    let mut edges: Vec<FanoutEdge> = first
        .iter()
        .map(|(&node, &(at_ns, parent))| FanoutEdge {
            node,
            parent,
            depth: depth_of(node, &first, &mut depth),
            at_ns,
        })
        .collect();
    edges.sort_by_key(|e| (e.at_ns, e.node));
    edges
}

/// The threshold timeline in event order, with the running best.
fn threshold_timeline(events: &[TraceEvent]) -> Vec<ThresholdStep> {
    let mut best = f64::INFINITY;
    let mut steps = Vec::new();
    for ev in events {
        if let TraceEvent::Proto { node, at, event, .. } = *ev {
            let (kind, old, value) = match event {
                ProtoEvent::ThresholdInstall { value, .. } => (ThresholdKind::Install, None, value),
                ProtoEvent::ThresholdRefine { old, new, .. } => {
                    (ThresholdKind::Refine, Some(old), new)
                }
                _ => continue,
            };
            if value < best {
                best = value;
            }
            steps.push(ThresholdStep { at_ns: at, node, kind, old, value, best });
        }
    }
    steps
}

/// Per-node prune effectiveness: threshold prunes from the protocol
/// events joined with the registry's per-node work/traffic counters.
fn prune_stats(events: &[TraceEvent], registry: &MetricsRegistry) -> Vec<PruneStats> {
    let mut pruned: BTreeMap<usize, u64> = BTreeMap::new();
    for ev in events {
        if let TraceEvent::Proto { node, event: ProtoEvent::Prune { pruned: n, .. }, .. } = *ev {
            *pruned.entry(node).or_insert(0) += n;
        }
    }
    registry
        .per_node
        .iter()
        .enumerate()
        .filter(|(_, nm)| nm.spans > 0 || nm.msgs_in > 0 || nm.msgs_out > 0)
        .map(|(node, nm)| PruneStats {
            node,
            points_scanned: nm.points_scanned,
            dominance_tests: nm.dominance_tests,
            pruned: pruned.get(&node).copied().unwrap_or(0),
            bytes_out: nm.bytes_out,
            msgs_out: nm.msgs_out,
        })
        .collect()
}

/// Union of links either variant used, ascending (from, to).
fn link_usage(
    ours: &BTreeMap<(usize, usize), u64>,
    naive: &BTreeMap<(usize, usize), u64>,
) -> Vec<LinkUsage> {
    let mut keys: Vec<(usize, usize)> = ours.keys().chain(naive.keys()).copied().collect();
    keys.sort_unstable();
    keys.dedup();
    keys.into_iter()
        .map(|k| LinkUsage {
            from: k.0,
            to: k.1,
            bytes: ours.get(&k).copied().unwrap_or(0),
            naive_bytes: naive.get(&k).copied().unwrap_or(0),
        })
        // Zero-byte bookkeeping sends (acks to self) say nothing about
        // link usage; drop links neither variant put bytes on.
        .filter(|l| l.bytes > 0 || l.naive_bytes > 0)
        .collect()
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::engine::EngineConfig;
    use skypeer_data::{DatasetKind, DatasetSpec};
    use skypeer_netsim::cost::CostModel;
    use skypeer_netsim::des::LinkModel;
    use skypeer_netsim::topology::TopologySpec;
    use skypeer_skyline::{DominanceIndex, Subspace};

    fn tiny_engine(seed: u64) -> SkypeerEngine {
        let n_superpeers = 6;
        SkypeerEngine::build(EngineConfig {
            n_peers: 12,
            n_superpeers,
            dataset: DatasetSpec { dim: 4, points_per_peer: 30, kind: DatasetKind::Uniform, seed },
            topology: TopologySpec::paper_default(n_superpeers, seed),
            index: DominanceIndex::Linear,
            cost: CostModel::default(),
            link: LinkModel::paper_4kbps(),
            routing: crate::engine::RoutingMode::Flood,
        })
    }

    #[test]
    fn explain_covers_every_section_for_all_variants() {
        let engine = tiny_engine(7);
        let q = Query { subspace: Subspace::from_dims(&[0, 2]), initiator: 1 };
        for variant in Variant::ALL {
            let r = engine.explain_query(q, variant);
            assert_eq!(r.variant, variant);
            assert!(r.complete);
            assert!(r.result_points > 0);
            // Fan-out reaches every other super-peer on a complete run.
            assert_eq!(r.fanout.len(), r.n_superpeers - 1, "{variant}");
            assert!(r.fanout.iter().all(|e| e.depth >= 1));
            assert!(!r.pruning.is_empty());
            assert!(!r.links.is_empty());
            assert!(r.naive_bytes > 0);
            let path = r.critical.as_ref().expect("finished query has a path");
            assert_eq!(path.total_ns, r.total_time_ns);
            if variant == Variant::Naive {
                assert_eq!(r.naive_bytes, r.volume_bytes, "naive is its own baseline");
                assert!(
                    r.thresholds.is_empty() || r.thresholds.iter().all(|s| !s.value.is_finite())
                );
            } else {
                assert!(!r.thresholds.is_empty(), "{variant} must carry a threshold");
            }
            let text = r.render();
            for section in [
                "EXPLAIN skyline",
                "query fan-out",
                "threshold timeline",
                "per-super-peer pruning",
                "link usage vs naive",
                "critical path",
            ] {
                assert!(text.contains(section), "{variant}: missing '{section}'");
            }
        }
    }

    #[test]
    fn threshold_timeline_is_monotone_for_rt_variants() {
        // The RT* variants refine the threshold as the query travels; the
        // running best must never loosen, and each refine must tighten.
        for seed in [3, 7, 11, 19] {
            let engine = tiny_engine(seed);
            for initiator in [0, 2] {
                let q = Query { subspace: Subspace::from_dims(&[0, 1, 3]), initiator };
                for variant in [Variant::Rtfm, Variant::Rtpm] {
                    let r = engine.explain_query(q, variant);
                    assert!(!r.thresholds.is_empty(), "seed {seed} {variant}");
                    assert!(
                        r.timeline_monotone(),
                        "seed {seed} {variant}: timeline loosened: {:?}",
                        r.thresholds
                    );
                    for s in &r.thresholds {
                        if let Some(old) = s.old {
                            assert!(
                                s.value <= old,
                                "seed {seed} {variant}: refine loosened {old} -> {}",
                                s.value
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn json_is_deterministic_and_structured() {
        let engine_a = tiny_engine(5);
        let engine_b = tiny_engine(5);
        let q = Query { subspace: Subspace::from_dims(&[1, 3]), initiator: 0 };
        let a = engine_a.explain_query(q, Variant::Rtpm).to_json();
        let b = engine_b.explain_query(q, Variant::Rtpm).to_json();
        assert_eq!(a, b, "same seed, fresh engines: identical bytes");
        for key in [
            "\"query\":",
            "\"network\":",
            "\"result\":",
            "\"times\":",
            "\"volume\":",
            "\"fanout\":",
            "\"thresholds\":",
            "\"threshold_monotone\":",
            "\"pruning\":",
            "\"links\":",
            "\"critical_path\":",
            "\"waiting_on\":",
        ] {
            assert!(a.contains(key), "missing {key}");
        }
    }

    #[test]
    fn skypeer_variants_beat_the_naive_baseline() {
        let engine = tiny_engine(13);
        let q = Query { subspace: Subspace::from_dims(&[0, 1, 2]), initiator: 2 };
        for variant in Variant::SKYPEER {
            let r = engine.explain_query(q, variant);
            assert!(r.volume_bytes <= r.naive_bytes, "{variant}");
            assert!(r.savings_factor() >= 1.0);
        }
    }
}
