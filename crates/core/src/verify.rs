//! Exactness oracles.
//!
//! The paper's central claim is that SKYPEER "provably returns exact
//! answers to arbitrary subspace skyline computations". These helpers give
//! tests and examples a ground truth independent of the protocol: the
//! skyline computed centrally over the *raw* union of every peer's data
//! (brute force for small inputs, sorted-threshold otherwise).

use skypeer_data::DatasetSpec;
use skypeer_skyline::sorted::threshold_skyline;
use skypeer_skyline::{brute, Dominance, DominanceIndex, PointSet, SortedDataset, Subspace};

/// Rebuilds the full global dataset of a generated network (all peers'
/// raw points). Memory scales with `n_peers × points_per_peer`; use for
/// verification-sized networks only.
pub fn global_dataset(spec: &DatasetSpec, peer_home: &[usize]) -> PointSet {
    let mut all = PointSet::new(spec.dim);
    for (peer, &home) in peer_home.iter().enumerate() {
        all.extend_from(&spec.generate_peer(peer, home));
    }
    all
}

/// The exact subspace skyline of an arbitrary point set, as sorted ids.
/// Uses the O(n²) oracle below `cutoff` points, Algorithm 1 above it.
pub fn exact_skyline_ids(set: &PointSet, u: Subspace, cutoff: usize) -> Vec<u64> {
    if set.len() <= cutoff {
        brute::skyline_ids(set, u, Dominance::Standard)
    } else {
        let sorted = SortedDataset::from_set(set);
        let out = threshold_skyline(
            &sorted,
            u,
            Dominance::Standard,
            f64::INFINITY,
            DominanceIndex::RTree,
        );
        let mut ids: Vec<u64> = (0..out.result.len()).map(|i| out.result.points().id(i)).collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::engine::{EngineConfig, SkypeerEngine};
    use crate::variants::Variant;
    use skypeer_data::{DatasetKind, Query, WorkloadSpec};
    use skypeer_netsim::cost::CostModel;
    use skypeer_netsim::des::LinkModel;
    use skypeer_netsim::topology::TopologySpec;

    /// End-to-end exactness against the *raw data* oracle (not just the
    /// merged-store oracle the engine itself uses).
    #[test]
    fn distributed_answers_match_raw_data_oracle() {
        let n_superpeers = 5;
        let cfg = EngineConfig {
            n_peers: 15,
            n_superpeers,
            dataset: DatasetSpec {
                dim: 5,
                points_per_peer: 40,
                kind: DatasetKind::Clustered { centroids_per_superpeer: 2 },
                seed: 77,
            },
            topology: TopologySpec::paper_default(n_superpeers, 78),
            index: DominanceIndex::RTree,
            cost: CostModel::default(),
            link: LinkModel::paper_4kbps(),
            routing: crate::engine::RoutingMode::Flood,
        };
        let engine = SkypeerEngine::build(cfg);
        let peer_home = engine.topology().assign_peers(15);
        let all = global_dataset(&cfg.dataset, &peer_home);

        let workload = WorkloadSpec { dim: 5, k: 2, queries: 6, n_superpeers, seed: 9 };
        for q in workload.generate() {
            let want = exact_skyline_ids(&all, q.subspace, usize::MAX);
            for variant in Variant::ALL {
                let got = engine.run_query(q, variant);
                assert_eq!(got.result_ids, want, "query {q:?} variant {variant}");
            }
        }
    }

    #[test]
    fn oracle_consistent_above_and_below_cutoff() {
        let spec =
            DatasetSpec { dim: 3, points_per_peer: 120, kind: DatasetKind::Uniform, seed: 5 };
        let set = spec.generate_peer(0, 0);
        let u = Subspace::from_dims(&[0, 2]);
        assert_eq!(
            exact_skyline_ids(&set, u, usize::MAX),
            exact_skyline_ids(&set, u, 0),
            "brute force and Algorithm 1 oracles must agree"
        );
    }

    #[test]
    fn global_dataset_covers_all_peers() {
        let spec = DatasetSpec { dim: 2, points_per_peer: 10, kind: DatasetKind::Uniform, seed: 1 };
        let all = global_dataset(&spec, &[0, 1, 0]);
        assert_eq!(all.len(), 30);
        let _ = Query { subspace: Subspace::full(2), initiator: 0 }; // type sanity
    }
}
