//! Per-point answer provenance (lineage) records.
//!
//! A [`PointLineage`] explains, for one point id and one queried
//! subspace, how far the point travelled through the SKYPEER pipeline —
//! generated at a peer, uploaded (or ext-pruned) during preprocessing,
//! stored at its super-peer, and finally kept or dominated at query time
//! — and, for any point that did *not* reach the answer, the dominance
//! [`Witness`] that killed it.
//!
//! This crate sits below the protocol crates, so subspaces appear as
//! plain dimension lists and all rendering is byte-deterministic (the
//! `why` / `why-not` CLI goldens and `AuditViolation` records are
//! compared with `==`).

use crate::json::{arr, float, Obj};

/// The dominating point that removed a candidate from the answer, and
/// the subspace under which the dominance holds.
#[derive(Clone, Debug, PartialEq)]
pub struct Witness {
    /// Global id of the dominating point.
    pub id: u64,
    /// Full-space coordinates of the dominating point.
    pub coords: Vec<f64>,
    /// Peer that generated the dominating point.
    pub origin_peer: usize,
    /// Dimensions of the subspace under which the dominance holds — the
    /// full space for preprocessing-time prunes, the queried subspace
    /// for query-time dominance.
    pub dims: Vec<usize>,
    /// `true` for extended dominance (strict on every dimension, the
    /// preprocessing relation), `false` for standard skyline dominance.
    pub extended: bool,
}

impl Witness {
    fn to_json(&self) -> String {
        Obj::new()
            .u64("id", self.id)
            .u64("peer", self.origin_peer as u64)
            .raw("dims", &arr(self.dims.iter().map(|d| d.to_string())))
            .str("dominance", if self.extended { "extended" } else { "standard" })
            .raw("coords", &arr(self.coords.iter().map(|&v| float(v))))
            .build()
    }
}

/// Where the point was generated and where its data lives.
#[derive(Clone, Debug, PartialEq)]
pub struct PointOrigin {
    /// Full-space coordinates of the point.
    pub coords: Vec<f64>,
    /// Peer that generated the point.
    pub peer: usize,
    /// The super-peer the origin peer uploads to.
    pub super_peer: usize,
    /// Whether the point survived preprocessing into its super-peer's
    /// ext-skyline store (the entry it would be answered from).
    pub in_ext_store: bool,
}

/// How far a point travelled through the pipeline for one query.
#[derive(Clone, Debug, PartialEq)]
pub enum LineageStage {
    /// The id lies outside the generated dataset.
    NotGenerated,
    /// Ext-dominated by a point of the *same* peer: never uploaded.
    PrunedAtPeer(Witness),
    /// Uploaded, but ext-dominated by another peer's point during the
    /// super-peer merge: absent from the ext-skyline store.
    PrunedAtSuperPeer(Witness),
    /// In the ext-skyline store, but standard-dominated on the queried
    /// subspace: correctly excluded from this answer.
    Dominated(Witness),
    /// In the subspace skyline: an exact answer must contain it.
    InSkyline,
}

impl LineageStage {
    /// Short machine-readable verdict tag.
    pub fn verdict(&self) -> &'static str {
        match self {
            LineageStage::NotGenerated => "not-generated",
            LineageStage::PrunedAtPeer(_) => "pruned-at-peer",
            LineageStage::PrunedAtSuperPeer(_) => "pruned-at-super-peer",
            LineageStage::Dominated(_) => "dominated",
            LineageStage::InSkyline => "in-skyline",
        }
    }

    /// The dominance witness, when this stage has one.
    pub fn witness(&self) -> Option<&Witness> {
        match self {
            LineageStage::PrunedAtPeer(w)
            | LineageStage::PrunedAtSuperPeer(w)
            | LineageStage::Dominated(w) => Some(w),
            LineageStage::NotGenerated | LineageStage::InSkyline => None,
        }
    }
}

/// Full provenance of one point id with respect to one query.
#[derive(Clone, Debug, PartialEq)]
pub struct PointLineage {
    /// The point id being explained.
    pub id: u64,
    /// Dimensions of the queried subspace.
    pub query_dims: Vec<usize>,
    /// Origin data; `None` when the id was never generated.
    pub origin: Option<PointOrigin>,
    /// The stage the point reached.
    pub stage: LineageStage,
}

impl PointLineage {
    /// Deterministic single-line JSON record (insertion-order keys,
    /// shortest-roundtrip floats).
    pub fn to_json(&self) -> String {
        let mut o = Obj::new()
            .u64("id", self.id)
            .raw("query_dims", &arr(self.query_dims.iter().map(|d| d.to_string())))
            .str("stage", self.stage.verdict());
        if let Some(origin) = &self.origin {
            o = o.raw(
                "origin",
                &Obj::new()
                    .u64("peer", origin.peer as u64)
                    .u64("super_peer", origin.super_peer as u64)
                    .bool("in_ext_store", origin.in_ext_store)
                    .raw("coords", &arr(origin.coords.iter().map(|&v| float(v))))
                    .build(),
            );
        }
        if let Some(w) = self.stage.witness() {
            o = o.raw("witness", &w.to_json());
        }
        o.build()
    }

    /// Deterministic human-readable report, one fact per line.
    pub fn render_text(&self) -> String {
        let dims = dim_set(&self.query_dims);
        let mut out = format!("point #{} on subspace {dims}\n", self.id);
        match &self.origin {
            None => out.push_str("  origin    : not generated (id outside the dataset)\n"),
            Some(origin) => {
                out.push_str(&format!(
                    "  origin    : peer {} (home super-peer SP{})\n",
                    origin.peer, origin.super_peer
                ));
                out.push_str(&format!("  coords    : {}\n", coord_list(&origin.coords)));
                out.push_str(&format!(
                    "  ext-store : {} SP{}'s ext-skyline store\n",
                    if origin.in_ext_store { "present in" } else { "absent from" },
                    origin.super_peer
                ));
            }
        }
        let verdict = match &self.stage {
            LineageStage::NotGenerated => "not generated".to_string(),
            LineageStage::PrunedAtPeer(_) => {
                "ext-dominated at its own peer (never uploaded)".to_string()
            }
            LineageStage::PrunedAtSuperPeer(_) => {
                "ext-dominated during the super-peer merge".to_string()
            }
            LineageStage::Dominated(w) => format!("dominated on {}", dim_set(&w.dims)),
            LineageStage::InSkyline => format!("in the subspace skyline of {dims}"),
        };
        out.push_str(&format!("  verdict   : {verdict}\n"));
        if let Some(w) = self.stage.witness() {
            out.push_str(&format!(
                "  witness   : #{} (peer {}) {} it on {} with coords {}\n",
                w.id,
                w.origin_peer,
                if w.extended { "ext-dominates" } else { "dominates" },
                dim_set(&w.dims),
                coord_list(&w.coords)
            ));
        }
        out
    }
}

/// Renders a dimension list as the `{d0,d1,...}` set notation the rest
/// of the tooling uses for subspaces.
pub fn dim_set(dims: &[usize]) -> String {
    let mut out = String::from("{");
    for (i, d) in dims.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&d.to_string());
    }
    out.push('}');
    out
}

fn coord_list(coords: &[f64]) -> String {
    arr(coords.iter().map(|&v| float(v)))
}

#[cfg(test)]
mod unit {
    use super::*;

    fn survivor() -> PointLineage {
        PointLineage {
            id: 42,
            query_dims: vec![0, 2],
            origin: Some(PointOrigin {
                coords: vec![0.25, 0.5, 1.0],
                peer: 7,
                super_peer: 2,
                in_ext_store: true,
            }),
            stage: LineageStage::InSkyline,
        }
    }

    fn loser() -> PointLineage {
        PointLineage {
            id: 43,
            query_dims: vec![0, 2],
            origin: Some(PointOrigin {
                coords: vec![0.5, 0.5, 1.5],
                peer: 7,
                super_peer: 2,
                in_ext_store: true,
            }),
            stage: LineageStage::Dominated(Witness {
                id: 42,
                coords: vec![0.25, 0.5, 1.0],
                origin_peer: 7,
                dims: vec![0, 2],
                extended: false,
            }),
        }
    }

    #[test]
    fn json_is_deterministic_and_shaped() {
        assert_eq!(
            survivor().to_json(),
            r#"{"id":42,"query_dims":[0,2],"stage":"in-skyline","origin":{"peer":7,"super_peer":2,"in_ext_store":true,"coords":[0.25,0.5,1.0]}}"#
        );
        let j = loser().to_json();
        assert!(j.contains(r#""stage":"dominated""#), "{j}");
        assert!(
            j.contains(r#""witness":{"id":42,"peer":7,"dims":[0,2],"dominance":"standard""#),
            "{j}"
        );
    }

    #[test]
    fn text_report_names_the_witness() {
        let t = loser().render_text();
        assert!(t.contains("point #43 on subspace {0,2}"), "{t}");
        assert!(t.contains("verdict   : dominated on {0,2}"), "{t}");
        assert!(t.contains("witness   : #42 (peer 7) dominates it on {0,2}"), "{t}");
    }

    #[test]
    fn not_generated_has_no_origin_keys() {
        let l = PointLineage {
            id: 9,
            query_dims: vec![1],
            origin: None,
            stage: LineageStage::NotGenerated,
        };
        assert_eq!(l.to_json(), r#"{"id":9,"query_dims":[1],"stage":"not-generated"}"#);
        assert!(l.render_text().contains("not generated"));
    }

    #[test]
    fn verdict_tags_cover_every_stage() {
        let w = Witness { id: 1, coords: vec![], origin_peer: 0, dims: vec![0], extended: true };
        assert_eq!(LineageStage::NotGenerated.verdict(), "not-generated");
        assert_eq!(LineageStage::PrunedAtPeer(w.clone()).verdict(), "pruned-at-peer");
        assert_eq!(LineageStage::PrunedAtSuperPeer(w.clone()).verdict(), "pruned-at-super-peer");
        assert_eq!(LineageStage::Dominated(w).verdict(), "dominated");
        assert_eq!(LineageStage::InSkyline.verdict(), "in-skyline");
    }
}
