//! Service-level objectives over workload histograms.
//!
//! An [`SloSpec`] is a set of optional budgets — latency percentiles, a
//! hard latency ceiling, and a per-query bytes percentile — evaluated
//! against the [`HdrHistogram`]s a soak run
//! accumulates. Evaluation produces an [`SloReport`]: one
//! [`SloCheck`] per budget actually set, each a plain
//! budget-vs-actual comparison, suitable both for a human table and for
//! gating CI (exit nonzero when [`SloReport::pass`] is `false`).
//!
//! Budgets are inclusive: `actual ≤ budget` passes. An unset budget
//! produces no check, and a set budget over an *empty* histogram fails
//! loudly (an SLO over zero queries is a configuration error, not a
//! pass).

use crate::hdr::HdrHistogram;
use crate::json::{self, Obj};

/// Parses percentile digits (the `NN` of a `--slo-pNN-ms` flag) into a
/// quantile: the first (up to) two digits are the integer percent, any
/// further digits are decimals — `"95"` → 0.95, `"999"` → 0.999,
/// `"9999"` → 0.9999, `"5"` → 0.05. Returns `None` for empty or
/// non-digit input, and for degenerate quantiles outside `(0, 1)`.
pub fn quantile_from_digits(digits: &str) -> Option<f64> {
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    // One integer division keeps the result identical to the literal a
    // user would write (0.999, not 0.999000…01 from summing parts).
    let value: u64 = digits.parse().ok()?;
    let decimals = digits.len().saturating_sub(2) as u32;
    let divisor = 100f64 * 10f64.powi(decimals as i32);
    let q = value as f64 / divisor;
    (q > 0.0 && q < 1.0).then_some(q)
}

/// Optional budgets for one variant (or one whole run). All fields are
/// upper bounds; `None` means "no objective for this metric".
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SloSpec {
    /// Budget for the median simulated latency, in nanoseconds.
    pub p50_latency_ns: Option<u64>,
    /// Budget for the 99th-percentile simulated latency, in nanoseconds.
    pub p99_latency_ns: Option<u64>,
    /// Budget for the 99.9th-percentile simulated latency, in nanoseconds.
    pub p999_latency_ns: Option<u64>,
    /// Hard ceiling on the slowest observed query, in nanoseconds.
    pub max_latency_ns: Option<u64>,
    /// Budget for 99th-percentile per-query network volume, in bytes.
    pub p99_bytes: Option<u64>,
    /// Latency budgets at arbitrary percentiles, as
    /// `(percentile digits, budget ns)` — `("95", 2_000_000)` checks
    /// `latency_p95_ns` via [`quantile_from_digits`]. Entries whose
    /// digits do not parse are skipped; checks are emitted in ascending
    /// quantile order regardless of insertion order.
    pub latency_quantiles: Vec<(String, u64)>,
}

impl SloSpec {
    /// `true` when no budget is set (evaluation yields an empty, passing
    /// report).
    pub fn is_empty(&self) -> bool {
        *self == SloSpec::default()
    }

    /// Evaluates every set budget against the run's latency and bytes
    /// histograms.
    pub fn evaluate(
        &self,
        label: &str,
        latency_ns: &HdrHistogram,
        bytes: &HdrHistogram,
    ) -> SloReport {
        let mut checks = Vec::new();
        let mut push = |metric: String, budget: Option<u64>, actual: Option<u64>| {
            if let Some(budget) = budget {
                checks.push(SloCheck {
                    metric,
                    budget,
                    actual,
                    pass: actual.is_some_and(|a| a <= budget),
                });
            }
        };
        push("latency_p50_ns".into(), self.p50_latency_ns, latency_ns.p50());
        push("latency_p99_ns".into(), self.p99_latency_ns, latency_ns.p99());
        push("latency_p999_ns".into(), self.p999_latency_ns, latency_ns.p999());
        let mut quantiles: Vec<(f64, &str, u64)> = self
            .latency_quantiles
            .iter()
            .filter_map(|(d, b)| quantile_from_digits(d).map(|q| (q, d.as_str(), *b)))
            .collect();
        quantiles.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(b.1)));
        for (q, digits, budget) in quantiles {
            push(format!("latency_p{digits}_ns"), Some(budget), latency_ns.value_at_quantile(q));
        }
        push("latency_max_ns".into(), self.max_latency_ns, latency_ns.max());
        push("bytes_p99".into(), self.p99_bytes, bytes.p99());
        SloReport { label: label.to_string(), checks }
    }
}

/// One budget-vs-actual comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SloCheck {
    /// Which objective this checks, e.g. `"latency_p99_ns"`.
    pub metric: String,
    /// The configured upper bound.
    pub budget: u64,
    /// The observed value (`None` when the histogram was empty).
    pub actual: Option<u64>,
    /// `actual ≤ budget`; `false` when `actual` is `None`.
    pub pass: bool,
}

/// The outcome of evaluating an [`SloSpec`] for one labelled scope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SloReport {
    /// The scope the spec was evaluated for, e.g. a variant name.
    pub label: String,
    /// One entry per budget that was set.
    pub checks: Vec<SloCheck>,
}

impl SloReport {
    /// `true` iff every check passed (vacuously true with no checks).
    pub fn pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// Number of failed checks.
    pub fn violations(&self) -> usize {
        self.checks.iter().filter(|c| !c.pass).count()
    }

    /// Human rendering, one line per check:
    /// `  [PASS] rtpm latency_p99_ns: 1200 ≤ budget 5000`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.checks {
            let verdict = if c.pass { "PASS" } else { "FAIL" };
            let actual = match c.actual {
                Some(a) => a.to_string(),
                None => "n/a (no samples)".to_string(),
            };
            let op = if c.pass { "<=" } else { ">" };
            out.push_str(&format!(
                "  [{verdict}] {} {}: {actual} {op} budget {}\n",
                self.label, c.metric, c.budget
            ));
        }
        out
    }

    /// Deterministic JSON object (via [`crate::json`]):
    /// `{"label":…,"pass":…,"checks":[{"metric":…,…},…]}`.
    pub fn to_json(&self) -> String {
        let checks = json::arr(self.checks.iter().map(|c| {
            let mut o = Obj::new();
            o = o.str("metric", &c.metric).u64("budget", c.budget);
            o = match c.actual {
                Some(a) => o.u64("actual", a),
                None => o.raw("actual", "null"),
            };
            o.bool("pass", c.pass).build()
        }));
        Obj::new()
            .str("label", &self.label)
            .bool("pass", self.pass())
            .raw("checks", &checks)
            .build()
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    fn hist(values: &[u64]) -> HdrHistogram {
        let mut h = HdrHistogram::with_default_precision();
        for &v in values {
            h.record(v);
        }
        h
    }

    #[test]
    fn only_set_budgets_are_checked() {
        let spec = SloSpec { p99_latency_ns: Some(10_000), ..Default::default() };
        let report = spec.evaluate("rtpm", &hist(&[100, 200, 300]), &hist(&[9]));
        assert_eq!(report.checks.len(), 1);
        assert_eq!(report.checks[0].metric, "latency_p99_ns");
        assert!(report.pass());
        assert_eq!(report.violations(), 0);
    }

    #[test]
    fn violations_fail_the_report() {
        let spec = SloSpec {
            p50_latency_ns: Some(1_000_000),
            max_latency_ns: Some(50),
            ..Default::default()
        };
        let report = spec.evaluate("naive", &hist(&[10, 20, 9_999]), &hist(&[]));
        assert!(!report.pass());
        assert_eq!(report.violations(), 1);
        let rendered = report.render();
        assert!(rendered.contains("[PASS] naive latency_p50_ns"));
        assert!(rendered.contains("[FAIL] naive latency_max_ns: 9999 > budget 50"));
    }

    #[test]
    fn budget_over_empty_histogram_fails() {
        let spec = SloSpec { p99_bytes: Some(4096), ..Default::default() };
        let report = spec.evaluate("ftfm", &hist(&[]), &hist(&[]));
        assert!(!report.pass());
        assert_eq!(report.checks[0].actual, None);
        assert!(report.render().contains("n/a (no samples)"));
    }

    #[test]
    fn empty_spec_passes_vacuously() {
        let spec = SloSpec::default();
        assert!(spec.is_empty());
        let report = spec.evaluate("ftpm", &hist(&[1]), &hist(&[1]));
        assert!(report.checks.is_empty());
        assert!(report.pass());
    }

    #[test]
    fn digits_parse_as_percent_then_decimals() {
        assert_eq!(quantile_from_digits("95"), Some(0.95));
        assert_eq!(quantile_from_digits("5"), Some(0.05));
        assert_eq!(quantile_from_digits("999"), Some(0.999));
        assert_eq!(quantile_from_digits("9999"), Some(0.9999));
        assert_eq!(quantile_from_digits("50"), Some(0.50));
        assert_eq!(quantile_from_digits("0"), None, "q must be positive");
        assert_eq!(quantile_from_digits(""), None);
        assert_eq!(quantile_from_digits("9x"), None);
    }

    #[test]
    fn arbitrary_quantile_budgets_are_checked_in_order() {
        let spec = SloSpec {
            p50_latency_ns: Some(1_000_000),
            latency_quantiles: vec![
                ("95".to_string(), 350),
                ("75".to_string(), 1_000_000),
                ("bogus".to_string(), 1),
            ],
            ..Default::default()
        };
        assert!(!spec.is_empty());
        let report = spec.evaluate("rtpm", &hist(&[100, 200, 300, 400]), &hist(&[]));
        let metrics: Vec<&str> = report.checks.iter().map(|c| c.metric.as_str()).collect();
        // Pinned percentiles first, then generic ones ascending by
        // quantile; unparseable digits are skipped, not failed.
        assert_eq!(metrics, ["latency_p50_ns", "latency_p75_ns", "latency_p95_ns"]);
        assert!(report.checks[1].pass);
        assert!(!report.checks[2].pass, "p95 of [..400] is 400 > 350");
        assert!(report.render().contains("[FAIL] rtpm latency_p95_ns: 400 > budget 350"));
    }

    #[test]
    fn json_is_deterministic_and_shaped() {
        let spec = SloSpec { p99_latency_ns: Some(500), ..Default::default() };
        let report = spec.evaluate("rtfm", &hist(&[400, 600]), &hist(&[]));
        let j = report.to_json();
        assert_eq!(j, report.to_json());
        assert!(j.starts_with("{\"label\":\"rtfm\",\"pass\":false,\"checks\":["));
        assert!(j.contains("\"metric\":\"latency_p99_ns\""));
        assert!(j.contains("\"budget\":500"));
    }
}
