//! Service-level objectives over workload histograms.
//!
//! An [`SloSpec`] is a set of optional budgets — latency percentiles, a
//! hard latency ceiling, and a per-query bytes percentile — evaluated
//! against the [`HdrHistogram`](crate::hdr::HdrHistogram)s a soak run
//! accumulates. Evaluation produces an [`SloReport`]: one
//! [`SloCheck`] per budget actually set, each a plain
//! budget-vs-actual comparison, suitable both for a human table and for
//! gating CI (exit nonzero when [`SloReport::pass`] is `false`).
//!
//! Budgets are inclusive: `actual ≤ budget` passes. An unset budget
//! produces no check, and a set budget over an *empty* histogram fails
//! loudly (an SLO over zero queries is a configuration error, not a
//! pass).

use crate::hdr::HdrHistogram;
use crate::json::{self, Obj};

/// Optional budgets for one variant (or one whole run). All fields are
/// upper bounds; `None` means "no objective for this metric".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SloSpec {
    /// Budget for the median simulated latency, in nanoseconds.
    pub p50_latency_ns: Option<u64>,
    /// Budget for the 99th-percentile simulated latency, in nanoseconds.
    pub p99_latency_ns: Option<u64>,
    /// Budget for the 99.9th-percentile simulated latency, in nanoseconds.
    pub p999_latency_ns: Option<u64>,
    /// Hard ceiling on the slowest observed query, in nanoseconds.
    pub max_latency_ns: Option<u64>,
    /// Budget for 99th-percentile per-query network volume, in bytes.
    pub p99_bytes: Option<u64>,
}

impl SloSpec {
    /// `true` when no budget is set (evaluation yields an empty, passing
    /// report).
    pub fn is_empty(&self) -> bool {
        *self == SloSpec::default()
    }

    /// Evaluates every set budget against the run's latency and bytes
    /// histograms.
    pub fn evaluate(
        &self,
        label: &str,
        latency_ns: &HdrHistogram,
        bytes: &HdrHistogram,
    ) -> SloReport {
        let mut checks = Vec::new();
        let mut push = |metric: &'static str, budget: Option<u64>, actual: Option<u64>| {
            if let Some(budget) = budget {
                checks.push(SloCheck {
                    metric,
                    budget,
                    actual,
                    pass: actual.is_some_and(|a| a <= budget),
                });
            }
        };
        push("latency_p50_ns", self.p50_latency_ns, latency_ns.p50());
        push("latency_p99_ns", self.p99_latency_ns, latency_ns.p99());
        push("latency_p999_ns", self.p999_latency_ns, latency_ns.p999());
        push("latency_max_ns", self.max_latency_ns, latency_ns.max());
        push("bytes_p99", self.p99_bytes, bytes.p99());
        SloReport { label: label.to_string(), checks }
    }
}

/// One budget-vs-actual comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SloCheck {
    /// Which objective this checks, e.g. `"latency_p99_ns"`.
    pub metric: &'static str,
    /// The configured upper bound.
    pub budget: u64,
    /// The observed value (`None` when the histogram was empty).
    pub actual: Option<u64>,
    /// `actual ≤ budget`; `false` when `actual` is `None`.
    pub pass: bool,
}

/// The outcome of evaluating an [`SloSpec`] for one labelled scope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SloReport {
    /// The scope the spec was evaluated for, e.g. a variant name.
    pub label: String,
    /// One entry per budget that was set.
    pub checks: Vec<SloCheck>,
}

impl SloReport {
    /// `true` iff every check passed (vacuously true with no checks).
    pub fn pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// Number of failed checks.
    pub fn violations(&self) -> usize {
        self.checks.iter().filter(|c| !c.pass).count()
    }

    /// Human rendering, one line per check:
    /// `  [PASS] rtpm latency_p99_ns: 1200 ≤ budget 5000`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.checks {
            let verdict = if c.pass { "PASS" } else { "FAIL" };
            let actual = match c.actual {
                Some(a) => a.to_string(),
                None => "n/a (no samples)".to_string(),
            };
            let op = if c.pass { "<=" } else { ">" };
            out.push_str(&format!(
                "  [{verdict}] {} {}: {actual} {op} budget {}\n",
                self.label, c.metric, c.budget
            ));
        }
        out
    }

    /// Deterministic JSON object (via [`crate::json`]):
    /// `{"label":…,"pass":…,"checks":[{"metric":…,…},…]}`.
    pub fn to_json(&self) -> String {
        let checks = json::arr(self.checks.iter().map(|c| {
            let mut o = Obj::new();
            o = o.str("metric", c.metric).u64("budget", c.budget);
            o = match c.actual {
                Some(a) => o.u64("actual", a),
                None => o.raw("actual", "null"),
            };
            o.bool("pass", c.pass).build()
        }));
        Obj::new()
            .str("label", &self.label)
            .bool("pass", self.pass())
            .raw("checks", &checks)
            .build()
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    fn hist(values: &[u64]) -> HdrHistogram {
        let mut h = HdrHistogram::with_default_precision();
        for &v in values {
            h.record(v);
        }
        h
    }

    #[test]
    fn only_set_budgets_are_checked() {
        let spec = SloSpec { p99_latency_ns: Some(10_000), ..Default::default() };
        let report = spec.evaluate("rtpm", &hist(&[100, 200, 300]), &hist(&[9]));
        assert_eq!(report.checks.len(), 1);
        assert_eq!(report.checks[0].metric, "latency_p99_ns");
        assert!(report.pass());
        assert_eq!(report.violations(), 0);
    }

    #[test]
    fn violations_fail_the_report() {
        let spec = SloSpec {
            p50_latency_ns: Some(1_000_000),
            max_latency_ns: Some(50),
            ..Default::default()
        };
        let report = spec.evaluate("naive", &hist(&[10, 20, 9_999]), &hist(&[]));
        assert!(!report.pass());
        assert_eq!(report.violations(), 1);
        let rendered = report.render();
        assert!(rendered.contains("[PASS] naive latency_p50_ns"));
        assert!(rendered.contains("[FAIL] naive latency_max_ns: 9999 > budget 50"));
    }

    #[test]
    fn budget_over_empty_histogram_fails() {
        let spec = SloSpec { p99_bytes: Some(4096), ..Default::default() };
        let report = spec.evaluate("ftfm", &hist(&[]), &hist(&[]));
        assert!(!report.pass());
        assert_eq!(report.checks[0].actual, None);
        assert!(report.render().contains("n/a (no samples)"));
    }

    #[test]
    fn empty_spec_passes_vacuously() {
        let spec = SloSpec::default();
        assert!(spec.is_empty());
        let report = spec.evaluate("ftpm", &hist(&[1]), &hist(&[1]));
        assert!(report.checks.is_empty());
        assert!(report.pass());
    }

    #[test]
    fn json_is_deterministic_and_shaped() {
        let spec = SloSpec { p99_latency_ns: Some(500), ..Default::default() };
        let report = spec.evaluate("rtfm", &hist(&[400, 600]), &hist(&[]));
        let j = report.to_json();
        assert_eq!(j, report.to_json());
        assert!(j.starts_with("{\"label\":\"rtfm\",\"pass\":false,\"checks\":["));
        assert!(j.contains("\"metric\":\"latency_p99_ns\""));
        assert!(j.contains("\"budget\":500"));
    }
}
