//! An embedded, allocation-bounded time-series store.
//!
//! Every observability layer before this one was post-hoc: the
//! [`Sampler`](crate::expose::Sampler) overwrites a single point-in-time
//! exposition, so "what was this network doing 30 seconds ago?" had no
//! answer. A [`Tsdb`] retains history under a hard memory bound: each
//! series is a ring of [`Bucket`]s, and when a ring would exceed its
//! capacity the whole series is *downsampled in place* — adjacent
//! buckets merge pairwise and the bucket span (ticks covered per bucket)
//! doubles. Merging keeps `min`, `max`, the chronologically `last`
//! value, and the sample `count`, so spikes survive arbitrarily many
//! halvings and rates can still be recovered from counts.
//!
//! Everything here is deterministic: the same `(tick, series, value)`
//! feed always produces byte-identical [`Tsdb::to_json`] output, because
//! ticks are logical (query index, flush index, or `SimTime`) — never
//! wall clocks — and series iterate in sorted order.
//!
//! History files are append-only JSONL, one [`history_line`] per sample;
//! [`parse_history`] reads them back for replay (`skypeer-cli top
//! --replay`).

use crate::json::{self, Obj};
use std::collections::BTreeMap;

/// Default per-series ring capacity (buckets, not samples).
pub const DEFAULT_SERIES_CAP: usize = 64;

/// One downsampled cell of a series: all samples whose tick falls in
/// `[tick, tick + span)` for the ring's current span.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bucket {
    /// Span-aligned start tick of the interval this bucket covers.
    pub tick: u64,
    /// Smallest sample value merged into the bucket.
    pub min: f64,
    /// Largest sample value merged into the bucket.
    pub max: f64,
    /// Chronologically last sample value merged into the bucket.
    pub last: f64,
    /// Number of raw samples merged into the bucket.
    pub count: u64,
}

/// A single bounded series: at most `cap` buckets; the covered tick
/// range grows without bound as the resolution (span) coarsens.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    cap: usize,
    span: u64,
    buckets: Vec<Bucket>,
}

impl TimeSeries {
    /// An empty series holding at most `cap` buckets (min 2).
    pub fn new(cap: usize) -> Self {
        TimeSeries { cap: cap.max(2), span: 1, buckets: Vec::new() }
    }

    /// Current ticks-per-bucket resolution (1 until the first wrap,
    /// doubling on each downsample).
    pub fn span(&self) -> u64 {
        self.span
    }

    /// The retained buckets, oldest first.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Total raw samples ever recorded (survives downsampling).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.count).sum()
    }

    /// The most recent sample value, if any.
    pub fn last(&self) -> Option<f64> {
        self.buckets.last().map(|b| b.last)
    }

    /// Min/max over all retained buckets, if any samples exist.
    pub fn range(&self) -> Option<(f64, f64)> {
        let mut it = self.buckets.iter();
        let first = it.next()?;
        let mut lo = first.min;
        let mut hi = first.max;
        for b in it {
            lo = lo.min(b.min);
            hi = hi.max(b.max);
        }
        Some((lo, hi))
    }

    /// Record one sample. Ticks are expected non-decreasing (a logical
    /// clock); an out-of-order tick merges into the newest bucket rather
    /// than reordering history, keeping ingestion O(1).
    pub fn record(&mut self, tick: u64, value: f64) {
        let base = tick - tick % self.span;
        match self.buckets.last_mut() {
            Some(b) if base <= b.tick => {
                b.min = b.min.min(value);
                b.max = b.max.max(value);
                b.last = value;
                b.count += 1;
            }
            _ => {
                self.buckets.push(Bucket {
                    tick: base,
                    min: value,
                    max: value,
                    last: value,
                    count: 1,
                });
                if self.buckets.len() > self.cap {
                    self.downsample();
                }
            }
        }
    }

    /// Double the span and merge buckets sharing the new alignment.
    /// Deterministic: depends only on the retained buckets and span.
    fn downsample(&mut self) {
        self.span *= 2;
        let old = std::mem::take(&mut self.buckets);
        for b in old {
            let base = b.tick - b.tick % self.span;
            match self.buckets.last_mut() {
                Some(m) if m.tick == base => {
                    m.min = m.min.min(b.min);
                    m.max = m.max.max(b.max);
                    m.last = b.last;
                    m.count += b.count;
                }
                _ => self.buckets.push(Bucket { tick: base, ..b }),
            }
        }
    }
}

/// A bounded multi-series store keyed by series name.
#[derive(Clone, Debug)]
pub struct Tsdb {
    cap: usize,
    series: BTreeMap<String, TimeSeries>,
}

impl Default for Tsdb {
    fn default() -> Self {
        Tsdb::new(DEFAULT_SERIES_CAP)
    }
}

impl Tsdb {
    /// An empty store whose series each hold at most `cap` buckets.
    pub fn new(cap: usize) -> Self {
        Tsdb { cap, series: BTreeMap::new() }
    }

    /// Record one sample into `series` (created on first use).
    pub fn record(&mut self, series: &str, tick: u64, value: f64) {
        self.series
            .entry(series.to_string())
            .or_insert_with(|| TimeSeries::new(self.cap))
            .record(tick, value);
    }

    /// Look up one series by name.
    pub fn get(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// All series in sorted name order.
    pub fn series(&self) -> impl Iterator<Item = (&str, &TimeSeries)> {
        self.series.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether the store holds no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Replay a parsed history feed (see [`parse_history`]) into the
    /// store, in file order.
    pub fn ingest(&mut self, samples: &[HistorySample]) {
        for s in samples {
            self.record(&s.series, s.tick, s.value);
        }
    }

    /// Byte-deterministic JSON export: series in sorted name order, each
    /// with its span and bucket array. Same feed ⇒ same bytes.
    pub fn to_json(&self) -> String {
        let mut series = Vec::new();
        for (name, ts) in &self.series {
            let buckets = ts
                .buckets
                .iter()
                .map(|b| {
                    Obj::new()
                        .u64("tick", b.tick)
                        .f64("min", b.min)
                        .f64("max", b.max)
                        .f64("last", b.last)
                        .u64("count", b.count)
                        .build()
                })
                .collect::<Vec<_>>();
            series.push(
                Obj::new()
                    .str("name", name)
                    .u64("span", ts.span)
                    .raw("buckets", &json::arr(buckets))
                    .build(),
            );
        }
        Obj::new().raw("series", &json::arr(series)).build()
    }
}

/// One raw history sample as read back from a history JSONL file.
#[derive(Clone, Debug, PartialEq)]
pub struct HistorySample {
    /// Logical tick the sample was taken at.
    pub tick: u64,
    /// Series name.
    pub series: String,
    /// Sample value.
    pub value: f64,
}

/// Format one history JSONL line (no trailing newline).
pub fn history_line(tick: u64, series: &str, value: f64) -> String {
    Obj::new().u64("tick", tick).str("series", series).f64("value", value).build()
}

/// Parse a history JSONL file produced by [`history_line`] writers.
/// Blank lines are skipped; any malformed line is a named error carrying
/// its 1-based line number.
pub fn parse_history(text: &str) -> Result<Vec<HistorySample>, String> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        use crate::export::Tok;
        let kv = crate::export::scan_flat_object(line)
            .map_err(|e| format!("history line {lineno}: {e}"))?;
        let find = |key: &str| kv.iter().find(|(k, _)| k == key).map(|(_, t)| t);
        let tick = match find("tick") {
            Some(Tok::Num(raw)) => raw.parse::<u64>().map_err(|_| {
                format!("history line {lineno}: 'tick' must be a non-negative integer")
            })?,
            _ => return Err(format!("history line {lineno}: missing numeric 'tick'")),
        };
        let series = match find("series") {
            Some(Tok::Str(s)) => s.clone(),
            _ => return Err(format!("history line {lineno}: missing string 'series'")),
        };
        let value = match find("value") {
            Some(Tok::Num(raw)) => raw
                .parse::<f64>()
                .map_err(|_| format!("history line {lineno}: bad 'value' {raw:?}"))?,
            // Non-finite floats encode as strings (see crate::json::float).
            Some(Tok::Str(s)) => match s.as_str() {
                "inf" => f64::INFINITY,
                "-inf" => f64::NEG_INFINITY,
                "nan" => f64::NAN,
                _ => return Err(format!("history line {lineno}: missing numeric 'value'")),
            },
            _ => return Err(format!("history line {lineno}: missing numeric 'value'")),
        };
        out.push(HistorySample { tick, series, value });
    }
    Ok(out)
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn records_merge_within_span_and_push_across() {
        let mut ts = TimeSeries::new(8);
        ts.record(0, 5.0);
        ts.record(0, 1.0);
        ts.record(0, 3.0);
        ts.record(1, 7.0);
        assert_eq!(ts.buckets().len(), 2);
        let b0 = ts.buckets()[0];
        assert_eq!((b0.min, b0.max, b0.last, b0.count), (1.0, 5.0, 3.0, 3));
        assert_eq!(ts.last(), Some(7.0));
        assert_eq!(ts.count(), 4);
    }

    #[test]
    fn downsampling_preserves_min_max_last_and_count() {
        let mut ts = TimeSeries::new(4);
        // 9 ticks through a 4-bucket ring forces two downsample passes.
        let values = [1.0, 9.0, 2.0, 8.0, 3.0, 7.0, 4.0, 6.0, 5.0];
        for (tick, v) in values.iter().enumerate() {
            ts.record(tick as u64, *v);
        }
        assert!(ts.buckets().len() <= 4, "ring stays bounded");
        assert_eq!(ts.span(), 4);
        assert_eq!(ts.count(), values.len() as u64);
        assert_eq!(ts.range(), Some((1.0, 9.0)), "spike survives downsampling");
        assert_eq!(ts.last(), Some(5.0));
        // Buckets are aligned, ordered, and non-overlapping.
        for w in ts.buckets().windows(2) {
            assert!(w[0].tick < w[1].tick);
        }
        for b in ts.buckets() {
            assert_eq!(b.tick % ts.span(), 0);
        }
    }

    #[test]
    fn out_of_order_tick_merges_into_newest_bucket() {
        let mut ts = TimeSeries::new(8);
        ts.record(5, 1.0);
        ts.record(3, 2.0);
        assert_eq!(ts.buckets().len(), 1);
        assert_eq!(ts.buckets()[0].count, 2);
        assert_eq!(ts.last(), Some(2.0));
    }

    #[test]
    fn tsdb_json_is_deterministic_and_sorted() {
        let feed = |db: &mut Tsdb| {
            db.record("z_latency", 0, 10.0);
            db.record("a_bytes", 0, 4.0);
            db.record("z_latency", 1, 30.0);
            db.record("a_bytes", 1, 2.5);
        };
        let mut a = Tsdb::new(16);
        let mut b = Tsdb::new(16);
        feed(&mut a);
        feed(&mut b);
        assert_eq!(a.to_json(), b.to_json());
        let j = a.to_json();
        assert!(j.find("\"a_bytes\"").unwrap() < j.find("\"z_latency\"").unwrap());
        assert!(j.contains("\"last\":2.5"));
    }

    #[test]
    fn history_lines_round_trip() {
        let lines = [
            history_line(0, "latency_ns", 1234.0),
            history_line(1, "queue \"depth\"", 2.5),
            history_line(7, "bytes", 0.0),
        ];
        let text = lines.join("\n");
        let parsed = parse_history(&text).expect("parses");
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[1].series, "queue \"depth\"");
        assert_eq!(parsed[1].value, 2.5);
        assert_eq!(parsed[2].tick, 7);
        // Re-encoding every sample reproduces the original bytes.
        let re: Vec<String> =
            parsed.iter().map(|s| history_line(s.tick, &s.series, s.value)).collect();
        assert_eq!(re.join("\n"), text);
    }

    #[test]
    fn history_parse_errors_are_named() {
        let err = parse_history("{\"tick\":0,\"series\":\"x\"").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = parse_history("{\"series\":\"x\",\"value\":1}").unwrap_err();
        assert!(err.contains("tick"), "{err}");
        let err = parse_history("{\"tick\":1.5,\"series\":\"x\",\"value\":1}").unwrap_err();
        assert!(err.contains("non-negative integer"), "{err}");
        let err = parse_history("{\"tick\":1,\"series\":\"x\",\"value\":\"fast\"}").unwrap_err();
        assert!(err.contains("value"), "{err}");
    }

    #[test]
    fn history_parse_errors_use_one_based_line_numbers() {
        // Two valid samples then a malformed third line: the error names
        // line 3 (1-based), not index 2 and not the first line.
        let text =
            format!("{}\n{}\nnot json", history_line(0, "q", 1.0), history_line(1, "q", 2.0));
        let err = parse_history(&text).unwrap_err();
        assert!(err.contains("line 3"), "{err}");
        assert!(!err.contains("line 2"), "{err}");
        // Blank lines are skipped but still advance the numbering.
        let text = format!("{}\n\nnot json", history_line(0, "q", 1.0));
        let err = parse_history(&text).unwrap_err();
        assert!(err.contains("line 3"), "{err}");
    }

    #[test]
    fn ingest_replays_a_feed() {
        let samples = vec![
            HistorySample { tick: 0, series: "q".into(), value: 1.0 },
            HistorySample { tick: 1, series: "q".into(), value: 9.0 },
        ];
        let mut db = Tsdb::default();
        db.ingest(&samples);
        assert_eq!(db.get("q").unwrap().range(), Some((1.0, 9.0)));
    }
}
