//! The [`Tracer`] sink trait and the in-memory implementation.

use crate::event::TraceEvent;
use std::sync::Mutex;

/// A sink for trace events.
///
/// Runtimes hold an `Option<Arc<dyn Tracer>>`; with `None` every emission
/// site is one branch, so untraced runs behave bit-for-bit like the seed
/// simulator. Implementations must be `Send + Sync` because the live
/// runtime records from every node thread concurrently.
///
/// DES emission order is deterministic; live emission order is whatever
/// the thread interleaving produced (sort or group by ids when
/// determinism matters).
pub trait Tracer: Send + Sync {
    /// Records one event. Must not block for long — it runs inside the
    /// simulation loop / node threads.
    fn record(&self, ev: TraceEvent);
}

/// Collects events into memory, in `record` order.
#[derive(Default)]
pub struct MemTracer {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemTracer {
    /// An empty tracer.
    pub fn new() -> Self {
        MemTracer::default()
    }

    /// Takes the recorded events out, leaving the tracer empty.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events.lock().expect("tracer poisoned"))
    }

    /// A copy of the events recorded so far.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("tracer poisoned").clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("tracer poisoned").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Tracer for MemTracer {
    fn record(&self, ev: TraceEvent) {
        self.events.lock().expect("tracer poisoned").push(ev);
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::event::SpanCause;

    #[test]
    fn mem_tracer_keeps_order_and_drains() {
        let t = MemTracer::new();
        assert!(t.is_empty());
        for span in 0..3 {
            t.record(TraceEvent::Service {
                span,
                node: span as usize,
                begin: 0,
                end: 1,
                cause: SpanCause::Start,
                dominance_tests: 0,
                points_scanned: 0,
                finished: false,
            });
        }
        assert_eq!(t.len(), 3);
        let evs = t.take();
        assert_eq!(evs.len(), 3);
        assert!(t.is_empty());
        match evs[2] {
            TraceEvent::Service { span, .. } => assert_eq!(span, 2),
            _ => panic!("wrong event"),
        }
    }
}
