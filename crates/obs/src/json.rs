//! Minimal hand-rolled JSON building.
//!
//! The exporters must be byte-deterministic (goldens are compared with
//! `==`), so we control the formatting of every value ourselves instead of
//! pulling in a serializer: keys appear in insertion order, floats render
//! via Rust's shortest-roundtrip `{:?}`, and non-finite floats (legal
//! thresholds: `∞`) become JSON strings.

/// Escapes a string for a JSON string literal (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a float as a JSON value: shortest-roundtrip decimal for finite
/// values, `"inf"` / `"-inf"` / `"nan"` strings otherwise (bare `inf` is
/// not JSON).
pub fn float(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else if v.is_nan() {
        "\"nan\"".to_string()
    } else if v > 0.0 {
        "\"inf\"".to_string()
    } else {
        "\"-inf\"".to_string()
    }
}

/// Renders a JSON array from pre-rendered element values.
pub fn arr<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

/// An object under construction: `{"k": v, ...}` with keys in push order.
pub struct Obj {
    buf: String,
    first: bool,
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Self {
        Obj { buf: String::from("{"), first: true }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
    }

    /// Adds a pre-rendered JSON value.
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Adds a string value.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer value.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a float value (see [`float`] for the encoding).
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        self.buf.push_str(&float(v));
        self
    }

    /// Adds a boolean value.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Finishes the object.
    pub fn build(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for Obj {
    fn default() -> Self {
        Obj::new()
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn builds_ordered_objects() {
        let s = Obj::new().str("type", "send").u64("bytes", 7).bool("ok", true).build();
        assert_eq!(s, r#"{"type":"send","bytes":7,"ok":true}"#);
    }

    #[test]
    fn floats_round_trip_and_infinities_are_strings() {
        assert_eq!(float(1.5), "1.5");
        assert_eq!(float(2.0), "2.0");
        assert_eq!(float(f64::INFINITY), "\"inf\"");
        assert_eq!(float(f64::NEG_INFINITY), "\"-inf\"");
        assert_eq!(float(f64::NAN), "\"nan\"");
    }

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
