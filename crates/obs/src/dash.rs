//! Plain-text terminal dashboard rendering over a [`Tsdb`] and its
//! incidents.
//!
//! [`render_frame`] produces one complete frame: a header, an incident
//! banner, a per-series table with Unicode sparklines, and — when the
//! store carries `SP<i>/<metric>` series — a per-node table. The frame
//! is plain text with no ANSI escapes and no wall-clock content, so a
//! frame rendered from a replayed history file is byte-identical across
//! runs and machines (the `top --replay` golden depends on this).
//! Interactive redraw (clear screen, cursor home) is the *caller's*
//! concern: the live `top` loop prefixes frames with escapes only when
//! stderr is a terminal.

use crate::anomaly::Incident;
use crate::tsdb::{TimeSeries, Tsdb};
use std::fmt::Write as _;

/// Sparkline width (buckets shown) in rendered frames.
pub const SPARK_WIDTH: usize = 32;

const SPARK_LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders the newest `width` buckets of a series as a Unicode
/// block-character sparkline. Each cell plots the bucket **max** scaled
/// against the whole series' min/max, so downsampled spikes stay
/// visible. A flat series renders as the lowest block.
pub fn sparkline(ts: &TimeSeries, width: usize) -> String {
    let buckets = ts.buckets();
    let Some((lo, hi)) = ts.range() else {
        return String::new();
    };
    let start = buckets.len().saturating_sub(width);
    let mut out = String::new();
    for b in &buckets[start..] {
        let idx = if hi > lo {
            // Scale into 0..=7; the top of the range maps to the full block.
            (((b.max - lo) / (hi - lo)) * 7.0).round() as usize
        } else {
            0
        };
        out.push(SPARK_LEVELS[idx.min(7)]);
    }
    out
}

/// Compact deterministic value formatting for table cells: integers
/// render exactly, large magnitudes switch to scientific notation, and
/// everything else gets three decimals.
pub fn fmt_val(v: f64) -> String {
    if !v.is_finite() {
        return if v.is_nan() {
            "nan".to_string()
        } else if v > 0.0 {
            "inf".to_string()
        } else {
            "-inf".to_string()
        };
    }
    let a = v.abs();
    if a >= 1e9 {
        format!("{v:.3e}")
    } else if v.fract() == 0.0 {
        format!("{v}")
    } else {
        format!("{v:.3}")
    }
}

/// Renders one complete dashboard frame. See the module docs for the
/// layout and determinism contract.
pub fn render_frame(db: &Tsdb, incidents: &[Incident], title: &str) -> String {
    let mut out = String::new();
    let samples: u64 = db.series().map(|(_, ts)| ts.count()).sum();
    let active = incidents.iter().filter(|i| i.end_tick.is_none()).count();
    let _ = writeln!(
        out,
        "skypeer top — {title} | series {} | samples {samples} | incidents {} ({active} active)",
        db.len(),
        incidents.len(),
    );

    if incidents.is_empty() {
        let _ = writeln!(out, "status: OK — no incidents");
    } else {
        for inc in incidents {
            let _ = writeln!(out, "!! INCIDENT {}", inc.render());
        }
    }
    let _ = writeln!(out);

    if db.is_empty() {
        let _ = writeln!(out, "(no series)");
        return out;
    }

    let name_w = db.series().map(|(n, _)| n.len()).max().unwrap_or(6).max(6);
    let _ =
        writeln!(out, "{:<name_w$}  {:>12}  {:>12}  {:>12}  trend", "series", "last", "min", "max");
    for (name, ts) in db.series() {
        let (lo, hi) = ts.range().unwrap_or((0.0, 0.0));
        let last = ts.last().unwrap_or(0.0);
        let _ = writeln!(
            out,
            "{name:<name_w$}  {:>12}  {:>12}  {:>12}  {}",
            fmt_val(last),
            fmt_val(lo),
            fmt_val(hi),
            sparkline(ts, SPARK_WIDTH),
        );
    }

    let node_table = per_node_table(db);
    if !node_table.is_empty() {
        let _ = writeln!(out);
        out.push_str(&node_table);
    }
    out
}

/// Builds the per-node table from series named `SP<i>/<metric>`.
/// Columns are the sorted metric names, rows the numerically sorted node
/// ids, cells the latest value. Empty string when no such series exist.
fn per_node_table(db: &Tsdb) -> String {
    let mut metrics: Vec<String> = Vec::new();
    let mut rows: Vec<(u64, Vec<Option<f64>>)> = Vec::new();
    // First pass: collect metric columns (sorted because the store is).
    for (name, _) in db.series() {
        if let Some((_node, metric)) = split_node_series(name) {
            if !metrics.iter().any(|m| m == metric) {
                metrics.push(metric.to_string());
            }
        }
    }
    if metrics.is_empty() {
        return String::new();
    }
    for (name, ts) in db.series() {
        if let Some((node, metric)) = split_node_series(name) {
            let row = match rows.iter_mut().find(|(n, _)| *n == node) {
                Some(r) => r,
                None => {
                    rows.push((node, vec![None; metrics.len()]));
                    rows.last_mut().expect("just pushed")
                }
            };
            let col = metrics.iter().position(|m| m == metric).expect("collected");
            row.1[col] = ts.last();
        }
    }
    rows.sort_by_key(|(n, _)| *n);

    let mut out = String::new();
    let _ = write!(out, "{:>6}", "node");
    for m in &metrics {
        let _ = write!(out, "  {:>14}", m);
    }
    out.push('\n');
    for (node, cells) in rows {
        let _ = write!(out, "{:>6}", format!("SP{node}"));
        for cell in cells {
            match cell {
                Some(v) => {
                    let _ = write!(out, "  {:>14}", fmt_val(v));
                }
                None => {
                    let _ = write!(out, "  {:>14}", "-");
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Splits a `SP<digits>/<metric>` series name, if it has that shape.
fn split_node_series(name: &str) -> Option<(u64, &str)> {
    let rest = name.strip_prefix("SP")?;
    let (digits, metric) = rest.split_once('/')?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    Some((digits.parse().ok()?, metric))
}

#[cfg(test)]
mod unit {
    use super::*;

    fn db() -> Tsdb {
        let mut db = Tsdb::new(64);
        for i in 0..40u64 {
            db.record("latency_ns", i, 1000.0 + (i % 5) as f64 * 10.0);
            db.record("SP0/bytes_out", i, 100.0 * i as f64);
            db.record("SP1/bytes_out", i, 50.0 * i as f64);
            db.record("SP0/queue", i, 2.0);
        }
        db.record("latency_ns", 40, 9000.0);
        db
    }

    #[test]
    fn sparkline_shows_spike_at_the_end() {
        let db = db();
        let s = sparkline(db.get("latency_ns").unwrap(), SPARK_WIDTH);
        assert!(s.chars().count() <= SPARK_WIDTH);
        assert!(s.ends_with('█'), "{s}");
        assert!(s.starts_with('▁'), "{s}");
    }

    #[test]
    fn flat_series_renders_lowest_block() {
        let mut db = Tsdb::new(8);
        for i in 0..5u64 {
            db.record("flat", i, 3.0);
        }
        let s = sparkline(db.get("flat").unwrap(), 8);
        assert!(s.chars().all(|c| c == '▁'), "{s}");
    }

    #[test]
    fn frame_is_deterministic_and_structured() {
        let incidents = vec![Incident {
            series: "latency_ns".into(),
            onset_tick: 40,
            peak_tick: 40,
            peak_value: 9000.0,
            peak_z: 12.0,
            baseline_mean: 1020.0,
            end_tick: None,
        }];
        let a = render_frame(&db(), &incidents, "replay");
        let b = render_frame(&db(), &incidents, "replay");
        assert_eq!(a, b);
        assert!(a.contains("!! INCIDENT latency_ns"));
        assert!(a.contains("incidents 1 (1 active)"));
        assert!(a.contains("SP0"));
        assert!(a.contains("SP1"));
        assert!(a.contains("bytes_out"));
        assert!(!a.contains('\x1b'), "frames carry no ANSI escapes");
    }

    #[test]
    fn ok_banner_without_incidents() {
        let frame = render_frame(&db(), &[], "t");
        assert!(frame.contains("status: OK — no incidents"));
    }

    #[test]
    fn node_table_handles_missing_cells() {
        let mut db = Tsdb::new(8);
        db.record("SP0/a", 0, 1.0);
        db.record("SP1/b", 0, 2.0);
        let frame = render_frame(&db, &[], "t");
        assert!(frame.contains('-'), "missing cell renders as dash:\n{frame}");
    }

    #[test]
    fn fmt_val_shapes() {
        assert_eq!(fmt_val(0.0), "0");
        assert_eq!(fmt_val(42.0), "42");
        assert_eq!(fmt_val(2.5), "2.500");
        assert_eq!(fmt_val(3.2e12), "3.200e12");
        assert_eq!(fmt_val(f64::INFINITY), "inf");
    }
}
