//! Scoped calltree CPU profiler.
//!
//! The deterministic gate metrics (`sim_time_ns`, `total_bytes`, …)
//! observe the *simulated* system; this module observes the *process*
//! running it. A [`scope!`] placed in a hot path records, per
//! (parent-path, scope) calltree node, the call count, total wall
//! nanoseconds, and (behind the `prof-alloc` feature) allocated bytes —
//! cheap enough to leave compiled in, because an inactive session costs
//! exactly one relaxed atomic load per scope entry.
//!
//! # Sessions
//!
//! Profiling is a global session: [`start`] arms collection (bumping an
//! epoch so leftovers from earlier sessions are discarded), [`stop`]
//! disarms it and merges every thread's calltree into one [`Profile`].
//! Threads merge their data when they exit; a long-lived worker can
//! contribute early via [`flush_thread`]. The thread that calls [`stop`]
//! is flushed automatically.
//!
//! # Clocks
//!
//! [`ClockMode::Monotonic`] reads a monotonic wall clock — the mode for
//! real measurements. [`ClockMode::Logical`] replaces the clock with a
//! global counter that advances by one on every read (one read per scope
//! entry, one per exit), so a deterministic single-threaded run produces
//! byte-identical [`Profile::to_json`] / [`Profile::folded`] output on
//! every host — the mode goldens pin.
//!
//! # Exports
//!
//! * [`Profile::render_table`] — human ranked table (self-time % desc);
//! * [`Profile::to_json`] — byte-deterministic JSON via [`crate::json`];
//! * [`Profile::folded`] — folded-stack lines (`root;child;leaf 123`,
//!   weight = self-ns) consumable by `flamegraph.pl` / inferno;
//! * [`Profile::prometheus`] — `skypeer_prof_*` counter exposition.
//!
//! With the `prof` cargo feature disabled (it is on by default) the
//! [`scope!`] macro expands to nothing, so instrumented crates compile
//! to exactly their un-instrumented form.

use crate::json::{self, Obj};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Opens a profiling scope for the rest of the enclosing block.
///
/// ```ignore
/// fn hot_loop(points: &[f64]) {
///     skypeer_obs::scope!("skyline::hot_loop");
///     // ... measured until the end of this block ...
/// }
/// ```
///
/// The label must be a `&'static str`; use `module::function`-style
/// names (`;` and whitespace are replaced with `_` in exports, where
/// they would corrupt the folded-stack format). When no session is
/// active the expansion costs one relaxed atomic load. With the `prof`
/// feature disabled it expands to nothing at all.
#[cfg(feature = "prof")]
#[macro_export]
macro_rules! scope {
    ($label:expr) => {
        let _skypeer_prof_scope = $crate::prof::enter($label);
    };
}

/// Disabled-profiling expansion: nothing at all (`prof` feature off).
#[cfg(not(feature = "prof"))]
#[macro_export]
macro_rules! scope {
    ($label:expr) => {};
}

pub use crate::scope;

/// Which clock a profiling session reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClockMode {
    /// Monotonic wall clock (nanoseconds since process start) — real
    /// measurements, host-dependent output.
    Monotonic,
    /// A global counter that advances by one per clock read — fully
    /// deterministic output for a deterministic single-threaded run
    /// (every scope's total becomes `2 × descendant scopes + 1`).
    Logical,
}

impl ClockMode {
    /// Lowercase name used in JSON and the table header.
    pub fn as_str(self) -> &'static str {
        match self {
            ClockMode::Monotonic => "monotonic",
            ClockMode::Logical => "logical",
        }
    }
}

// Session state. ACTIVE is the only word the hot path reads; the rest
// changes only in start()/stop().
static ACTIVE: AtomicBool = AtomicBool::new(false);
static LOGICAL: AtomicBool = AtomicBool::new(false);
/// Session counter; thread-local data tagged with an older epoch is
/// stale and discarded instead of merged.
static EPOCH: AtomicU64 = AtomicU64::new(0);
/// The logical clock. Reset to 0 by [`start`] so logical-mode output is
/// byte-identical across processes.
static TICKS: AtomicU64 = AtomicU64::new(0);
/// Finished per-thread trees awaiting the merge in [`stop`].
static SINK: Mutex<Vec<RawTree>> = Mutex::new(Vec::new());

fn process_start() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    if LOGICAL.load(Ordering::Relaxed) {
        TICKS.fetch_add(1, Ordering::Relaxed)
    } else {
        process_start().elapsed().as_nanos() as u64
    }
}

#[cfg(feature = "prof-alloc")]
fn thread_alloc_bytes() -> u64 {
    alloc::thread_alloc_bytes()
}

#[cfg(not(feature = "prof-alloc"))]
fn thread_alloc_bytes() -> u64 {
    0
}

/// One node of a thread-local calltree under construction.
struct RawNode {
    label: u32,
    parent: u32,
    children: Vec<u32>,
    calls: u64,
    total_ns: u64,
    alloc_bytes: u64,
}

/// A finished thread-local tree, parked in [`SINK`] until [`stop`].
struct RawTree {
    epoch: u64,
    labels: Vec<&'static str>,
    nodes: Vec<RawNode>,
}

struct Frame {
    node: u32,
    start_ns: u64,
    start_alloc: u64,
}

struct Collector {
    epoch: u64,
    labels: Vec<&'static str>,
    nodes: Vec<RawNode>,
    stack: Vec<Frame>,
}

impl Collector {
    fn new() -> Self {
        let mut c =
            Collector { epoch: 0, labels: Vec::new(), nodes: Vec::new(), stack: Vec::new() };
        c.reset(0);
        c
    }

    /// Re-initializes to an empty tree tagged with `epoch` (node 0 is
    /// the synthetic root).
    fn reset(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.labels.clear();
        self.labels.push("(root)");
        self.nodes.clear();
        self.nodes.push(RawNode {
            label: 0,
            parent: 0,
            children: Vec::new(),
            calls: 0,
            total_ns: 0,
            alloc_bytes: 0,
        });
        self.stack.clear();
    }

    fn has_data(&self) -> bool {
        self.nodes.len() > 1
    }

    /// Moves the finished tree into [`SINK`] and starts a fresh one with
    /// the same epoch. No-op mid-scope (open frames index into `nodes`).
    fn flush(&mut self) {
        if !self.stack.is_empty() || !self.has_data() {
            return;
        }
        let raw = RawTree {
            epoch: self.epoch,
            labels: std::mem::take(&mut self.labels),
            nodes: std::mem::take(&mut self.nodes),
        };
        let epoch = self.epoch;
        self.reset(epoch);
        if let Ok(mut sink) = SINK.lock() {
            sink.push(raw);
        }
    }

    fn intern(&mut self, label: &'static str) -> u32 {
        // Linear scan: a process has a handful of distinct scope labels,
        // and pointer equality catches the common literal re-entry.
        match self.labels.iter().position(|&l| std::ptr::eq(l, label) || l == label) {
            Some(i) => i as u32,
            None => {
                self.labels.push(label);
                (self.labels.len() - 1) as u32
            }
        }
    }

    fn enter(&mut self, label: &'static str) {
        let epoch = EPOCH.load(Ordering::Acquire);
        if self.epoch != epoch {
            self.reset(epoch);
        }
        let label = self.intern(label);
        let parent = self.stack.last().map_or(0, |f| f.node);
        let node = match self.nodes[parent as usize]
            .children
            .iter()
            .copied()
            .find(|&c| self.nodes[c as usize].label == label)
        {
            Some(c) => c,
            None => {
                let id = self.nodes.len() as u32;
                self.nodes.push(RawNode {
                    label,
                    parent,
                    children: Vec::new(),
                    calls: 0,
                    total_ns: 0,
                    alloc_bytes: 0,
                });
                self.nodes[parent as usize].children.push(id);
                id
            }
        };
        self.nodes[node as usize].calls += 1;
        self.stack.push(Frame { node, start_ns: now_ns(), start_alloc: thread_alloc_bytes() });
    }

    fn exit(&mut self) {
        let Some(frame) = self.stack.pop() else { return };
        if self.epoch != EPOCH.load(Ordering::Acquire) {
            // The session restarted while this scope was open; its
            // frames reference a discarded tree.
            self.stack.clear();
            return;
        }
        let n = &mut self.nodes[frame.node as usize];
        n.total_ns += now_ns().saturating_sub(frame.start_ns);
        n.alloc_bytes += thread_alloc_bytes().saturating_sub(frame.start_alloc);
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        // Thread exit: park whatever was collected (open frames simply
        // stop contributing) so stop() on another thread can merge it.
        if self.has_data() {
            self.stack.clear();
            self.flush();
        }
    }
}

thread_local! {
    static COLLECTOR: RefCell<Collector> = RefCell::new(Collector::new());
}

/// RAII guard returned by [`enter`]; closes the scope on drop.
#[must_use = "the scope closes when the guard drops; bind it for the region you want measured"]
pub struct ScopeGuard {
    armed: bool,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if self.armed {
            // A guard outliving stop() must still pop its frame so the
            // thread's stack stays balanced; try_with covers TLS
            // teardown, where the collector is already gone.
            let _ = COLLECTOR.try_with(|c| c.borrow_mut().exit());
        }
    }
}

/// Opens a scope by hand (what [`scope!`] expands to). One relaxed
/// atomic load when no session is active.
#[inline]
pub fn enter(label: &'static str) -> ScopeGuard {
    if !ACTIVE.load(Ordering::Relaxed) {
        return ScopeGuard { armed: false };
    }
    let armed = COLLECTOR
        .try_with(|c| match c.try_borrow_mut() {
            Ok(mut c) => {
                c.enter(label);
                true
            }
            // Re-entrancy (an allocator hook profiling inside enter)
            // would double-borrow; drop the sample instead of panicking.
            Err(_) => false,
        })
        .unwrap_or(false);
    ScopeGuard { armed }
}

/// Whether a profiling session is currently collecting.
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Parks the calling thread's finished tree for the next [`stop`]
/// merge. Long-lived worker threads that outlive the session should
/// call this after their work; threads that exit flush automatically.
/// No-op while a scope is still open on this thread.
pub fn flush_thread() {
    let _ = COLLECTOR.try_with(|c| c.borrow_mut().flush());
}

/// Starts a profiling session, discarding anything an earlier session
/// left behind. The logical clock restarts at zero so
/// [`ClockMode::Logical`] output is byte-identical across processes.
pub fn start(mode: ClockMode) {
    if let Ok(mut sink) = SINK.lock() {
        sink.clear();
    }
    EPOCH.fetch_add(1, Ordering::SeqCst);
    TICKS.store(0, Ordering::SeqCst);
    LOGICAL.store(matches!(mode, ClockMode::Logical), Ordering::SeqCst);
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Stops the session and merges every flushed thread tree (plus the
/// calling thread's) into one [`Profile`]. Scopes still open on other
/// threads stop contributing; their threads' data joins a later
/// session's merge only if the epochs match (they will not).
pub fn stop() -> Profile {
    let mode =
        if LOGICAL.load(Ordering::SeqCst) { ClockMode::Logical } else { ClockMode::Monotonic };
    ACTIVE.store(false, Ordering::SeqCst);
    flush_thread();
    let epoch = EPOCH.load(Ordering::SeqCst);
    let raws: Vec<RawTree> = match SINK.lock() {
        Ok(mut sink) => sink.drain(..).filter(|r| r.epoch == epoch).collect(),
        Err(_) => Vec::new(),
    };
    Profile { mode, tree: merge(&raws) }
}

/// Runs `f` under a fresh profiling session and returns its profile
/// alongside the closure's result.
pub fn profiled<R>(mode: ClockMode, f: impl FnOnce() -> R) -> (Profile, R) {
    start(mode);
    let r = f();
    (stop(), r)
}

/// Replaces characters that would corrupt the folded-stack format.
fn sanitize(label: &str) -> String {
    label.chars().map(|c| if c == ';' || c.is_whitespace() { '_' } else { c }).collect()
}

/// Merges raw per-thread trees by label path. `BTreeMap` ordering puts
/// every parent path (a strict prefix) before its children, so the
/// merged tree rebuilds in one pass with children sorted by label —
/// deterministic regardless of thread count or merge order.
fn merge(raws: &[RawTree]) -> CallTree {
    use std::collections::BTreeMap;
    let mut acc: BTreeMap<Vec<String>, (u64, u64, u64)> = BTreeMap::new();
    for raw in raws {
        // Nodes are created parent-first, so paths[parent] always
        // exists by the time a child needs it.
        let mut paths: Vec<Vec<String>> = Vec::with_capacity(raw.nodes.len());
        for (i, n) in raw.nodes.iter().enumerate() {
            if i == 0 {
                paths.push(Vec::new());
                continue;
            }
            let mut p = paths[n.parent as usize].clone();
            p.push(sanitize(raw.labels[n.label as usize]));
            let e = acc.entry(p.clone()).or_insert((0, 0, 0));
            e.0 += n.calls;
            e.1 += n.total_ns;
            e.2 += n.alloc_bytes;
            paths.push(p);
        }
    }

    let mut labels: Vec<String> = vec!["(root)".to_string()];
    let mut nodes: Vec<CallNode> = vec![CallNode {
        label: 0,
        parent: 0,
        children: Vec::new(),
        calls: 0,
        total_ns: 0,
        alloc_bytes: 0,
    }];
    let mut index: BTreeMap<Vec<String>, u32> = BTreeMap::new();
    for (path, &(calls, total_ns, alloc_bytes)) in &acc {
        let parent = match path.len() {
            1 => 0,
            n => index.get(&path[..n - 1]).copied().unwrap_or(0),
        };
        let leaf = path.last().expect("accumulated paths are non-empty");
        let label = match labels.iter().position(|l| l == leaf) {
            Some(i) => i as u32,
            None => {
                labels.push(leaf.clone());
                (labels.len() - 1) as u32
            }
        };
        let id = nodes.len() as u32;
        nodes.push(CallNode { label, parent, children: Vec::new(), calls, total_ns, alloc_bytes });
        nodes[parent as usize].children.push(id);
        index.insert(path.clone(), id);
    }
    let root_children = nodes[0].children.clone();
    nodes[0].total_ns = root_children.iter().map(|&c| nodes[c as usize].total_ns).sum();
    CallTree { labels, nodes }
}

/// One merged calltree node. `total_ns` includes time spent in child
/// scopes; self time is derived ([`CallTree::self_ns`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallNode {
    /// Index into [`CallTree::labels`].
    pub label: u32,
    /// Parent node index (the root points at itself).
    pub parent: u32,
    /// Child node indices, sorted by label.
    pub children: Vec<u32>,
    /// Times the scope was entered under this parent path.
    pub calls: u64,
    /// Total nanoseconds (or logical ticks) inside the scope, children
    /// included. For the root: the sum of top-level totals.
    pub total_ns: u64,
    /// Bytes allocated inside the scope (0 unless `prof-alloc` is on
    /// and the counting allocator is installed).
    pub alloc_bytes: u64,
}

/// The merged calltree of one profiling session. Node 0 is a synthetic
/// root whose total is the sum of the top-level scopes' totals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallTree {
    /// Interned scope labels; index 0 is `"(root)"`.
    pub labels: Vec<String>,
    /// Nodes; parents precede children.
    pub nodes: Vec<CallNode>,
}

impl CallTree {
    /// Number of real (non-root) scopes.
    pub fn len(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total nanoseconds across all top-level scopes.
    pub fn root_total_ns(&self) -> u64 {
        self.nodes[0].total_ns
    }

    /// Total scope entries across the whole tree.
    pub fn total_calls(&self) -> u64 {
        self.nodes.iter().map(|n| n.calls).sum()
    }

    /// Nanoseconds spent in node `i` itself, children excluded
    /// (saturating, so clock jitter cannot underflow).
    pub fn self_ns(&self, i: usize) -> u64 {
        let children: u64 =
            self.nodes[i].children.iter().map(|&c| self.nodes[c as usize].total_ns).sum();
        self.nodes[i].total_ns.saturating_sub(children)
    }

    /// The `;`-joined label path of a non-root node (`"a;b;leaf"`).
    pub fn path(&self, i: usize) -> String {
        let mut parts = Vec::new();
        let mut at = i;
        while at != 0 {
            parts.push(self.labels[self.nodes[at].label as usize].as_str());
            at = self.nodes[at].parent as usize;
        }
        parts.reverse();
        parts.join(";")
    }

    /// Non-root node indices in depth-first pre-order (children visit in
    /// label order).
    pub fn preorder(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.len());
        let mut stack: Vec<u32> = self.nodes[0].children.iter().rev().copied().collect();
        while let Some(i) = stack.pop() {
            out.push(i as usize);
            stack.extend(self.nodes[i as usize].children.iter().rev());
        }
        out
    }
}

/// A finished profiling session: the merged calltree plus the clock it
/// was measured with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Profile {
    /// The session's clock.
    pub mode: ClockMode,
    /// The merged calltree.
    pub tree: CallTree,
}

impl Profile {
    /// Human table ranked by self time (descending; ties break on the
    /// path, ascending).
    pub fn render_table(&self) -> String {
        let total = self.tree.root_total_ns().max(1);
        let mut rows: Vec<(u64, String, usize)> = self
            .tree
            .preorder()
            .into_iter()
            .map(|i| (self.tree.self_ns(i), self.tree.path(i), i))
            .collect();
        rows.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        let mut out = format!(
            "calltree profile ({} clock): {} scopes, root total {} ns\n",
            self.mode.as_str(),
            self.tree.len(),
            self.tree.root_total_ns()
        );
        let _ = writeln!(
            out,
            "{:>7}  {:>14}  {:>14}  {:>10}  {:>12}  scope",
            "self%", "self ns", "total ns", "calls", "alloc B"
        );
        for (self_ns, path, i) in rows {
            let n = &self.tree.nodes[i];
            let _ = writeln!(
                out,
                "{:>6.2}%  {:>14}  {:>14}  {:>10}  {:>12}  {}",
                100.0 * self_ns as f64 / total as f64,
                self_ns,
                n.total_ns,
                n.calls,
                n.alloc_bytes,
                path
            );
        }
        out
    }

    /// Byte-deterministic JSON: clock, root total, then one object per
    /// scope in depth-first pre-order.
    pub fn to_json(&self) -> String {
        let scopes = json::arr(self.tree.preorder().into_iter().map(|i| {
            let n = &self.tree.nodes[i];
            Obj::new()
                .str("path", &self.tree.path(i))
                .u64("calls", n.calls)
                .u64("total_ns", n.total_ns)
                .u64("self_ns", self.tree.self_ns(i))
                .u64("alloc_bytes", n.alloc_bytes)
                .build()
        }));
        Obj::new()
            .str("clock", self.mode.as_str())
            .u64("total_ns", self.tree.root_total_ns())
            .raw("scopes", &scopes)
            .build()
    }

    /// Folded-stack lines (`a;b;leaf 123`, weight = self time), the
    /// input format of `flamegraph.pl` and inferno. Zero-self scopes are
    /// omitted, as flamegraph tooling expects.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for i in self.tree.preorder() {
            let self_ns = self.tree.self_ns(i);
            if self_ns > 0 {
                let _ = writeln!(out, "{} {}", self.tree.path(i), self_ns);
            }
        }
        out
    }

    /// `skypeer_prof_*` counters in the Prometheus text exposition
    /// format, labelled by scope path.
    pub fn prometheus(&self) -> String {
        use crate::expose::escape_label;
        let mut out = String::new();
        let _ = writeln!(out, "# HELP skypeer_prof_scopes Distinct calltree scopes recorded.");
        let _ = writeln!(out, "# TYPE skypeer_prof_scopes gauge");
        let _ = writeln!(out, "skypeer_prof_scopes {}", self.tree.len());
        let _ = writeln!(out, "# HELP skypeer_prof_scope_enters_total Scope entries recorded.");
        let _ = writeln!(out, "# TYPE skypeer_prof_scope_enters_total counter");
        let _ = writeln!(out, "skypeer_prof_scope_enters_total {}", self.tree.total_calls());
        let order = self.tree.preorder();
        let _ = writeln!(out, "# TYPE skypeer_prof_calls_total counter");
        for &i in &order {
            let _ = writeln!(
                out,
                "skypeer_prof_calls_total{{scope=\"{}\"}} {}",
                escape_label(&self.tree.path(i)),
                self.tree.nodes[i].calls
            );
        }
        let _ = writeln!(out, "# TYPE skypeer_prof_self_ns_total counter");
        for &i in &order {
            let _ = writeln!(
                out,
                "skypeer_prof_self_ns_total{{scope=\"{}\"}} {}",
                escape_label(&self.tree.path(i)),
                self.tree.self_ns(i)
            );
        }
        out
    }
}

/// Observability observing itself: the same pinned workload run with
/// profiling + tracing off, then on, and the measured wall-clock cost of
/// watching. Built by callers that own a workload (the CLI's
/// `profile --overhead`); this crate only defines the arithmetic and the
/// renderings.
#[derive(Clone, Debug, PartialEq)]
pub struct OverheadReport {
    /// What was run (a pinned figure name).
    pub figure: String,
    /// Repeats per arm (the times below are sums over the repeats).
    pub repeats: u32,
    /// Wall nanoseconds with profiling and tracing off.
    pub baseline_ns: u64,
    /// Wall nanoseconds with profiling and tracing on.
    pub instrumented_ns: u64,
    /// Scope entries the instrumented arm recorded.
    pub scope_enters: u64,
    /// Distinct calltree scopes the instrumented arm recorded.
    pub distinct_scopes: u64,
}

impl OverheadReport {
    /// `instrumented / baseline` — 1.0 means free observability.
    pub fn ratio(&self) -> f64 {
        self.instrumented_ns as f64 / self.baseline_ns.max(1) as f64
    }

    /// Human rendering.
    pub fn render(&self) -> String {
        format!(
            "observability overhead: figure {figure}, {repeats} repeat(s)\n  \
             baseline     (prof+trace off): {base:.3} ms\n  \
             instrumented (prof+trace on) : {inst:.3} ms\n  \
             ratio {ratio:.3}x  ({enters} scope enters across {scopes} distinct scopes)\n",
            figure = self.figure,
            repeats = self.repeats,
            base = self.baseline_ns as f64 / 1e6,
            inst = self.instrumented_ns as f64 / 1e6,
            ratio = self.ratio(),
            enters = self.scope_enters,
            scopes = self.distinct_scopes,
        )
    }

    /// Deterministic-keyed JSON (values are wall-clock, so host-
    /// dependent).
    pub fn to_json(&self) -> String {
        Obj::new()
            .str("figure", &self.figure)
            .u64("repeats", u64::from(self.repeats))
            .u64("baseline_ns", self.baseline_ns)
            .u64("instrumented_ns", self.instrumented_ns)
            .f64("ratio", self.ratio())
            .u64("scope_enters", self.scope_enters)
            .u64("distinct_scopes", self.distinct_scopes)
            .build()
    }
}

/// Per-thread allocation accounting for [`CallNode::alloc_bytes`]:
/// install [`alloc::CountingAlloc`] as the binary's `#[global_allocator]`
/// and every scope records the bytes allocated inside it.
#[cfg(feature = "prof-alloc")]
pub mod alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        static ALLOCATED: Cell<u64> = const { Cell::new(0) };
    }

    /// Bytes this thread has allocated so far (monotonic; frees are not
    /// subtracted, so scope deltas measure allocation churn, not peak).
    pub fn thread_alloc_bytes() -> u64 {
        ALLOCATED.try_with(Cell::get).unwrap_or(0)
    }

    fn count(bytes: usize) {
        let _ = ALLOCATED.try_with(|c| c.set(c.get().saturating_add(bytes as u64)));
    }

    /// A [`System`]-backed allocator that counts allocated bytes per
    /// thread. Opt in from a binary:
    ///
    /// ```ignore
    /// #[global_allocator]
    /// static ALLOC: skypeer_obs::prof::alloc::CountingAlloc = CountingAlloc;
    /// ```
    pub struct CountingAlloc;

    // SAFETY: delegates every operation to `System`; the counter is a
    // thread-local side effect that allocates nothing itself.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            count(layout.size());
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            count(layout.size());
            System.alloc_zeroed(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            count(new_size.saturating_sub(layout.size()));
            System.realloc(ptr, layout, new_size)
        }
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    /// Profiling state is process-global; tests that run sessions must
    /// not interleave. (`cargo test` runs tests in parallel threads.)
    static SESSION: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        SESSION.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The fixed scope program the deterministic goldens pin:
    /// `a { b {} b {} }  c {}`.
    fn golden_program() {
        {
            let _a = enter("a");
            let _b1 = enter("b");
            drop(_b1);
            let _b2 = enter("b");
        }
        let _c = enter("c");
    }

    #[test]
    fn inactive_scopes_cost_nothing_and_record_nothing() {
        let _g = lock();
        assert!(!is_active());
        {
            scope!("never");
        }
        start(ClockMode::Logical);
        let p = stop();
        assert!(p.tree.is_empty());
        assert_eq!(p.tree.root_total_ns(), 0);
        assert_eq!(p.folded(), "");
    }

    #[test]
    fn logical_mode_pins_folded_and_json_bytes() {
        let _g = lock();
        // Tick trace: enter a=0, enter b=1, exit b=2, enter b=3, exit
        // b=4, exit a=5, enter c=6, exit c=7. So b.total = 1+1, a.total
        // = 5, c.total = 1, root = 6.
        let run = || {
            start(ClockMode::Logical);
            golden_program();
            stop()
        };
        let p = run();
        // Satellite golden: these exact bytes are the deterministic-mode
        // contract for folded and JSON exports.
        assert_eq!(p.folded(), "a 3\na;b 2\nc 1\n");
        assert_eq!(
            p.to_json(),
            "{\"clock\":\"logical\",\"total_ns\":6,\"scopes\":[\
             {\"path\":\"a\",\"calls\":1,\"total_ns\":5,\"self_ns\":3,\"alloc_bytes\":0},\
             {\"path\":\"a;b\",\"calls\":2,\"total_ns\":2,\"self_ns\":2,\"alloc_bytes\":0},\
             {\"path\":\"c\",\"calls\":1,\"total_ns\":1,\"self_ns\":1,\"alloc_bytes\":0}]}"
        );
        // A second session reproduces the bytes exactly (ticks reset).
        let q = run();
        assert_eq!(p.to_json(), q.to_json());
        assert_eq!(p.folded(), q.folded());
        assert_eq!(p.render_table(), q.render_table());
    }

    #[test]
    fn table_ranks_by_self_time_and_prometheus_is_prefixed() {
        let _g = lock();
        start(ClockMode::Logical);
        golden_program();
        let p = stop();
        let table = p.render_table();
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].contains("3 scopes, root total 6 ns"));
        assert!(lines[2].ends_with("  a"), "biggest self time first: {}", lines[2]);
        assert!(lines[3].ends_with("  a;b"));
        let prom = p.prometheus();
        assert!(prom.contains("skypeer_prof_scopes 3"));
        assert!(prom.contains("skypeer_prof_scope_enters_total 4"));
        assert!(prom.contains("skypeer_prof_calls_total{scope=\"a;b\"} 2"));
        assert!(prom.contains("skypeer_prof_self_ns_total{scope=\"a\"} 3"));
        for line in prom.lines().filter(|l| !l.starts_with('#')) {
            assert!(line.starts_with("skypeer_prof_"), "{line}");
        }
    }

    #[test]
    fn monotonic_mode_measures_and_nests() {
        let _g = lock();
        start(ClockMode::Monotonic);
        {
            let _outer = enter("outer");
            let _inner = enter("inner");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let p = stop();
        assert_eq!(p.mode, ClockMode::Monotonic);
        assert_eq!(p.tree.len(), 2);
        let outer = p.tree.preorder()[0];
        assert_eq!(p.tree.path(outer), "outer");
        assert!(p.tree.nodes[outer].total_ns >= 2_000_000, "slept 2ms inside");
        assert_eq!(p.tree.root_total_ns(), p.tree.nodes[outer].total_ns);
    }

    #[test]
    fn threads_merge_on_exit_and_flush() {
        let _g = lock();
        start(ClockMode::Monotonic);
        {
            let _main = enter("shared");
        }
        std::thread::spawn(|| {
            let _w = enter("shared");
            let _n = enter("worker_only");
        })
        .join()
        .expect("worker");
        let p = stop();
        let shared = p
            .tree
            .preorder()
            .into_iter()
            .find(|&i| p.tree.path(i) == "shared")
            .expect("shared scope");
        assert_eq!(p.tree.nodes[shared].calls, 2, "both threads' calls merged");
        assert!(p.tree.preorder().iter().any(|&i| p.tree.path(i) == "shared;worker_only"));
    }

    #[test]
    fn stale_epoch_data_is_discarded_and_labels_sanitized() {
        let _g = lock();
        start(ClockMode::Logical);
        {
            let _old = enter("from_last_session");
        }
        // Restart without stopping: the old thread tree must not leak
        // into the new session.
        start(ClockMode::Logical);
        {
            let _new = enter("weird label;x");
        }
        let p = stop();
        assert_eq!(p.tree.len(), 1);
        assert_eq!(p.tree.path(p.tree.preorder()[0]), "weird_label_x");
        // A guard held across stop() still pops cleanly.
        start(ClockMode::Logical);
        let held = enter("held");
        let _ = stop();
        drop(held);
        start(ClockMode::Logical);
        let empty = stop();
        assert!(empty.tree.is_empty());
    }

    #[test]
    fn overhead_report_ratio_and_renderings() {
        let r = OverheadReport {
            figure: "fig3b_d8".to_string(),
            repeats: 3,
            baseline_ns: 10_000_000,
            instrumented_ns: 11_000_000,
            scope_enters: 1234,
            distinct_scopes: 9,
        };
        assert!((r.ratio() - 1.1).abs() < 1e-9);
        let text = r.render();
        assert!(text.contains("ratio 1.100x"));
        assert!(text.contains("fig3b_d8"));
        let j = r.to_json();
        assert_eq!(j, r.to_json());
        assert!(j.starts_with("{\"figure\":\"fig3b_d8\",\"repeats\":3,"));
        assert!(j.contains("\"scope_enters\":1234"));
    }

    /// Executes a generated op program (push scope / pop scope) under a
    /// logical-clock session and returns the profile. Each op byte
    /// either closes the innermost open scope or opens one of four
    /// labels; everything left open closes at the end.
    fn run_ops(ops: &[u8]) -> Profile {
        const LABELS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
        start(ClockMode::Logical);
        let mut open: Vec<ScopeGuard> = Vec::new();
        for &op in ops {
            if op % 4 == 0 && !open.is_empty() {
                open.pop();
            } else if open.len() < 6 {
                open.push(enter(LABELS[(op as usize / 4) % LABELS.len()]));
            }
        }
        while open.pop().is_some() {}
        stop()
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// For any scope tree: the root total equals the sum of the
        /// top-level totals, and every node's self time equals its total
        /// minus its children's totals (exactly — the logical clock
        /// cannot jitter).
        #[test]
        fn calltree_time_invariants_hold(ops in prop::collection::vec(any::<u8>(), 0..64)) {
            let _g = lock();
            let p = run_ops(&ops);
            let t = &p.tree;
            let top: u64 = t.nodes[0].children.iter().map(|&c| t.nodes[c as usize].total_ns).sum();
            prop_assert_eq!(t.root_total_ns(), top);
            for i in t.preorder() {
                let children: u64 =
                    t.nodes[i].children.iter().map(|&c| t.nodes[c as usize].total_ns).sum();
                prop_assert_eq!(t.self_ns(i) + children, t.nodes[i].total_ns);
                prop_assert!(t.nodes[i].calls > 0, "every node was entered");
            }
            // And the export surfaces agree with the tree.
            let folded_sum: u64 = p.folded().lines()
                .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
                .sum();
            let self_sum: u64 = t.preorder().into_iter().map(|i| t.self_ns(i)).sum();
            prop_assert_eq!(folded_sum, self_sum);
            prop_assert_eq!(self_sum, t.root_total_ns());
        }
    }
}
