#![warn(missing_docs)]

//! Observability layer for SKYPEER: per-query tracing, a metrics
//! registry, trace exporters, and critical-path analysis.
//!
//! The runtimes (`skypeer-netsim`'s DES and live runtime) and the protocol
//! state machine (`skypeer-core`'s `SuperPeerNode`) emit [`TraceEvent`]s
//! through a [`Tracer`] when one is installed; with no tracer installed
//! every emission site is a single branch on a `None`, so simulation
//! results are bit-for-bit identical to untraced runs.
//!
//! On top of the raw event stream:
//!
//! * [`metrics`] — a per-query registry of counters, fixed-bucket
//!   histograms (dominance tests, points scanned, message sizes, per-hop
//!   latency), bytes per directed link, and the threshold-over-time
//!   series;
//! * [`export`] — a deterministic JSONL event log and a Chrome
//!   trace-event JSON loadable in Perfetto (super-peers as tracks);
//! * [`critical`] — a critical-path analyzer that walks the recorded
//!   event DAG backwards from the `finish` call and reports the chain of
//!   service, transfer, and wait spans that determined response time;
//! * [`expose`] — a point-in-time [`MetricsSnapshot`] with a
//!   Prometheus-text-format serializer and a periodic file sampler for
//!   long-running live-mode processes;
//! * [`json`] — the byte-deterministic JSON builder the exporters (and
//!   downstream crates' reports) share.
//!
//! This crate is dependency-free and knows nothing about the simulator:
//! events carry plain integers and floats. Times are the runtime's
//! `SimTime` (nanoseconds since run start) — never wall clocks — so a
//! deterministic runtime yields a byte-deterministic trace.

pub mod critical;
pub mod event;
pub mod export;
pub mod expose;
pub mod json;
pub mod metrics;
pub mod tracer;

pub use critical::{critical_path, CriticalPath, PathStep, StepKind};
pub use event::{DropReason, ProtoEvent, QueryPhase, SimTime, SpanCause, TraceEvent};
pub use export::{chrome_trace, jsonl};
pub use expose::{MetricsSnapshot, Sampler, SamplerHandle};
pub use metrics::{Histogram, MetricsRegistry, NodeMetrics};
pub use tracer::{MemTracer, Tracer};
