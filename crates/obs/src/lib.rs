#![warn(missing_docs)]

//! Observability layer for SKYPEER: per-query tracing, a metrics
//! registry, trace exporters, and critical-path analysis.
//!
//! The runtimes (`skypeer-netsim`'s DES and live runtime) and the protocol
//! state machine (`skypeer-core`'s `SuperPeerNode`) emit [`TraceEvent`]s
//! through a [`Tracer`] when one is installed; with no tracer installed
//! every emission site is a single branch on a `None`, so simulation
//! results are bit-for-bit identical to untraced runs.
//!
//! On top of the raw event stream:
//!
//! * [`metrics`] — a per-query registry of counters, fixed-bucket
//!   histograms (dominance tests, points scanned, message sizes, per-hop
//!   latency), bytes per directed link, and the threshold-over-time
//!   series;
//! * [`export`] — a deterministic JSONL event log and a Chrome
//!   trace-event JSON loadable in Perfetto (super-peers as tracks);
//! * [`critical`] — a critical-path analyzer that walks the recorded
//!   event DAG backwards from the `finish` call and reports the chain of
//!   service, transfer, and wait spans that determined response time;
//! * [`diff`] — regression root-cause analysis: compact per-run
//!   [`TraceDigest`]s, baseline-vs-candidate delta attribution down to
//!   the phase/node/link responsible, and counterfactual what-if
//!   rankings over the critical path;
//! * [`expose`] — a point-in-time [`MetricsSnapshot`] with a
//!   Prometheus-text-format serializer and a periodic file sampler for
//!   long-running live-mode processes;
//! * [`json`] — the byte-deterministic JSON builder the exporters (and
//!   downstream crates' reports) share;
//! * [`lineage`] — per-point answer provenance records (origin peer,
//!   super-peer store membership, dominance witnesses) with
//!   byte-deterministic JSON and text rendering — the substrate of the
//!   `why` / `why-not` explanations and the online audit's violation
//!   records;
//! * [`prof`] — a scoped calltree CPU profiler ([`scope!`] in hot paths,
//!   ranked-table / JSON / folded-flamegraph exports, a deterministic
//!   logical clock for goldens, and observability-overhead accounting);
//! * [`tsdb`] — an embedded, allocation-bounded time-series store
//!   (per-series rings with deterministic min/max/last downsampling as
//!   they wrap) plus the append-only history JSONL format;
//! * [`anomaly`] — EWMA + robust z-score detection over telemetry
//!   series, producing byte-stable [`Incident`] records;
//! * [`dash`] — plain-text dashboard frames (sparklines, incident
//!   banner, per-node table) rendered deterministically from a
//!   [`Tsdb`].
//!
//! Workload-level observability (soak runs over many queries):
//!
//! * [`hdr`] — log-linear HDR-style histograms with deterministic merge
//!   and exact-rank p50/p90/p99/p999 within a documented `2^-precision`
//!   bucket-error bound;
//! * [`recorder`] — a bounded-memory flight recorder that traces every
//!   query but retains full traces only for the top-K tail;
//! * [`slo`] — per-variant latency/bytes budgets evaluated into a
//!   pass/fail report for CI gating.
//!
//! This crate is dependency-free and knows nothing about the simulator:
//! events carry plain integers and floats. Times are the runtime's
//! `SimTime` (nanoseconds since run start) — never wall clocks — so a
//! deterministic runtime yields a byte-deterministic trace.

pub mod anomaly;
pub mod critical;
pub mod dash;
pub mod diff;
pub mod event;
pub mod export;
pub mod expose;
pub mod hdr;
pub mod json;
pub mod lineage;
pub mod metrics;
pub mod prof;
pub mod recorder;
pub mod slo;
pub mod tracer;
pub mod tsdb;

pub use anomaly::{AnomalyDetector, DetectorConfig, Incident};
pub use critical::{critical_path, CriticalPath, PathStep, StepKind};
pub use dash::render_frame;
pub use diff::{rank_interventions, AttributionReport, Intervention, TraceDigest, WhatIf};
pub use event::{DropReason, ProtoEvent, QueryPhase, SimTime, SpanCause, TraceEvent};
pub use export::{chrome_trace, jsonl, parse_jsonl};
pub use expose::{MetricsSnapshot, ProcessStats, Sampler, SamplerHandle};
pub use hdr::HdrHistogram;
pub use lineage::{LineageStage, PointLineage, PointOrigin, Witness};
pub use metrics::{Histogram, MetricsRegistry, NodeMetrics};
pub use prof::{CallNode, CallTree, ClockMode, OverheadReport, Profile};
pub use recorder::{FlightRecorder, RetainedQuery};
pub use slo::{quantile_from_digits, SloCheck, SloReport, SloSpec};
pub use tracer::{MemTracer, Tracer};
pub use tsdb::{history_line, parse_history, HistorySample, TimeSeries, Tsdb};
