//! Trace exporters: deterministic JSONL and Chrome trace-event JSON.
//!
//! * [`jsonl`] — one JSON object per event, in record order, with a
//!   stable key order and byte-deterministic number formatting. This is
//!   the format the trace-determinism goldens compare.
//! * [`chrome_trace`] — the Chrome trace-event format (JSON object form),
//!   loadable in Perfetto / `chrome://tracing`: one track (`tid`) per
//!   super-peer, handler invocations as complete slices, messages as flow
//!   arrows between the sending and receiving slices, thresholds as
//!   counter tracks, and timers/drops/finishes as instant events.

use crate::event::{DropReason, ProtoEvent, QueryPhase, SpanCause, TraceEvent};
use crate::json::{float, Obj};

fn cause_fields(o: Obj, cause: SpanCause) -> Obj {
    match cause {
        SpanCause::Start => o.str("cause", "start"),
        SpanCause::Msg(seq) => o.str("cause", "msg").u64("cause_seq", seq),
        SpanCause::Timer(seq) => o.str("cause", "timer").u64("cause_seq", seq),
    }
}

fn drop_reason(reason: DropReason) -> &'static str {
    match reason {
        DropReason::DeadSender => "dead-sender",
        DropReason::DeadReceiver => "dead-receiver",
        DropReason::Injected => "injected",
    }
}

fn phase_name(phase: QueryPhase) -> &'static str {
    match phase {
        QueryPhase::Started => "started",
        QueryPhase::Forwarded => "forwarded",
        QueryPhase::LocalDone => "local-done",
        QueryPhase::Abandoned => "abandoned",
        QueryPhase::Finalized => "finalized",
    }
}

/// Renders one event as a single-line JSON object.
pub fn event_json(ev: &TraceEvent) -> String {
    match *ev {
        TraceEvent::Service {
            span,
            node,
            begin,
            end,
            cause,
            dominance_tests,
            points_scanned,
            finished,
        } => cause_fields(
            Obj::new()
                .str("type", "service")
                .u64("span", span)
                .u64("node", node as u64)
                .u64("begin", begin)
                .u64("end", end),
            cause,
        )
        .u64("dominance_tests", dominance_tests)
        .u64("points_scanned", points_scanned)
        .bool("finished", finished)
        .build(),
        TraceEvent::Send { msg_seq, span, from, to, bytes, queued_at, sent_at, arrive_at } => {
            Obj::new()
                .str("type", "send")
                .u64("msg_seq", msg_seq)
                .u64("span", span)
                .u64("from", from as u64)
                .u64("to", to as u64)
                .u64("bytes", bytes)
                .u64("queued_at", queued_at)
                .u64("sent_at", sent_at)
                .u64("arrive_at", arrive_at)
                .build()
        }
        TraceEvent::Deliver { msg_seq, at, from, to } => Obj::new()
            .str("type", "deliver")
            .u64("msg_seq", msg_seq)
            .u64("at", at)
            .u64("from", from as u64)
            .u64("to", to as u64)
            .build(),
        TraceEvent::Drop { msg_seq, at, from, to, reason } => Obj::new()
            .str("type", "drop")
            .u64("msg_seq", msg_seq)
            .u64("at", at)
            .u64("from", from as u64)
            .u64("to", to as u64)
            .str("reason", drop_reason(reason))
            .build(),
        TraceEvent::TimerSet { timer_seq, span, node, fire_at, tag } => Obj::new()
            .str("type", "timer-set")
            .u64("timer_seq", timer_seq)
            .u64("span", span)
            .u64("node", node as u64)
            .u64("fire_at", fire_at)
            .u64("tag", tag)
            .build(),
        TraceEvent::TimerFire { timer_seq, at, node, tag } => Obj::new()
            .str("type", "timer-fire")
            .u64("timer_seq", timer_seq)
            .u64("at", at)
            .u64("node", node as u64)
            .u64("tag", tag)
            .build(),
        TraceEvent::Finish { span, node, at } => Obj::new()
            .str("type", "finish")
            .u64("span", span)
            .u64("node", node as u64)
            .u64("at", at)
            .build(),
        TraceEvent::Proto { span, node, at, event } => {
            let o = Obj::new()
                .str("type", "proto")
                .u64("span", span)
                .u64("node", node as u64)
                .u64("at", at);
            match event {
                ProtoEvent::ThresholdInstall { qid, value } => o
                    .str("event", "threshold-install")
                    .u64("qid", u64::from(qid))
                    .f64("value", value)
                    .build(),
                ProtoEvent::ThresholdRefine { qid, old, new } => o
                    .str("event", "threshold-refine")
                    .u64("qid", u64::from(qid))
                    .f64("old", old)
                    .f64("new", new)
                    .build(),
                ProtoEvent::Prune { qid, pruned } => {
                    o.str("event", "prune").u64("qid", u64::from(qid)).u64("pruned", pruned).build()
                }
                ProtoEvent::Phase { qid, phase } => o
                    .str("event", "phase")
                    .u64("qid", u64::from(qid))
                    .str("phase", phase_name(phase))
                    .build(),
            }
        }
    }
}

/// Renders a trace as JSONL: one event per line, trailing newline,
/// byte-deterministic for a deterministic event stream.
pub fn jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&event_json(ev));
        out.push('\n');
    }
    out
}

/// A scanned JSON scalar from one flat trace-event object.
pub(crate) enum Tok {
    Str(String),
    Num(String),
    Bool(bool),
}

/// Scans a single-line flat JSON object (`{"k":scalar,…}`) into its
/// key/value pairs. Only the shapes [`event_json`] emits are accepted:
/// string, number, and boolean values, no nesting.
pub(crate) fn scan_flat_object(line: &str) -> Result<Vec<(String, Tok)>, String> {
    let b = line.trim().as_bytes();
    let mut i = 0usize;
    let err = |msg: &str, i: usize| Err(format!("{msg} at byte {i}: {line}"));
    let scan_string = |i: &mut usize| -> Result<String, String> {
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected string at byte {} in: {line}", *i));
        }
        *i += 1;
        let mut s = String::new();
        loop {
            match b.get(*i) {
                None => return Err(format!("unterminated string in: {line}")),
                Some(b'"') => {
                    *i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    *i += 1;
                    match b.get(*i) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = line
                                .trim()
                                .get(*i + 1..*i + 5)
                                .ok_or_else(|| format!("truncated \\u escape in: {line}"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?} in: {line}"))?;
                            s.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| format!("bad codepoint {cp:#x} in: {line}"))?,
                            );
                            *i += 4;
                        }
                        _ => return Err(format!("bad escape in: {line}")),
                    }
                    *i += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let rest = &line.trim()[*i..];
                    let ch = rest.chars().next().unwrap();
                    s.push(ch);
                    *i += ch.len_utf8();
                }
            }
        }
    };
    if b.first() != Some(&b'{') {
        return err("expected '{'", 0);
    }
    i += 1;
    let mut out = Vec::new();
    if b.get(i) == Some(&b'}') {
        return Ok(out);
    }
    loop {
        let key = scan_string(&mut i)?;
        if b.get(i) != Some(&b':') {
            return err("expected ':'", i);
        }
        i += 1;
        let tok = match b.get(i) {
            Some(b'"') => Tok::Str(scan_string(&mut i)?),
            Some(b't') if b[i..].starts_with(b"true") => {
                i += 4;
                Tok::Bool(true)
            }
            Some(b'f') if b[i..].starts_with(b"false") => {
                i += 5;
                Tok::Bool(false)
            }
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                let start = i;
                while b.get(i).is_some_and(|c| {
                    c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    i += 1;
                }
                Tok::Num(line.trim()[start..i].to_string())
            }
            _ => return err("expected scalar value", i),
        };
        out.push((key, tok));
        match b.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => return Ok(out),
            _ => return err("expected ',' or '}'", i),
        }
    }
}

/// Typed accessors over one scanned event object.
struct Fields<'a> {
    line: &'a str,
    kv: Vec<(String, Tok)>,
}

impl Fields<'_> {
    fn get(&self, key: &str) -> Result<&Tok, String> {
        self.kv
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, t)| t)
            .ok_or_else(|| format!("missing key {key:?} in: {}", self.line))
    }
    fn u64(&self, key: &str) -> Result<u64, String> {
        match self.get(key)? {
            Tok::Num(raw) => {
                raw.parse().map_err(|_| format!("bad u64 {key}={raw:?} in: {}", self.line))
            }
            _ => Err(format!("key {key:?} is not a number in: {}", self.line)),
        }
    }
    fn usize(&self, key: &str) -> Result<usize, String> {
        Ok(self.u64(key)? as usize)
    }
    fn f64(&self, key: &str) -> Result<f64, String> {
        match self.get(key)? {
            Tok::Num(raw) => {
                raw.parse().map_err(|_| format!("bad f64 {key}={raw:?} in: {}", self.line))
            }
            // Non-finite floats encode as strings (see crate::json::float).
            Tok::Str(s) => match s.as_str() {
                "inf" => Ok(f64::INFINITY),
                "-inf" => Ok(f64::NEG_INFINITY),
                "nan" => Ok(f64::NAN),
                other => Err(format!("bad float string {key}={other:?} in: {}", self.line)),
            },
            Tok::Bool(_) => Err(format!("key {key:?} is a bool, not a float in: {}", self.line)),
        }
    }
    fn str(&self, key: &str) -> Result<&str, String> {
        match self.get(key)? {
            Tok::Str(s) => Ok(s),
            _ => Err(format!("key {key:?} is not a string in: {}", self.line)),
        }
    }
    fn bool(&self, key: &str) -> Result<bool, String> {
        match self.get(key)? {
            Tok::Bool(v) => Ok(*v),
            _ => Err(format!("key {key:?} is not a bool in: {}", self.line)),
        }
    }
    fn cause(&self) -> Result<SpanCause, String> {
        match self.str("cause")? {
            "start" => Ok(SpanCause::Start),
            "msg" => Ok(SpanCause::Msg(self.u64("cause_seq")?)),
            "timer" => Ok(SpanCause::Timer(self.u64("cause_seq")?)),
            other => Err(format!("unknown cause {other:?} in: {}", self.line)),
        }
    }
    fn qid(&self) -> Result<u32, String> {
        u32::try_from(self.u64("qid")?).map_err(|_| format!("qid overflow in: {}", self.line))
    }
}

/// Parses one line of [`event_json`] output back into a [`TraceEvent`].
pub fn parse_event_json(line: &str) -> Result<TraceEvent, String> {
    let f = Fields { line, kv: scan_flat_object(line)? };
    match f.str("type")? {
        "service" => Ok(TraceEvent::Service {
            span: f.u64("span")?,
            node: f.usize("node")?,
            begin: f.u64("begin")?,
            end: f.u64("end")?,
            cause: f.cause()?,
            dominance_tests: f.u64("dominance_tests")?,
            points_scanned: f.u64("points_scanned")?,
            finished: f.bool("finished")?,
        }),
        "send" => Ok(TraceEvent::Send {
            msg_seq: f.u64("msg_seq")?,
            span: f.u64("span")?,
            from: f.usize("from")?,
            to: f.usize("to")?,
            bytes: f.u64("bytes")?,
            queued_at: f.u64("queued_at")?,
            sent_at: f.u64("sent_at")?,
            arrive_at: f.u64("arrive_at")?,
        }),
        "deliver" => Ok(TraceEvent::Deliver {
            msg_seq: f.u64("msg_seq")?,
            at: f.u64("at")?,
            from: f.usize("from")?,
            to: f.usize("to")?,
        }),
        "drop" => Ok(TraceEvent::Drop {
            msg_seq: f.u64("msg_seq")?,
            at: f.u64("at")?,
            from: f.usize("from")?,
            to: f.usize("to")?,
            reason: match f.str("reason")? {
                "dead-sender" => DropReason::DeadSender,
                "dead-receiver" => DropReason::DeadReceiver,
                "injected" => DropReason::Injected,
                other => return Err(format!("unknown drop reason {other:?} in: {line}")),
            },
        }),
        "timer-set" => Ok(TraceEvent::TimerSet {
            timer_seq: f.u64("timer_seq")?,
            span: f.u64("span")?,
            node: f.usize("node")?,
            fire_at: f.u64("fire_at")?,
            tag: f.u64("tag")?,
        }),
        "timer-fire" => Ok(TraceEvent::TimerFire {
            timer_seq: f.u64("timer_seq")?,
            at: f.u64("at")?,
            node: f.usize("node")?,
            tag: f.u64("tag")?,
        }),
        "finish" => Ok(TraceEvent::Finish {
            span: f.u64("span")?,
            node: f.usize("node")?,
            at: f.u64("at")?,
        }),
        "proto" => Ok(TraceEvent::Proto {
            span: f.u64("span")?,
            node: f.usize("node")?,
            at: f.u64("at")?,
            event: match f.str("event")? {
                "threshold-install" => {
                    ProtoEvent::ThresholdInstall { qid: f.qid()?, value: f.f64("value")? }
                }
                "threshold-refine" => ProtoEvent::ThresholdRefine {
                    qid: f.qid()?,
                    old: f.f64("old")?,
                    new: f.f64("new")?,
                },
                "prune" => ProtoEvent::Prune { qid: f.qid()?, pruned: f.u64("pruned")? },
                "phase" => ProtoEvent::Phase {
                    qid: f.qid()?,
                    phase: match f.str("phase")? {
                        "started" => QueryPhase::Started,
                        "forwarded" => QueryPhase::Forwarded,
                        "local-done" => QueryPhase::LocalDone,
                        "abandoned" => QueryPhase::Abandoned,
                        "finalized" => QueryPhase::Finalized,
                        other => return Err(format!("unknown phase {other:?} in: {line}")),
                    },
                },
                other => return Err(format!("unknown proto event {other:?} in: {line}")),
            },
        }),
        other => Err(format!("unknown event type {other:?} in: {line}")),
    }
}

/// Parses a JSONL trace back into events — the exact inverse of
/// [`jsonl`]. Blank lines are skipped; any malformed line is an error
/// naming the line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_event_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(out)
}

/// Nanoseconds → the trace format's microsecond timestamps, rendered
/// deterministically with fixed precision.
fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1000.0)
}

/// Renders a trace in Chrome trace-event JSON (object form with a
/// `traceEvents` array), loadable in Perfetto. Super-peers appear as one
/// track each (`tid` = node id) inside a single process.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut rows: Vec<String> = Vec::new();
    rows.push(
        Obj::new()
            .str("ph", "M")
            .str("name", "process_name")
            .u64("pid", 0)
            .raw("args", &Obj::new().str("name", "skypeer").build())
            .build(),
    );
    let n_nodes = events.iter().map(|e| e.node() + 1).max().unwrap_or(0);
    for node in 0..n_nodes {
        rows.push(
            Obj::new()
                .str("ph", "M")
                .str("name", "thread_name")
                .u64("pid", 0)
                .u64("tid", node as u64)
                .raw("args", &Obj::new().str("name", &format!("SP{node}")).build())
                .build(),
        );
    }
    for ev in events {
        match *ev {
            TraceEvent::Service {
                span,
                node,
                begin,
                end,
                cause,
                dominance_tests,
                points_scanned,
                finished,
            } => {
                let name = match cause {
                    SpanCause::Start => "start",
                    SpanCause::Msg(_) => "handle-msg",
                    SpanCause::Timer(_) => "handle-timer",
                };
                let args = cause_fields(
                    Obj::new()
                        .u64("span", span)
                        .u64("dominance_tests", dominance_tests)
                        .u64("points_scanned", points_scanned)
                        .bool("finished", finished),
                    cause,
                );
                rows.push(
                    Obj::new()
                        .str("ph", "X")
                        .str("name", name)
                        .str("cat", "service")
                        .u64("pid", 0)
                        .u64("tid", node as u64)
                        .raw("ts", &us(begin))
                        .raw("dur", &us(end - begin))
                        .raw("args", &args.build())
                        .build(),
                );
            }
            TraceEvent::Send { msg_seq, from, to, bytes, queued_at, .. } => {
                rows.push(
                    Obj::new()
                        .str("ph", "s")
                        .str("name", "msg")
                        .str("cat", "msg")
                        .u64("id", msg_seq)
                        .u64("pid", 0)
                        .u64("tid", from as u64)
                        .raw("ts", &us(queued_at))
                        .raw("args", &Obj::new().u64("bytes", bytes).u64("to", to as u64).build())
                        .build(),
                );
            }
            TraceEvent::Deliver { msg_seq, at, to, .. } => {
                rows.push(
                    Obj::new()
                        .str("ph", "f")
                        .str("bp", "e")
                        .str("name", "msg")
                        .str("cat", "msg")
                        .u64("id", msg_seq)
                        .u64("pid", 0)
                        .u64("tid", to as u64)
                        .raw("ts", &us(at))
                        .build(),
                );
            }
            TraceEvent::Drop { msg_seq, at, to, reason, .. } => {
                rows.push(
                    Obj::new()
                        .str("ph", "i")
                        .str("s", "t")
                        .str("name", "drop")
                        .str("cat", "msg")
                        .u64("pid", 0)
                        .u64("tid", to as u64)
                        .raw("ts", &us(at))
                        .raw(
                            "args",
                            &Obj::new()
                                .u64("msg_seq", msg_seq)
                                .str("reason", drop_reason(reason))
                                .build(),
                        )
                        .build(),
                );
            }
            TraceEvent::TimerSet { timer_seq, node, fire_at, tag, .. } => {
                rows.push(
                    Obj::new()
                        .str("ph", "i")
                        .str("s", "t")
                        .str("name", "timer-set")
                        .str("cat", "timer")
                        .u64("pid", 0)
                        .u64("tid", node as u64)
                        .raw("ts", &us(fire_at))
                        .raw(
                            "args",
                            &Obj::new().u64("timer_seq", timer_seq).u64("tag", tag).build(),
                        )
                        .build(),
                );
            }
            TraceEvent::TimerFire { timer_seq, at, node, tag } => {
                rows.push(
                    Obj::new()
                        .str("ph", "i")
                        .str("s", "t")
                        .str("name", "timer-fire")
                        .str("cat", "timer")
                        .u64("pid", 0)
                        .u64("tid", node as u64)
                        .raw("ts", &us(at))
                        .raw(
                            "args",
                            &Obj::new().u64("timer_seq", timer_seq).u64("tag", tag).build(),
                        )
                        .build(),
                );
            }
            TraceEvent::Finish { span, node, at } => {
                rows.push(
                    Obj::new()
                        .str("ph", "i")
                        .str("s", "p")
                        .str("name", "finish")
                        .str("cat", "query")
                        .u64("pid", 0)
                        .u64("tid", node as u64)
                        .raw("ts", &us(at))
                        .raw("args", &Obj::new().u64("span", span).build())
                        .build(),
                );
            }
            TraceEvent::Proto { node, at, event, .. } => match event {
                // Threshold values become counter tracks (one per query),
                // with one series per super-peer. Infinite values (naive /
                // pre-refinement) are unrepresentable in the format and
                // skipped; the JSONL log keeps them.
                ProtoEvent::ThresholdInstall { qid, value }
                | ProtoEvent::ThresholdRefine { qid, new: value, .. } => {
                    if value.is_finite() {
                        rows.push(
                            Obj::new()
                                .str("ph", "C")
                                .str("name", &format!("threshold q{qid}"))
                                .u64("pid", 0)
                                .raw("ts", &us(at))
                                .raw(
                                    "args",
                                    &Obj::new().raw(&format!("SP{node}"), &float(value)).build(),
                                )
                                .build(),
                        );
                    }
                }
                ProtoEvent::Prune { qid, pruned } => {
                    rows.push(
                        Obj::new()
                            .str("ph", "i")
                            .str("s", "t")
                            .str("name", "prune")
                            .str("cat", "query")
                            .u64("pid", 0)
                            .u64("tid", node as u64)
                            .raw("ts", &us(at))
                            .raw(
                                "args",
                                &Obj::new()
                                    .u64("qid", u64::from(qid))
                                    .u64("pruned", pruned)
                                    .build(),
                            )
                            .build(),
                    );
                }
                ProtoEvent::Phase { qid, phase } => {
                    rows.push(
                        Obj::new()
                            .str("ph", "i")
                            .str("s", "t")
                            .str("name", &format!("phase:{}", phase_name(phase)))
                            .str("cat", "query")
                            .u64("pid", 0)
                            .u64("tid", node as u64)
                            .raw("ts", &us(at))
                            .raw("args", &Obj::new().u64("qid", u64::from(qid)).build())
                            .build(),
                    );
                }
            },
        }
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(row);
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod unit {
    use super::*;

    fn tiny_trace() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Service {
                span: 0,
                node: 0,
                begin: 0,
                end: 1500,
                cause: SpanCause::Start,
                dominance_tests: 4,
                points_scanned: 9,
                finished: false,
            },
            TraceEvent::Send {
                msg_seq: 0,
                span: 0,
                from: 0,
                to: 1,
                bytes: 32,
                queued_at: 1500,
                sent_at: 1500,
                arrive_at: 2000,
            },
            TraceEvent::Deliver { msg_seq: 0, at: 2000, from: 0, to: 1 },
            TraceEvent::Proto {
                span: 1,
                node: 1,
                at: 2000,
                event: ProtoEvent::ThresholdInstall { qid: 3, value: f64::INFINITY },
            },
            TraceEvent::Finish { span: 1, node: 1, at: 2500 },
        ]
    }

    #[test]
    fn jsonl_is_deterministic_and_line_per_event() {
        let t = tiny_trace();
        let a = jsonl(&t);
        let b = jsonl(&t);
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), t.len());
        assert!(a.starts_with(r#"{"type":"service","span":0,"node":0,"#));
        assert!(a.contains(r#""value":"inf""#), "infinity must encode as a string: {a}");
    }

    #[test]
    fn chrome_trace_has_tracks_slices_and_flows() {
        let s = chrome_trace(&tiny_trace());
        assert!(s.starts_with("{\"traceEvents\":[\n"));
        assert!(s.trim_end().ends_with("],\"displayTimeUnit\":\"ms\"}"));
        assert!(s.contains(r#""name":"thread_name""#));
        assert!(s.contains(r#""name":"SP1""#));
        assert!(s.contains(r#""ph":"X""#));
        assert!(s.contains(r#""ph":"s""#) && s.contains(r#""ph":"f""#));
        // Infinite threshold is skipped in the counter track.
        assert!(!s.contains("inf"));
        // Timestamps are µs with fixed precision: 1500 ns = 1.500 µs.
        assert!(s.contains(r#""ts":1.500"#));
    }

    #[test]
    fn every_event_kind_renders() {
        let all = vec![
            TraceEvent::Drop { msg_seq: 1, at: 5, from: 0, to: 2, reason: DropReason::Injected },
            TraceEvent::TimerSet { timer_seq: 2, span: 0, node: 1, fire_at: 50, tag: 7 },
            TraceEvent::TimerFire { timer_seq: 2, at: 50, node: 1, tag: 7 },
            TraceEvent::Proto {
                span: 0,
                node: 1,
                at: 0,
                event: ProtoEvent::Prune { qid: 1, pruned: 12 },
            },
            TraceEvent::Proto {
                span: 0,
                node: 1,
                at: 0,
                event: ProtoEvent::Phase { qid: 1, phase: QueryPhase::Forwarded },
            },
            TraceEvent::Proto {
                span: 0,
                node: 1,
                at: 0,
                event: ProtoEvent::ThresholdRefine { qid: 1, old: 9.5, new: 7.25 },
            },
        ];
        let lines = jsonl(&all);
        assert_eq!(lines.lines().count(), all.len());
        assert!(lines.contains(r#""reason":"injected""#));
        assert!(lines.contains(r#""phase":"forwarded""#));
        assert!(lines.contains(r#""old":9.5"#) && lines.contains(r#""new":7.25"#));
        let chrome = chrome_trace(&all);
        assert!(chrome.contains("timer-fire") && chrome.contains("prune"));
    }

    #[test]
    fn parse_jsonl_round_trips_every_event_kind() {
        let mut all = tiny_trace();
        all.extend([
            TraceEvent::Drop { msg_seq: 1, at: 5, from: 0, to: 2, reason: DropReason::DeadSender },
            TraceEvent::Drop { msg_seq: 2, at: 6, from: 0, to: 2, reason: DropReason::Injected },
            TraceEvent::TimerSet { timer_seq: 2, span: 0, node: 1, fire_at: 50, tag: 7 },
            TraceEvent::TimerFire { timer_seq: 2, at: 50, node: 1, tag: 7 },
            TraceEvent::Service {
                span: 9,
                node: 3,
                begin: 10,
                end: 20,
                cause: SpanCause::Timer(2),
                dominance_tests: 0,
                points_scanned: 0,
                finished: true,
            },
            TraceEvent::Proto {
                span: 0,
                node: 1,
                at: 0,
                event: ProtoEvent::ThresholdRefine { qid: 1, old: f64::INFINITY, new: 7.25 },
            },
            TraceEvent::Proto {
                span: 0,
                node: 1,
                at: 0,
                event: ProtoEvent::Prune { qid: 1, pruned: 12 },
            },
            TraceEvent::Proto {
                span: 0,
                node: 1,
                at: 0,
                event: ProtoEvent::Phase { qid: 1, phase: QueryPhase::Abandoned },
            },
        ]);
        let text = jsonl(&all);
        let back = parse_jsonl(&text).expect("parses");
        assert_eq!(back, all);
        // And re-rendering is byte-identical: parse is a true inverse.
        assert_eq!(jsonl(&back), text);
    }

    #[test]
    fn parse_jsonl_reports_malformed_lines() {
        assert!(parse_jsonl("not json\n").unwrap_err().contains("line 1"));
        assert!(parse_jsonl("{\"type\":\"nope\"}\n").unwrap_err().contains("unknown event type"));
        let truncated = r#"{"type":"finish","span":0}"#;
        assert!(parse_jsonl(truncated).unwrap_err().contains("missing key"));
        // Blank lines are tolerated.
        assert_eq!(parse_jsonl("\n\n").unwrap(), vec![]);
    }

    #[test]
    fn parse_jsonl_names_the_offending_line_one_based() {
        // Two valid lines, then garbage: the error must say line 3, not
        // a 0-based index and not the first line.
        let good = jsonl(&[
            TraceEvent::Finish { span: 0, node: 1, at: 5 },
            TraceEvent::Finish { span: 1, node: 2, at: 9 },
        ]);
        let text = format!("{good}not json\n");
        let err = parse_jsonl(&text).unwrap_err();
        assert!(err.contains("line 3"), "{err}");
        assert!(!err.contains("line 2"), "{err}");
        // A blank separator line still counts toward the numbering.
        let text = format!("\n{good}not json\n");
        let err = parse_jsonl(&text).unwrap_err();
        assert!(err.contains("line 4"), "{err}");
    }

    #[test]
    fn parse_jsonl_truncated_lines_are_named_errors() {
        // Cut mid-object (lost the closing brace and trailing fields).
        let err = parse_jsonl("{\"type\":\"deliver\",\"msg_seq\":0,\"at\":5").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("','") || err.contains("'}'"), "{err}");
        // Cut mid-string.
        let err = parse_jsonl("{\"type\":\"deli").unwrap_err();
        assert!(err.contains("unterminated string"), "{err}");
        // A good line before the bad one still reports the right number.
        let good = event_json(&TraceEvent::Finish { span: 1, node: 1, at: 700 });
        let err = parse_jsonl(&format!("{good}\n{{\"type\":\"finish\",\"span\":")).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn parse_jsonl_unknown_event_kind_is_a_named_error() {
        let err = parse_jsonl("{\"type\":\"teleport\",\"span\":0}").unwrap_err();
        assert!(err.contains("unknown event type"), "{err}");
        assert!(err.contains("teleport"), "error names the offending kind: {err}");
        // Unknown span causes are rejected too, not defaulted.
        let line = "{\"type\":\"service\",\"span\":0,\"node\":0,\"begin\":0,\"end\":1,\
                    \"cause\":\"wormhole\",\"dominance_tests\":0,\"points_scanned\":0,\
                    \"finished\":false}";
        let err = parse_jsonl(line).unwrap_err();
        assert!(err.contains("unknown cause"), "{err}");
    }

    #[test]
    fn parse_jsonl_non_numeric_fields_are_named_errors() {
        // String where a number belongs.
        let err = parse_jsonl("{\"type\":\"finish\",\"span\":\"fast\",\"node\":1,\"at\":700}")
            .unwrap_err();
        assert!(err.contains("span"), "{err}");
        assert!(err.contains("not a number"), "{err}");
        // Malformed numeric literal.
        let err =
            parse_jsonl("{\"type\":\"finish\",\"span\":1-2,\"node\":1,\"at\":700}").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        // Bool where a number belongs.
        let err =
            parse_jsonl("{\"type\":\"finish\",\"span\":true,\"node\":1,\"at\":700}").unwrap_err();
        assert!(err.contains("not a number"), "{err}");
    }
}
